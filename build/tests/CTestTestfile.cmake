# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_ddt[1]_include.cmake")
include("/root/repo/build/tests/test_dpnt[1]_include.cmake")
include("/root/repo/build/tests/test_synonym_file[1]_include.cmake")
include("/root/repo/build/tests/test_cloaking[1]_include.cmake")
include("/root/repo/build/tests/test_value_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_locality[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_branch_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_srt[1]_include.cmake")
include("/root/repo/build/tests/test_store_sets[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_value_predictors_ext[1]_include.cmake")
include("/root/repo/build/tests/test_trace_file[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_fatal_paths[1]_include.cmake")
include("/root/repo/build/tests/test_status[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
