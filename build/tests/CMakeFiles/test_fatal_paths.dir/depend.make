# Empty dependencies file for test_fatal_paths.
# This may be replaced when dependencies are built.
