file(REMOVE_RECURSE
  "CMakeFiles/test_fatal_paths.dir/test_fatal_paths.cc.o"
  "CMakeFiles/test_fatal_paths.dir/test_fatal_paths.cc.o.d"
  "test_fatal_paths"
  "test_fatal_paths.pdb"
  "test_fatal_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fatal_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
