# Empty dependencies file for test_value_predictors_ext.
# This may be replaced when dependencies are built.
