file(REMOVE_RECURSE
  "CMakeFiles/test_value_predictors_ext.dir/test_value_predictors_ext.cc.o"
  "CMakeFiles/test_value_predictors_ext.dir/test_value_predictors_ext.cc.o.d"
  "test_value_predictors_ext"
  "test_value_predictors_ext.pdb"
  "test_value_predictors_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_predictors_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
