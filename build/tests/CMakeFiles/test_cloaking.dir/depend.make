# Empty dependencies file for test_cloaking.
# This may be replaced when dependencies are built.
