file(REMOVE_RECURSE
  "CMakeFiles/test_cloaking.dir/test_cloaking.cc.o"
  "CMakeFiles/test_cloaking.dir/test_cloaking.cc.o.d"
  "test_cloaking"
  "test_cloaking.pdb"
  "test_cloaking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
