file(REMOVE_RECURSE
  "CMakeFiles/test_ddt.dir/test_ddt.cc.o"
  "CMakeFiles/test_ddt.dir/test_ddt.cc.o.d"
  "test_ddt"
  "test_ddt.pdb"
  "test_ddt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
