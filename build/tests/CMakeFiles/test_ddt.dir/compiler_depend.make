# Empty compiler generated dependencies file for test_ddt.
# This may be replaced when dependencies are built.
