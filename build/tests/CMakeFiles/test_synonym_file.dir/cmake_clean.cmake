file(REMOVE_RECURSE
  "CMakeFiles/test_synonym_file.dir/test_synonym_file.cc.o"
  "CMakeFiles/test_synonym_file.dir/test_synonym_file.cc.o.d"
  "test_synonym_file"
  "test_synonym_file.pdb"
  "test_synonym_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synonym_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
