# Empty dependencies file for test_synonym_file.
# This may be replaced when dependencies are built.
