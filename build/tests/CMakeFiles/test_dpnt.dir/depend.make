# Empty dependencies file for test_dpnt.
# This may be replaced when dependencies are built.
