file(REMOVE_RECURSE
  "CMakeFiles/test_dpnt.dir/test_dpnt.cc.o"
  "CMakeFiles/test_dpnt.dir/test_dpnt.cc.o.d"
  "test_dpnt"
  "test_dpnt.pdb"
  "test_dpnt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
