file(REMOVE_RECURSE
  "CMakeFiles/test_value_predictor.dir/test_value_predictor.cc.o"
  "CMakeFiles/test_value_predictor.dir/test_value_predictor.cc.o.d"
  "test_value_predictor"
  "test_value_predictor.pdb"
  "test_value_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
