# Empty dependencies file for list_sharing.
# This may be replaced when dependencies are built.
