file(REMOVE_RECURSE
  "CMakeFiles/list_sharing.dir/list_sharing.cpp.o"
  "CMakeFiles/list_sharing.dir/list_sharing.cpp.o.d"
  "list_sharing"
  "list_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
