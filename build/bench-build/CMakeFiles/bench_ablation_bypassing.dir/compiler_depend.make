# Empty compiler generated dependencies file for bench_ablation_bypassing.
# This may be replaced when dependencies are built.
