file(REMOVE_RECURSE
  "../bench/bench_ablation_bypassing"
  "../bench/bench_ablation_bypassing.pdb"
  "CMakeFiles/bench_ablation_bypassing.dir/bench_ablation_bypassing.cc.o"
  "CMakeFiles/bench_ablation_bypassing.dir/bench_ablation_bypassing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bypassing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
