file(REMOVE_RECURSE
  "../bench/bench_table_5_2_vp_overlap"
  "../bench/bench_table_5_2_vp_overlap.pdb"
  "CMakeFiles/bench_table_5_2_vp_overlap.dir/bench_table_5_2_vp_overlap.cc.o"
  "CMakeFiles/bench_table_5_2_vp_overlap.dir/bench_table_5_2_vp_overlap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_5_2_vp_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
