# Empty dependencies file for bench_table_5_2_vp_overlap.
# This may be replaced when dependencies are built.
