file(REMOVE_RECURSE
  "../bench/bench_ablation_memdep"
  "../bench/bench_ablation_memdep.pdb"
  "CMakeFiles/bench_ablation_memdep.dir/bench_ablation_memdep.cc.o"
  "CMakeFiles/bench_ablation_memdep.dir/bench_ablation_memdep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memdep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
