# Empty dependencies file for bench_ablation_memdep.
# This may be replaced when dependencies are built.
