file(REMOVE_RECURSE
  "../bench/bench_fig10_speedup_nospec"
  "../bench/bench_fig10_speedup_nospec.pdb"
  "CMakeFiles/bench_fig10_speedup_nospec.dir/bench_fig10_speedup_nospec.cc.o"
  "CMakeFiles/bench_fig10_speedup_nospec.dir/bench_fig10_speedup_nospec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_speedup_nospec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
