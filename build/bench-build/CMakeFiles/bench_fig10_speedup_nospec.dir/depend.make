# Empty dependencies file for bench_fig10_speedup_nospec.
# This may be replaced when dependencies are built.
