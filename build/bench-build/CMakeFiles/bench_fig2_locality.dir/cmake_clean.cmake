file(REMOVE_RECURSE
  "../bench/bench_fig2_locality"
  "../bench/bench_fig2_locality.pdb"
  "CMakeFiles/bench_fig2_locality.dir/bench_fig2_locality.cc.o"
  "CMakeFiles/bench_fig2_locality.dir/bench_fig2_locality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
