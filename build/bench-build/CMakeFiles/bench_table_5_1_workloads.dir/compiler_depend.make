# Empty compiler generated dependencies file for bench_table_5_1_workloads.
# This may be replaced when dependencies are built.
