# Empty dependencies file for bench_ext_renaming.
# This may be replaced when dependencies are built.
