file(REMOVE_RECURSE
  "../bench/bench_ext_renaming"
  "../bench/bench_ext_renaming.pdb"
  "CMakeFiles/bench_ext_renaming.dir/bench_ext_renaming.cc.o"
  "CMakeFiles/bench_ext_renaming.dir/bench_ext_renaming.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_renaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
