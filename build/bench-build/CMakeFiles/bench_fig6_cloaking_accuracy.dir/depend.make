# Empty dependencies file for bench_fig6_cloaking_accuracy.
# This may be replaced when dependencies are built.
