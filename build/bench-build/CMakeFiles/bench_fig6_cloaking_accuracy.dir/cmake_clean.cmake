file(REMOVE_RECURSE
  "../bench/bench_fig6_cloaking_accuracy"
  "../bench/bench_fig6_cloaking_accuracy.pdb"
  "CMakeFiles/bench_fig6_cloaking_accuracy.dir/bench_fig6_cloaking_accuracy.cc.o"
  "CMakeFiles/bench_fig6_cloaking_accuracy.dir/bench_fig6_cloaking_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cloaking_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
