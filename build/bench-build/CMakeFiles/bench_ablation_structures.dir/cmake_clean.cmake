file(REMOVE_RECURSE
  "../bench/bench_ablation_structures"
  "../bench/bench_ablation_structures.pdb"
  "CMakeFiles/bench_ablation_structures.dir/bench_ablation_structures.cc.o"
  "CMakeFiles/bench_ablation_structures.dir/bench_ablation_structures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
