# Empty dependencies file for bench_ablation_structures.
# This may be replaced when dependencies are built.
