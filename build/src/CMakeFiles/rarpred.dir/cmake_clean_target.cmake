file(REMOVE_RECURSE
  "librarpred.a"
)
