
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/locality.cc" "src/CMakeFiles/rarpred.dir/analysis/locality.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/analysis/locality.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/rarpred.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/rarpred.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rarpred.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/common/status.cc.o.d"
  "/root/repo/src/core/cloaking.cc" "src/CMakeFiles/rarpred.dir/core/cloaking.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/core/cloaking.cc.o.d"
  "/root/repo/src/core/ddt.cc" "src/CMakeFiles/rarpred.dir/core/ddt.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/core/ddt.cc.o.d"
  "/root/repo/src/core/dpnt.cc" "src/CMakeFiles/rarpred.dir/core/dpnt.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/core/dpnt.cc.o.d"
  "/root/repo/src/core/profile_cloaking.cc" "src/CMakeFiles/rarpred.dir/core/profile_cloaking.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/core/profile_cloaking.cc.o.d"
  "/root/repo/src/cpu/ooo_cpu.cc" "src/CMakeFiles/rarpred.dir/cpu/ooo_cpu.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/cpu/ooo_cpu.cc.o.d"
  "/root/repo/src/faultinject/fault_injector.cc" "src/CMakeFiles/rarpred.dir/faultinject/fault_injector.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/faultinject/fault_injector.cc.o.d"
  "/root/repo/src/faultinject/safety_oracle.cc" "src/CMakeFiles/rarpred.dir/faultinject/safety_oracle.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/faultinject/safety_oracle.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/rarpred.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/rarpred.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/isa/program.cc.o.d"
  "/root/repo/src/isa/program_builder.cc" "src/CMakeFiles/rarpred.dir/isa/program_builder.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/isa/program_builder.cc.o.d"
  "/root/repo/src/memory/cache.cc" "src/CMakeFiles/rarpred.dir/memory/cache.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/memory/cache.cc.o.d"
  "/root/repo/src/memory/memory_system.cc" "src/CMakeFiles/rarpred.dir/memory/memory_system.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/memory/memory_system.cc.o.d"
  "/root/repo/src/predictor/branch_predictor.cc" "src/CMakeFiles/rarpred.dir/predictor/branch_predictor.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/predictor/branch_predictor.cc.o.d"
  "/root/repo/src/predictor/store_sets.cc" "src/CMakeFiles/rarpred.dir/predictor/store_sets.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/predictor/store_sets.cc.o.d"
  "/root/repo/src/vm/micro_vm.cc" "src/CMakeFiles/rarpred.dir/vm/micro_vm.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/vm/micro_vm.cc.o.d"
  "/root/repo/src/vm/trace_file.cc" "src/CMakeFiles/rarpred.dir/vm/trace_file.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/vm/trace_file.cc.o.d"
  "/root/repo/src/workload/kernels.cc" "src/CMakeFiles/rarpred.dir/workload/kernels.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/workload/kernels.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/CMakeFiles/rarpred.dir/workload/registry.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/workload/registry.cc.o.d"
  "/root/repo/src/workload/spec_fp.cc" "src/CMakeFiles/rarpred.dir/workload/spec_fp.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/workload/spec_fp.cc.o.d"
  "/root/repo/src/workload/spec_int.cc" "src/CMakeFiles/rarpred.dir/workload/spec_int.cc.o" "gcc" "src/CMakeFiles/rarpred.dir/workload/spec_int.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
