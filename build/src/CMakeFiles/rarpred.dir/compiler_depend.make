# Empty compiler generated dependencies file for rarpred.
# This may be replaced when dependencies are built.
