#include "vm/micro_vm.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace rarpred {

namespace {

double
asDouble(uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

uint64_t
asBits(double d)
{
    return std::bit_cast<uint64_t>(d);
}

} // namespace

MicroVM::MicroVM(const Program &program)
    : program_(program), memWords_(program.memBytes() / 8, 0)
{
    std::memset(regs_, 0, sizeof(regs_));
    regs_[reg::kSp] = program.memBytes();
    for (const auto &dw : program.initialData())
        writeWord(dw.addr, dw.value);
}

uint64_t
MicroVM::regRead(RegId r) const
{
    rarpred_assert(r < reg::kNumRegs);
    return r == reg::kZero ? 0 : regs_[r];
}

void
MicroVM::regWrite(RegId r, uint64_t v)
{
    rarpred_assert(r < reg::kNumRegs);
    if (r != reg::kZero)
        regs_[r] = v;
}

uint64_t
MicroVM::readReg(RegId r) const
{
    return regRead(r);
}

uint64_t
MicroVM::readWord(uint64_t addr) const
{
    rarpred_assert(addr % 8 == 0 && addr / 8 < memWords_.size());
    return memWords_[addr / 8];
}

void
MicroVM::writeWord(uint64_t addr, uint64_t value)
{
    rarpred_assert(addr % 8 == 0 && addr / 8 < memWords_.size());
    memWords_[addr / 8] = value;
}

bool
MicroVM::next(DynInst &di)
{
    if (halted_)
        return false;
    if (pcIndex_ >= program_.code().size()) {
        halted_ = true;
        return false;
    }

    const Instruction &inst = program_.code()[pcIndex_];
    di = DynInst{};
    di.seq = seq_;
    di.pc = pcOfIndex(pcIndex_);
    di.op = inst.op;
    di.dst = inst.dst;
    di.src1 = inst.src1;
    di.src2 = inst.src2;

    uint64_t next_index = pcIndex_ + 1;

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        break;

      case Opcode::Add:
        regWrite(inst.dst, regRead(inst.src1) + regRead(inst.src2));
        break;
      case Opcode::Sub:
        regWrite(inst.dst, regRead(inst.src1) - regRead(inst.src2));
        break;
      case Opcode::Mul:
        regWrite(inst.dst, regRead(inst.src1) * regRead(inst.src2));
        break;
      case Opcode::Div: {
        uint64_t den = regRead(inst.src2);
        regWrite(inst.dst, den == 0 ? 0 : (uint64_t)((int64_t)regRead(
                                              inst.src1) / (int64_t)den));
        break;
      }
      case Opcode::And:
        regWrite(inst.dst, regRead(inst.src1) & regRead(inst.src2));
        break;
      case Opcode::Or:
        regWrite(inst.dst, regRead(inst.src1) | regRead(inst.src2));
        break;
      case Opcode::Xor:
        regWrite(inst.dst, regRead(inst.src1) ^ regRead(inst.src2));
        break;
      case Opcode::Sll:
        regWrite(inst.dst, regRead(inst.src1) << (regRead(inst.src2) & 63));
        break;
      case Opcode::Srl:
        regWrite(inst.dst, regRead(inst.src1) >> (regRead(inst.src2) & 63));
        break;
      case Opcode::Slt:
        regWrite(inst.dst, (int64_t)regRead(inst.src1) <
                                   (int64_t)regRead(inst.src2)
                               ? 1
                               : 0);
        break;
      case Opcode::Addi:
        regWrite(inst.dst, regRead(inst.src1) + (uint64_t)inst.imm);
        break;
      case Opcode::Andi:
        regWrite(inst.dst, regRead(inst.src1) & (uint64_t)inst.imm);
        break;
      case Opcode::Ori:
        regWrite(inst.dst, regRead(inst.src1) | (uint64_t)inst.imm);
        break;
      case Opcode::Slti:
        regWrite(inst.dst,
                 (int64_t)regRead(inst.src1) < inst.imm ? 1 : 0);
        break;
      case Opcode::Slli:
        regWrite(inst.dst, regRead(inst.src1) << (inst.imm & 63));
        break;
      case Opcode::Srli:
        regWrite(inst.dst, regRead(inst.src1) >> (inst.imm & 63));
        break;
      case Opcode::Li:
        regWrite(inst.dst, (uint64_t)inst.imm);
        break;
      case Opcode::Mov:
      case Opcode::Fmov:
        regWrite(inst.dst, regRead(inst.src1));
        break;

      case Opcode::Lw:
      case Opcode::Lf:
        di.eaddr = regRead(inst.src1) + (uint64_t)inst.imm;
        di.value = readWord(di.eaddr);
        regWrite(inst.dst, di.value);
        break;
      case Opcode::Sw:
      case Opcode::Sf:
        di.eaddr = regRead(inst.src1) + (uint64_t)inst.imm;
        di.value = regRead(inst.src2);
        writeWord(di.eaddr, di.value);
        break;

      case Opcode::FaddS:
      case Opcode::FaddD:
        regWrite(inst.dst, asBits(asDouble(regRead(inst.src1)) +
                                  asDouble(regRead(inst.src2))));
        break;
      case Opcode::FsubS:
      case Opcode::FsubD:
        regWrite(inst.dst, asBits(asDouble(regRead(inst.src1)) -
                                  asDouble(regRead(inst.src2))));
        break;
      case Opcode::FmulS:
      case Opcode::FmulD:
        regWrite(inst.dst, asBits(asDouble(regRead(inst.src1)) *
                                  asDouble(regRead(inst.src2))));
        break;
      case Opcode::FdivS:
      case Opcode::FdivD: {
        double den = asDouble(regRead(inst.src2));
        regWrite(inst.dst,
                 asBits(den == 0.0 ? 0.0
                                   : asDouble(regRead(inst.src1)) / den));
        break;
      }
      case Opcode::FcmpS:
      case Opcode::FcmpD:
        regWrite(inst.dst, asDouble(regRead(inst.src1)) <
                                   asDouble(regRead(inst.src2))
                               ? 1
                               : 0);
        break;
      case Opcode::Fcvt:
        regWrite(inst.dst, asBits((double)(int64_t)regRead(inst.src1)));
        break;

      case Opcode::Beq:
        di.taken = regRead(inst.src1) == regRead(inst.src2);
        if (di.taken)
            next_index = inst.target;
        break;
      case Opcode::Bne:
        di.taken = regRead(inst.src1) != regRead(inst.src2);
        if (di.taken)
            next_index = inst.target;
        break;
      case Opcode::Blt:
        di.taken =
            (int64_t)regRead(inst.src1) < (int64_t)regRead(inst.src2);
        if (di.taken)
            next_index = inst.target;
        break;
      case Opcode::Bge:
        di.taken =
            (int64_t)regRead(inst.src1) >= (int64_t)regRead(inst.src2);
        if (di.taken)
            next_index = inst.target;
        break;
      case Opcode::Jump:
        di.taken = true;
        next_index = inst.target;
        break;
      case Opcode::Call:
        di.taken = true;
        regWrite(reg::kRa, pcOfIndex(pcIndex_ + 1));
        next_index = inst.target;
        break;
      case Opcode::Ret:
        di.taken = true;
        next_index = indexOfPc(regRead(inst.src1));
        break;
    }

    pcIndex_ = next_index;
    di.nextPc = pcOfIndex(pcIndex_);
    ++seq_;
    return true;
}

uint64_t
MicroVM::run(TraceSink &sink, uint64_t max_insts)
{
    DynInst di;
    uint64_t n = 0;
    while (n < max_insts && next(di)) {
        sink.onInst(di);
        ++n;
    }
    return n;
}

uint64_t
MicroVM::run(uint64_t max_insts)
{
    DynInst di;
    uint64_t n = 0;
    while (n < max_insts && next(di))
        ++n;
    return n;
}

void
MicroVM::saveState(StateWriter &w) const
{
    w.u64(program_.code().size());
    w.u64(memWords_.size());
    for (uint64_t r = 0; r < reg::kNumRegs; ++r)
        w.u64(regs_[r]);
    for (uint64_t word : memWords_)
        w.u64(word);
    w.u64(pcIndex_);
    w.u64(seq_);
    w.boolean(halted_);
}

Status
MicroVM::restoreState(StateReader &r)
{
    uint64_t codeSize = 0, memSize = 0;
    RARPRED_RETURN_IF_ERROR(r.u64(&codeSize));
    RARPRED_RETURN_IF_ERROR(r.u64(&memSize));
    if (codeSize != program_.code().size() ||
        memSize != memWords_.size()) {
        return Status::failedPrecondition(
            "VM snapshot was taken over a different program");
    }
    for (uint64_t reg = 0; reg < reg::kNumRegs; ++reg)
        RARPRED_RETURN_IF_ERROR(r.u64(&regs_[reg]));
    for (uint64_t &word : memWords_)
        RARPRED_RETURN_IF_ERROR(r.u64(&word));
    RARPRED_RETURN_IF_ERROR(r.u64(&pcIndex_));
    RARPRED_RETURN_IF_ERROR(r.u64(&seq_));
    RARPRED_RETURN_IF_ERROR(r.boolean(&halted_));
    if (!halted_ && pcIndex_ >= program_.code().size())
        return Status::corruption("VM snapshot pc outside the program");
    return Status{};
}

} // namespace rarpred
