#include "vm/trace_file.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "isa/reg.hh"

namespace rarpred {

namespace {

constexpr uint64_t kMagic = 0x52415254524143ull; // "RARTRAC"

/** On-disk record payload (fixed size, little-endian host assumed). */
struct Record
{
    uint64_t seq;
    uint64_t pc;
    uint64_t nextPc;
    uint64_t eaddr;
    uint64_t value;
    uint8_t op;
    uint8_t dst;
    uint8_t src1;
    uint8_t src2;
    uint8_t taken;
    uint8_t pad[3];
};

static_assert(sizeof(Record) == 48, "trace record layout changed");

/** Version-2 record: payload plus a CRC-32 of its 48 bytes. */
struct RecordV2
{
    Record payload;
    uint32_t crc;
    uint32_t pad;
};

static_assert(sizeof(RecordV2) == 56, "trace v2 record layout changed");

/** Version-1 header (no integrity checking). */
struct HeaderV1
{
    uint64_t magic;
    uint32_t version;
    uint32_t reserved;
    uint64_t count;
};

static_assert(sizeof(HeaderV1) == 24, "trace v1 header layout changed");

/** Version-2 header; crc covers the 24 bytes that precede it. */
struct HeaderV2
{
    uint64_t magic;
    uint32_t version;
    uint32_t flags;
    uint64_t count;
    uint32_t headerCrc;
    uint32_t pad;
};

static_assert(sizeof(HeaderV2) == 32, "trace v2 header layout changed");

constexpr size_t kHeaderCrcCoverage = 24;

HeaderV2
makeHeader(uint64_t count)
{
    HeaderV2 header{kMagic, kTraceVersion, 0, count, 0, 0};
    header.headerCrc = crc32(&header, kHeaderCrcCoverage);
    return header;
}

/** @return true when every field of @p rec has a legal encoding. */
bool
validRecordFields(const Record &rec)
{
    if (rec.op > (uint8_t)Opcode::Halt)
        return false;
    auto reg_ok = [](uint8_t r) {
        return r < reg::kNumRegs || r == reg::kNone;
    };
    return reg_ok(rec.dst) && reg_ok(rec.src1) && reg_ok(rec.src2) &&
           rec.taken <= 1;
}

void
unpackRecord(const Record &rec, DynInst &di)
{
    di = DynInst{};
    di.seq = rec.seq;
    di.pc = rec.pc;
    di.nextPc = rec.nextPc;
    di.eaddr = rec.eaddr;
    di.value = rec.value;
    di.op = (Opcode)rec.op;
    di.dst = rec.dst;
    di.src1 = rec.src1;
    di.src2 = rec.src2;
    di.taken = rec.taken != 0;
}

} // namespace

uint64_t
traceHeaderBytes(uint32_t version)
{
    return version >= 2 ? sizeof(HeaderV2) : sizeof(HeaderV1);
}

uint64_t
traceRecordBytes(uint32_t version)
{
    return version >= 2 ? sizeof(RecordV2) : sizeof(Record);
}

// --- TraceFileWriter -------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string &path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_) {
        latchError(Status::ioError(
            "cannot open trace file for writing: " + path));
        return;
    }
    HeaderV2 header = makeHeader(0);
    out_.write(reinterpret_cast<const char *>(&header), sizeof(header));
    if (!out_)
        latchError(Status::ioError("cannot write trace header: " + path));
}

TraceFileWriter::~TraceFileWriter()
{
    Status s = finish();
    if (!s.ok())
        rarpred_warn("trace file writer: " + s.toString());
}

Result<std::unique_ptr<TraceFileWriter>>
TraceFileWriter::open(const std::string &path)
{
    auto writer = std::make_unique<TraceFileWriter>(path);
    if (!writer->status().ok())
        return writer->status();
    return writer;
}

void
TraceFileWriter::latchError(Status status)
{
    if (status_.ok())
        status_ = std::move(status);
}

void
TraceFileWriter::onInst(const DynInst &di)
{
    rarpred_assert(!finished_);
    if (!status_.ok())
        return;
    RecordV2 rec{};
    rec.payload.seq = di.seq;
    rec.payload.pc = di.pc;
    rec.payload.nextPc = di.nextPc;
    rec.payload.eaddr = di.eaddr;
    rec.payload.value = di.value;
    rec.payload.op = (uint8_t)di.op;
    rec.payload.dst = di.dst;
    rec.payload.src1 = di.src1;
    rec.payload.src2 = di.src2;
    rec.payload.taken = di.taken ? 1 : 0;
    rec.crc = crc32(&rec.payload, sizeof(rec.payload));
    out_.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    if (!out_) {
        latchError(Status::ioError(
            "short write to trace file (disk full?): " + path_));
        return;
    }
    ++count_;
}

Status
TraceFileWriter::finish()
{
    if (finished_)
        return status_;
    finished_ = true;
    if (!out_.is_open())
        return status_;
    HeaderV2 header = makeHeader(count_);
    out_.seekp(0);
    out_.write(reinterpret_cast<const char *>(&header), sizeof(header));
    out_.flush();
    if (!out_)
        latchError(Status::ioError(
            "cannot finalize trace file header: " + path_));
    out_.close();
    if (out_.fail())
        latchError(Status::ioError("cannot close trace file: " + path_));
    return status_;
}

// --- TraceFileReader -------------------------------------------------

TraceFileReader::TraceFileReader(const std::string &path)
    : TraceFileReader(path, Options{})
{
}

TraceFileReader::TraceFileReader(const std::string &path,
                                 const Options &options)
    : in_(path, std::ios::binary), options_(options)
{
    status_ = readHeader(path);
}

Result<std::unique_ptr<TraceFileReader>>
TraceFileReader::open(const std::string &path)
{
    return open(path, Options{});
}

Result<std::unique_ptr<TraceFileReader>>
TraceFileReader::open(const std::string &path, const Options &options)
{
    auto reader = std::make_unique<TraceFileReader>(path, options);
    if (!reader->status().ok())
        return reader->status();
    return reader;
}

Status
TraceFileReader::readHeader(const std::string &path)
{
    if (!in_)
        return Status::ioError("cannot open trace file: " + path);

    // Magic and version live at the same offsets in every format
    // revision; read them first, then the rest of the header.
    uint8_t raw[sizeof(HeaderV2)] = {};
    in_.read(reinterpret_cast<char *>(raw), 12);
    if (!in_ || in_.gcount() != 12)
        return Status::corruption("not a rarpred trace file (too short): " +
                                  path);
    uint64_t magic;
    uint32_t version;
    std::memcpy(&magic, raw, sizeof(magic));
    std::memcpy(&version, raw + 8, sizeof(version));
    if (magic != kMagic)
        return Status::corruption("not a rarpred trace file: " + path);
    if (version < kTraceMinVersion || version > kTraceVersion)
        return Status::invalidArgument(
            "unsupported trace file version " + std::to_string(version) +
            " in " + path);

    const std::streamsize rest =
        (std::streamsize)traceHeaderBytes(version) - 12;
    in_.read(reinterpret_cast<char *>(raw + 12), rest);
    if (!in_ || in_.gcount() != rest)
        return Status::corruption("truncated trace file header: " + path);

    if (version >= 2) {
        HeaderV2 header;
        std::memcpy(&header, raw, sizeof(header));
        if (header.headerCrc != crc32(raw, kHeaderCrcCoverage))
            return Status::corruption(
                "trace file header failed its checksum: " + path);
        total_ = header.count;
    } else {
        HeaderV1 header;
        std::memcpy(&header, raw, sizeof(header));
        total_ = header.count;
    }
    version_ = version;
    dataStart_ = in_.tellg();
    return Status{};
}

Status
TraceFileReader::readRecord(DynInst &di, bool &at_eof)
{
    at_eof = false;
    const std::streamsize want =
        (std::streamsize)traceRecordBytes(version_);
    uint8_t raw[sizeof(RecordV2)];
    in_.read(reinterpret_cast<char *>(raw), want);
    const std::streamsize got = in_.gcount();
    if (got != want) {
        at_eof = true;
        stats_.truncatedBytes += (uint64_t)(want - got);
        return Status::corruption(
            "truncated trace file: record " + std::to_string(pos_) +
            " of " + std::to_string(total_) + " is incomplete");
    }

    Record payload;
    std::memcpy(&payload, raw, sizeof(payload));
    if (version_ >= 2) {
        uint32_t stored;
        std::memcpy(&stored, raw + sizeof(Record), sizeof(stored));
        if (stored != crc32(&payload, sizeof(payload))) {
            ++stats_.corruptionsDetected;
            return Status::corruption(
                "trace record " + std::to_string(pos_) +
                " failed its CRC");
        }
    }
    if (!validRecordFields(payload)) {
        ++stats_.invalidRecords;
        return Status::corruption(
            "trace record " + std::to_string(pos_) +
            " has illegal field encodings");
    }
    unpackRecord(payload, di);
    return Status{};
}

bool
TraceFileReader::next(DynInst &di)
{
    if (!status_.ok())
        return false;
    while (pos_ < total_) {
        bool at_eof = false;
        Status s = readRecord(di, at_eof);
        if (s.ok()) {
            ++pos_;
            ++read_;
            return true;
        }
        if (at_eof || !options_.resyncOnCorruption) {
            // Truncation cannot be skipped past; and without the
            // recovery option any corruption stops the stream.
            status_ = std::move(s);
            return false;
        }
        // Records are fixed-size, so the stream already sits at the
        // next record boundary: drop the damaged one and resume.
        ++pos_;
        ++stats_.recordsSkipped;
    }
    return false;
}

void
TraceFileReader::rewind()
{
    if (version_ == 0)
        return; // the header never parsed; nothing to rewind to
    in_.clear();
    in_.seekg(dataStart_);
    pos_ = 0;
    read_ = 0;
    status_ = Status{};
}

void
TraceFileReader::ReadStats::registerStats(StatGroup &group)
{
    group.registerCounter("corruptionsDetected", &corruptionsDetected);
    group.registerCounter("invalidRecords", &invalidRecords);
    group.registerCounter("recordsSkipped", &recordsSkipped);
    group.registerCounter("truncatedBytes", &truncatedBytes);
}

uint64_t
pumpTrace(TraceSource &source, TraceSink &sink, uint64_t max_insts)
{
    DynInst di;
    uint64_t n = 0;
    while (n < max_insts && source.next(di)) {
        sink.onInst(di);
        ++n;
    }
    return n;
}

} // namespace rarpred
