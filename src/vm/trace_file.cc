#include "vm/trace_file.hh"

#include <cstring>

#include "common/logging.hh"

namespace rarpred {

namespace {

constexpr uint64_t kMagic = 0x52415254524143ull; // "RARTRAC"
constexpr uint32_t kVersion = 1;

/** On-disk record layout (fixed size, little-endian host assumed). */
struct Record
{
    uint64_t seq;
    uint64_t pc;
    uint64_t nextPc;
    uint64_t eaddr;
    uint64_t value;
    uint8_t op;
    uint8_t dst;
    uint8_t src1;
    uint8_t src2;
    uint8_t taken;
    uint8_t pad[3];
};

static_assert(sizeof(Record) == 48, "trace record layout changed");

struct Header
{
    uint64_t magic;
    uint32_t version;
    uint32_t reserved;
    uint64_t count;
};

static_assert(sizeof(Header) == 24, "trace header layout changed");

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        rarpred_fatal("cannot open trace file for writing: " + path);
    Header header{kMagic, kVersion, 0, 0};
    out_.write(reinterpret_cast<const char *>(&header), sizeof(header));
}

TraceFileWriter::~TraceFileWriter()
{
    finish();
}

void
TraceFileWriter::onInst(const DynInst &di)
{
    rarpred_assert(!finished_);
    Record rec{};
    rec.seq = di.seq;
    rec.pc = di.pc;
    rec.nextPc = di.nextPc;
    rec.eaddr = di.eaddr;
    rec.value = di.value;
    rec.op = (uint8_t)di.op;
    rec.dst = di.dst;
    rec.src1 = di.src1;
    rec.src2 = di.src2;
    rec.taken = di.taken ? 1 : 0;
    out_.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    ++count_;
}

void
TraceFileWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    Header header{kMagic, kVersion, 0, count_};
    out_.seekp(0);
    out_.write(reinterpret_cast<const char *>(&header), sizeof(header));
    out_.flush();
}

TraceFileReader::TraceFileReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_)
        rarpred_fatal("cannot open trace file: " + path);
    Header header{};
    in_.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in_ || header.magic != kMagic)
        rarpred_fatal("not a rarpred trace file: " + path);
    if (header.version != kVersion)
        rarpred_fatal("unsupported trace file version in " + path);
    total_ = header.count;
    dataStart_ = in_.tellg();
}

bool
TraceFileReader::next(DynInst &di)
{
    if (read_ >= total_)
        return false;
    Record rec{};
    in_.read(reinterpret_cast<char *>(&rec), sizeof(rec));
    if (!in_)
        rarpred_fatal("truncated trace file");
    di = DynInst{};
    di.seq = rec.seq;
    di.pc = rec.pc;
    di.nextPc = rec.nextPc;
    di.eaddr = rec.eaddr;
    di.value = rec.value;
    di.op = (Opcode)rec.op;
    di.dst = rec.dst;
    di.src1 = rec.src1;
    di.src2 = rec.src2;
    di.taken = rec.taken != 0;
    ++read_;
    return true;
}

void
TraceFileReader::rewind()
{
    in_.clear();
    in_.seekg(dataStart_);
    read_ = 0;
}

uint64_t
pumpTrace(TraceSource &source, TraceSink &sink, uint64_t max_insts)
{
    DynInst di;
    uint64_t n = 0;
    while (n < max_insts && source.next(di)) {
        sink.onInst(di);
        ++n;
    }
    return n;
}

} // namespace rarpred
