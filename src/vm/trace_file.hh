/**
 * @file
 * Binary trace file format: record a committed instruction stream to
 * disk and replay it later.
 *
 * Lets experiments decouple trace generation from analysis (the way
 * the original work separated its functional and timing runs), and
 * lets external traces drive the predictors without the MicroVM.
 *
 * Format: an 16-byte header (magic, version, count) followed by
 * fixed-size little-endian records.
 */

#ifndef RARPRED_VM_TRACE_FILE_HH_
#define RARPRED_VM_TRACE_FILE_HH_

#include <cstdint>
#include <fstream>
#include <string>

#include "vm/trace.hh"

namespace rarpred {

/** Writes a trace to a file as it streams through. */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; fails fatally if it cannot. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    void onInst(const DynInst &di) override;

    /** Finish the file (writes the record count). Idempotent. */
    void finish();

    uint64_t recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    uint64_t count_ = 0;
    bool finished_ = false;
};

/** Replays a trace file as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /** Open @p path; fails fatally on a missing or malformed file. */
    explicit TraceFileReader(const std::string &path);

    bool next(DynInst &di) override;

    /** @return total records in the file. */
    uint64_t totalRecords() const { return total_; }

    /** Rewind to the first record. */
    void rewind();

  private:
    std::ifstream in_;
    uint64_t total_ = 0;
    uint64_t read_ = 0;
    std::streampos dataStart_;
};

/** Pump a TraceSource into a TraceSink. @return records pumped. */
uint64_t pumpTrace(TraceSource &source, TraceSink &sink,
                   uint64_t max_insts = ~0ull);

} // namespace rarpred

#endif // RARPRED_VM_TRACE_FILE_HH_
