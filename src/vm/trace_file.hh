/**
 * @file
 * Binary trace file format: record a committed instruction stream to
 * disk and replay it later.
 *
 * Lets experiments decouple trace generation from analysis (the way
 * the original work separated its functional and timing runs), and
 * lets external traces drive the predictors without the MicroVM.
 *
 * Format v2: a 32-byte header (magic, version, count, header CRC-32)
 * followed by fixed-size little-endian records, each carrying a
 * CRC-32 of its payload so corruption and truncation are detected at
 * read time instead of being silently replayed. Version-1 files
 * (24-byte header, unchecksummed 48-byte records) are still readable.
 *
 * Error handling follows the repo policy (common/status.hh): all
 * failure paths — unopenable files, bad magic or version, CRC
 * mismatches, truncation, invalid field encodings, write errors —
 * surface as Status values; nothing in here exits the process.
 */

#ifndef RARPRED_VM_TRACE_FILE_HH_
#define RARPRED_VM_TRACE_FILE_HH_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/stats.hh"
#include "common/status.hh"
#include "vm/trace.hh"

namespace rarpred {

/** Current (written) trace file format version. */
constexpr uint32_t kTraceVersion = 2;

/** Oldest readable trace file format version. */
constexpr uint32_t kTraceMinVersion = 1;

/** @return on-disk header size in bytes for format @p version. */
uint64_t traceHeaderBytes(uint32_t version = kTraceVersion);

/** @return on-disk record size in bytes for format @p version. */
uint64_t traceRecordBytes(uint32_t version = kTraceVersion);

/** Writes a trace to a file as it streams through. */
class TraceFileWriter : public TraceSink
{
  public:
    /**
     * Open @p path for writing. Never exits the process: on failure
     * the writer is created in an error state — check status().
     * Prefer open() when the caller wants the error directly.
     */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    /** Open @p path for writing, or explain why not. */
    static Result<std::unique_ptr<TraceFileWriter>>
    open(const std::string &path);

    /**
     * Append one record. Errors (e.g. a full disk) latch into
     * status(); once in error, further records are dropped.
     */
    void onInst(const DynInst &di) override;

    /**
     * Finish the file: rewrite the header with the final record count
     * and checksum, flush, and verify the stream survived every
     * seek/write/flush. Idempotent; returns the first error observed
     * over the writer's whole life (a non-OK result means the file on
     * disk must not be trusted).
     */
    Status finish();

    /** First error observed so far (OK while everything is fine). */
    const Status &status() const { return status_; }

    uint64_t recordsWritten() const { return count_; }

  private:
    void latchError(Status status);

    std::string path_;
    std::ofstream out_;
    uint64_t count_ = 0;
    bool finished_ = false;
    Status status_;
};

/** Replays a trace file as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /** Knobs controlling how defensively the reader behaves. */
    struct Options
    {
        /**
         * Corruption recovery: instead of stopping at the first bad
         * record (CRC mismatch, invalid field encoding) or at an
         * unexpected end of file, skip the damaged record(s), count
         * them, and resume at the next record boundary. Detection
         * still happens — see stats() — but the stream keeps playing.
         */
        bool resyncOnCorruption = false;
    };

    /** Corruption/recovery counters, exposable via common/stats. */
    struct ReadStats
    {
        Counter corruptionsDetected; ///< records failing their CRC
        Counter invalidRecords;      ///< CRC-clean but illegal fields
        Counter recordsSkipped;      ///< records dropped by resync
        Counter truncatedBytes;      ///< payload bytes missing at EOF

        /** Register all counters under @p group. */
        void registerStats(StatGroup &group);
    };

    /**
     * Open @p path. Never exits the process: on a missing or
     * malformed file the reader is created in an error state — check
     * status(). Prefer open() when the caller wants the error
     * directly.
     */
    explicit TraceFileReader(const std::string &path);
    TraceFileReader(const std::string &path, const Options &options);

    /** Open @p path, or explain why not (bad magic, version, ...). */
    static Result<std::unique_ptr<TraceFileReader>>
    open(const std::string &path);
    static Result<std::unique_ptr<TraceFileReader>>
    open(const std::string &path, const Options &options);

    /**
     * Produce the next record.
     * @return false at end of stream *or* on error; the two are told
     *         apart by status(), which stays OK on a clean end.
     */
    bool next(DynInst &di) override;

    /** First unrecovered error observed (OK while healthy). */
    const Status &status() const { return status_; }

    /** @return total records the header claims the file holds. */
    uint64_t totalRecords() const { return total_; }

    /** @return records successfully produced so far. */
    uint64_t recordsRead() const { return read_; }

    /** @return format version of the opened file (0 when unopened). */
    uint32_t formatVersion() const { return version_; }

    /** Corruption/recovery counters (cumulative across rewinds). */
    const ReadStats &stats() const { return stats_; }
    ReadStats &stats() { return stats_; }

    /** Rewind to the first record; clears a latched read error. */
    void rewind();

  private:
    Status readHeader(const std::string &path);
    /** Read+validate the record at the current position. @p at_eof is
     *  set when the failure was running out of file (no resync). */
    Status readRecord(DynInst &di, bool &at_eof);

    std::ifstream in_;
    Options options_;
    uint64_t total_ = 0;
    uint64_t read_ = 0; ///< records produced to the caller
    uint64_t pos_ = 0;  ///< record slots consumed (produced + skipped)
    uint32_t version_ = 0;
    std::streampos dataStart_;
    Status status_;
    ReadStats stats_;
};

/** Pump a TraceSource into a TraceSink. @return records pumped. */
uint64_t pumpTrace(TraceSource &source, TraceSink &sink,
                   uint64_t max_insts = ~0ull);

} // namespace rarpred

#endif // RARPRED_VM_TRACE_FILE_HH_
