#include "vm/recorded_trace.hh"

#include "common/logging.hh"
#include "vm/micro_vm.hh"

namespace rarpred {

namespace {

PackedInst
pack(const DynInst &di)
{
    rarpred_assert(di.pc <= UINT32_MAX && di.nextPc <= UINT32_MAX);
    PackedInst p{};
    p.eaddr = di.eaddr;
    p.value = di.value;
    p.pc = (uint32_t)di.pc;
    p.nextPc = (uint32_t)di.nextPc;
    p.op = (uint8_t)di.op;
    p.dst = di.dst;
    p.src1 = di.src1;
    p.src2 = di.src2;
    p.taken = di.taken ? 1 : 0;
    return p;
}

} // namespace

RecordedTrace
RecordedTrace::record(const Program &program, uint64_t max_insts)
{
    MicroVM vm(program);
    return record(vm, max_insts);
}

RecordedTrace
RecordedTrace::record(TraceSource &source, uint64_t max_insts)
{
    RecordedTrace trace;
    // A bounded recording almost always fills to max_insts (workloads
    // loop far past any practical cap), so reserve up front instead of
    // paying geometric-growth copies of a multi-MB vector.
    if (max_insts != UINT64_MAX)
        trace.insts_.reserve(max_insts);
    DynInst di;
    while (trace.insts_.size() < max_insts && source.next(di)) {
        // Replay regenerates seq from the record index; anything but
        // a 0,1,2,... numbering would silently decode wrong.
        rarpred_assert(di.seq == trace.insts_.size());
        trace.insts_.push_back(pack(di));
    }
    trace.insts_.shrink_to_fit();
    return trace;
}

DynInst
RecordedTrace::decode(size_t i) const
{
    const PackedInst &p = insts_[i];
    DynInst di;
    di.seq = i;
    di.pc = p.pc;
    di.nextPc = p.nextPc;
    di.op = (Opcode)p.op;
    di.dst = p.dst;
    di.src1 = p.src1;
    di.src2 = p.src2;
    di.eaddr = p.eaddr;
    di.value = p.value;
    di.taken = p.taken != 0;
    return di;
}

size_t
RecordedTrace::decodeBlock(size_t first, DynInst *out, size_t max) const
{
    const size_t end =
        first + max < insts_.size() ? first + max : insts_.size();
    const size_t n = first < end ? end - first : 0;
    for (size_t i = 0; i < n; ++i) {
        const PackedInst &p = insts_[first + i];
        DynInst &di = out[i];
        di.seq = first + i;
        di.pc = p.pc;
        di.nextPc = p.nextPc;
        di.op = (Opcode)p.op;
        di.dst = p.dst;
        di.src1 = p.src1;
        di.src2 = p.src2;
        di.eaddr = p.eaddr;
        di.value = p.value;
        di.taken = p.taken != 0;
    }
    return n;
}

void
RecordedTrace::replayInto(TraceSink &sink) const
{
    for (size_t i = 0; i < insts_.size(); ++i)
        sink.onInst(decode(i));
}

} // namespace rarpred
