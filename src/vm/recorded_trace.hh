/**
 * @file
 * In-memory recorded execution traces.
 *
 * A RecordedTrace is the committed dynamic instruction stream of one
 * program run, packed into 32-byte records and immutable after
 * construction. It exists so that a sweep over N predictor
 * configurations replays one functional execution N times instead of
 * re-running the MicroVM N times, and so that many threads can replay
 * the same workload concurrently: replay only reads shared state, so
 * a `const RecordedTrace` is safe to share across threads without
 * locking (see src/driver/trace_cache.hh).
 *
 * Fidelity: replay reproduces every DynInst field the MicroVM emits.
 * The dynamic sequence number is not stored — MicroVM numbers
 * instructions 0,1,2,... so replay regenerates it from the record
 * index (asserted at record time).
 */

#ifndef RARPRED_VM_RECORDED_TRACE_HH_
#define RARPRED_VM_RECORDED_TRACE_HH_

#include <cstdint>
#include <vector>

#include "vm/trace.hh"

namespace rarpred {

class Program;

/**
 * One committed instruction, packed to 32 bytes (vs 56 for DynInst).
 * Byte PCs of MicroISA programs fit in 32 bits (program text is at
 * most a few thousand static instructions); effective addresses and
 * values keep the full 64 bits.
 */
struct PackedInst
{
    uint64_t eaddr;
    uint64_t value;
    uint32_t pc;
    uint32_t nextPc;
    uint8_t op;
    uint8_t dst;
    uint8_t src1;
    uint8_t src2;
    uint8_t taken;
    uint8_t pad_[3];
};

static_assert(sizeof(PackedInst) == 32, "packed record layout");

/** An immutable, replayable recording of one program execution. */
class RecordedTrace
{
  public:
    /**
     * Execute @p program on a fresh MicroVM and record up to
     * @p max_insts committed instructions.
     */
    static RecordedTrace record(const Program &program,
                                uint64_t max_insts = ~0ull);

    /** Record whatever @p source produces (tests, file replays). */
    static RecordedTrace record(TraceSource &source,
                                uint64_t max_insts = ~0ull);

    /** Number of recorded instructions. */
    size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    /** Reconstruct the @p i-th committed instruction. */
    DynInst decode(size_t i) const;

    /**
     * Decode records [@p first, @p first + n) into @p out, where n is
     * min(@p max, size() - first). One tight loop over contiguous
     * packed records — the hot path's block decoder.
     * @return n, the number of records decoded.
     */
    size_t decodeBlock(size_t first, DynInst *out, size_t max) const;

    /** Push the whole trace, in order, into @p sink. */
    void replayInto(TraceSink &sink) const;

    /**
     * In-memory footprint of the recording: the trace object header
     * plus the packed record storage. This is the figure the trace
     * cache charges against --trace-budget-bytes.
     */
    uint64_t
    memoryBytes() const
    {
        return sizeof(RecordedTrace) +
               insts_.capacity() * sizeof(PackedInst);
    }

  private:
    RecordedTrace() = default;

    std::vector<PackedInst> insts_;
};

/**
 * Pull-style replay cursor over a shared trace. Each job/thread owns
 * its own cursor; the underlying trace is never mutated.
 */
class RecordedTraceSource : public TraceSource
{
  public:
    /** @param trace Must outlive the source. */
    explicit RecordedTraceSource(const RecordedTrace &trace)
        : trace_(trace)
    {
    }

    bool
    next(DynInst &di) override
    {
        if (pos_ >= trace_.size())
            return false;
        di = trace_.decode(pos_++);
        return true;
    }

    size_t
    nextBlock(DynInst *out, size_t max) override
    {
        const size_t n = trace_.decodeBlock(pos_, out, max);
        pos_ += n;
        return n;
    }

    /** Restart replay from the beginning. */
    void rewind() { pos_ = 0; }

    bool
    rewindToStart() override
    {
        pos_ = 0;
        return true;
    }

    /** Index of the next record next() will produce. */
    size_t position() const { return pos_; }

    /** Jump the cursor (clamped to the trace length). */
    void
    seek(size_t pos)
    {
        pos_ = pos > trace_.size() ? trace_.size() : pos;
    }

  private:
    const RecordedTrace &trace_;
    size_t pos_ = 0;
};

} // namespace rarpred

#endif // RARPRED_VM_RECORDED_TRACE_HH_
