/**
 * @file
 * Functional MicroISA virtual machine.
 *
 * Executes a Program over a flat word-addressed memory image and
 * emits the committed dynamic instruction stream. Plays the role the
 * functional MIPS-I simulator played for the paper: the reference
 * executor whose trace drives all analyses and the timing model.
 */

#ifndef RARPRED_VM_MICRO_VM_HH_
#define RARPRED_VM_MICRO_VM_HH_

#include <cstdint>
#include <vector>

#include "common/statesave.hh"
#include "isa/program.hh"
#include "vm/trace.hh"

namespace rarpred {

/** Functional executor producing the architectural trace. */
class MicroVM : public TraceSource
{
  public:
    /**
     * @param program The program to execute; must outlive the VM.
     *
     * The stack pointer (reg::kSp) is initialized to the top of the
     * data memory (full-descending stack).
     */
    explicit MicroVM(const Program &program);

    /**
     * Execute one instruction.
     * @param di Filled with the committed instruction record.
     * @return false if the VM has halted (nothing executed).
     */
    bool next(DynInst &di) override;

    /**
     * Run until halt or until @p max_insts further instructions have
     * committed, pushing each into @p sink.
     * @return the number of instructions executed by this call.
     */
    uint64_t run(TraceSink &sink, uint64_t max_insts = ~0ull);

    /** Run without observing the trace. @return instructions executed. */
    uint64_t run(uint64_t max_insts = ~0ull);

    /** @return true once Halt has executed (or pc fell off the code). */
    bool halted() const { return halted_; }

    /** @return total committed instruction count. */
    uint64_t instCount() const { return seq_; }

    /** @return current value of an integer or fp register. */
    uint64_t readReg(RegId r) const;

    /** @return the 8-byte word at @p addr (must be aligned, in range). */
    uint64_t readWord(uint64_t addr) const;

    /** Overwrite the 8-byte word at @p addr. */
    void writeWord(uint64_t addr, uint64_t value);

    /** @return data memory size in bytes. */
    uint64_t memBytes() const { return memWords_.size() * 8; }

    /**
     * Serialize the architectural state (registers, data memory,
     * trace cursor). The Program itself is not serialized — a restore
     * target must be constructed over the same program, which is
     * checked via size echoes.
     */
    void saveState(StateWriter &w) const;
    Status restoreState(StateReader &r);

  private:
    uint64_t regRead(RegId r) const;
    void regWrite(RegId r, uint64_t v);

    const Program &program_;
    std::vector<uint64_t> memWords_;
    uint64_t regs_[reg::kNumRegs];
    uint64_t pcIndex_ = 0; ///< static instruction index, not byte PC
    uint64_t seq_ = 0;
    bool halted_ = false;
};

} // namespace rarpred

#endif // RARPRED_VM_MICRO_VM_HH_
