/**
 * @file
 * Dynamic instruction records and trace plumbing.
 *
 * Everything in the repo — the dependence analyses of Section 2, the
 * cloaking predictors of Section 5, and the timing CPU of Section 5.6
 * — consumes the same dynamic instruction stream defined here.
 */

#ifndef RARPRED_VM_TRACE_HH_
#define RARPRED_VM_TRACE_HH_

#include <cstdint>

#include "isa/instruction.hh"

namespace rarpred {

/**
 * One executed (architecturally committed) instruction.
 *
 * For loads, value holds the loaded word; for stores, the stored
 * word. eaddr is the 8-aligned effective byte address.
 */
struct DynInst
{
    uint64_t seq = 0;    ///< dynamic instruction number, from 0
    uint64_t pc = 0;     ///< byte PC
    uint64_t nextPc = 0; ///< byte PC of the next dynamic instruction
    Opcode op = Opcode::Nop;
    RegId dst = reg::kNone;
    RegId src1 = reg::kNone;
    RegId src2 = reg::kNone;
    uint64_t eaddr = 0; ///< effective address (memory ops only)
    uint64_t value = 0; ///< loaded/stored word (memory ops only)
    bool taken = false; ///< control transfer was taken

    bool isLoad() const { return rarpred::isLoad(op); }
    bool isStore() const { return rarpred::isStore(op); }
    bool isMem() const { return isLoad() || isStore(); }
    bool isControl() const { return rarpred::isControl(op); }
    bool isCondBranch() const { return rarpred::isCondBranch(op); }
    InstClass instClass() const { return classOf(op); }
    unsigned latency() const { return latencyOf(op); }
};

/** Push-style consumer of a dynamic instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per committed instruction, in program order. */
    virtual void onInst(const DynInst &di) = 0;
};

/** Pull-style producer of a dynamic instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction in program order.
     * @return false when the stream is exhausted (di left untouched).
     */
    virtual bool next(DynInst &di) = 0;

    /**
     * Restart the stream from its first instruction, if the source
     * supports it. The snapshot restore path uses this to fall back
     * to a from-scratch run after rejecting a divergent snapshot.
     * @return false when the source cannot rewind (the default).
     */
    virtual bool rewindToStart() { return false; }
};

/**
 * Pump @p source dry into @p sink.
 * @return the number of instructions transferred.
 */
inline uint64_t
drainTrace(TraceSource &source, TraceSink &sink)
{
    DynInst di;
    uint64_t count = 0;
    while (source.next(di)) {
        sink.onInst(di);
        ++count;
    }
    return count;
}

} // namespace rarpred

#endif // RARPRED_VM_TRACE_HH_
