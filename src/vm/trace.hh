/**
 * @file
 * Dynamic instruction records and trace plumbing.
 *
 * Everything in the repo — the dependence analyses of Section 2, the
 * cloaking predictors of Section 5, and the timing CPU of Section 5.6
 * — consumes the same dynamic instruction stream defined here.
 */

#ifndef RARPRED_VM_TRACE_HH_
#define RARPRED_VM_TRACE_HH_

#include <cstddef>
#include <cstdint>

#include "isa/instruction.hh"

namespace rarpred {

/**
 * One executed (architecturally committed) instruction.
 *
 * For loads, value holds the loaded word; for stores, the stored
 * word. eaddr is the 8-aligned effective byte address.
 */
struct DynInst
{
    uint64_t seq = 0;    ///< dynamic instruction number, from 0
    uint64_t pc = 0;     ///< byte PC
    uint64_t nextPc = 0; ///< byte PC of the next dynamic instruction
    Opcode op = Opcode::Nop;
    RegId dst = reg::kNone;
    RegId src1 = reg::kNone;
    RegId src2 = reg::kNone;
    uint64_t eaddr = 0; ///< effective address (memory ops only)
    uint64_t value = 0; ///< loaded/stored word (memory ops only)
    bool taken = false; ///< control transfer was taken

    bool isLoad() const { return rarpred::isLoad(op); }
    bool isStore() const { return rarpred::isStore(op); }
    bool isMem() const { return isLoad() || isStore(); }
    bool isControl() const { return rarpred::isControl(op); }
    bool isCondBranch() const { return rarpred::isCondBranch(op); }
    InstClass instClass() const { return classOf(op); }
    unsigned latency() const { return latencyOf(op); }
};

/**
 * Records per block in the batched pump (drainTraceBatched). 256
 * 56-byte DynInsts are a 14 KiB stack buffer: big enough to amortize
 * the two virtual calls per block, small enough to stay resident in
 * L1/L2 while the sink chews through it.
 */
inline constexpr size_t kTraceBatch = 256;

/** Push-style consumer of a dynamic instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per committed instruction, in program order. */
    virtual void onInst(const DynInst &di) = 0;

    /**
     * Consume @p n instructions at once. Semantically identical to n
     * onInst() calls (the default does exactly that); sinks override
     * it to devirtualize and keep the block streaming through cache.
     */
    virtual void
    onBatch(const DynInst *batch, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            onInst(batch[i]);
    }
};

/** Pull-style producer of a dynamic instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction in program order.
     * @return false when the stream is exhausted (di left untouched).
     */
    virtual bool next(DynInst &di) = 0;

    /**
     * Produce up to @p max instructions into @p out. Semantically
     * identical to repeated next() calls (the default is exactly
     * that); sources backed by contiguous storage override it to
     * decode a whole block per virtual call.
     * @return the number of records produced; 0 means exhausted.
     */
    virtual size_t
    nextBlock(DynInst *out, size_t max)
    {
        size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * Restart the stream from its first instruction, if the source
     * supports it. The snapshot restore path uses this to fall back
     * to a from-scratch run after rejecting a divergent snapshot.
     * @return false when the source cannot rewind (the default).
     */
    virtual bool rewindToStart() { return false; }
};

/**
 * Pump @p source dry into @p sink, one record at a time. This is the
 * straight-line reference pump: the hot path uses drainTraceBatched()
 * instead, and tests/test_hotpath_equiv.cc holds the two byte-
 * identical on every workload.
 * @return the number of instructions transferred.
 */
inline uint64_t
drainTrace(TraceSource &source, TraceSink &sink)
{
    DynInst di;
    uint64_t count = 0;
    while (source.next(di)) {
        sink.onInst(di);
        ++count;
    }
    return count;
}

/**
 * Pump @p source dry into @p sink in blocks of kTraceBatch records.
 * Record-for-record equivalent to drainTrace(); the batching only
 * changes call shape (two virtual calls per block) and data locality
 * (the block is decoded contiguously, then consumed contiguously).
 * @return the number of instructions transferred.
 */
inline uint64_t
drainTraceBatched(TraceSource &source, TraceSink &sink)
{
    DynInst block[kTraceBatch];
    uint64_t count = 0;
    while (size_t n = source.nextBlock(block, kTraceBatch)) {
        sink.onBatch(block, n);
        count += n;
    }
    return count;
}

} // namespace rarpred

#endif // RARPRED_VM_TRACE_HH_
