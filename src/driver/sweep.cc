#include "driver/sweep.hh"

#include <cstdlib>
#include <cstring>

namespace rarpred::driver {

std::vector<const Workload *>
allWorkloadPtrs()
{
    std::vector<const Workload *> ptrs;
    for (const Workload &w : allWorkloads())
        ptrs.push_back(&w);
    return ptrs;
}

RunnerConfig
runnerConfigFromArgs(int argc, char **argv)
{
    RunnerConfig config;
    if (const char *env = std::getenv("RARPRED_WORKERS"))
        config.workers = (unsigned)std::strtoul(env, nullptr, 10);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--serial") == 0)
            config.workers = 1;
        else if (std::strncmp(argv[i], "--workers=", 10) == 0)
            config.workers =
                (unsigned)std::strtoul(argv[i] + 10, nullptr, 10);
    }
    return config;
}

} // namespace rarpred::driver
