#include "driver/sweep.hh"

#include <cstdlib>
#include <cstring>

#include "cpu/ooo_cpu.hh"
#include "driver/fleet_dispatcher.hh"
#include "faultinject/driver_faults.hh"
#include "service/proto.hh"

namespace rarpred::driver {

std::vector<const Workload *>
allWorkloadPtrs()
{
    std::vector<const Workload *> ptrs;
    for (const Workload &w : allWorkloads())
        ptrs.push_back(&w);
    return ptrs;
}

RunnerConfig
runnerConfigFromArgs(int argc, char **argv)
{
    RunnerConfig config;
    if (const char *env = std::getenv("RARPRED_WORKERS"))
        config.workers = (unsigned)std::strtoul(env, nullptr, 10);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--serial") == 0)
            config.workers = 1;
        else if (std::strncmp(argv[i], "--workers=", 10) == 0)
            config.workers =
                (unsigned)std::strtoul(argv[i] + 10, nullptr, 10);
    }
    return config;
}

namespace {

/** Strict decimal parse; rejects empty strings and trailing junk. */
bool
parseU64(const char *s, uint64_t *out)
{
    if (*s == '\0')
        return false;
    uint64_t v = 0;
    for (; *s != '\0'; ++s) {
        if (*s < '0' || *s > '9')
            return false;
        const uint64_t digit = (uint64_t)(*s - '0');
        if (v > (~0ull - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    *out = v;
    return true;
}

/** If @p arg is "--name=V", return V, else nullptr. */
const char *
flagValue(const char *arg, const char *name)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

Status
numericFlag(const char *arg, const char *flag, uint64_t *out)
{
    const char *v = flagValue(arg, flag);
    if (v == nullptr)
        return Status::notFound(""); // not this flag
    if (!parseU64(v, out))
        return Status::invalidArgument(std::string(flag) +
                                       " wants a decimal number, got '" +
                                       v + "'");
    return Status{};
}

} // namespace

Result<SweepOptions>
parseSweepArgs(int argc, char **argv)
{
    SweepOptions opts;
    if (const char *env = std::getenv("RARPRED_WORKERS")) {
        uint64_t v = 0;
        if (!parseU64(env, &v))
            return Status::invalidArgument(
                std::string("RARPRED_WORKERS wants a decimal number, "
                            "got '") +
                env + "'");
        opts.runner.workers = (unsigned)v;
    }

    // Crash-drill hook: lets CI and the resume tests inject faults
    // into any sweep binary without recompiling.
    RARPRED_RETURN_IF_ERROR(armDriverFaultsFromEnv());

    struct U64Flag
    {
        const char *name;
        uint64_t *slot;
    };
    uint64_t workers = 0, scale = 0, max_insts = 0, retries = 0;
    bool saw_workers = false, saw_scale = false, saw_max_insts = false;
    bool saw_retries = false, saw_serial = false;
    uint64_t proc_workers = 0;
    const U64Flag numeric[] = {
        {"--deadline-ms", &opts.runner.jobDeadlineMs},
        {"--retry-backoff-ms", &opts.runner.retryBackoffMs},
        {"--trace-budget-bytes", &opts.runner.traceBudgetBytes},
        {"--snapshot-every", &opts.runner.snapshotEvery},
        {"--audit-every", &opts.runner.auditEvery},
        {"--workers-proc", &proc_workers},
        {"--worker-heartbeat-ms", &opts.runner.workerHeartbeatTimeoutMs},
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            opts.help = true;
            continue;
        }
        if (std::strcmp(arg, "--serial") == 0) {
            opts.runner.workers = 1;
            saw_serial = true;
            continue;
        }
        if (std::strcmp(arg, "--resume") == 0) {
            opts.io.resume = true;
            continue;
        }
        if (const char *v = flagValue(arg, "--journal")) {
            opts.io.journalPath = v;
            continue;
        }
        if (const char *v = flagValue(arg, "--resume")) {
            opts.io.journalPath = v;
            opts.io.resume = true;
            continue;
        }
        if (std::strcmp(arg, "--restore") == 0) {
            opts.runner.restoreSnapshots = true;
            continue;
        }
        if (const char *v = flagValue(arg, "--snapshot-dir")) {
            opts.runner.snapshotDir = v;
            continue;
        }
        if (const char *v = flagValue(arg, "--workers-remote")) {
            // Validate here so a typo'd endpoint is a CLI error, not
            // a silently agent-less fleet.
            RARPRED_RETURN_IF_ERROR(
                FleetDispatcher::parseAgentList(v).status());
            opts.runner.remoteAgents = v;
            continue;
        }
        Status s = numericFlag(arg, "--workers", &workers);
        if (s.ok()) {
            saw_workers = true;
            continue;
        }
        if (s.code() == StatusCode::InvalidArgument)
            return s;
        s = numericFlag(arg, "--scale", &scale);
        if (s.ok()) {
            saw_scale = true;
            continue;
        }
        if (s.code() == StatusCode::InvalidArgument)
            return s;
        s = numericFlag(arg, "--max-insts", &max_insts);
        if (s.ok()) {
            saw_max_insts = true;
            continue;
        }
        if (s.code() == StatusCode::InvalidArgument)
            return s;
        s = numericFlag(arg, "--retries", &retries);
        if (s.ok()) {
            saw_retries = true;
            continue;
        }
        if (s.code() == StatusCode::InvalidArgument)
            return s;
        uint64_t budget_traces = 0;
        s = numericFlag(arg, "--trace-budget", &budget_traces);
        if (s.ok()) {
            opts.runner.traceBudgetTraces = (uint32_t)budget_traces;
            continue;
        }
        if (s.code() == StatusCode::InvalidArgument)
            return s;
        bool matched = false;
        for (const U64Flag &f : numeric) {
            s = numericFlag(arg, f.name, f.slot);
            if (s.ok()) {
                matched = true;
                break;
            }
            if (s.code() == StatusCode::InvalidArgument)
                return s;
        }
        if (matched)
            continue;
        if (std::strncmp(arg, "--", 2) == 0)
            return Status::invalidArgument(std::string("unknown flag '") +
                                           arg + "'");
        opts.positional.push_back(arg);
    }

    if (saw_workers)
        opts.runner.workers = (unsigned)workers;
    if (proc_workers != 0) {
        opts.runner.procWorkers = (unsigned)proc_workers;
        // 1:1 thread:process pairing unless the caller split them
        // explicitly — each worker thread drives one worker process.
        if (!saw_workers && !saw_serial)
            opts.runner.workers = (unsigned)proc_workers;
    }
    if (saw_scale) {
        if (scale == 0)
            return Status::invalidArgument("--scale must be >= 1");
        opts.runner.scale = (uint32_t)scale;
    }
    if (saw_max_insts)
        opts.runner.maxInsts = max_insts == 0 ? ~0ull : max_insts;
    if (saw_retries) {
        // --retries counts *retries*; maxAttempts counts attempts.
        opts.runner.maxAttempts = (unsigned)retries + 1;
    }
    if (opts.io.resume && opts.io.journalPath.empty())
        return Status::invalidArgument(
            "--resume needs a journal path (--journal=PATH or "
            "--resume=PATH)");
    if (opts.runner.restoreSnapshots && opts.runner.snapshotDir.empty())
        return Status::invalidArgument(
            "--restore needs --snapshot-dir=DIR");
    if (opts.runner.snapshotEvery != 0 && opts.runner.snapshotDir.empty())
        return Status::invalidArgument(
            "--snapshot-every needs --snapshot-dir=DIR");
    return opts;
}

const char *
sweepUsage()
{
    return
        "common sweep flags:\n"
        "  --workers=N | --serial   worker threads (default: hardware;\n"
        "                           env RARPRED_WORKERS overrides)\n"
        "  --workers-proc=N         run jobs in N sandboxed worker\n"
        "                           processes (crash containment);\n"
        "                           implies --workers=N unless given\n"
        "  --worker-heartbeat-ms=N  kill a silent worker process\n"
        "                           after N ms (default 10000); also\n"
        "                           the fleet lease heartbeat budget\n"
        "  --workers-remote=H:P[,H:P...]\n"
        "                           lease jobs to rarpred-agent hosts;\n"
        "                           falls back to local execution when\n"
        "                           the fleet is unreachable\n"
        "  --scale=N                workload scale (default 1)\n"
        "  --max-insts=N            truncate traces to N instructions\n"
        "  --retries=N              retry failed jobs N times (default 2)\n"
        "  --deadline-ms=N          per-attempt watchdog deadline\n"
        "  --retry-backoff-ms=N     base backoff before retries\n"
        "  --trace-budget=N         max resident traces in the cache\n"
        "  --trace-budget-bytes=N   max resident trace bytes (full\n"
        "                           footprint incl. trace headers)\n"
        "  --journal=PATH           checkpoint completed jobs to PATH\n"
        "  --resume[=PATH]          resume an interrupted sweep\n"
        "  --snapshot-dir=DIR       per-job epoch snapshots in DIR\n"
        "  --snapshot-every=N       snapshot every N instructions\n"
        "  --restore                resume jobs from their snapshots\n"
        "  --audit-every=N          audit hint tables every N insts\n"
        "  --help | -h              show this help\n"
        "env RARPRED_FAULT=point:index[xN],... arms driver fault\n"
        "points (job_crash, job_hang, job_kill, journal_torn,\n"
        "cache_pressure, snapshot_torn, snapshot_stale,\n"
        "state_bitflip, epoch_kill, worker_crash, worker_hang,\n"
        "worker_flap, worker_result_torn, worker_result_dup,\n"
        "net_drop, net_partition, net_slow, agent_kill, result_dup,\n"
        "store_enospc) for crash drills.\n";
}

int
finishSweep(SimJobRunner &runner, const Status &status, std::ostream &err,
            const StatsMerger *merger)
{
    runner.dumpFailureTable(err);
    runner.dumpStats(err);
    if (merger != nullptr && merger->numErrors() != 0)
        err << "sweep.errorsJson " << merger->errorsJson() << "\n";
    if (status.ok())
        return 0;
    err << "sweep failed: " << status.toString() << "\n";
    if (status.code() == StatusCode::Cancelled) {
        err << "re-run with --resume to pick up where this sweep "
               "stopped\n";
        return 130;
    }
    return 1;
}

SweepResult<CpuStats>
runCellSweep(SimJobRunner &runner,
             const std::vector<const Workload *> &workloads,
             const std::vector<service::CellConfigMsg> &configs,
             const SweepIo &io)
{
    // Non-template twin of runSweep() for the standard CPU cell:
    // journal layout, cell order, configHash and RNG seeding are kept
    // identical so a journal written by either is resumable by both
    // (the fingerprint covers names/configs/sizeof(CpuStats)/scale/
    // maxInsts, not which entry point produced it).
    const size_t num_configs = configs.size();
    const size_t n = workloads.size() * num_configs;
    SweepResult<CpuStats> out{
        std::vector<Result<CpuStats>>(
            n, Result<CpuStats>(
                   Status::failedPrecondition("job never ran"))),
        Status{}};
    std::vector<char> done(n, 0);

    std::unique_ptr<SweepJournal> journal;
    if (!io.journalPath.empty()) {
        std::vector<std::string> names;
        names.reserve(workloads.size());
        for (const Workload *w : workloads)
            names.push_back(w->abbrev);
        const uint64_t fp = sweepFingerprint(
            names, num_configs, sizeof(CpuStats),
            runner.config().scale, runner.config().maxInsts);
        if (io.resume) {
            SweepJournal::Replay replay;
            auto opened = SweepJournal::openResume(io.journalPath, fp,
                                                   n, &replay);
            if (!opened.ok()) {
                out.status = opened.status();
                return out;
            }
            journal = std::move(*opened);
            uint64_t replayed = 0;
            for (const SweepJournal::Record &rec : replay.records) {
                if (rec.job >= n ||
                    rec.payload.size() != sizeof(CpuStats)) {
                    out.status = Status::corruption(
                        "journal record does not fit this sweep");
                    return out;
                }
                CpuStats value;
                std::memcpy(&value, rec.payload.data(),
                            sizeof(CpuStats));
                if (!done[rec.job])
                    ++replayed;
                out.cells[rec.job] = Result<CpuStats>(value);
                done[rec.job] = 1;
            }
            runner.noteJournalReplay(replayed, replay.tornRecords);
        } else {
            auto created = SweepJournal::create(io.journalPath, fp, n);
            if (!created.ok()) {
                out.status = created.status();
                return out;
            }
            journal = std::move(*created);
        }
    }

    std::vector<JobSpec> jobs;
    std::vector<size_t> job_cell;
    jobs.reserve(n);
    SweepJournal *jptr = journal.get();
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        for (size_t ci = 0; ci < num_configs; ++ci) {
            const size_t idx = wi * num_configs + ci;
            if (done[idx])
                continue;
            const service::CellConfigMsg *cfg = &configs[ci];
            Result<CpuStats> *slot = &out.cells[idx];
            job_cell.push_back(idx);
            // One commit path shared by the in-process body and the
            // worker-pool route: whichever computed the stats, the
            // journal append and slot write are the same bytes.
            auto commit = [&runner, slot, idx,
                           jptr](const CpuStats &stats) -> Status {
                if (jptr != nullptr &&
                    jptr->append(idx, &stats, sizeof(CpuStats)).ok())
                    runner.noteJournalAppend();
                *slot = Result<CpuStats>(stats);
                return Status{};
            };
            JobSpec job;
            job.workload = workloads[wi];
            job.configHash = ci;
            job.run = [cfg, commit](TraceSource &trace,
                                    Rng &) -> Status {
                CpuConfig core;
                core.memDep = cfg->memDepPolicy();
                OooCpu cpu(core, cfg->toTimingConfig());
                pumpSimulation(trace, cpu);
                return commit(cpu.stats());
            };
            job.procConfig = cfg;
            job.acceptProc = commit;
            jobs.push_back(std::move(job));
        }
    }

    out.status = runner.run(jobs);

    for (const JobFailure &f : runner.quarantined())
        out.cells[job_cell[f.job]] = Result<CpuStats>(f.error);

    return out;
}

} // namespace rarpred::driver
