#include "driver/sweep_journal.hh"

#include <sys/types.h>
#include <unistd.h>

#include <cstring>

#include "common/crc32.hh"
#include "common/statesave.hh"
#include "faultinject/driver_faults.hh"

namespace rarpred::driver {

namespace {

constexpr uint32_t kJournalMagic = 0x4a524152; // "RARJ" little-endian
constexpr uint32_t kJournalVersion = 1;
constexpr size_t kHeaderBytes = 32;
constexpr size_t kRecordOverhead = 8 + 4 + 4; // job + len + crc

/** Serialize little-endian scalars into a byte buffer. */
void
putU32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = (uint8_t)(v >> (8 * i));
}

void
putU64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = (uint8_t)(v >> (8 * i));
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)p[i] << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)p[i] << (8 * i);
    return v;
}

void
encodeHeader(uint8_t (&h)[kHeaderBytes], uint64_t fingerprint,
             uint64_t num_jobs)
{
    std::memset(h, 0, sizeof(h));
    putU32(h + 0, kJournalMagic);
    putU32(h + 4, kJournalVersion);
    putU64(h + 8, fingerprint);
    putU64(h + 16, num_jobs);
    putU32(h + 24, 0); // reserved
    putU32(h + 28, crc32(h, 28));
}

} // namespace

SweepJournal::SweepJournal(const std::string &path, std::ofstream out)
    : path_(path), out_(std::move(out))
{
}

Result<std::unique_ptr<SweepJournal>>
SweepJournal::create(const std::string &path, uint64_t fingerprint,
                     uint64_t num_jobs)
{
    uint8_t header[kHeaderBytes];
    encodeHeader(header, fingerprint, num_jobs);
    // Durable write-then-rename: a plain trunc+write could be SIGKILLed
    // (or lose power) between creating the inode and flushing the
    // header, leaving a zero-length journal that a later --resume
    // rejects as corrupt. durableWriteFile fsyncs before the atomic
    // rename so the header is all-or-nothing.
    RARPRED_RETURN_IF_ERROR(
        durableWriteFile(path, header, sizeof(header)));
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out)
        return Status::ioError("cannot open sweep journal for append: " +
                               path);
    return std::unique_ptr<SweepJournal>(
        new SweepJournal(path, std::move(out)));
}

Result<SweepJournal::Replay>
SweepJournal::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::ioError("cannot open sweep journal: " + path);

    uint8_t header[kHeaderBytes];
    in.read((char *)header, sizeof(header));
    if ((size_t)in.gcount() != sizeof(header))
        return Status::corruption("journal shorter than its header: " +
                                  path);
    if (getU32(header + 0) != kJournalMagic)
        return Status::corruption("not a sweep journal (bad magic): " +
                                  path);
    if (getU32(header + 4) != kJournalVersion)
        return Status::corruption(
            "unsupported journal version " +
            std::to_string(getU32(header + 4)) + ": " + path);
    if (getU32(header + 28) != crc32(header, 28))
        return Status::corruption("journal header CRC mismatch: " + path);

    Replay replay;
    replay.fingerprint = getU64(header + 8);
    replay.numJobs = getU64(header + 16);
    replay.validBytes = kHeaderBytes;

    // Records until EOF. Any failure from here on — short read, CRC
    // mismatch, absurd length — is a torn tail: count it, stop, and
    // let the caller truncate. Bytes *after* a bad record can't be
    // re-synchronized (records are variable-length), so they are
    // dropped with it.
    while (true) {
        uint8_t fixed[12];
        in.read((char *)fixed, sizeof(fixed));
        const size_t got = (size_t)in.gcount();
        if (got == 0)
            break; // clean end
        if (got < sizeof(fixed)) {
            ++replay.tornRecords;
            break;
        }
        const uint64_t job = getU64(fixed + 0);
        const uint32_t len = getU32(fixed + 8);
        // A length beyond any sane payload means the length field
        // itself is damaged; don't try to allocate it.
        if (len > (64u << 20)) {
            ++replay.tornRecords;
            break;
        }
        std::vector<uint8_t> payload(len);
        if (len > 0) {
            in.read((char *)payload.data(), len);
            if ((size_t)in.gcount() != len) {
                ++replay.tornRecords;
                break;
            }
        }
        uint8_t crc_buf[4];
        in.read((char *)crc_buf, sizeof(crc_buf));
        if ((size_t)in.gcount() != sizeof(crc_buf)) {
            ++replay.tornRecords;
            break;
        }
        uint32_t crc = crc32(fixed, sizeof(fixed));
        crc = crc32Update(crc, payload.data(), payload.size());
        if (getU32(crc_buf) != crc) {
            ++replay.tornRecords;
            break;
        }
        replay.records.push_back(Record{job, std::move(payload)});
        replay.validBytes += kRecordOverhead + len;
    }
    return replay;
}

Result<std::unique_ptr<SweepJournal>>
SweepJournal::openResume(const std::string &path, uint64_t fingerprint,
                         uint64_t num_jobs, Replay *out)
{
    Result<Replay> replay = load(path);
    if (!replay.ok())
        return replay.status();
    if (replay->fingerprint != fingerprint ||
        replay->numJobs != num_jobs) {
        return Status::failedPrecondition(
            "journal " + path + " belongs to a different sweep "
            "(fingerprint/jobs mismatch); refusing to resume from it");
    }

    // Truncate the torn tail before appending: a resumed run must
    // never build on bytes that failed their CRC.
    if (::truncate(path.c_str(), (off_t)replay->validBytes) != 0)
        return Status::ioError("cannot truncate torn journal tail: " +
                               path);

    std::ofstream app(path, std::ios::binary | std::ios::app);
    if (!app)
        return Status::ioError("cannot open journal for append: " + path);

    if (out != nullptr)
        *out = std::move(*replay);
    auto journal = std::unique_ptr<SweepJournal>(
        new SweepJournal(path, std::move(app)));
    return journal;
}

Status
SweepJournal::append(uint64_t job, const void *payload, size_t len)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok())
        return status_;

    uint8_t fixed[12];
    putU64(fixed + 0, job);
    putU32(fixed + 8, (uint32_t)len);
    uint32_t crc = crc32(fixed, sizeof(fixed));
    crc = crc32Update(crc, payload, len);
    uint8_t crc_buf[4];
    putU32(crc_buf, crc);

    if (driverFaultFires(DriverFaultPoint::JournalTornWrite, appended_)) {
        // Simulated power cut mid-write: half the fixed part reaches
        // the disk, then the journal goes dark.
        out_.write((const char *)fixed, sizeof(fixed) / 2);
        out_.flush();
        status_ = Status::ioError(
            "injected torn write on journal record " +
            std::to_string(appended_));
        return status_;
    }

    out_.write((const char *)fixed, sizeof(fixed));
    if (len > 0)
        out_.write((const char *)payload, len);
    out_.write((const char *)crc_buf, sizeof(crc_buf));
    out_.flush();
    if (!out_) {
        status_ = Status::ioError("journal append failed: " + path_);
        return status_;
    }
    ++appended_;
    return Status{};
}

uint64_t
sweepFingerprint(const std::vector<std::string> &workloads,
                 uint64_t num_configs, uint64_t payload_bytes,
                 uint32_t scale, uint64_t max_insts)
{
    uint32_t crc = 0;
    for (const std::string &w : workloads) {
        crc = crc32Update(crc, w.data(), w.size());
        crc = crc32Update(crc, "\0", 1);
    }
    uint8_t tail[28];
    putU64(tail + 0, num_configs);
    putU64(tail + 8, payload_bytes);
    putU32(tail + 16, scale);
    putU64(tail + 20, max_insts);
    const uint32_t lo = crc32Update(crc, tail, sizeof(tail));
    // Second, differently-seeded pass widens the hash to 64 bits.
    const uint32_t hi = crc32Update(~lo, tail, sizeof(tail));
    return ((uint64_t)hi << 32) | lo;
}

} // namespace rarpred::driver
