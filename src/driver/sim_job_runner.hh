/**
 * @file
 * Parallel sweep execution: a thread pool that fans a workload ×
 * configuration grid out over std::thread workers, with per-job
 * fault tolerance.
 *
 * Design for determinism (the whole point — see tests/test_driver.cc):
 *  - The job list is fixed before run() starts; workers claim jobs
 *    with an atomic cursor, but every job writes results only into
 *    its own pre-allocated slot, so the merged output is a pure
 *    function of the job list, not of the interleaving.
 *  - Each job gets a private Rng seeded by jobSeed(workload id,
 *    config hash): the seed depends on *what* the job is, never on
 *    which worker runs it or when. A retried attempt derives a fresh
 *    stream from the same identity plus the attempt number.
 *  - Traces come from a TraceCache: one functional execution per
 *    workload, shared immutably by every job that replays it — and
 *    regenerated transparently if a memory budget evicted it.
 *
 * Fault tolerance (see DESIGN.md §6b): a job that throws, returns a
 * non-OK Status, or overruns its deadline is retried up to
 * RunnerConfig::maxAttempts times with exponential backoff, then
 * *quarantined* — recorded in a failure list and skipped — instead
 * of aborting the pool. The deadline is enforced cooperatively by a
 * watchdog wrapped around the job's trace source (every simulation
 * job pumps its trace, so a wedged or pathologically slow job is
 * caught at the next record boundary and unwound by exception — no
 * detached threads, nothing to leak). run() returns non-OK when any
 * job was quarantined or a stop signal interrupted the sweep.
 *
 * Timing observability: the runner accumulates per-job wall-clock
 * and queue-latency counters (common/stats.hh Counter/Histogram) so
 * the speedup of a parallel sweep is measurable; dumpStats() writes
 * them in the repo's "group.stat value" format, together with the
 * fault-tolerance counters (driver.retries, driver.quarantined,
 * driver.cacheEvictions, journal replay/append counts). Timing
 * counters are kept strictly out of the merged simulation stats —
 * they are the only nondeterministic output, and they are clearly
 * labelled.
 */

#ifndef RARPRED_DRIVER_SIM_JOB_RUNNER_HH_
#define RARPRED_DRIVER_SIM_JOB_RUNNER_HH_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "cpu/cpu_config.hh"
#include "driver/sim_snapshot.hh"
#include "driver/trace_cache.hh"
#include "vm/trace.hh"

namespace rarpred::service {
struct CellConfigMsg;
} // namespace rarpred::service

namespace rarpred::driver {

class WorkerPool;
class FleetDispatcher;

/**
 * Deterministic per-job RNG seed derived from (workload id, config
 * hash). Stable across platforms, worker counts and runs.
 */
uint64_t jobSeed(std::string_view workload, uint64_t config_hash);

/**
 * Install SIGINT/SIGTERM handlers that request a *graceful* sweep
 * stop: workers finish their current job (journal entries for
 * completed jobs are already flushed), stop claiming new ones, and
 * run() returns StatusCode::Cancelled so the caller can report how
 * to resume. Idempotent; the benches call it once at startup.
 */
void installStopHandlers();

/** True once a stop signal arrived (or requestStop() was called). */
bool stopRequested();

/** The signal that requested the stop (0 when none). */
int stopSignal();

/** Programmatic equivalent of a stop signal (tests). */
void requestStop();

/** Clear a pending stop request (tests only). */
void clearStopRequest();

/** Pool-wide knobs. */
struct RunnerConfig
{
    /** Worker threads; 0 means hardware_concurrency (at least 1).
     *  With 1 worker, jobs run inline on the calling thread. */
    unsigned workers = 0;
    uint32_t scale = 1;        ///< workload scale for trace generation
    uint64_t maxInsts = ~0ull; ///< trace truncation (tests)

    /** Total attempts per job before quarantine (1 = never retry). */
    unsigned maxAttempts = 3;
    /** Per-attempt deadline in milliseconds; 0 disables the
     *  watchdog. Enforced at trace-record granularity. */
    uint64_t jobDeadlineMs = 0;
    /** Backoff before retry r (1-based) is retryBackoffMs << (r-1);
     *  0 retries immediately. */
    uint64_t retryBackoffMs = 0;

    /** Trace residency budgets forwarded to the TraceCache. */
    uint64_t traceBudgetBytes = 0;  ///< 0 = unlimited
    uint32_t traceBudgetTraces = 0; ///< 0 = unlimited

    /** Directory for per-job epoch snapshots; empty disables them. */
    std::string snapshotDir;
    /** Snapshot every N instructions (needs snapshotDir); 0 = off. */
    uint64_t snapshotEvery = 0;
    /**
     * Try to resume each job from its snapshot on the *first* attempt
     * (--restore after a crash). Independently of this flag, every
     * retry attempt restores from the job's last epoch snapshot when
     * one exists, so a watchdog-killed job does not start over.
     */
    bool restoreSnapshots = false;
    /** Audit hint-table invariants every N instructions; 0 = off. */
    uint64_t auditEvery = 0;

    /**
     * Process-isolated execution (--workers-proc): run each proc-
     * dispatchable job (JobSpec::procConfig != null) in one of N
     * sandboxed rarpred-worker processes instead of on the worker
     * thread itself, so a crash, wedge, or OOM in a cell costs one
     * attempt instead of the whole sweep. 0 disables the pool.
     * Ignored (with in-process execution) when snapshotDir or
     * auditEvery are set — epoch snapshots and online audits are
     * in-process machinery; stats stay byte-identical either way.
     */
    unsigned procWorkers = 0;
    /** Kill a worker process after this much mid-job silence. Also
     *  the fleet dispatcher's lease heartbeat budget. */
    uint64_t workerHeartbeatTimeoutMs = 10000;

    /**
     * Multi-host execution (--workers-remote): dispatch each proc-
     * dispatchable job to a fleet of rarpred-agent processes,
     * "host:port[,host:port...]". Sits above the proc pool in the
     * fallback ladder (fleet -> local worker pool -> in-process):
     * a degraded or unreachable fleet transparently falls down one
     * rung, so the sweep completes with identical stats regardless.
     * Ignored (like procWorkers) when snapshotDir or auditEvery are
     * set.
     */
    std::string remoteAgents;
};

/** One unit of work: replay one workload trace into one simulator. */
struct JobSpec
{
    const Workload *workload = nullptr;
    /** Identifies the configuration point; feeds the job's RNG seed. */
    uint64_t configHash = 0;
    /**
     * The job body. Receives a private replay cursor over the shared
     * trace and a private deterministically-seeded Rng. Runs on a
     * worker thread: it must only touch its own result slot. A non-OK
     * return (or a thrown exception) marks the attempt failed and
     * triggers retry/quarantine.
     */
    std::function<Status(TraceSource &trace, Rng &rng)> run;

    /**
     * Optional process-isolation route: when non-null (and the runner
     * has a healthy worker pool), the attempt is dispatched to a
     * worker process as (workload, scale, maxInsts, *procConfig) and
     * acceptProc commits the returned stats — it must perform the
     * same result-slot/journal writes the in-process body performs,
     * so the two routes are byte-identical. When the pool is
     * degraded/absent the attempt transparently falls back to run.
     * The pointee must outlive the sweep.
     */
    const service::CellConfigMsg *procConfig = nullptr;
    std::function<Status(const CpuStats &stats)> acceptProc;
};

/** One quarantined job, for the stderr failure table. */
struct JobFailure
{
    size_t job = 0;            ///< index into the run's job list
    std::string workload;      ///< workload abbrev
    uint64_t configHash = 0;
    unsigned attempts = 0;     ///< attempts consumed (== maxAttempts)
    Status error;              ///< the final attempt's failure
};

/** The thread pool. One instance drives any number of sweeps. */
class SimJobRunner
{
  public:
    explicit SimJobRunner(const RunnerConfig &config = {});

    /**
     * Construct a runner that draws traces from @p shared_cache
     * instead of a private one. The resident sweep service uses this
     * to keep one warm TraceCache across many per-request runners
     * (each request wants its own deadline/retry knobs, but the
     * memoized workload traces are request-independent). The cache
     * must outlive the runner; its residency budgets are whatever it
     * was built with — the runner's traceBudget* knobs are ignored.
     */
    SimJobRunner(const RunnerConfig &config, TraceCache *shared_cache);

    /**
     * Construct a runner that additionally dispatches proc-
     * dispatchable jobs to @p shared_pool (may be null: plain
     * in-process execution). The pool must outlive the runner and be
     * start()ed by its owner; RunnerConfig::procWorkers is ignored
     * when a shared pool is given. The resident sweep service uses
     * this to keep one supervised pool across many per-request
     * runners.
     */
    SimJobRunner(const RunnerConfig &config, TraceCache *shared_cache,
                 WorkerPool *shared_pool);

    /**
     * Construct a runner that additionally dispatches proc-
     * dispatchable jobs to @p shared_fleet (may be null). The fleet
     * must outlive the runner and be start()ed by its owner;
     * RunnerConfig::remoteAgents is ignored when a shared fleet is
     * given. The resident sweep service uses this to keep one fleet's
     * connections and dedupe state warm across per-request runners.
     */
    SimJobRunner(const RunnerConfig &config, TraceCache *shared_cache,
                 WorkerPool *shared_pool,
                 FleetDispatcher *shared_fleet);

    ~SimJobRunner();

    /**
     * Execute every job, fanning out over workers(); blocks until
     * all jobs finished or were quarantined. Jobs are claimed in
     * list order, so listing a sweep workload-major keeps each
     * trace's consumers together.
     *
     * @return OK when every job completed; Cancelled when a stop
     * signal interrupted the sweep; FailedPrecondition when jobs
     * were quarantined (see quarantined() / dumpFailureTable()).
     */
    Status run(const std::vector<JobSpec> &jobs);

    /** Jobs quarantined by the most recent run(). */
    const std::vector<JobFailure> &quarantined() const
    {
        return quarantined_;
    }

    /** Write a human-readable table of quarantined jobs to @p os. */
    void dumpFailureTable(std::ostream &os) const;

    /** Effective worker count after resolving workers == 0. */
    unsigned workers() const { return workers_; }

    const RunnerConfig &config() const { return config_; }

    /** Shared trace store (also usable directly by tests). */
    TraceCache &traceCache() { return *cache_; }

    /** Worker-process pool (null without --workers-proc). */
    WorkerPool *workerPool() { return pool_; }

    /** Fleet dispatcher (null without --workers-remote). */
    FleetDispatcher *fleet() { return fleet_; }

    /** Snapshot/audit counters (driver.audit.*, driver.snapshot.*). */
    AuditCounters &auditCounters() { return auditCounters_; }

    /** Snapshot file path for a job (snapshotDir must be set). */
    std::string snapshotPathFor(std::string_view workload,
                                uint64_t config_hash) const;

    /** Journal bookkeeping, surfaced in dumpStats() (driver.*). */
    void noteJournalReplay(uint64_t replayed, uint64_t torn);
    void noteJournalAppend();

    /**
     * Write runner counters ("driver.jobsCompleted", retry/
     * quarantine/journal counts, per-job wall and queue-latency
     * totals, trace-cache hit/generation/eviction counts) as
     * "driver.stat value" lines. Wall-clock values are real time
     * and intentionally excluded from merged simulation stats.
     */
    void dumpStats(std::ostream &os) const;

  private:
    void workerLoop(const std::vector<JobSpec> &jobs,
                    uint64_t sweep_start_us);

    /** Run one attempt of @p job; non-OK on failure or deadline. */
    Status runAttempt(const JobSpec &job, size_t index,
                      unsigned attempt);

    static uint64_t nowMicros();

    RunnerConfig config_;
    unsigned workers_;
    std::unique_ptr<TraceCache> ownedCache_; ///< null with a shared cache
    TraceCache *cache_;                      ///< owned or shared
    std::unique_ptr<WorkerPool> ownedPool_;  ///< null with a shared pool
    WorkerPool *pool_ = nullptr;             ///< owned, shared, or null
    std::unique_ptr<FleetDispatcher> ownedFleet_; ///< null when shared
    FleetDispatcher *fleet_ = nullptr;       ///< owned, shared, or null
    std::atomic<size_t> next_{0};

    // Aggregated under statsMu_ when each job completes.
    mutable std::mutex statsMu_;
    std::vector<JobFailure> quarantined_;
    Counter sweepsRun_;
    Counter jobsCompleted_;
    Counter retries_;          ///< attempts beyond each job's first
    Counter jobsQuarantined_;  ///< cumulative across sweeps
    Counter journalReplayed_;  ///< jobs restored from a journal
    Counter journalAppended_;  ///< jobs checkpointed to a journal
    Counter journalTorn_;      ///< torn records dropped on resume
    Counter jobMicrosTotal_;   ///< sum of per-job wall clock
    Counter queueMicrosTotal_; ///< sum of (job start - sweep start)
    Counter sweepMicrosTotal_; ///< wall clock of run() calls
    Counter procFallbacks_;    ///< proc jobs run in-process instead
    Counter fleetFallbacks_;   ///< fleet jobs demoted down the ladder
    uint64_t jobMicrosMax_ = 0;
    Histogram queueLatencyMs_; ///< per-job queue latency, 10ms buckets
    StatGroup statGroup_;
    AuditCounters auditCounters_; ///< atomics; no lock needed
};

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_SIM_JOB_RUNNER_HH_
