/**
 * @file
 * Parallel sweep execution: a thread pool that fans a workload ×
 * configuration grid out over std::thread workers.
 *
 * Design for determinism (the whole point — see tests/test_driver.cc):
 *  - The job list is fixed before run() starts; workers claim jobs
 *    with an atomic cursor, but every job writes results only into
 *    its own pre-allocated slot, so the merged output is a pure
 *    function of the job list, not of the interleaving.
 *  - Each job gets a private Rng seeded by jobSeed(workload id,
 *    config hash): the seed depends on *what* the job is, never on
 *    which worker runs it or when.
 *  - Traces come from a TraceCache: one functional execution per
 *    workload, shared immutably by every job that replays it.
 *
 * Timing observability: the runner accumulates per-job wall-clock
 * and queue-latency counters (common/stats.hh Counter/Histogram) so
 * the speedup of a parallel sweep is measurable; dumpStats() writes
 * them in the repo's "group.stat value" format. Timing counters are
 * kept strictly out of the merged simulation stats — they are the
 * only nondeterministic output, and they are clearly labelled.
 */

#ifndef RARPRED_DRIVER_SIM_JOB_RUNNER_HH_
#define RARPRED_DRIVER_SIM_JOB_RUNNER_HH_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "driver/trace_cache.hh"
#include "vm/trace.hh"

namespace rarpred::driver {

/**
 * Deterministic per-job RNG seed derived from (workload id, config
 * hash). Stable across platforms, worker counts and runs.
 */
uint64_t jobSeed(std::string_view workload, uint64_t config_hash);

/** Pool-wide knobs. */
struct RunnerConfig
{
    /** Worker threads; 0 means hardware_concurrency (at least 1).
     *  With 1 worker, jobs run inline on the calling thread. */
    unsigned workers = 0;
    uint32_t scale = 1;        ///< workload scale for trace generation
    uint64_t maxInsts = ~0ull; ///< trace truncation (tests)
};

/** One unit of work: replay one workload trace into one simulator. */
struct JobSpec
{
    const Workload *workload = nullptr;
    /** Identifies the configuration point; feeds the job's RNG seed. */
    uint64_t configHash = 0;
    /**
     * The job body. Receives a private replay cursor over the shared
     * trace and a private deterministically-seeded Rng. Runs on a
     * worker thread: it must only touch its own result slot.
     */
    std::function<void(TraceSource &trace, Rng &rng)> run;
};

/** The thread pool. One instance drives any number of sweeps. */
class SimJobRunner
{
  public:
    explicit SimJobRunner(const RunnerConfig &config = {});

    /**
     * Execute every job, fanning out over workers(); blocks until
     * all jobs finished. Jobs are claimed in list order, so listing
     * a sweep workload-major keeps each trace's consumers together.
     */
    void run(const std::vector<JobSpec> &jobs);

    /** Effective worker count after resolving workers == 0. */
    unsigned workers() const { return workers_; }

    const RunnerConfig &config() const { return config_; }

    /** Shared trace store (also usable directly by tests). */
    TraceCache &traceCache() { return cache_; }

    /**
     * Write runner counters ("driver.jobsCompleted", per-job wall
     * and queue-latency totals, trace-cache hit/generation counts)
     * as "driver.stat value" lines. Wall-clock values are real time
     * and intentionally excluded from merged simulation stats.
     */
    void dumpStats(std::ostream &os) const;

  private:
    void workerLoop(const std::vector<JobSpec> &jobs,
                    uint64_t sweep_start_us);

    static uint64_t nowMicros();

    RunnerConfig config_;
    unsigned workers_;
    TraceCache cache_;
    std::atomic<size_t> next_{0};

    // Aggregated under statsMu_ when each job completes.
    mutable std::mutex statsMu_;
    Counter sweepsRun_;
    Counter jobsCompleted_;
    Counter jobMicrosTotal_;   ///< sum of per-job wall clock
    Counter queueMicrosTotal_; ///< sum of (job start - sweep start)
    Counter sweepMicrosTotal_; ///< wall clock of run() calls
    uint64_t jobMicrosMax_ = 0;
    Histogram queueLatencyMs_; ///< per-job queue latency, 10ms buckets
    StatGroup statGroup_;
};

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_SIM_JOB_RUNNER_HH_
