/**
 * @file
 * Deterministic reduction of per-job sweep statistics.
 *
 * Every job of a sweep owns one pre-allocated slot, indexed by its
 * position in the job list. Workers write only their own slot, so no
 * locking is needed and — crucially — the merged output depends only
 * on the job list, never on how jobs were interleaved across worker
 * threads. serialize() walks slots in job order and prints values in
 * a canonical format, so the same sweep run with 1, 4 or 8 workers
 * produces byte-identical bytes (asserted by tests/test_driver.cc).
 */

#ifndef RARPRED_DRIVER_STATS_MERGER_HH_
#define RARPRED_DRIVER_STATS_MERGER_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"

namespace rarpred::driver {

/**
 * Escape @p s for embedding in a JSON string literal: quotes and
 * backslashes are backslash-escaped, control characters (including
 * newlines) become \uXXXX. Shared by the merger's machine-readable
 * error emission and the service/bench JSON writers.
 */
std::string jsonEscape(std::string_view s);

/** Collects named per-job scalars; reduces them in job order. */
class StatsMerger
{
  public:
    /** @param num_jobs Number of job slots (fixed for the sweep). */
    explicit StatsMerger(size_t num_jobs);

    /**
     * Name the row of job @p job (e.g. "li/ddt128"). Shown as the
     * line prefix in the serialized table. Call from the owning job
     * or before the sweep starts.
     */
    void setRowKey(size_t job, std::string key);

    /**
     * Record one named counter for job @p job. Thread-safe as long
     * as each job index is written by a single thread at a time (the
     * SimJobRunner guarantees this).
     */
    void recordCount(size_t job, std::string_view stat, uint64_t value);

    /** Record one named real-valued result for job @p job. */
    void record(size_t job, std::string_view stat, double value);

    /**
     * Mark job @p job as failed. Its row serializes as a single
     * "rowkey.error <code>: <message>" line (any stats recorded for
     * it are suppressed — partial results from a failed job are not
     * data), and a "total.errors N" line is appended after the usual
     * totals. Sweeps with no errors serialize byte-identically to
     * before this API existed.
     */
    void setError(size_t job, Status error);

    /** Number of jobs marked failed via setError(). */
    size_t numErrors() const;

    /**
     * Machine-readable form of the error rows: a JSON array, one
     * object per failed job, in job order —
     *   [{"row":"li/cfg0","job":3,"code":"deadline-exceeded",
     *     "message":"..."}]
     * Returns "[]" when no job failed. This is the one error format
     * shared by service replies and finishSweep(): both emit exactly
     * this string, so clients parse one shape everywhere.
     *
     * A non-zero @p max_bytes bounds the report (the service must
     * fit it into one wire frame): entries that would push the
     * output past the budget are dropped *whole* and counted in a
     * trailing {"omitted":N} element, so the bounded report is still
     * valid JSON. The bounded output is a pure function of the rows
     * — byte-identical across replays for the same failures.
     */
    std::string errorsJson(size_t max_bytes = 0) const;

    /**
     * @return the canonical merged table: one "rowkey.stat value"
     * line per recorded entry, in job order, followed by "total.*"
     * sums of every counter name. Deterministic for any worker count.
     */
    std::string serialize() const;

    /** Write serialize() to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Sum of counter @p stat over all jobs (entries recorded with
     * recordCount only; exact 64-bit arithmetic).
     */
    uint64_t sumCount(std::string_view stat) const;

    /**
     * Sum of real-valued stat @p stat over all jobs, accumulated in
     * job order so the rounding is reproducible.
     */
    double sum(std::string_view stat) const;

    size_t numJobs() const { return rows_.size(); }

  private:
    struct Entry
    {
        std::string name;
        bool isCount;
        uint64_t u;
        double d;
    };

    struct Row
    {
        std::string key;
        std::vector<Entry> entries;
        bool failed = false;
        Status error;
    };

    std::vector<Row> rows_;
};

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_STATS_MERGER_HH_
