/**
 * @file
 * Crash-safe checkpoint journal for grid sweeps.
 *
 * A sweep over (workload × config) cells can run for hours; a crash
 * or SIGKILL mid-run must not lose the cells already computed. The
 * journal is an append-only file that records one entry per
 * *completed* job; an interrupted sweep restarted with --resume
 * replays the journal and re-runs only the missing jobs, producing a
 * merged result byte-identical to an uninterrupted run.
 *
 * Format (all little-endian, following the trace-v2 framing
 * conventions — magic + version + CRC-guarded header, CRC-guarded
 * records, see src/vm/trace_file.*):
 *
 *   header (32 bytes):
 *     u32 magic "RARJ"   u32 version (1)
 *     u64 fingerprint    — hash of the sweep grid (workloads, config
 *                          count, payload size, scale, maxInsts); a
 *                          journal never resumes a *different* sweep
 *     u64 numJobs
 *     u32 reserved (0)   u32 crc32 of the preceding 28 bytes
 *
 *   record (variable):
 *     u64 jobIndex       u32 payloadLen
 *     payloadLen bytes of payload (the job's result, trivially
 *                        copyable, written verbatim)
 *     u32 crc32 over jobIndex + payloadLen + payload
 *
 * Durability: every append is flushed before append() returns, so
 * after a SIGKILL the file holds every completed job plus at most one
 * torn tail record. load() validates record CRCs and *truncates* a
 * torn or corrupt tail instead of trusting it; the jobs it covered
 * simply re-run.
 *
 * Thread safety: append() may be called concurrently from worker
 * threads (serialized internally). load()/openResume() must not race
 * with appends to the same file.
 */

#ifndef RARPRED_DRIVER_SWEEP_JOURNAL_HH_
#define RARPRED_DRIVER_SWEEP_JOURNAL_HH_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hh"

namespace rarpred::driver {

/** Append-side handle on a sweep journal. */
class SweepJournal
{
  public:
    /** One replayed record. */
    struct Record
    {
        uint64_t job = 0;
        std::vector<uint8_t> payload;
    };

    /** What load() recovered from an existing journal file. */
    struct Replay
    {
        uint64_t fingerprint = 0;
        uint64_t numJobs = 0;
        std::vector<Record> records; ///< valid records, file order
        uint64_t validBytes = 0;     ///< offset of the first bad byte
        uint64_t tornRecords = 0;    ///< trailing records dropped
    };

    /**
     * Create a fresh journal at @p path (truncating any previous
     * file) for a sweep identified by @p fingerprint over
     * @p num_jobs jobs.
     */
    static Result<std::unique_ptr<SweepJournal>>
    create(const std::string &path, uint64_t fingerprint,
           uint64_t num_jobs);

    /**
     * Read and validate an existing journal. A torn or corrupt tail
     * is reported via Replay::tornRecords and excluded from records;
     * corruption *before* the tail (a record that fails its CRC with
     * valid records after it) is Corruption — a journal is append-
     * only, so mid-file damage means the file cannot be trusted.
     */
    static Result<Replay> load(const std::string &path);

    /**
     * Resume appending to an existing journal: load() it, verify
     * @p fingerprint and @p num_jobs match, truncate the torn tail,
     * and open for append. @p out receives the replay.
     */
    static Result<std::unique_ptr<SweepJournal>>
    openResume(const std::string &path, uint64_t fingerprint,
               uint64_t num_jobs, Replay *out);

    /**
     * Append one completed job's payload and flush. Errors latch:
     * the first failure is returned (and kept in status()); further
     * appends become no-ops. A latched journal error never aborts
     * the sweep — the caller just loses resumability.
     */
    Status append(uint64_t job, const void *payload, size_t len);

    /** First append error observed (OK while healthy). */
    const Status &status() const { return status_; }

    uint64_t recordsAppended() const { return appended_; }

    const std::string &path() const { return path_; }

  private:
    SweepJournal(const std::string &path, std::ofstream out);

    std::string path_;
    std::ofstream out_;
    std::mutex mu_;
    uint64_t appended_ = 0;
    Status status_;
};

/**
 * Grid fingerprint: a stable 64-bit hash of what a sweep *is*. Two
 * sweeps with the same workload list, config count, per-cell payload
 * size and trace parameters may share a journal; anything else is a
 * different sweep and must not resume from it.
 */
uint64_t sweepFingerprint(const std::vector<std::string> &workloads,
                          uint64_t num_configs, uint64_t payload_bytes,
                          uint32_t scale, uint64_t max_insts);

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_SWEEP_JOURNAL_HH_
