#include "driver/sim_snapshot.hh"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/crc32.hh"
#include "common/statesave.hh"
#include "core/cloaking.hh"
#include "cpu/ooo_cpu.hh"
#include "faultinject/driver_faults.hh"

namespace rarpred::driver {

namespace {

thread_local const SimContext *g_simContext = nullptr;

// RARS snapshot header, 40 bytes (DESIGN.md §6c):
//   u32 magic "RARS"   u32 version
//   u64 jobFingerprint u64 consumed
//   u32 windowCrc      u32 stateBytes
//   u32 reserved       u32 crc32 of the first 36 bytes
constexpr uint32_t kSnapshotMagic = 0x53524152; // "RARS" little-endian
constexpr uint32_t kSnapshotVersion = 1;
constexpr size_t kSnapshotHeaderBytes = 40;

void
put32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = (uint8_t)(v >> (8 * i));
}

void
put64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = (uint8_t)(v >> (8 * i));
}

uint32_t
get32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)p[i] << (8 * i);
    return v;
}

uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)p[i] << (8 * i);
    return v;
}

/** Serialize the sink. @return false when the sink type is unknown. */
bool
serializeSink(const TraceSink &sink, StateWriter &w)
{
    if (const auto *cpu = dynamic_cast<const OooCpu *>(&sink)) {
        cpu->saveState(w);
        return true;
    }
    if (const auto *eng = dynamic_cast<const CloakingEngine *>(&sink)) {
        eng->saveState(w);
        return true;
    }
    return false;
}

Status
restoreSink(TraceSink &sink, StateReader &r)
{
    RARPRED_RETURN_IF_ERROR(r.enterSection(kSnapshotStateTag));
    Status st;
    if (auto *cpu = dynamic_cast<OooCpu *>(&sink))
        st = cpu->restoreState(r);
    else if (auto *eng = dynamic_cast<CloakingEngine *>(&sink))
        st = eng->restoreState(r);
    else
        st = Status::invalidArgument("snapshot sink is not serializable");
    RARPRED_RETURN_IF_ERROR(st);
    return r.leaveSection();
}

/** Move a bad snapshot out of the way so later epochs start fresh. */
void
quarantineSnapshot(const std::string &path)
{
    const std::string aside = path + ".rejected";
    std::remove(aside.c_str());
    std::rename(path.c_str(), aside.c_str());
}

/**
 * One audited hint structure: invariant check, CRC-between-audits
 * baseline, and the flush-to-safe repair. Audits only read component
 * state (serialization is const), so they never perturb results.
 */
class AuditedStructure
{
  public:
    using CheckFn = bool (*)(CloakingEngine &, OooCpu *);
    using FlushFn = void (*)(CloakingEngine &, OooCpu *);
    using MutationsFn = uint64_t (*)(CloakingEngine &, OooCpu *);
    using SaveFn = void (*)(CloakingEngine &, OooCpu *, StateWriter &);
    using InjectFn = bool (*)(CloakingEngine &, OooCpu *);

    AuditedStructure(CheckFn check, FlushFn flush, MutationsFn mutations,
                     SaveFn save, InjectFn inject)
        : check_(check), flush_(flush), mutations_(mutations),
          save_(save), inject_(inject)
    {
    }

    bool inject(CloakingEngine &e, OooCpu *c) { return inject_(e, c); }

    /**
     * Run one audit pass; flush on violation. @return true when the
     * structure was found corrupt (counters already updated).
     */
    bool
    audit(CloakingEngine &e, OooCpu *c, AuditCounters *counters)
    {
        bool violated = !check_(e, c);
        const uint64_t muts = mutations_(e, c);
        const uint32_t crc = imageCrc(e, c);
        // A changed table image with no recorded mutation since the
        // last audit is silent corruption the structural checks may
        // not cover (e.g. a flipped value bit).
        if (!violated && baselineValid_ && muts == baseMutations_ &&
            crc != baseCrc_) {
            violated = true;
            if (counters)
                counters->crcMismatches.fetch_add(
                    1, std::memory_order_relaxed);
        }
        if (violated) {
            if (counters) {
                counters->violations.fetch_add(1,
                                               std::memory_order_relaxed);
                counters->flushes.fetch_add(1, std::memory_order_relaxed);
            }
            flush_(e, c);
        }
        // Re-baseline on the (possibly just-flushed) current image.
        baseMutations_ = mutations_(e, c);
        baseCrc_ = imageCrc(e, c);
        baselineValid_ = true;
        return violated;
    }

  private:
    uint32_t
    imageCrc(CloakingEngine &e, OooCpu *c) const
    {
        StateWriter w;
        save_(e, c, w);
        return crc32(w.buffer().data(), w.buffer().size());
    }

    CheckFn check_;
    FlushFn flush_;
    MutationsFn mutations_;
    SaveFn save_;
    InjectFn inject_;
    bool baselineValid_ = false;
    uint64_t baseMutations_ = 0;
    uint32_t baseCrc_ = 0;
};

/** Synonyms live in [1, nextSynonym); derive the exclusive bound. */
uint64_t
synonymBound(CloakingEngine &e)
{
    return e.dpnt().synonymsAllocated() + 1;
}

/**
 * The audited hint structures, in the StateBitflip round-robin order
 * (DDT first — the acceptance scenario injects into the DDT). The SRT
 * entry is present only when the sink is a full timing CPU.
 */
std::vector<AuditedStructure>
makeAuditTargets(bool has_cpu)
{
    std::vector<AuditedStructure> targets;
    targets.emplace_back(
        +[](CloakingEngine &e, OooCpu *) {
            return e.detector().auditOk();
        },
        +[](CloakingEngine &e, OooCpu *) { e.detector().clear(); },
        +[](CloakingEngine &e, OooCpu *) {
            return e.detector().mutations();
        },
        +[](CloakingEngine &e, OooCpu *, StateWriter &w) {
            e.detector().saveState(w);
        },
        +[](CloakingEngine &e, OooCpu *) {
            return e.detector().injectStructuralFault();
        });
    targets.emplace_back(
        +[](CloakingEngine &e, OooCpu *) { return e.dpnt().auditOk(); },
        +[](CloakingEngine &e, OooCpu *c) {
            // The DPNT owns the synonym namespace: flushing it resets
            // the allocator, so every structure keyed by synonyms must
            // flush with it or be left with dangling references.
            e.dpnt().clear();
            e.synonymFile().clear();
            if (c)
                c->srt().clear();
        },
        +[](CloakingEngine &e, OooCpu *) { return e.dpnt().mutations(); },
        +[](CloakingEngine &e, OooCpu *, StateWriter &w) {
            e.dpnt().saveState(w);
        },
        +[](CloakingEngine &e, OooCpu *) {
            return e.dpnt().injectStructuralFault();
        });
    targets.emplace_back(
        +[](CloakingEngine &e, OooCpu *) {
            return e.synonymFile().auditOk(synonymBound(e));
        },
        +[](CloakingEngine &e, OooCpu *) { e.synonymFile().clear(); },
        +[](CloakingEngine &e, OooCpu *) {
            return e.synonymFile().mutations();
        },
        +[](CloakingEngine &e, OooCpu *, StateWriter &w) {
            e.synonymFile().saveState(w);
        },
        +[](CloakingEngine &e, OooCpu *) {
            return e.synonymFile().injectStructuralFault();
        });
    if (has_cpu) {
        targets.emplace_back(
            +[](CloakingEngine &e, OooCpu *c) {
                return c->srt().auditOk(synonymBound(e));
            },
            +[](CloakingEngine &, OooCpu *c) { c->srt().clear(); },
            +[](CloakingEngine &, OooCpu *c) {
                return c->srt().mutations();
            },
            +[](CloakingEngine &, OooCpu *c, StateWriter &w) {
                c->srt().saveState(w);
            },
            +[](CloakingEngine &, OooCpu *c) {
                return c->srt().injectStructuralFault();
            });
    }
    return targets;
}

} // namespace

ScopedSimContext::ScopedSimContext(const SimContext &ctx)
    : prev_(g_simContext)
{
    g_simContext = &ctx;
}

ScopedSimContext::~ScopedSimContext()
{
    g_simContext = prev_;
}

const SimContext *
currentSimContext()
{
    return g_simContext;
}

uint64_t
snapshotFingerprint(std::string_view workload, uint64_t config_hash,
                    uint32_t scale, uint64_t max_insts)
{
    const uint32_t lo0 = crc32(workload.data(), workload.size());
    uint8_t tail[20];
    put64(tail, config_hash);
    put32(tail + 8, scale);
    put64(tail + 12, max_insts);
    const uint32_t lo = crc32Update(lo0, tail, sizeof(tail));
    // Second, differently-seeded pass for the high word so the
    // fingerprint is a full 64 bits.
    uint32_t hi = crc32Update(lo ^ 0x9e3779b9u, tail, sizeof(tail));
    hi = crc32Update(hi, workload.data(), workload.size());
    return ((uint64_t)hi << 32) | lo;
}

void
TraceWindowCrc::push(const DynInst &di)
{
    uint8_t rec[48];
    put64(rec, di.seq);
    put64(rec + 8, di.pc);
    put64(rec + 16, di.nextPc);
    put64(rec + 24, di.eaddr);
    put64(rec + 32, di.value);
    rec[40] = (uint8_t)di.op;
    rec[41] = (uint8_t)di.dst;
    rec[42] = (uint8_t)di.src1;
    rec[43] = (uint8_t)di.src2;
    rec[44] = di.taken ? 1 : 0;
    rec[45] = rec[46] = rec[47] = 0;
    ring_[count_ % kWindow] = crc32(rec, sizeof(rec));
    ++count_;
}

uint32_t
TraceWindowCrc::value() const
{
    const uint64_t n = count_ < kWindow ? count_ : kWindow;
    const uint64_t first = count_ - n;
    uint32_t crc = 0;
    for (uint64_t i = first; i < count_; ++i) {
        uint8_t b[4];
        put32(b, ring_[i % kWindow]);
        crc = crc32Update(crc, b, sizeof(b));
    }
    return crc;
}

Status
writeSnapshot(const std::string &path, uint64_t fingerprint,
              uint64_t consumed, uint32_t window_crc,
              const TraceSink &sink)
{
    // One outer section frame around the whole sink: components may
    // write bare trailing fields between their own sections, so only
    // the wrapping frame makes the blob a validateSectionChain()-
    // walkable chain.
    StateWriter w;
    w.beginSection(kSnapshotStateTag);
    if (!serializeSink(sink, w))
        return Status::invalidArgument(
            "snapshot sink is not an OooCpu or CloakingEngine");
    w.endSection();
    const std::vector<uint8_t> &state = w.buffer();

    if (driverFaultFires(DriverFaultPoint::SnapshotStale, consumed))
        fingerprint ^= 0xdeadbeefcafef00dull;

    std::vector<uint8_t> image(kSnapshotHeaderBytes + state.size());
    uint8_t *h = image.data();
    put32(h, kSnapshotMagic);
    put32(h + 4, kSnapshotVersion);
    put64(h + 8, fingerprint);
    put64(h + 16, consumed);
    put32(h + 24, window_crc);
    put32(h + 28, (uint32_t)state.size());
    put32(h + 32, 0); // reserved
    put32(h + 36, crc32(h, 36));
    std::copy(state.begin(), state.end(),
              image.begin() + kSnapshotHeaderBytes);

    if (driverFaultFires(DriverFaultPoint::SnapshotTorn, consumed)) {
        // Simulated power cut mid-write: half the image lands on disk
        // under the final name, bypassing the durable temp+rename
        // path. A later --restore must reject it by CRC.
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(image.data()),
                  (std::streamsize)(image.size() / 2));
        return Status{};
    }
    return durableWriteFile(path, image.data(), image.size());
}

Result<SnapshotImage>
loadSnapshot(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::notFound("no snapshot at " + path);
    std::vector<uint8_t> raw((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    if (raw.size() < kSnapshotHeaderBytes)
        return Status::corruption("snapshot shorter than its header: " +
                                  path);
    const uint8_t *h = raw.data();
    if (get32(h) != kSnapshotMagic)
        return Status::corruption("bad snapshot magic: " + path);
    if (get32(h + 4) != kSnapshotVersion)
        return Status::corruption("unsupported snapshot version: " + path);
    if (get32(h + 36) != crc32(h, 36))
        return Status::corruption("snapshot header CRC mismatch: " + path);
    const uint32_t stateBytes = get32(h + 28);
    if (raw.size() != kSnapshotHeaderBytes + stateBytes)
        return Status::corruption("snapshot truncated or oversized: " +
                                  path);
    RARPRED_RETURN_IF_ERROR(
        validateSectionChain(h + kSnapshotHeaderBytes, stateBytes));

    SnapshotImage img;
    img.fingerprint = get64(h + 8);
    img.consumed = get64(h + 16);
    img.windowCrc = get32(h + 24);
    img.state.assign(raw.begin() + kSnapshotHeaderBytes, raw.end());
    return img;
}

uint64_t
pumpSimulation(TraceSource &source, TraceSink &sink)
{
    const SimContext *ctx = currentSimContext();

    OooCpu *cpu = dynamic_cast<OooCpu *>(&sink);
    CloakingEngine *engine =
        cpu ? cpu->cloakingEngine() : dynamic_cast<CloakingEngine *>(&sink);

    const bool snapshotting = ctx != nullptr &&
                              !ctx->snapshotPath.empty() &&
                              (cpu != nullptr || engine != nullptr);
    const bool auditing =
        ctx != nullptr && ctx->auditEvery > 0 && engine != nullptr;
    if (!snapshotting && !auditing)
        return drainTraceBatched(source, sink);

    AuditCounters *counters = ctx->counters;
    uint64_t consumed = 0;
    TraceWindowCrc window;

    // ---- Restore, guarded by the divergence oracle. ----------------
    if (snapshotting && ctx->restore) {
        auto loaded = loadSnapshot(ctx->snapshotPath);
        if (loaded.ok() && loaded.value().fingerprint != ctx->fingerprint)
            loaded = Status::failedPrecondition(
                "snapshot fingerprint does not match this job");
        if (loaded.ok()) {
            // The image is fully CRC-validated; now prove the source
            // is the same trace at the same position by replaying the
            // consumed prefix against the stats fingerprint window.
            const SnapshotImage &img = loaded.value();
            TraceWindowCrc replay;
            DynInst di;
            uint64_t skipped = 0;
            while (skipped < img.consumed && source.next(di)) {
                replay.push(di);
                ++skipped;
            }
            if (skipped == img.consumed &&
                replay.value() == img.windowCrc) {
                StateReader r(img.state);
                Status st = restoreSink(sink, r);
                if (!st.ok()) {
                    // State was partially applied: the sink can no
                    // longer produce correct results this attempt.
                    // Quarantine the snapshot so the retry (which the
                    // runner's watchdog provides) runs from scratch.
                    quarantineSnapshot(ctx->snapshotPath);
                    throw std::runtime_error(
                        "snapshot restore failed mid-apply: " +
                        st.message());
                }
                consumed = skipped;
                window = replay;
                if (counters)
                    counters->snapshotsRestored.fetch_add(
                        1, std::memory_order_relaxed);
            } else {
                // Divergence: wrong trace or wrong position. Fall
                // back to a from-scratch run.
                quarantineSnapshot(ctx->snapshotPath);
                if (counters)
                    counters->restoreRejected.fetch_add(
                        1, std::memory_order_relaxed);
                if (!source.rewindToStart())
                    throw std::runtime_error(
                        "divergent snapshot rejected but the trace "
                        "source cannot rewind");
            }
        } else if (loaded.status().code() != StatusCode::NotFound) {
            // Torn, stale, or corrupt snapshot on disk: reject before
            // touching any state, then run from scratch. No rewind
            // needed — nothing was consumed yet.
            quarantineSnapshot(ctx->snapshotPath);
            if (counters)
                counters->restoreRejected.fetch_add(
                    1, std::memory_order_relaxed);
        }
    }

    // ---- Main loop: simulate, audit, snapshot. ---------------------
    std::vector<AuditedStructure> targets =
        engine ? makeAuditTargets(cpu != nullptr)
               : std::vector<AuditedStructure>{};

    DynInst di;
    while (source.next(di)) {
        sink.onInst(di);
        window.push(di);
        ++consumed;

        if (engine &&
            driverFaultFires(DriverFaultPoint::StateBitflip, consumed)) {
            // Round-robin over the hint structures, DDT first: the
            // Nth injection (counted across arm/pump cycles via the
            // shared counters, so re-arming cannot pin the target)
            // corrupts structure (N-1) mod #targets.
            const uint64_t fired =
                counters ? counters->bitflipsInjected.fetch_add(
                               1, std::memory_order_relaxed) +
                               1
                         : driverFaultFireCount(
                               DriverFaultPoint::StateBitflip);
            targets[(fired - 1) % targets.size()].inject(*engine, cpu);
        }

        if (auditing && consumed % ctx->auditEvery == 0) {
            if (counters)
                counters->runs.fetch_add(1, std::memory_order_relaxed);
            for (AuditedStructure &t : targets)
                t.audit(*engine, cpu, counters);
        }

        if (snapshotting && ctx->snapshotEvery > 0 &&
            consumed % ctx->snapshotEvery == 0) {
            const Status st = writeSnapshot(ctx->snapshotPath,
                                            ctx->fingerprint, consumed,
                                            window.value(), sink);
            if (st.ok() && counters)
                counters->snapshotsWritten.fetch_add(
                    1, std::memory_order_relaxed);
            // A failed snapshot write must not fail the simulation:
            // checkpointing is best-effort, correctness never depends
            // on it.
            const uint64_t epoch = consumed / ctx->snapshotEvery;
            if (driverFaultFires(DriverFaultPoint::EpochKill, epoch)) {
                // Simulated crash with the epoch durably on disk.
                std::raise(SIGKILL);
            }
        }
    }
    return consumed;
}

} // namespace rarpred::driver
