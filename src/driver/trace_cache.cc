#include "driver/trace_cache.hh"

namespace rarpred::driver {

std::shared_ptr<const RecordedTrace>
TraceCache::get(const Workload &w, uint32_t scale, uint64_t max_insts)
{
    Slot *slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &entry = slots_[Key{w.abbrev, scale, max_insts}];
        if (!entry)
            entry = std::make_unique<Slot>();
        slot = entry.get();
    }

    bool generated = false;
    std::call_once(slot->once, [&] {
        // Build + execute outside mu_: other keys stay serviceable
        // while this workload generates.
        Program prog = w.build(scale);
        slot->trace = std::make_shared<const RecordedTrace>(
            RecordedTrace::record(prog, max_insts));
        generated = true;
        generations_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!generated)
        hits_.fetch_add(1, std::memory_order_relaxed);
    return slot->trace;
}

TraceCache::CacheStats
TraceCache::stats() const
{
    CacheStats s;
    s.generations = generations_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[key, slot] : slots_) {
        (void)key;
        if (slot->trace) {
            ++s.residentTraces;
            s.residentBytes += slot->trace->memoryBytes();
        }
    }
    return s;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    slots_.clear();
}

} // namespace rarpred::driver

