#include "driver/trace_cache.hh"

#include "common/logging.hh"
#include "faultinject/driver_faults.hh"
#include "vm/trace_file.hh"

namespace rarpred::driver {

namespace {

/**
 * A file trace recovered with resync has gaps where corrupt records
 * were dropped; the survivors must be renumbered into the dense
 * 0,1,2,... sequence RecordedTrace requires (replay regenerates seq
 * from the record index).
 */
class RenumberingSource : public TraceSource
{
  public:
    explicit RenumberingSource(TraceSource &inner) : inner_(inner) {}

    bool
    next(DynInst &di) override
    {
        if (!inner_.next(di))
            return false;
        di.seq = seq_++;
        return true;
    }

  private:
    TraceSource &inner_;
    uint64_t seq_ = 0;
};

} // namespace

std::shared_ptr<TraceCache::Entry>
TraceCache::lookupEntry(const Key &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &entry = slots_[key];
    if (!entry)
        entry = std::make_shared<Entry>();
    return entry;
}

template <typename Fn>
std::shared_ptr<const RecordedTrace>
TraceCache::getOrGenerate(const Key &key, Fn &&generate)
{
    std::shared_ptr<Entry> entry = lookupEntry(key);

    std::unique_lock<std::mutex> el(entry->mu);
    while (entry->generating)
        entry->cv.wait(el);
    if (std::shared_ptr<const RecordedTrace> alive = entry->weak.lock()) {
        // Generated before and still reachable — resident, or evicted
        // but kept alive by an in-flight job. Either way it's a hit;
        // re-admit so the LRU order tracks actual use.
        hits_.fetch_add(1, std::memory_order_relaxed);
        el.unlock();
        admit(entry, alive);
        return alive;
    }

    // Either never generated or evicted with no survivors: (re)run
    // the generator. Other keys stay serviceable meanwhile.
    entry->generating = true;
    const bool regen = entry->everGenerated;
    el.unlock();

    std::shared_ptr<const RecordedTrace> trace = generate();

    el.lock();
    entry->generating = false;
    if (trace) {
        entry->weak = trace;
        entry->everGenerated = true;
        generations_.fetch_add(1, std::memory_order_relaxed);
        if (regen)
            regenerations_.fetch_add(1, std::memory_order_relaxed);
    }
    entry->cv.notify_all();
    el.unlock();

    if (trace)
        admit(entry, trace);
    return trace;
}

void
TraceCache::admit(const std::shared_ptr<Entry> &entry,
                  const std::shared_ptr<const RecordedTrace> &trace)
{
    std::lock_guard<std::mutex> lock(mu_);
    // (Re-)admission always charges the trace's *actual* current
    // size: a trace regenerated after eviction need not match the
    // size of the recording it replaces (e.g. a resync-loaded file
    // trace that dropped corrupt records), and a stale charge would
    // let real residency creep past the byte budget unnoticed.
    if (entry->resident) {
        residentBytes_ -= entry->residentBytes;
    } else {
        ++residentTraces_;
    }
    entry->resident = trace;
    entry->residentBytes = trace->memoryBytes();
    residentBytes_ += entry->residentBytes;
    entry->lastUse = ++lruClock_;

    uint64_t budget_traces = config_.maxResidentTraces;
    if (driverFaultFires(DriverFaultPoint::CachePressure, 0))
        budget_traces = 1; // injected pressure: evict everything else

    // Evict least-recently-used residents (never the one just
    // admitted) until both budgets hold. Doing this before the lock
    // drops means stats() can never observe an over-budget cache.
    while (true) {
        const bool over_traces =
            budget_traces != 0 && residentTraces_ > budget_traces;
        const bool over_bytes = config_.maxResidentBytes != 0 &&
                                residentBytes_ > config_.maxResidentBytes;
        if (peakResidentTraces_ < residentTraces_ &&
            !(over_traces || over_bytes))
            peakResidentTraces_ = residentTraces_;
        if (!(over_traces || over_bytes))
            break;
        Entry *lru = nullptr;
        for (auto &[key, slot] : slots_) {
            (void)key;
            if (!slot->resident || slot.get() == entry.get())
                continue;
            if (lru == nullptr || slot->lastUse < lru->lastUse)
                lru = slot.get();
        }
        if (lru == nullptr)
            break; // only the just-admitted trace remains pinned
        residentBytes_ -= lru->residentBytes;
        lru->residentBytes = 0;
        --residentTraces_;
        lru->resident.reset();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }

    // Post-eviction invariant: residency fits the budget, except that
    // the single just-admitted trace may alone exceed the byte budget
    // (it must stay pinned for the requesting job regardless).
    rarpred_assert(
        (config_.maxResidentBytes == 0 ||
         residentBytes_ <= config_.maxResidentBytes ||
         residentTraces_ == 1) &&
        (budget_traces == 0 || residentTraces_ <= budget_traces ||
         residentTraces_ == 1));
}

std::shared_ptr<const RecordedTrace>
TraceCache::get(const Workload &w, uint32_t scale, uint64_t max_insts)
{
    return getOrGenerate(
        Key{w.abbrev, scale, max_insts}, [&]() {
            Program prog = w.build(scale);
            return std::make_shared<const RecordedTrace>(
                RecordedTrace::record(prog, max_insts));
        });
}

Result<std::shared_ptr<const RecordedTrace>>
TraceCache::getFile(const std::string &path, uint64_t max_insts,
                    bool resync)
{
    Status error;
    std::shared_ptr<const RecordedTrace> trace = getOrGenerate(
        Key{"file:" + path, resync ? 1u : 0u, max_insts}, [&]() {
            TraceFileReader::Options options;
            options.resyncOnCorruption = resync;
            TraceFileReader reader(path, options);
            if (!reader.status().ok()) {
                error = reader.status();
                return std::shared_ptr<const RecordedTrace>();
            }
            RenumberingSource renumbered(reader);
            auto loaded = std::make_shared<const RecordedTrace>(
                RecordedTrace::record(renumbered, max_insts));
            if (!reader.status().ok()) {
                error = reader.status();
                return std::shared_ptr<const RecordedTrace>();
            }
            fileCorruptions_.fetch_add(
                reader.stats().corruptionsDetected.value() +
                    reader.stats().invalidRecords.value(),
                std::memory_order_relaxed);
            fileRecordsSkipped_.fetch_add(
                reader.stats().recordsSkipped.value(),
                std::memory_order_relaxed);
            return loaded;
        });
    if (!trace) {
        if (error.ok())
            error = Status::ioError("trace file load failed: " + path);
        return error;
    }
    return trace;
}

TraceCache::CacheStats
TraceCache::stats() const
{
    CacheStats s;
    s.generations = generations_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.regenerations = regenerations_.load(std::memory_order_relaxed);
    s.fileCorruptions = fileCorruptions_.load(std::memory_order_relaxed);
    s.fileRecordsSkipped =
        fileRecordsSkipped_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    s.peakResidentTraces = peakResidentTraces_;
    s.residentTraces = residentTraces_;
    s.residentBytes = residentBytes_;
    if (s.peakResidentTraces < s.residentTraces)
        s.peakResidentTraces = s.residentTraces;
    return s;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    slots_.clear();
    residentBytes_ = 0;
    residentTraces_ = 0;
}

} // namespace rarpred::driver
