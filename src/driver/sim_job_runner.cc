#include "driver/sim_job_runner.hh"

#include <csignal>
#include <cstdio>

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "driver/fleet_dispatcher.hh"
#include "driver/worker_pool.hh"
#include "faultinject/driver_faults.hh"

namespace rarpred::driver {

uint64_t
jobSeed(std::string_view workload, uint64_t config_hash)
{
    uint64_t h = crc32(workload.data(), workload.size());
    h = (h << 32) ^ (config_hash + 0x9e3779b97f4a7c15ull);
    // splitmix64 finalizer: decorrelates nearby config hashes.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

// --------------------------------------------------- stop signals

namespace {

// sig_atomic_t + lock-free atomic: safe to set from a signal handler.
std::atomic<int> g_stopSignal{0};

extern "C" void
stopSignalHandler(int sig)
{
    g_stopSignal.store(sig, std::memory_order_relaxed);
}

} // namespace

void
installStopHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = stopSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // interrupt blocking calls so the stop is seen
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
stopRequested()
{
    return g_stopSignal.load(std::memory_order_relaxed) != 0;
}

int
stopSignal()
{
    return g_stopSignal.load(std::memory_order_relaxed);
}

void
requestStop()
{
    g_stopSignal.store(-1, std::memory_order_relaxed);
}

void
clearStopRequest()
{
    g_stopSignal.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------ watchdog

namespace {

/** Thrown out of the job body when its deadline passes; caught by
 *  the worker loop and converted to a DeadlineExceeded status. */
struct JobDeadlineExceeded
{
};

/**
 * Cooperative watchdog: wraps the job's replay cursor and checks the
 * wall clock every kCheckInterval records. Every simulation job
 * pumps its trace source, so a runaway job is unwound — via ordinary
 * stack unwinding on its own worker thread — at the next record
 * boundary after the deadline. No thread is ever abandoned.
 */
class WatchdogTraceSource : public TraceSource
{
  public:
    WatchdogTraceSource(TraceSource &inner,
                        std::chrono::steady_clock::time_point deadline)
        : inner_(inner), deadline_(deadline)
    {
    }

    bool
    next(DynInst &di) override
    {
        if (++sinceCheck_ >= kCheckInterval) {
            sinceCheck_ = 0;
            if (std::chrono::steady_clock::now() > deadline_)
                throw JobDeadlineExceeded{};
        }
        return inner_.next(di);
    }

    /**
     * Batched pump path: the deadline check keeps the same cadence as
     * next() — at most kCheckInterval records between wall-clock
     * reads — while forwarding the block decode to the real cursor.
     */
    size_t
    nextBlock(DynInst *out, size_t max) override
    {
        sinceCheck_ += max;
        if (sinceCheck_ >= kCheckInterval) {
            sinceCheck_ = 0;
            if (std::chrono::steady_clock::now() > deadline_)
                throw JobDeadlineExceeded{};
        }
        return inner_.nextBlock(out, max);
    }

    /** Snapshot-restore fallback must reach the real cursor. */
    bool rewindToStart() override { return inner_.rewindToStart(); }

  private:
    static constexpr uint32_t kCheckInterval = 1024;

    TraceSource &inner_;
    std::chrono::steady_clock::time_point deadline_;
    uint32_t sinceCheck_ = 0;
};

} // namespace

// ------------------------------------------------------- runner

SimJobRunner::SimJobRunner(const RunnerConfig &config)
    : SimJobRunner(config, nullptr, nullptr)
{
}

SimJobRunner::SimJobRunner(const RunnerConfig &config,
                           TraceCache *shared_cache)
    : SimJobRunner(config, shared_cache, nullptr)
{
}

SimJobRunner::SimJobRunner(const RunnerConfig &config,
                           TraceCache *shared_cache,
                           WorkerPool *shared_pool)
    : SimJobRunner(config, shared_cache, shared_pool, nullptr)
{
}

SimJobRunner::SimJobRunner(const RunnerConfig &config,
                           TraceCache *shared_cache,
                           WorkerPool *shared_pool,
                           FleetDispatcher *shared_fleet)
    : config_(config),
      workers_(config.workers != 0
                   ? config.workers
                   : std::max(1u, std::thread::hardware_concurrency())),
      ownedCache_(shared_cache != nullptr
                      ? nullptr
                      : std::make_unique<TraceCache>(TraceCacheConfig{
                            config.traceBudgetBytes,
                            config.traceBudgetTraces})),
      cache_(shared_cache != nullptr ? shared_cache : ownedCache_.get()),
      pool_(shared_pool),
      queueLatencyMs_(64, 10),
      statGroup_("driver")
{
    // Process isolation: own a pool when asked for one and none is
    // shared. Epoch snapshots and online audits are in-process
    // machinery a worker process cannot serve, so those runs stay
    // in-process (results are byte-identical either way).
    if (shared_pool == nullptr && config.procWorkers > 0 &&
        config.snapshotDir.empty() && config.auditEvery == 0) {
        WorkerPoolConfig pc;
        pc.workers = config.procWorkers;
        pc.heartbeatTimeoutMs = config.workerHeartbeatTimeoutMs;
        pc.traceBudgetBytes = config.traceBudgetBytes;
        pc.traceBudgetTraces = config.traceBudgetTraces;
        ownedPool_ = std::make_unique<WorkerPool>(pc);
        ownedPool_->start();
        pool_ = ownedPool_.get();
    }
    // Multi-host fleet: own a dispatcher when agents were named and
    // none is shared. The same in-process-machinery restriction as
    // the proc pool applies.
    fleet_ = shared_fleet;
    if (shared_fleet == nullptr && !config.remoteAgents.empty() &&
        config.snapshotDir.empty() && config.auditEvery == 0) {
        FleetConfig fc;
        fc.agents = config.remoteAgents;
        fc.heartbeatTimeoutMs = config.workerHeartbeatTimeoutMs;
        ownedFleet_ = std::make_unique<FleetDispatcher>(fc);
        // A malformed agent list leaves the fleet agent-less, which
        // degrades to local execution; the CLI validates the spec up
        // front so users see the parse error instead.
        ownedFleet_->start();
        fleet_ = ownedFleet_.get();
    }
    statGroup_.registerCounter("sweepsRun", &sweepsRun_);
    statGroup_.registerCounter("jobsCompleted", &jobsCompleted_);
    statGroup_.registerCounter("retries", &retries_);
    statGroup_.registerCounter("quarantined", &jobsQuarantined_);
    statGroup_.registerCounter("journalReplayed", &journalReplayed_);
    statGroup_.registerCounter("journalAppended", &journalAppended_);
    statGroup_.registerCounter("journalTornRecords", &journalTorn_);
    statGroup_.registerCounter("jobMicrosTotal", &jobMicrosTotal_);
    statGroup_.registerCounter("queueMicrosTotal", &queueMicrosTotal_);
    statGroup_.registerCounter("sweepMicrosTotal", &sweepMicrosTotal_);
    statGroup_.registerCounter("worker.fallbackInProcess",
                               &procFallbacks_);
    statGroup_.registerCounter("fleet.fallbackLocal",
                               &fleetFallbacks_);
}

SimJobRunner::~SimJobRunner()
{
    if (ownedFleet_ != nullptr)
        ownedFleet_->stop();
    if (ownedPool_ != nullptr)
        ownedPool_->stop();
}

uint64_t
SimJobRunner::nowMicros()
{
    using namespace std::chrono;
    return (uint64_t)duration_cast<microseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

Status
SimJobRunner::run(const std::vector<JobSpec> &jobs)
{
    next_.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        quarantined_.clear();
    }
    const uint64_t sweep_start = nowMicros();

    const unsigned n =
        (unsigned)std::min<size_t>(workers_, std::max<size_t>(jobs.size(), 1));
    if (n <= 1) {
        // Serial mode: run inline, no thread spawn — gives clean
        // baseline measurements for speedup comparisons.
        workerLoop(jobs, sweep_start);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            pool.emplace_back(
                [this, &jobs, sweep_start] { workerLoop(jobs, sweep_start); });
        for (auto &t : pool)
            t.join();
    }

    std::lock_guard<std::mutex> lock(statsMu_);
    ++sweepsRun_;
    sweepMicrosTotal_ += nowMicros() - sweep_start;

    if (stopRequested())
        return Status::cancelled(
            "sweep interrupted by signal " +
            std::to_string(stopSignal()) +
            "; completed jobs are journaled (if a journal was given)");
    if (!quarantined_.empty())
        return Status::failedPrecondition(
            std::to_string(quarantined_.size()) +
            " job(s) quarantined after " +
            std::to_string(config_.maxAttempts) + " attempt(s)");
    return Status{};
}

std::string
SimJobRunner::snapshotPathFor(std::string_view workload,
                              uint64_t config_hash) const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "-c%016llx.rars",
                  (unsigned long long)config_hash);
    return config_.snapshotDir + "/" + std::string(workload) + buf;
}

Status
SimJobRunner::runAttempt(const JobSpec &job, size_t index,
                         unsigned attempt)
{
    // Injected harness faults (tests and RARPRED_FAULT): see
    // src/faultinject/driver_faults.hh.
    if (driverFaultFires(DriverFaultPoint::JobKill, index)) {
        // End-to-end crash drill: die the way a OOM-killed or
        // segfaulted worker process dies — no unwinding, no flush.
        std::raise(SIGKILL);
    }

    const bool has_deadline = config_.jobDeadlineMs != 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(has_deadline ? config_.jobDeadlineMs
                                               : 1000);

    try {
        if (driverFaultFires(DriverFaultPoint::JobCrash, index))
            throw std::runtime_error("injected job crash");
        if (driverFaultFires(DriverFaultPoint::JobHang, index)) {
            // Simulated wedge: burn wall clock the way a livelocked
            // job would, until the watchdog deadline unwinds us.
            while (std::chrono::steady_clock::now() < deadline &&
                   !stopRequested())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            throw JobDeadlineExceeded{};
        }

        // Fleet route (top of the fallback ladder): lease the cell to
        // a remote agent. A fleet-level Unavailable (degraded, every
        // agent demoted) does not consume the attempt — it falls one
        // rung down to the local worker pool (or in-process); any
        // other failure is a clean agent-side verdict and feeds
        // retry/quarantine like a local failure.
        if (job.procConfig != nullptr && fleet_ != nullptr &&
            !fleet_->degraded()) {
            rarpred_assert(job.acceptProc != nullptr);
            WorkerJobDesc desc;
            desc.token = index;
            desc.workload = job.workload->abbrev;
            desc.scale = config_.scale;
            desc.maxInsts = config_.maxInsts;
            desc.deadlineMs = config_.jobDeadlineMs;
            desc.config = *job.procConfig;
            Result<CpuStats> r = fleet_->runJob(desc);
            if (r.ok())
                return job.acceptProc(*r);
            if (r.status().code() != StatusCode::Unavailable)
                return r.status();
            std::lock_guard<std::mutex> lock(statsMu_);
            ++fleetFallbacks_;
        }

        // Process-isolated route: compute the cell in a sandboxed
        // worker. A pool-level Unavailable (degraded, no binary) does
        // not consume the attempt — it falls through to the identical
        // in-process computation below; any other failure (worker
        // crashed, hung, torn result) feeds retry/quarantine exactly
        // like an in-process failure.
        if (job.procConfig != nullptr && pool_ != nullptr &&
            !pool_->degraded()) {
            rarpred_assert(job.acceptProc != nullptr);
            WorkerJobDesc desc;
            desc.token = index;
            desc.workload = job.workload->abbrev;
            desc.scale = config_.scale;
            desc.maxInsts = config_.maxInsts;
            desc.deadlineMs = config_.jobDeadlineMs;
            desc.config = *job.procConfig;
            Result<CpuStats> r = pool_->runJob(desc);
            if (r.ok())
                return job.acceptProc(*r);
            if (r.status().code() != StatusCode::Unavailable)
                return r.status();
            std::lock_guard<std::mutex> lock(statsMu_);
            ++procFallbacks_;
        }

        std::shared_ptr<const RecordedTrace> trace =
            cache_->get(*job.workload, config_.scale, config_.maxInsts);
        RecordedTraceSource replay(*trace);

        // Retries draw a *fresh* deterministic RNG stream: same job
        // identity, salted by the attempt, so a failure caused by an
        // unlucky randomized path does not repeat verbatim.
        const uint64_t base = jobSeed(job.workload->abbrev, job.configHash);
        Rng rng(attempt == 0
                    ? base
                    : base ^ (0x517cc1b727220a95ull * (attempt + 1)));

        // Snapshot/audit context for this attempt. A retry restores
        // from the job's last epoch snapshot (when one exists) so a
        // crashed or timed-out attempt resumes instead of starting
        // over; the divergence oracle falls back to from-scratch if
        // the snapshot does not match the trace.
        SimContext simCtx;
        simCtx.auditEvery = config_.auditEvery;
        simCtx.fingerprint = snapshotFingerprint(
            job.workload->abbrev, job.configHash, config_.scale,
            config_.maxInsts);
        simCtx.counters = &auditCounters_;
        if (!config_.snapshotDir.empty()) {
            simCtx.snapshotPath =
                snapshotPathFor(job.workload->abbrev, job.configHash);
            simCtx.snapshotEvery = config_.snapshotEvery;
            simCtx.restore = config_.restoreSnapshots || attempt > 0;
        }
        ScopedSimContext scope(simCtx);

        Status st;
        if (has_deadline) {
            WatchdogTraceSource watched(replay, deadline);
            st = job.run(watched, rng);
        } else {
            st = job.run(replay, rng);
        }
        // A completed job's snapshot is dead weight (the journal is
        // the completion record); drop it so a later --restore of the
        // sweep cannot resurrect stale per-job state.
        if (st.ok() && !simCtx.snapshotPath.empty())
            std::remove(simCtx.snapshotPath.c_str());
        return st;
    } catch (const JobDeadlineExceeded &) {
        return Status::deadlineExceeded(
            "job exceeded its " +
            std::to_string(config_.jobDeadlineMs) + "ms deadline");
    } catch (const std::exception &e) {
        return Status::internal(std::string("job threw: ") + e.what());
    } catch (...) {
        return Status::internal("job threw a non-std exception");
    }
}

void
SimJobRunner::workerLoop(const std::vector<JobSpec> &jobs,
                         uint64_t sweep_start_us)
{
    while (true) {
        if (stopRequested())
            return; // graceful stop: finish nothing new
        const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size())
            return;
        const JobSpec &job = jobs[i];
        rarpred_assert(job.workload != nullptr && job.run != nullptr);

        const uint64_t start = nowMicros();
        Status last;
        unsigned attempt = 0;
        for (; attempt < std::max(1u, config_.maxAttempts); ++attempt) {
            if (attempt > 0) {
                {
                    std::lock_guard<std::mutex> lock(statsMu_);
                    ++retries_;
                }
                if (config_.retryBackoffMs != 0 && !stopRequested()) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(
                        config_.retryBackoffMs << (attempt - 1)));
                }
            }
            last = runAttempt(job, i, attempt);
            if (last.ok())
                break;
            if (stopRequested())
                break; // don't retry into a shutdown
        }
        const uint64_t end = nowMicros();

        std::lock_guard<std::mutex> lock(statsMu_);
        if (last.ok()) {
            ++jobsCompleted_;
        } else {
            ++jobsQuarantined_;
            quarantined_.push_back(JobFailure{
                i, job.workload->abbrev, job.configHash,
                std::min(attempt + 1, std::max(1u, config_.maxAttempts)),
                last});
        }
        jobMicrosTotal_ += end - start;
        queueMicrosTotal_ += start - sweep_start_us;
        queueLatencyMs_.sample((start - sweep_start_us) / 1000);
        jobMicrosMax_ = std::max(jobMicrosMax_, end - start);
    }
}

void
SimJobRunner::dumpFailureTable(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    if (quarantined_.empty())
        return;
    os << "quarantined jobs (" << quarantined_.size() << "):\n";
    os << "  job  workload  config            attempts  error\n";
    char buf[64];
    for (const JobFailure &f : quarantined_) {
        std::snprintf(buf, sizeof(buf), "  %-4zu %-9s %-#18llx %-9u ",
                      f.job, f.workload.c_str(),
                      (unsigned long long)f.configHash, f.attempts);
        os << buf << f.error.toString() << "\n";
    }
}

void
SimJobRunner::noteJournalReplay(uint64_t replayed, uint64_t torn)
{
    std::lock_guard<std::mutex> lock(statsMu_);
    journalReplayed_ += replayed;
    journalTorn_ += torn;
}

void
SimJobRunner::noteJournalAppend()
{
    std::lock_guard<std::mutex> lock(statsMu_);
    ++journalAppended_;
}

void
SimJobRunner::dumpStats(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    statGroup_.dump(os);
    os << "driver.workers " << workers_ << "\n";
    os << "driver.jobMicrosMax " << jobMicrosMax_ << "\n";
    os << "driver.queueLatencyMsMean " << queueLatencyMs_.mean() << "\n";
    const TraceCache::CacheStats cs = cache_->stats();
    os << "driver.traceGenerations " << cs.generations << "\n";
    os << "driver.traceCacheHits " << cs.hits << "\n";
    os << "driver.cacheEvictions " << cs.evictions << "\n";
    os << "driver.cacheRegenerations " << cs.regenerations << "\n";
    os << "driver.traceResidentBytes " << cs.residentBytes << "\n";
    os << "driver.traceResidentTraces " << cs.residentTraces << "\n";
    os << "driver.tracePeakResidentTraces " << cs.peakResidentTraces
       << "\n";
    const AuditCounters &a = auditCounters_;
    os << "driver.audit.runs "
       << a.runs.load(std::memory_order_relaxed) << "\n";
    os << "driver.audit.violations "
       << a.violations.load(std::memory_order_relaxed) << "\n";
    os << "driver.audit.flushes "
       << a.flushes.load(std::memory_order_relaxed) << "\n";
    os << "driver.audit.crcMismatches "
       << a.crcMismatches.load(std::memory_order_relaxed) << "\n";
    os << "driver.audit.bitflipsInjected "
       << a.bitflipsInjected.load(std::memory_order_relaxed) << "\n";
    os << "driver.snapshot.written "
       << a.snapshotsWritten.load(std::memory_order_relaxed) << "\n";
    os << "driver.snapshot.restored "
       << a.snapshotsRestored.load(std::memory_order_relaxed) << "\n";
    os << "driver.snapshot.restoreRejected "
       << a.restoreRejected.load(std::memory_order_relaxed) << "\n";
    if (pool_ != nullptr)
        pool_->dumpStats(os);
    if (fleet_ != nullptr)
        fleet_->dumpStats(os);
}

} // namespace rarpred::driver
