#include "driver/sim_job_runner.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace rarpred::driver {

uint64_t
jobSeed(std::string_view workload, uint64_t config_hash)
{
    uint64_t h = crc32(workload.data(), workload.size());
    h = (h << 32) ^ (config_hash + 0x9e3779b97f4a7c15ull);
    // splitmix64 finalizer: decorrelates nearby config hashes.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

SimJobRunner::SimJobRunner(const RunnerConfig &config)
    : config_(config),
      workers_(config.workers != 0
                   ? config.workers
                   : std::max(1u, std::thread::hardware_concurrency())),
      queueLatencyMs_(64, 10),
      statGroup_("driver")
{
    statGroup_.registerCounter("sweepsRun", &sweepsRun_);
    statGroup_.registerCounter("jobsCompleted", &jobsCompleted_);
    statGroup_.registerCounter("jobMicrosTotal", &jobMicrosTotal_);
    statGroup_.registerCounter("queueMicrosTotal", &queueMicrosTotal_);
    statGroup_.registerCounter("sweepMicrosTotal", &sweepMicrosTotal_);
}

uint64_t
SimJobRunner::nowMicros()
{
    using namespace std::chrono;
    return (uint64_t)duration_cast<microseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

void
SimJobRunner::run(const std::vector<JobSpec> &jobs)
{
    next_.store(0, std::memory_order_relaxed);
    const uint64_t sweep_start = nowMicros();

    const unsigned n =
        (unsigned)std::min<size_t>(workers_, std::max<size_t>(jobs.size(), 1));
    if (n <= 1) {
        // Serial mode: run inline, no thread spawn — gives clean
        // baseline measurements for speedup comparisons.
        workerLoop(jobs, sweep_start);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            pool.emplace_back(
                [this, &jobs, sweep_start] { workerLoop(jobs, sweep_start); });
        for (auto &t : pool)
            t.join();
    }

    std::lock_guard<std::mutex> lock(statsMu_);
    ++sweepsRun_;
    sweepMicrosTotal_ += nowMicros() - sweep_start;
}

void
SimJobRunner::workerLoop(const std::vector<JobSpec> &jobs,
                         uint64_t sweep_start_us)
{
    while (true) {
        const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size())
            return;
        const JobSpec &job = jobs[i];
        rarpred_assert(job.workload != nullptr && job.run != nullptr);

        const uint64_t start = nowMicros();
        std::shared_ptr<const RecordedTrace> trace =
            cache_.get(*job.workload, config_.scale, config_.maxInsts);
        RecordedTraceSource replay(*trace);
        Rng rng(jobSeed(job.workload->abbrev, job.configHash));
        job.run(replay, rng);
        const uint64_t end = nowMicros();

        std::lock_guard<std::mutex> lock(statsMu_);
        ++jobsCompleted_;
        jobMicrosTotal_ += end - start;
        queueMicrosTotal_ += start - sweep_start_us;
        queueLatencyMs_.sample((start - sweep_start_us) / 1000);
        jobMicrosMax_ = std::max(jobMicrosMax_, end - start);
    }
}

void
SimJobRunner::dumpStats(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    statGroup_.dump(os);
    os << "driver.workers " << workers_ << "\n";
    os << "driver.jobMicrosMax " << jobMicrosMax_ << "\n";
    os << "driver.queueLatencyMsMean " << queueLatencyMs_.mean() << "\n";
    const TraceCache::CacheStats cs = cache_.stats();
    os << "driver.traceGenerations " << cs.generations << "\n";
    os << "driver.traceCacheHits " << cs.hits << "\n";
    os << "driver.traceResidentBytes " << cs.residentBytes << "\n";
    os << "driver.traceResidentTraces " << cs.residentTraces << "\n";
}

} // namespace rarpred::driver
