/**
 * @file
 * Convenience layer for grid sweeps: run one callable per (workload,
 * configuration) cell over a SimJobRunner and collect results in a
 * deterministic, worker-count-independent layout — with optional
 * crash-safe checkpointing.
 *
 * This is the API the bench/ drivers use. A sweep is embarrassingly
 * parallel: every cell replays a shared immutable trace into its own
 * private simulator instance, so the cell callable must not touch
 * mutable shared state (read-only captures like config tables are
 * fine).
 *
 * Fault tolerance: every cell lands in a Result — a failed job
 * (exception, non-OK status, blown deadline) is retried and, if it
 * keeps failing, quarantined; its cell then holds the error while
 * every other cell holds its value. With SweepIo::journalPath set,
 * each completed cell is checkpointed to a CRC-guarded journal
 * (driver/sweep_journal.hh) and a rerun with SweepIo::resume replays
 * the journal and executes only the missing cells, producing
 * byte-identical results.
 */

#ifndef RARPRED_DRIVER_SWEEP_HH_
#define RARPRED_DRIVER_SWEEP_HH_

#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "driver/sim_job_runner.hh"
#include "driver/stats_merger.hh"
#include "driver/sweep_journal.hh"
#include "workload/workload.hh"

namespace rarpred::service {
struct CellConfigMsg;
} // namespace rarpred::service

namespace rarpred::driver {

/** Pointers to all 18 paper workloads, in Table 5.1 order. */
std::vector<const Workload *> allWorkloadPtrs();

/** Checkpointing knobs for runSweep(). */
struct SweepIo
{
    std::string journalPath; ///< empty = no checkpointing
    bool resume = false;     ///< replay the journal, run missing jobs
};

/**
 * Everything a sweep CLI understands, parsed by parseSweepArgs().
 * Accepted anywhere in argv:
 *   --workers=N | --serial     worker threads (default: hardware,
 *                              overridable via RARPRED_WORKERS)
 *   --workers-proc=N           run jobs in N sandboxed worker
 *                              processes (crash containment); also
 *                              sets --workers=N unless given
 *   --worker-heartbeat-ms=N    kill a silent worker process after N ms
 *   --workers-remote=H:P[,...] lease jobs to rarpred-agent hosts
 *   --scale=N                  workload scale for trace generation
 *   --max-insts=N              truncate traces to N instructions
 *   --retries=N                retry a failed job N times (default 2)
 *   --deadline-ms=N            per-attempt watchdog deadline
 *   --retry-backoff-ms=N       base backoff before retries
 *   --trace-budget=N           max resident traces in the cache
 *   --trace-budget-bytes=N     max resident trace bytes (full
 *                              in-memory footprint incl. headers)
 *   --journal=PATH             checkpoint completed jobs to PATH
 *   --resume[=PATH]            resume from the journal
 *   --help | -h                print usage
 * Anything else starting with "--" is an error; bare words are
 * collected as positionals (e.g. a workload name).
 */
struct SweepOptions
{
    RunnerConfig runner;
    SweepIo io;
    bool help = false;
    std::vector<std::string> positional;
};

/**
 * The one argv parser every sweep binary shares. Returns a non-OK
 * Status — never exits — on an unknown flag, a malformed number, or
 * --resume without a journal path; the caller prints the error plus
 * sweepUsage() and returns a non-zero exit code. Also arms driver
 * fault points from RARPRED_FAULT (see faultinject/driver_faults.hh)
 * so any sweep binary can be crash-tested from the outside.
 */
Result<SweepOptions> parseSweepArgs(int argc, char **argv);

/** Usage text for the shared sweep flags. */
const char *sweepUsage();

/**
 * Standard sweep epilogue for CLI drivers: report @p status, dump
 * the failure table (if any) and runner stats to @p err, and map the
 * outcome to a process exit code — 0 on success, 130 on an
 * interrupting signal (with a hint to --resume), 1 otherwise.
 *
 * With a non-null @p merger that recorded failed rows, one
 * "sweep.errorsJson <array>" line is emitted to @p err using
 * StatsMerger::errorsJson() — the same machine-readable error shape
 * the sweep service puts in its replies, so tooling parses one
 * format whether the sweep ran locally or behind rarpredd.
 */
int finishSweep(SimJobRunner &runner, const Status &status,
                std::ostream &err, const StatsMerger *merger = nullptr);

/**
 * Build a RunnerConfig from bench CLI flags, accepted anywhere in
 * argv and ignored otherwise: --workers=N, --serial (same as
 * --workers=1). The RARPRED_WORKERS environment variable applies
 * when no flag is given; default is hardware concurrency.
 * Prefer parseSweepArgs() in new drivers — it validates.
 */
RunnerConfig runnerConfigFromArgs(int argc, char **argv);

namespace detail {

template <typename T>
struct ResultValue
{
    using type = T;
    static constexpr bool isResult = false;
};

template <typename T>
struct ResultValue<Result<T>>
{
    using type = T;
    static constexpr bool isResult = true;
};

} // namespace detail

/**
 * The outcome of one sweep: a Result per cell plus the overall
 * status. status.ok() guarantees every cell holds a value.
 */
template <typename T>
struct SweepResult
{
    std::vector<Result<T>> cells; ///< [wi * num_configs + ci]
    Status status;

    /** The value of cell @p i; panics if that job failed. */
    const T &operator[](size_t i) const { return cells[i].value(); }

    size_t size() const { return cells.size(); }
};

/**
 * Run @p cell for every (workload, config index) pair, workload-
 * major, fanned out over @p runner's workers.
 *
 * @param cell Callable (const Workload &, size_t config, TraceSource
 *        &, Rng &) -> R or -> Result<R>; invoked concurrently from
 *        worker threads. Returning a non-OK Result (or throwing)
 *        fails the attempt, triggering retry/quarantine.
 * @param io Optional journal checkpoint/resume (requires R to be
 *        trivially copyable).
 * @return SweepResult with cells[wi * num_configs + ci], identical
 *         bytes for any worker count — and across resume.
 */
/**
 * Run the standard CPU-cell sweep: one OooCpu per (workload, config)
 * cell, built from a service::CellConfigMsg grid — the same cell
 * computation the sweep service performs per request. Compared to
 * handing runSweep() a closure, the explicit config grid makes every
 * cell *serializable*, so with --workers-proc the runner dispatches
 * it to a sandboxed worker process; without a pool the cells run
 * in-process with byte-identical results. Journal checkpoint/resume
 * semantics are exactly runSweep's.
 *
 * @p configs must outlive the call (cells point into it).
 */
SweepResult<CpuStats>
runCellSweep(SimJobRunner &runner,
             const std::vector<const Workload *> &workloads,
             const std::vector<service::CellConfigMsg> &configs,
             const SweepIo &io = {});

template <typename Fn>
auto
runSweep(SimJobRunner &runner,
         const std::vector<const Workload *> &workloads,
         size_t num_configs, Fn &&cell, const SweepIo &io = {})
{
    using CellR = std::invoke_result_t<Fn &, const Workload &, size_t,
                                       TraceSource &, Rng &>;
    static_assert(!std::is_void_v<CellR>,
                  "cell must return its per-cell result");
    using R = typename detail::ResultValue<CellR>::type;
    constexpr bool cell_returns_result =
        detail::ResultValue<CellR>::isResult;

    const size_t n = workloads.size() * num_configs;
    SweepResult<R> out{
        std::vector<Result<R>>(
            n, Result<R>(Status::failedPrecondition("job never ran"))),
        Status{}};
    std::vector<char> done(n, 0);

    // ------------------------------------------------ journal setup
    std::unique_ptr<SweepJournal> journal;
    if (!io.journalPath.empty()) {
        if constexpr (!std::is_trivially_copyable_v<R>) {
            out.status = Status::invalidArgument(
                "journaling requires a trivially copyable cell type");
            return out;
        } else {
            std::vector<std::string> names;
            names.reserve(workloads.size());
            for (const Workload *w : workloads)
                names.push_back(w->abbrev);
            const uint64_t fp = sweepFingerprint(
                names, num_configs, sizeof(R), runner.config().scale,
                runner.config().maxInsts);
            if (io.resume) {
                SweepJournal::Replay replay;
                auto opened = SweepJournal::openResume(io.journalPath,
                                                       fp, n, &replay);
                if (!opened.ok()) {
                    out.status = opened.status();
                    return out;
                }
                journal = std::move(*opened);
                uint64_t replayed = 0;
                for (const SweepJournal::Record &rec : replay.records) {
                    if (rec.job >= n ||
                        rec.payload.size() != sizeof(R)) {
                        out.status = Status::corruption(
                            "journal record does not fit this sweep");
                        return out;
                    }
                    R value;
                    std::memcpy(&value, rec.payload.data(), sizeof(R));
                    if (!done[rec.job])
                        ++replayed;
                    out.cells[rec.job] = Result<R>(std::move(value));
                    done[rec.job] = 1;
                }
                runner.noteJournalReplay(replayed, replay.tornRecords);
            } else {
                auto created =
                    SweepJournal::create(io.journalPath, fp, n);
                if (!created.ok()) {
                    out.status = created.status();
                    return out;
                }
                journal = std::move(*created);
            }
        }
    }

    // --------------------------------------------------- job list
    std::vector<JobSpec> jobs;
    std::vector<size_t> job_cell; ///< job-list index -> cell index
    jobs.reserve(n);
    SweepJournal *jptr = journal.get();
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        for (size_t ci = 0; ci < num_configs; ++ci) {
            const size_t idx = wi * num_configs + ci;
            if (done[idx])
                continue;
            const Workload *w = workloads[wi];
            Result<R> *slot = &out.cells[idx];
            job_cell.push_back(idx);
            JobSpec job;
            job.workload = w;
            job.configHash = ci;
            job.run =
                [&cell, &runner, w, ci, slot, idx, jptr](
                    TraceSource &t, Rng &rng) -> Status {
                    CellR r = cell(*w, ci, t, rng);
                    if constexpr (cell_returns_result) {
                        const Status s = r.status();
                        if (s.ok() && jptr != nullptr) {
                            if constexpr (std::is_trivially_copyable_v<
                                              R>) {
                                if (jptr->append(idx, &*r, sizeof(R))
                                        .ok())
                                    runner.noteJournalAppend();
                            }
                        }
                        *slot = std::move(r);
                        return s;
                    } else {
                        if (jptr != nullptr) {
                            if constexpr (std::is_trivially_copyable_v<
                                              R>) {
                                if (jptr->append(idx, &r, sizeof(R))
                                        .ok())
                                    runner.noteJournalAppend();
                            }
                        }
                        *slot = Result<R>(std::move(r));
                        return Status{};
                    }
                };
            jobs.push_back(std::move(job));
        }
    }

    out.status = runner.run(jobs);

    // A job that failed by throwing never reached its slot write;
    // surface the real error (not "job never ran") in the cell.
    for (const JobFailure &f : runner.quarantined())
        out.cells[job_cell[f.job]] = Result<R>(f.error);

    return out;
}

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_SWEEP_HH_
