/**
 * @file
 * Convenience layer for grid sweeps: run one callable per (workload,
 * configuration) cell over a SimJobRunner and collect results in a
 * deterministic, worker-count-independent layout.
 *
 * This is the API the bench/ drivers use. A sweep is embarrassingly
 * parallel: every cell replays a shared immutable trace into its own
 * private simulator instance, so the cell callable must not touch
 * mutable shared state (read-only captures like config tables are
 * fine).
 */

#ifndef RARPRED_DRIVER_SWEEP_HH_
#define RARPRED_DRIVER_SWEEP_HH_

#include <type_traits>
#include <vector>

#include "driver/sim_job_runner.hh"
#include "workload/workload.hh"

namespace rarpred::driver {

/** Pointers to all 18 paper workloads, in Table 5.1 order. */
std::vector<const Workload *> allWorkloadPtrs();

/**
 * Build a RunnerConfig from bench CLI flags, accepted anywhere in
 * argv and ignored otherwise: --workers=N, --serial (same as
 * --workers=1). The RARPRED_WORKERS environment variable applies
 * when no flag is given; default is hardware concurrency.
 */
RunnerConfig runnerConfigFromArgs(int argc, char **argv);

/**
 * Run @p cell for every (workload, config index) pair, workload-
 * major, fanned out over @p runner's workers.
 *
 * @param cell Callable (const Workload &, size_t config, TraceSource
 *        &, Rng &) -> R; invoked concurrently from worker threads.
 * @return results[wi * num_configs + ci], identical bytes for any
 *         worker count.
 */
template <typename Fn>
auto
runSweep(SimJobRunner &runner,
         const std::vector<const Workload *> &workloads,
         size_t num_configs, Fn &&cell)
{
    using R = std::invoke_result_t<Fn &, const Workload &, size_t,
                                   TraceSource &, Rng &>;
    static_assert(!std::is_void_v<R>,
                  "cell must return its per-cell result");
    std::vector<R> results(workloads.size() * num_configs);
    std::vector<JobSpec> jobs;
    jobs.reserve(results.size());
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        for (size_t ci = 0; ci < num_configs; ++ci) {
            const Workload *w = workloads[wi];
            R *slot = &results[wi * num_configs + ci];
            jobs.push_back(
                {w, ci, [&cell, w, ci, slot](TraceSource &t, Rng &rng) {
                     *slot = cell(*w, ci, t, rng);
                 }});
        }
    }
    runner.run(jobs);
    return results;
}

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_SWEEP_HH_
