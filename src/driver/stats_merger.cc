#include "driver/stats_merger.hh"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/logging.hh"

namespace rarpred::driver {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    char buf[8];
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += (char)c;
            }
        }
    }
    return out;
}

StatsMerger::StatsMerger(size_t num_jobs) : rows_(num_jobs) {}

void
StatsMerger::setRowKey(size_t job, std::string key)
{
    rarpred_assert(job < rows_.size());
    rows_[job].key = std::move(key);
}

void
StatsMerger::recordCount(size_t job, std::string_view stat,
                         uint64_t value)
{
    rarpred_assert(job < rows_.size());
    rows_[job].entries.push_back({std::string(stat), true, value, 0.0});
}

void
StatsMerger::record(size_t job, std::string_view stat, double value)
{
    rarpred_assert(job < rows_.size());
    rows_[job].entries.push_back({std::string(stat), false, 0, value});
}

void
StatsMerger::setError(size_t job, Status error)
{
    rarpred_assert(job < rows_.size());
    rarpred_assert(!error.ok());
    rows_[job].failed = true;
    rows_[job].error = std::move(error);
}

size_t
StatsMerger::numErrors() const
{
    size_t n = 0;
    for (const Row &row : rows_)
        if (row.failed)
            ++n;
    return n;
}

std::string
StatsMerger::serialize() const
{
    std::string out;
    char buf[256];
    // Totals keyed by stat name; std::map gives a stable name order.
    std::map<std::string, Entry> totals;
    uint64_t errors = 0;
    for (size_t job = 0; job < rows_.size(); ++job) {
        const Row &row = rows_[job];
        if (row.failed) {
            ++errors;
            out += row.key;
            out += ".error ";
            // The table is line-oriented; an error message with an
            // embedded newline must not be able to forge extra rows.
            for (char c : row.error.toString()) {
                if (c == '\n')
                    out += "\\n";
                else if (c == '\r')
                    out += "\\r";
                else
                    out += c;
            }
            out += "\n";
            continue;
        }
        for (const Entry &e : row.entries) {
            if (e.isCount) {
                std::snprintf(buf, sizeof(buf), "%s.%s %" PRIu64 "\n",
                              row.key.c_str(), e.name.c_str(), e.u);
            } else {
                // %.17g round-trips every double: equal bytes iff
                // equal values.
                std::snprintf(buf, sizeof(buf), "%s.%s %.17g\n",
                              row.key.c_str(), e.name.c_str(), e.d);
            }
            out += buf;
            auto [it, inserted] = totals.try_emplace(e.name, e);
            if (!inserted) {
                rarpred_assert(it->second.isCount == e.isCount);
                // Accumulation happens in job order regardless of
                // which worker ran the job: deterministic rounding.
                it->second.u += e.u;
                it->second.d += e.d;
            }
        }
    }
    for (const auto &[name, e] : totals) {
        if (e.isCount)
            std::snprintf(buf, sizeof(buf), "total.%s %" PRIu64 "\n",
                          name.c_str(), e.u);
        else
            std::snprintf(buf, sizeof(buf), "total.%s %.17g\n",
                          name.c_str(), e.d);
        out += buf;
    }
    if (errors != 0) {
        std::snprintf(buf, sizeof(buf), "total.errors %" PRIu64 "\n",
                      errors);
        out += buf;
    }
    return out;
}

void
StatsMerger::dump(std::ostream &os) const
{
    os << serialize();
}

std::string
StatsMerger::errorsJson(size_t max_bytes) const
{
    // Room kept back for the closing "]" and a worst-case
    // {"omitted":N} trailer, so accepted entries can never push the
    // finished string past max_bytes.
    constexpr size_t kReserve = 40;
    std::string out = "[";
    char buf[32];
    size_t omitted = 0;
    bool first = true;
    for (size_t job = 0; job < rows_.size(); ++job) {
        const Row &row = rows_[job];
        if (!row.failed)
            continue;
        std::snprintf(buf, sizeof(buf), "%zu", job);
        std::string entry = "{\"row\":\"" + jsonEscape(row.key) +
                            "\",\"job\":" + buf + ",\"code\":\"" +
                            jsonEscape(statusCodeName(row.error.code())) +
                            "\",\"message\":\"" +
                            jsonEscape(row.error.message()) + "\"}";
        if (max_bytes != 0 &&
            out.size() + entry.size() + (first ? 0 : 1) + kReserve >
                max_bytes) {
            // Drop the entry whole: cutting one in half would leave
            // unparseable JSON on the wire.
            ++omitted;
            continue;
        }
        if (!first)
            out += ",";
        first = false;
        out += entry;
    }
    if (omitted != 0) {
        std::snprintf(buf, sizeof(buf), "%zu", omitted);
        if (!first)
            out += ",";
        out += std::string("{\"omitted\":") + buf + "}";
    }
    out += "]";
    return out;
}

uint64_t
StatsMerger::sumCount(std::string_view stat) const
{
    uint64_t sum = 0;
    for (const Row &row : rows_)
        for (const Entry &e : row.entries)
            if (e.isCount && e.name == stat)
                sum += e.u;
    return sum;
}

double
StatsMerger::sum(std::string_view stat) const
{
    double sum = 0;
    for (const Row &row : rows_)
        for (const Entry &e : row.entries)
            if (!e.isCount && e.name == stat)
                sum += e.d;
    return sum;
}

} // namespace rarpred::driver
