/**
 * @file
 * rarpred-worker: one sandboxed simulation worker process.
 *
 * Spawned by driver::WorkerPool with a job socketpair on --fd. The
 * worker announces itself with a WorkerHello, then serves JobRequest
 * frames one at a time: resolve the workload, replay its trace into
 * a freshly configured OooCpu, answer with a JobResult. While a job
 * pumps, the worker interleaves WorkerHeartbeat frames so the
 * supervisor can tell a wedged worker from a slow one.
 *
 * The worker is deliberately stateless across jobs except for its
 * private TraceCache (budgets arrive on the argv): everything that
 * determines a result rides in the JobRequest, which is what makes
 * out-of-process results byte-identical to in-process ones.
 *
 * Chaos drills (WorkerFault in the request, --fault=flap on the
 * argv) are orders from the supervisor — this process never arms
 * fault points from its environment, so the parent's RARPRED_FAULT
 * spec is consumed exactly once, parent-side.
 *
 * Exit codes: 0 clean shutdown (supervisor closed the socket),
 * 2 bad usage, 3 injected flap.
 */

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "common/io_util.hh"
#include "common/status.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sim_snapshot.hh"
#include "driver/trace_cache.hh"
#include "service/proto.hh"
#include "vm/recorded_trace.hh"
#include "workload/workload.hh"

namespace {

using namespace rarpred;

uint64_t
nowMs()
{
    using namespace std::chrono;
    return (uint64_t)duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** Job overran the deadline carried in its JobRequest. */
struct WorkerDeadlineExceeded
{
};

/** The supervisor vanished mid-job; nobody wants the result. */
struct SupervisorGone
{
};

Status
sendFrame(int fd, service::FrameType type,
          const std::vector<uint8_t> &payload)
{
    const std::vector<uint8_t> bytes =
        service::encodeFrame(type, payload);
    return sendFull(fd, bytes.data(), bytes.size());
}

/**
 * Replay-cursor decorator that proves forward progress: every
 * kCheckInterval records it reads the wall clock, beacons a
 * WorkerHeartbeat at most every kBeatIntervalMs, and enforces the
 * job's own deadline. Pure pass-through for the record stream, so
 * stats are untouched.
 */
class BeaconTraceSource : public TraceSource
{
  public:
    BeaconTraceSource(TraceSource &inner, int fd, uint64_t token,
                      uint64_t deadline_at_ms)
        : inner_(inner), fd_(fd), token_(token),
          deadlineAtMs_(deadline_at_ms), lastBeatMs_(nowMs())
    {
    }

    bool
    next(DynInst &di) override
    {
        tick(1);
        return inner_.next(di);
    }

    size_t
    nextBlock(DynInst *out, size_t max) override
    {
        tick(max);
        return inner_.nextBlock(out, max);
    }

    bool rewindToStart() override { return inner_.rewindToStart(); }

  private:
    void
    tick(size_t records)
    {
        sinceCheck_ += records;
        if (sinceCheck_ < kCheckInterval)
            return;
        sinceCheck_ = 0;
        const uint64_t now = nowMs();
        if (deadlineAtMs_ != 0 && now > deadlineAtMs_)
            throw WorkerDeadlineExceeded{};
        if (now - lastBeatMs_ < kBeatIntervalMs)
            return;
        lastBeatMs_ = now;
        service::WorkerHeartbeatMsg beat;
        beat.token = token_;
        beat.seq = ++seq_;
        if (!sendFrame(fd_, service::FrameType::WorkerHeartbeat,
                       beat.encode())
                 .ok())
            throw SupervisorGone{};
    }

    static constexpr uint64_t kCheckInterval = 4096;
    static constexpr uint64_t kBeatIntervalMs = 150;

    TraceSource &inner_;
    const int fd_;
    const uint64_t token_;
    const uint64_t deadlineAtMs_; ///< absolute; 0 = no deadline
    uint64_t lastBeatMs_;
    uint64_t sinceCheck_ = 0;
    uint64_t seq_ = 0;
};

/** Compute one cell; failures become the result's error fields. */
service::JobResultMsg
runOne(const service::JobRequestMsg &req, driver::TraceCache &cache,
       int fd)
{
    service::JobResultMsg res;
    res.token = req.token;
    try {
        const Result<const Workload *> wl =
            lookupWorkload(req.workload);
        if (!wl.ok()) {
            res.errorCode = (uint8_t)wl.status().code();
            res.errorMsg = wl.status().message();
            return res;
        }
        const std::shared_ptr<const RecordedTrace> trace =
            cache.get(**wl, req.scale, req.maxInsts);
        RecordedTraceSource replay(*trace);
        BeaconTraceSource beacon(
            replay, fd, req.token,
            req.deadlineMs != 0 ? nowMs() + req.deadlineMs : 0);
        CpuConfig core;
        core.memDep = req.config.memDepPolicy();
        OooCpu cpu(core, req.config.toTimingConfig());
        driver::pumpSimulation(beacon, cpu);
        res.stats = cpu.stats();
    } catch (const WorkerDeadlineExceeded &) {
        res.errorCode = (uint8_t)StatusCode::DeadlineExceeded;
        res.errorMsg = "job exceeded its " +
                       std::to_string(req.deadlineMs) + "ms deadline";
    } catch (const std::exception &e) {
        res.errorCode = (uint8_t)StatusCode::Internal;
        res.errorMsg = std::string("job threw: ") + e.what();
    }
    return res;
}

bool
parseU64Arg(const char *arg, const char *prefix, uint64_t *out)
{
    const size_t n = std::strlen(prefix);
    if (std::strncmp(arg, prefix, n) != 0)
        return false;
    char *end = nullptr;
    *out = std::strtoull(arg + n, &end, 10);
    return end != nullptr && *end == '\0' && end != arg + n;
}

} // namespace

int
main(int argc, char **argv)
{
    int fd = -1;
    bool flap = false;
    uint64_t budget_bytes = 0;
    uint64_t budget_traces = 0;
    for (int i = 1; i < argc; ++i) {
        uint64_t v = 0;
        if (parseU64Arg(argv[i], "--fd=", &v))
            fd = (int)v;
        else if (parseU64Arg(argv[i], "--trace-budget-bytes=", &v))
            budget_bytes = v;
        else if (parseU64Arg(argv[i], "--trace-budget=", &v))
            budget_traces = v;
        else if (std::strcmp(argv[i], "--fault=flap") == 0)
            flap = true;
        else {
            std::fprintf(stderr,
                         "usage: rarpred-worker --fd=N "
                         "[--trace-budget-bytes=N] [--trace-budget=N]\n"
                         "(spawned by the worker pool; not a user "
                         "command)\n");
            return 2;
        }
    }
    if (fd < 0) {
        std::fprintf(stderr, "rarpred-worker: missing --fd=N\n");
        return 2;
    }
    if (flap)
        return 3; // chaos drill: die before the hello

    // The supervisor may vanish at any moment; a write to the dead
    // socket must be an error, not a SIGPIPE kill.
    ::signal(SIGPIPE, SIG_IGN);

    driver::TraceCache cache(
        driver::TraceCacheConfig{budget_bytes, (uint32_t)budget_traces});

    service::WorkerHelloMsg hello;
    hello.pid = (uint64_t)::getpid();
    if (!sendFrame(fd, service::FrameType::WorkerHello, hello.encode())
             .ok())
        return 1;

    service::FrameDecoder decoder;
    uint8_t buf[4096];
    for (;;) {
        service::Frame frame;
        bool have = false;
        if (!decoder.next(&frame, &have).ok()) {
            std::fprintf(stderr,
                         "rarpred-worker: request stream corrupt: %s\n",
                         decoder.status().toString().c_str());
            return 1;
        }
        if (!have) {
            const Result<size_t> got = recvChunk(fd, buf, sizeof(buf));
            if (!got.ok())
                return 1;
            if (*got == 0)
                return 0; // supervisor closed the socket: clean exit
            (void)decoder.feed(buf, *got);
            continue;
        }
        if (frame.type != service::FrameType::JobRequest) {
            std::fprintf(stderr,
                         "rarpred-worker: unexpected frame '%s'\n",
                         service::frameTypeName(frame.type));
            return 1;
        }
        const Result<service::JobRequestMsg> req =
            service::JobRequestMsg::decode(frame.payload);
        if (!req.ok()) {
            std::fprintf(stderr, "rarpred-worker: bad request: %s\n",
                         req.status().toString().c_str());
            return 1;
        }

        // Injected faults, ordered by the supervisor.
        const auto fault = (service::WorkerFault)req->fault;
        if (fault == service::WorkerFault::Crash) {
            ::raise(SIGKILL); // no unwinding, no flush — a real crash
        }
        if (fault == service::WorkerFault::Hang) {
            // Wedge silently: no heartbeats, no result. The
            // supervisor must SIGKILL us at its heartbeat deadline.
            for (;;)
                ::pause();
        }

        // First beacon up front: the supervisor's silence clock must
        // not run down while this job generates a cold trace.
        service::WorkerHeartbeatMsg beat;
        beat.token = req->token;
        if (!sendFrame(fd, service::FrameType::WorkerHeartbeat,
                       beat.encode())
                 .ok())
            return 0;

        service::JobResultMsg res;
        try {
            res = runOne(*req, cache, fd);
        } catch (const SupervisorGone &) {
            return 0;
        }
        std::vector<uint8_t> reply = service::encodeFrame(
            service::FrameType::JobResult, res.encode());
        if (fault == service::WorkerFault::TornResult) {
            // Flip one payload byte *after* the CRC was computed:
            // the supervisor must reject the frame, never merge it.
            reply[9 + (reply.size() - 13) / 2] ^= 0x20;
        }
        if (fault == service::WorkerFault::DupResult) {
            // Send the (valid) result twice. The supervisor consumes
            // the first; the duplicate sits in the socket buffer and
            // arrives ahead of the *next* job's result, where it must
            // be dropped as stale — never matched to that cell.
            if (!sendFull(fd, reply.data(), reply.size()).ok())
                return 0;
        }
        if (!sendFull(fd, reply.data(), reply.size()).ok())
            return 0;
    }
}
