#include "driver/worker_pool.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/io_util.hh"
#include "common/logging.hh"
#include "faultinject/driver_faults.hh"

namespace rarpred::driver {

namespace {

uint64_t
nowMs()
{
    using namespace std::chrono;
    return (uint64_t)duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

// ------------------------------------------------ SIGCHLD plumbing
//
// The handler must not reap (waitpid(-1) would steal children the
// host process manages itself — rarpredd under test forks daemons,
// gtest forks helpers). It only pokes each live pool's self-pipe so
// idle-worker housekeeping runs promptly; the authoritative death
// signals are per-pid waitpid and EOF on the job socket. The previous
// SIGCHLD disposition is saved and chained, and restored when the
// last pool stops, so pools compose with any host signal setup.

constexpr int kMaxPools = 8;
std::atomic<int> g_chldWakeFds[kMaxPools] = {};
std::mutex g_chldMu;
struct sigaction g_prevChld = {};
bool g_chldInstalled = false;
int g_chldRegistered = 0;

extern "C" void
workerPoolSigchld(int sig, siginfo_t *info, void *ctx)
{
    const int saved_errno = errno;
    for (std::atomic<int> &afd : g_chldWakeFds) {
        const int fd = afd.load(std::memory_order_relaxed);
        if (fd >= 0) {
            const char byte = 1;
            (void)!::write(fd, &byte, 1);
        }
    }
    if (g_prevChld.sa_flags & SA_SIGINFO) {
        if (g_prevChld.sa_sigaction != nullptr)
            g_prevChld.sa_sigaction(sig, info, ctx);
    } else if (g_prevChld.sa_handler != SIG_DFL &&
               g_prevChld.sa_handler != SIG_IGN &&
               g_prevChld.sa_handler != nullptr) {
        g_prevChld.sa_handler(sig);
    }
    errno = saved_errno;
}

bool
registerChldWakeFd(int fd)
{
    std::lock_guard<std::mutex> lock(g_chldMu);
    if (!g_chldInstalled) {
        for (std::atomic<int> &afd : g_chldWakeFds)
            afd.store(-1, std::memory_order_relaxed);
        struct sigaction sa = {};
        sa.sa_sigaction = workerPoolSigchld;
        sigemptyset(&sa.sa_mask);
        // SA_RESTART: the daemon's accept/recv loops must not see
        // spurious EINTRs from routine worker churn. SA_NOCLDSTOP:
        // only deaths matter, not job-control stops.
        sa.sa_flags = SA_SIGINFO | SA_RESTART | SA_NOCLDSTOP;
        if (::sigaction(SIGCHLD, &sa, &g_prevChld) != 0)
            return false;
        g_chldInstalled = true;
    }
    for (std::atomic<int> &afd : g_chldWakeFds) {
        int expected = -1;
        if (afd.compare_exchange_strong(expected, fd)) {
            ++g_chldRegistered;
            return true;
        }
    }
    return false;
}

void
unregisterChldWakeFd(int fd)
{
    std::lock_guard<std::mutex> lock(g_chldMu);
    for (std::atomic<int> &afd : g_chldWakeFds) {
        int expected = fd;
        if (afd.compare_exchange_strong(expected, -1)) {
            if (--g_chldRegistered == 0 && g_chldInstalled) {
                ::sigaction(SIGCHLD, &g_prevChld, nullptr);
                g_chldInstalled = false;
            }
            return;
        }
    }
}

} // namespace

// ----------------------------------------------------- construction

WorkerPool::WorkerPool(const WorkerPoolConfig &config) : config_(config)
{
    slots_.resize(std::max(1u, config_.workers));
}

WorkerPool::~WorkerPool()
{
    stop();
}

std::string
WorkerPool::resolveWorkerBinary(const std::string &hint)
{
    const auto executable = [](const std::string &p) {
        return !p.empty() && ::access(p.c_str(), X_OK) == 0;
    };
    if (!hint.empty())
        return executable(hint) ? hint : std::string{};
    if (const char *env = std::getenv("RARPRED_WORKER_BIN"))
        return executable(env) ? std::string(env) : std::string{};
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    std::string exe(buf);
    const size_t slash = exe.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : exe.substr(0, slash);
    // Next to the host binary first, then the build tree's driver/
    // output directory (benches live in bench/, the daemon in
    // service/, tests in tests/ — all siblings of driver/).
    const std::string candidates[] = {
        dir + "/rarpred-worker",
        dir + "/../driver/rarpred-worker",
    };
    for (const std::string &c : candidates)
        if (executable(c))
            return c;
    return {};
}

bool
WorkerPool::probeChildReapCapability()
{
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
        return false;
    for (const int fd : pipe_fds)
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
    if (!registerChldWakeFd(pipe_fds[1])) {
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
        return false;
    }
    bool ok = false;
    const pid_t pid = ::fork();
    if (pid == 0)
        ::_exit(0);
    if (pid > 0) {
        // The guarantee under probe: the child's death wakes the
        // self-pipe within a bounded wait, *and* the by-pid reap then
        // succeeds. Kernels (or exotic pid-namespace setups) that
        // break either leg would turn the chaos battery's timing
        // assumptions into flakes.
        const uint64_t deadline = nowMs() + 2000;
        for (;;) {
            const uint64_t now = nowMs();
            if (now >= deadline)
                break;
            pollfd pfd{pipe_fds[0], POLLIN, 0};
            const int rc = ::poll(&pfd, 1, (int)(deadline - now));
            if (rc < 0 && errno == EINTR)
                continue;
            if (rc <= 0)
                break;
            char byte;
            if (::read(pipe_fds[0], &byte, 1) == 1) {
                ok = true;
                break;
            }
        }
        int status = 0;
        pid_t r;
        do {
            r = ::waitpid(pid, &status, 0);
        } while (r < 0 && errno == EINTR);
        ok = ok && r == pid;
    }
    unregisterChldWakeFd(pipe_fds[1]);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return ok;
}

Status
WorkerPool::start()
{
    if (started_)
        return Status{};
    started_ = true;
    workerBin_ = resolveWorkerBinary(config_.workerBin);
    if (workerBin_.empty()) {
        // No binary, no isolation — but the sweep must still run.
        // Degrade so every runJob() reports Unavailable and callers
        // fall back to in-process execution.
        degraded_.store(true, std::memory_order_relaxed);
        return Status{};
    }
    if (::pipe(chldPipe_) == 0) {
        for (const int fd : chldPipe_)
            ::fcntl(fd, F_SETFL, O_NONBLOCK);
        if (!registerChldWakeFd(chldPipe_[1])) {
            // Too many pools for the handler registry: idle-death
            // housekeeping falls back to checkout-time WNOHANG
            // polling, which is correct, just less prompt.
            ::close(chldPipe_[0]);
            ::close(chldPipe_[1]);
            chldPipe_[0] = chldPipe_[1] = -1;
        }
    } else {
        chldPipe_[0] = chldPipe_[1] = -1;
    }
    return Status{};
}

void
WorkerPool::stop()
{
    if (stopped_.exchange(true))
        return;
    std::unique_lock<std::mutex> lock(mu_);
    slotCv_.notify_all();
    // In-flight jobs observe worker EOF or finish normally; wait for
    // their threads to check the slots back in before reaping.
    slotCv_.wait(lock, [this] {
        for (const Slot &s : slots_)
            if (s.busy)
                return false;
        return true;
    });
    for (Slot &s : slots_) {
        if (s.pid > 0) {
            ::kill(s.pid, SIGKILL);
            int status = 0;
            while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
            }
            ++counters_.reaped;
            s.pid = -1;
        }
        if (s.fd >= 0) {
            ::close(s.fd);
            s.fd = -1;
        }
    }
    lock.unlock();
    if (chldPipe_[1] >= 0)
        unregisterChldWakeFd(chldPipe_[1]);
    for (int &fd : chldPipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

// --------------------------------------------------- slot lifecycle

WorkerPool::Slot *
WorkerPool::checkout()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (stopped_.load(std::memory_order_relaxed) ||
            degraded_.load(std::memory_order_relaxed))
            return nullptr;
        for (Slot &s : slots_) {
            if (!s.busy) {
                s.busy = true;
                return &s;
            }
        }
        slotCv_.wait(lock);
    }
}

void
WorkerPool::checkin(Slot *slot)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        slot->busy = false;
    }
    slotCv_.notify_all();
}

void
WorkerPool::sweepDeadWorkers()
{
    if (chldPipe_[0] >= 0) {
        char drain[64];
        while (::read(chldPipe_[0], drain, sizeof(drain)) > 0) {
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot &s : slots_) {
        if (s.busy || s.pid <= 0)
            continue;
        int status = 0;
        const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
        if (r != s.pid)
            continue; // still alive (or EINTR: next sweep gets it)
        ++counters_.reaped;
        s.pid = -1;
        if (s.fd >= 0) {
            ::close(s.fd);
            s.fd = -1;
        }
        noteRestartLocked();
    }
}

void
WorkerPool::noteRestartLocked()
{
    const uint64_t now = nowMs();
    restartTimesMs_.push_back(now);
    while (!restartTimesMs_.empty() &&
           now - restartTimesMs_.front() > config_.flapWindowMs)
        restartTimesMs_.pop_front();
    if ((unsigned)restartTimesMs_.size() > config_.flapRestartBudget) {
        // Flapping: workers keep dying faster than the window allows.
        // Degrade for good — an oscillating pool would burn every
        // job's retry budget on doomed dispatches.
        degraded_.store(true, std::memory_order_relaxed);
        slotCv_.notify_all();
    }
}

void
WorkerPool::retireSlot(Slot *slot, bool kill)
{
    if (slot->pid > 0) {
        if (kill)
            ::kill(slot->pid, SIGKILL);
        int status = 0;
        while (::waitpid(slot->pid, &status, 0) < 0 && errno == EINTR) {
        }
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.reaped;
        noteRestartLocked();
    }
    if (slot->fd >= 0) {
        ::close(slot->fd);
        slot->fd = -1;
    }
    slot->pid = -1;
}

Status
WorkerPool::ensureAlive(Slot *slot)
{
    if (slot->pid > 0) {
        // The worker may have died idle (OOM killer, operator kill).
        int status = 0;
        const pid_t r = ::waitpid(slot->pid, &status, WNOHANG);
        if (r != slot->pid)
            return Status{}; // alive
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.reaped;
        noteRestartLocked();
        if (slot->fd >= 0) {
            ::close(slot->fd);
            slot->fd = -1;
        }
        slot->pid = -1;
    }

    for (;;) {
        if (stopped_.load(std::memory_order_relaxed) ||
            degraded_.load(std::memory_order_relaxed))
            return Status::unavailable("worker pool degraded");

        uint64_t backoff_ms = 0;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (consecutiveSpawnFailures_ > 0)
                backoff_ms = std::min(
                    config_.spawnBackoffCapMs,
                    config_.spawnBackoffMs
                        << (consecutiveSpawnFailures_ - 1));
        }
        if (backoff_ms != 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));

        const Status spawned = spawnWorker(slot);
        std::lock_guard<std::mutex> lock(mu_);
        if (spawned.ok()) {
            consecutiveSpawnFailures_ = 0;
            ++counters_.spawned;
            if (slot->generation > 1)
                ++counters_.restarts;
            return Status{};
        }
        ++counters_.spawnFailures;
        if (++consecutiveSpawnFailures_ >=
            config_.maxConsecutiveSpawnFailures) {
            degraded_.store(true, std::memory_order_relaxed);
            slotCv_.notify_all();
            return Status::unavailable(
                "worker pool degraded after " +
                std::to_string(consecutiveSpawnFailures_) +
                " consecutive spawn failures: " + spawned.message());
        }
    }
}

Status
WorkerPool::spawnWorker(Slot *slot)
{
    rarpred_assert(slot->pid <= 0);
    if (workerBin_.empty())
        return Status::unavailable("no worker binary");

    // Chaos drill: a flapping worker exits before its hello. The
    // order travels on the argv because the worker's own fault table
    // is unarmed — injection is owned by the supervisor.
    const bool flap =
        driverFaultFires(DriverFaultPoint::WorkerFlap, spawnSeq_++);

    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        return Status::ioError(std::string("socketpair: ") +
                               std::strerror(errno));

    // argv is fully materialized before fork(): the child of a
    // multithreaded parent may only make async-signal-safe calls.
    std::vector<std::string> args = {workerBin_, "--fd=3"};
    if (config_.traceBudgetBytes != 0)
        args.push_back("--trace-budget-bytes=" +
                       std::to_string(config_.traceBudgetBytes));
    if (config_.traceBudgetTraces != 0)
        args.push_back("--trace-budget=" +
                       std::to_string(config_.traceBudgetTraces));
    if (flap)
        args.push_back("--fault=flap");
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        return Status::ioError(std::string("fork: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
        // Child: dup2/execv/_exit only (async-signal-safe).
        ::close(sv[0]);
        if (sv[1] != 3) {
            ::dup2(sv[1], 3);
            ::close(sv[1]);
        }
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    ::close(sv[1]);

    // Handshake: the worker announces itself before the slot goes
    // live. A flapping or exec-failed child shows up here as EOF.
    slot->pid = pid;
    slot->fd = sv[0];
    slot->decoder = service::FrameDecoder{};
    const uint64_t deadline = nowMs() + config_.helloTimeoutMs;
    for (;;) {
        const uint64_t now = nowMs();
        if (now >= deadline) {
            retireSlot(slot, true);
            return Status::deadlineExceeded(
                "worker sent no hello within " +
                std::to_string(config_.helloTimeoutMs) + "ms");
        }
        pollfd pfd{slot->fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, (int)(deadline - now));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            retireSlot(slot, true);
            return Status::ioError(std::string("poll: ") +
                                   std::strerror(errno));
        }
        if (rc == 0)
            continue;
        uint8_t buf[512];
        auto got = recvChunk(slot->fd, buf, sizeof(buf));
        if (!got.ok() || *got == 0) {
            retireSlot(slot, true);
            return Status::internal("worker exited before hello");
        }
        (void)slot->decoder.feed(buf, *got);
        service::Frame frame;
        bool have = false;
        const Status ds = slot->decoder.next(&frame, &have);
        if (!ds.ok()) {
            retireSlot(slot, true);
            return ds;
        }
        if (!have)
            continue;
        if (frame.type != service::FrameType::WorkerHello) {
            retireSlot(slot, true);
            return Status::corruption(
                std::string("expected worker-hello, got '") +
                service::frameTypeName(frame.type) + "'");
        }
        auto hello = service::WorkerHelloMsg::decode(frame.payload);
        if (!hello.ok()) {
            retireSlot(slot, true);
            return hello.status();
        }
        if (hello->protoVersion != service::kWorkerProtoVersion) {
            retireSlot(slot, true);
            return Status::failedPrecondition(
                "worker speaks protocol v" +
                std::to_string(hello->protoVersion) + ", expected v" +
                std::to_string(service::kWorkerProtoVersion));
        }
        ++slot->generation;
        return Status{};
    }
}

// ------------------------------------------------------- job runs

Result<CpuStats>
WorkerPool::runJob(const WorkerJobDesc &job)
{
    if (!started_ || stopped_.load(std::memory_order_relaxed))
        return Status::unavailable("worker pool is not running");
    sweepDeadWorkers();
    Slot *slot = checkout();
    if (slot == nullptr)
        return Status::unavailable("worker pool degraded");
    const Status alive = ensureAlive(slot);
    if (!alive.ok()) {
        checkin(slot);
        return alive; // Unavailable: caller falls back in-process
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.jobsDispatched;
    }
    CpuStats stats{};
    const Status ran = dispatch(slot, job, &stats);
    checkin(slot);
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (ran.ok())
            ++counters_.jobsCompleted;
        else
            ++counters_.jobsFailed;
    }
    if (!ran.ok())
        return ran;
    return stats;
}

Status
WorkerPool::dispatch(Slot *slot, const WorkerJobDesc &job,
                     CpuStats *out)
{
    service::JobRequestMsg req;
    req.token = job.token;
    req.workload = job.workload;
    req.scale = job.scale;
    req.maxInsts = job.maxInsts;
    req.deadlineMs = job.deadlineMs;
    req.config = job.config;
    // Chaos orders ride in the request; the parent consumes the
    // firing so a one-shot fault means one failed attempt even when
    // the retry lands on a different worker.
    if (driverFaultFires(DriverFaultPoint::WorkerCrash, job.token))
        req.fault = (uint8_t)service::WorkerFault::Crash;
    else if (driverFaultFires(DriverFaultPoint::WorkerHang, job.token))
        req.fault = (uint8_t)service::WorkerFault::Hang;
    else if (driverFaultFires(DriverFaultPoint::WorkerResultTorn,
                              job.token))
        req.fault = (uint8_t)service::WorkerFault::TornResult;
    else if (driverFaultFires(DriverFaultPoint::WorkerResultDup,
                              job.token))
        req.fault = (uint8_t)service::WorkerFault::DupResult;

    const std::vector<uint8_t> frame_bytes = service::encodeFrame(
        service::FrameType::JobRequest, req.encode());
    const Status sent =
        sendFull(slot->fd, frame_bytes.data(), frame_bytes.size());
    if (!sent.ok()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.crashes;
        }
        retireSlot(slot, true);
        return Status::internal("worker rejected the job dispatch: " +
                                sent.message());
    }

    uint64_t last_signal_ms = nowMs();
    for (;;) {
        const uint64_t now = nowMs();
        const uint64_t silence = now - last_signal_ms;
        if (silence >= config_.heartbeatTimeoutMs) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.hangKills;
            }
            retireSlot(slot, true);
            return Status::deadlineExceeded(
                "worker went silent for " + std::to_string(silence) +
                "ms (heartbeat deadline " +
                std::to_string(config_.heartbeatTimeoutMs) +
                "ms); killed");
        }
        pollfd pfd{slot->fd, POLLIN, 0};
        const int rc = ::poll(
            &pfd, 1, (int)(config_.heartbeatTimeoutMs - silence));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            retireSlot(slot, true);
            return Status::ioError(std::string("poll: ") +
                                   std::strerror(errno));
        }
        if (rc == 0)
            continue; // silence re-checked at the top
        uint8_t buf[4096];
        auto got = recvChunk(slot->fd, buf, sizeof(buf));
        if (!got.ok()) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.crashes;
            }
            retireSlot(slot, true);
            return Status::internal("worker socket failed mid-job: " +
                                    got.status().message());
        }
        if (*got == 0) {
            // EOF: the worker died mid-job (crash, SIGKILL, OOM).
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.crashes;
            }
            retireSlot(slot, false);
            return Status::internal(
                "worker process died mid-job (socket EOF)");
        }
        (void)slot->decoder.feed(buf, *got);
        for (;;) {
            service::Frame frame;
            bool have = false;
            const Status ds = slot->decoder.next(&frame, &have);
            if (!ds.ok()) {
                // CRC/framing failure: a torn result must never be
                // merged; the stream cannot be trusted past it.
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++counters_.tornResults;
                }
                retireSlot(slot, true);
                return Status::corruption(
                    "worker result stream corrupt: " + ds.message());
            }
            if (!have)
                break;
            last_signal_ms = nowMs();
            if (frame.type == service::FrameType::WorkerHeartbeat) {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.heartbeats;
                continue;
            }
            if (frame.type != service::FrameType::JobResult) {
                retireSlot(slot, true);
                return Status::corruption(
                    std::string("unexpected frame '") +
                    service::frameTypeName(frame.type) +
                    "' while awaiting a job result");
            }
            auto result = service::JobResultMsg::decode(frame.payload);
            if (!result.ok()) {
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++counters_.tornResults;
                }
                retireSlot(slot, true);
                return result.status();
            }
            if (result->token != job.token) {
                // A stale result: a duplicate or reordered frame from
                // an earlier job on this slot (e.g. a dup flushed
                // after its job already completed). It decoded clean,
                // so the stream itself is healthy — drop the frame
                // and keep waiting for *this* job's result. Matching
                // it to the current cell would corrupt the sweep.
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.staleResults;
                continue;
            }
            if (result->errorCode != 0) {
                // A clean failure (unknown workload, worker-side
                // deadline): the worker is healthy, keep it.
                return result->error();
            }
            *out = result->stats;
            return Status{};
        }
    }
}

// ------------------------------------------------------------ stats

WorkerPoolStats
WorkerPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    WorkerPoolStats s = counters_;
    s.degraded = degraded_.load(std::memory_order_relaxed);
    return s;
}

void
WorkerPool::dumpStats(std::ostream &os) const
{
    const WorkerPoolStats s = stats();
    os << "driver.worker.spawned " << s.spawned << "\n";
    os << "driver.worker.reaped " << s.reaped << "\n";
    os << "driver.worker.restarts " << s.restarts << "\n";
    os << "driver.worker.spawnFailures " << s.spawnFailures << "\n";
    os << "driver.worker.crashes " << s.crashes << "\n";
    os << "driver.worker.hangKills " << s.hangKills << "\n";
    os << "driver.worker.tornResults " << s.tornResults << "\n";
    os << "driver.worker.staleResults " << s.staleResults << "\n";
    os << "driver.worker.jobsDispatched " << s.jobsDispatched << "\n";
    os << "driver.worker.jobsCompleted " << s.jobsCompleted << "\n";
    os << "driver.worker.jobsFailed " << s.jobsFailed << "\n";
    os << "driver.worker.heartbeats " << s.heartbeats << "\n";
    os << "driver.worker.degraded " << (s.degraded ? 1 : 0) << "\n";
}

} // namespace rarpred::driver
