#include "driver/fleet_dispatcher.hh"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/io_util.hh"
#include "common/logging.hh"
#include "faultinject/driver_faults.hh"

namespace rarpred::driver {

namespace {

uint64_t
nowMs()
{
    using namespace std::chrono;
    return (uint64_t)duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

// ----------------------------------------------------- construction

FleetDispatcher::FleetDispatcher(const FleetConfig &config)
    : config_(config)
{
}

FleetDispatcher::~FleetDispatcher()
{
    stop();
}

Result<std::vector<std::pair<std::string, uint16_t>>>
FleetDispatcher::parseAgentList(const std::string &spec)
{
    std::vector<std::pair<std::string, uint16_t>> out;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue; // tolerate "a:1,,b:2" and trailing commas
        const size_t colon = entry.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= entry.size())
            return Status::invalidArgument(
                "agent endpoint '" + entry +
                "' is not host:port");
        const std::string port_str = entry.substr(colon + 1);
        char *end = nullptr;
        const unsigned long port = std::strtoul(port_str.c_str(),
                                                &end, 10);
        if (end == nullptr || *end != '\0' || port == 0 ||
            port > 65535)
            return Status::invalidArgument(
                "agent endpoint '" + entry + "' has a bad port");
        out.emplace_back(entry.substr(0, colon), (uint16_t)port);
    }
    if (out.empty())
        return Status::invalidArgument("empty agent list");
    return out;
}

Status
FleetDispatcher::start()
{
    if (started_)
        return Status{};
    started_ = true;
    auto parsed = parseAgentList(config_.agents);
    RARPRED_RETURN_IF_ERROR(parsed.status());
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[host, port] : *parsed) {
        Agent a;
        a.host = host;
        a.port = port;
        agents_.push_back(std::move(a));
    }
    counters_.agents = agents_.size();
    return Status{};
}

void
FleetDispatcher::stop()
{
    if (stopped_.exchange(true))
        return;
    degraded_.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    for (Agent &a : agents_) {
        for (Conn &c : a.idle)
            ::close(c.fd);
        a.idle.clear();
    }
}

// ------------------------------------------------ agent supervision

void
FleetDispatcher::noteAgentFailureLocked(Agent &agent)
{
    const uint64_t now = nowMs();
    agent.dropTimesMs.push_back(now);
    while (!agent.dropTimesMs.empty() &&
           now - agent.dropTimesMs.front() > config_.flapWindowMs)
        agent.dropTimesMs.pop_front();
    ++agent.consecutiveFailures;
    const bool flapping =
        (unsigned)agent.dropTimesMs.size() > config_.flapDropBudget;
    if (!agent.demoted &&
        (agent.consecutiveFailures >= config_.maxConsecutiveFailures ||
         flapping)) {
        // Demotion is sticky for the dispatcher's lifetime: an agent
        // that keeps dropping leases would burn every cell's retry
        // budget on doomed round trips.
        agent.demoted = true;
        ++counters_.agentsDemoted;
        for (Conn &c : agent.idle)
            ::close(c.fd);
        agent.idle.clear();
    }
    bool all_demoted = true;
    for (const Agent &a : agents_)
        if (!a.demoted)
            all_demoted = false;
    if (all_demoted) {
        counters_.degraded = true;
        degraded_.store(true, std::memory_order_relaxed);
    }
}

Result<int>
FleetDispatcher::connectAgent(Agent &agent)
{
    // Chaos drill: the network is partitioned — the connect attempt
    // fails as if the agent were unreachable, without touching the
    // wire.
    if (driverFaultFires(DriverFaultPoint::NetPartition,
                         connectSeq_++))
        return Status::unavailable("injected network partition");

    uint64_t backoff_ms = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (agent.consecutiveFailures > 0)
            backoff_ms =
                std::min(config_.reconnectBackoffCapMs,
                         config_.reconnectBackoffMs
                             << (agent.consecutiveFailures - 1));
    }
    if (backoff_ms != 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff_ms));

    auto fd = tcpConnect(agent.host, agent.port,
                         config_.connectTimeoutMs);
    RARPRED_RETURN_IF_ERROR(fd.status());

    // Handshake: the agent announces itself before the connection
    // serves leases. A wrong-protocol agent is a deployment error,
    // not a transient — but it still just fails this connection and
    // lets the flap detector demote the endpoint.
    service::FrameDecoder decoder;
    const uint64_t deadline = nowMs() + config_.connectTimeoutMs;
    for (;;) {
        const uint64_t now = nowMs();
        if (now >= deadline) {
            ::close(*fd);
            return Status::unavailable(
                "agent sent no hello within " +
                std::to_string(config_.connectTimeoutMs) + "ms");
        }
        auto readable = pollReadable(*fd, deadline - now);
        if (!readable.ok() || !*readable)
            continue; // deadline re-checked at the top
        uint8_t buf[512];
        auto got = recvChunk(*fd, buf, sizeof(buf));
        if (!got.ok() || *got == 0) {
            ::close(*fd);
            return Status::unavailable(
                "agent closed the connection before hello");
        }
        (void)decoder.feed(buf, *got);
        service::Frame frame;
        bool have = false;
        const Status ds = decoder.next(&frame, &have);
        if (!ds.ok()) {
            ::close(*fd);
            return ds;
        }
        if (!have)
            continue;
        if (frame.type != service::FrameType::AgentHello) {
            ::close(*fd);
            return Status::corruption(
                std::string("expected agent-hello, got '") +
                service::frameTypeName(frame.type) + "'");
        }
        auto hello = service::AgentHelloMsg::decode(frame.payload);
        if (!hello.ok()) {
            ::close(*fd);
            return hello.status();
        }
        if (hello->protoVersion != service::kAgentProtoVersion) {
            ::close(*fd);
            return Status::failedPrecondition(
                "agent speaks protocol v" +
                std::to_string(hello->protoVersion) +
                ", expected v" +
                std::to_string(service::kAgentProtoVersion));
        }
        return *fd;
    }
}

// ------------------------------------------------------- lease runs

Result<CpuStats>
FleetDispatcher::runJob(const WorkerJobDesc &job)
{
    if (!started_ || stopped_.load(std::memory_order_relaxed))
        return Status::unavailable("fleet dispatcher is not running");
    const uint64_t fingerprint = service::cellFingerprint(
        job.workload, job.config, job.scale, job.maxInsts);

    // Reassignment loop: an expired lease moves the cell to the next
    // healthy agent (round-robin). The loop is bounded by demotion —
    // every failed attempt charges its agent, and an agent demotes
    // after maxConsecutiveFailures — plus a hard attempt cap as a
    // belt-and-braces backstop against pathological alternation.
    Status last =
        Status::unavailable("fleet degraded: no healthy agents");
    size_t attempts = 0;
    bool first = true;
    for (;;) {
        if (degraded_.load(std::memory_order_relaxed) ||
            stopped_.load(std::memory_order_relaxed))
            return Status::unavailable("fleet degraded: " +
                                       last.message());
        size_t idx = agents_.size();
        {
            std::lock_guard<std::mutex> lock(mu_);
            const size_t n = agents_.size();
            for (size_t probe = 0; probe < n; ++probe) {
                const size_t i = rr_ % n;
                rr_ = (rr_ + 1) % n;
                if (!agents_[i].demoted) {
                    idx = i;
                    break;
                }
            }
            if (attempts++ >=
                (size_t)config_.maxConsecutiveFailures *
                        agents_.size() +
                    agents_.size())
                return last; // backstop; demotion normally wins
        }
        if (idx == agents_.size())
            return Status::unavailable("fleet degraded: " +
                                       last.message());
        if (!first) {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.leasesReassigned;
        }
        first = false;

        CpuStats stats{};
        const Status ran =
            leaseOnAgent(idx, job, fingerprint, &stats);
        if (ran.ok())
            return stats;
        // Unavailable from the lease layer means the *attempt* never
        // reached a healthy agent (connect failed, lease expired) —
        // reassign. Any other status is a clean agent-side verdict
        // (unknown workload, agent-side deadline, determinism
        // violation) and flows to the caller's retry/quarantine path.
        if (ran.code() != StatusCode::Unavailable)
            return ran;
        last = ran;
    }
}

Status
FleetDispatcher::leaseOnAgent(size_t agent_idx,
                              const WorkerJobDesc &job,
                              uint64_t fingerprint, CpuStats *out)
{
    Agent &agent = agents_[agent_idx];

    // Reuse a pooled connection when one is idle; connect otherwise.
    Conn conn;
    bool reused = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (agent.demoted)
            return Status::unavailable("agent demoted");
        if (!agent.idle.empty()) {
            conn = std::move(agent.idle.back());
            agent.idle.pop_back();
            reused = true;
        }
    }
    if (!reused) {
        auto fd = connectAgent(agent);
        if (!fd.ok()) {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.connectFailures;
            noteAgentFailureLocked(agent);
            return Status::unavailable("connect to " + agent.host +
                                       ":" +
                                       std::to_string(agent.port) +
                                       " failed: " +
                                       fd.status().message());
        }
        conn.fd = *fd;
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.connects;
        if (counters_.connects > counters_.agents)
            ++counters_.reconnects;
    }

    // Grant the lease. The lease deadline backstops the agent's own
    // job watchdog: the watchdog should answer first with a clean
    // DeadlineExceeded; the lease only expires when the agent (or the
    // network) is gone.
    service::LeaseRequestMsg lease;
    lease.leaseId = leaseSeq_++;
    lease.leaseMs = job.deadlineMs != 0
                        ? job.deadlineMs + config_.leaseSlackMs
                        : 0;
    lease.job.token = job.token;
    lease.job.workload = job.workload;
    lease.job.scale = job.scale;
    lease.job.maxInsts = job.maxInsts;
    lease.job.deadlineMs = job.deadlineMs;
    lease.job.config = job.config;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.leasesGranted;
        leaseFingerprint_[lease.leaseId] = fingerprint;
        // Bound the registry in long-lived daemons: ids are monotone,
        // so the oldest leases — whose stragglers are long gone — sit
        // at the front.
        while (leaseFingerprint_.size() > 65536)
            leaseFingerprint_.erase(leaseFingerprint_.begin());
    }

    // Expire this lease: the connection is untrusted past the
    // failure, so it is torn down, the agent is charged, and the
    // caller reassigns the cell.
    const auto expire = [&](const std::string &why) {
        ::close(conn.fd);
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.leasesExpired;
        noteAgentFailureLocked(agent);
        return Status::unavailable("lease " +
                                   std::to_string(lease.leaseId) +
                                   " on " + agent.host + ":" +
                                   std::to_string(agent.port) +
                                   " expired: " + why);
    };

    const std::vector<uint8_t> frame_bytes = service::encodeFrame(
        service::FrameType::LeaseRequest, lease.encode());
    const Status sent =
        sendFull(conn.fd, frame_bytes.data(), frame_bytes.size());
    if (!sent.ok())
        return expire("send failed: " + sent.message());
    // Chaos drill: the link drops right after the lease left the
    // dispatcher. The agent may compute the whole cell — the result
    // just never lands, and the reassigned execution must still merge
    // byte-identically.
    if (driverFaultFires(DriverFaultPoint::NetDrop, sendSeq_++))
        return expire("injected connection drop after lease send");

    const uint64_t lease_deadline =
        lease.leaseMs != 0 ? nowMs() + lease.leaseMs : 0;
    uint64_t last_signal_ms = nowMs();
    for (;;) {
        const uint64_t now = nowMs();
        const uint64_t silence = now - last_signal_ms;
        if (silence >= config_.heartbeatTimeoutMs)
            return expire("agent went silent for " +
                          std::to_string(silence) + "ms");
        if (lease_deadline != 0 && now >= lease_deadline)
            return expire("lease deadline (" +
                          std::to_string(lease.leaseMs) +
                          "ms) passed");
        uint64_t wait = config_.heartbeatTimeoutMs - silence;
        if (lease_deadline != 0)
            wait = std::min(wait, lease_deadline - now);
        auto readable = pollReadable(conn.fd, wait);
        if (!readable.ok())
            return expire("poll failed: " +
                          readable.status().message());
        if (!*readable)
            continue; // silence/deadline re-checked at the top
        uint8_t buf[4096];
        auto got = recvChunk(conn.fd, buf, sizeof(buf));
        if (!got.ok())
            return expire("recv failed: " + got.status().message());
        if (*got == 0)
            return expire("agent closed the connection (EOF)");
        (void)conn.decoder.feed(buf, *got);
        for (;;) {
            service::Frame frame;
            bool have = false;
            const Status ds = conn.decoder.next(&frame, &have);
            if (!ds.ok())
                return expire("result stream corrupt: " +
                              ds.message());
            if (!have)
                break;
            last_signal_ms = nowMs();
            if (frame.type == service::FrameType::AgentHeartbeat) {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.heartbeats;
                continue;
            }
            if (frame.type != service::FrameType::LeaseResult)
                return expire(
                    std::string("unexpected frame '") +
                    service::frameTypeName(frame.type) +
                    "' while awaiting a lease result");
            auto result =
                service::LeaseResultMsg::decode(frame.payload);
            if (!result.ok())
                return expire("bad lease result: " +
                              result.status().message());
            if (result->leaseId != lease.leaseId) {
                // At-least-once in action: a duplicate (or straggler)
                // completion for an *earlier* lease flushed onto this
                // pooled connection. Book it against its own cell —
                // dedupe plus determinism oracle — and keep waiting
                // for this lease's result. Matching it to the current
                // cell would corrupt the sweep.
                std::lock_guard<std::mutex> lock(mu_);
                const auto it =
                    leaseFingerprint_.find(result->leaseId);
                if (it != leaseFingerprint_.end() &&
                    result->result.errorCode == 0) {
                    bool diverged = false;
                    (void)noteCompletionLocked(
                        it->second, result->result.stats, &diverged);
                    // A divergent straggler is counted (the oracle
                    // counter trips tests and monitoring) but must
                    // not take the dispatcher down mid-sweep.
                }
                continue;
            }
            if (result->result.errorCode != 0) {
                // A clean failure on a healthy agent: pool the
                // connection and let the caller's retry/quarantine
                // path decide.
                std::lock_guard<std::mutex> lock(mu_);
                agent.consecutiveFailures = 0;
                agent.idle.push_back(std::move(conn));
                return result->result.error();
            }
            std::lock_guard<std::mutex> lock(mu_);
            bool diverged = false;
            const bool dup = noteCompletionLocked(
                fingerprint, result->result.stats, &diverged);
            agent.consecutiveFailures = 0;
            agent.idle.push_back(std::move(conn));
            if (diverged)
                return Status::internal(
                    "determinism violation: duplicate completion of "
                    "cell " +
                    std::to_string(fingerprint) +
                    " differs from the accepted result");
            // First CRC-valid completion wins; a duplicate hands the
            // caller the accepted copy (byte-identical anyway).
            *out = dup ? completed_[fingerprint]
                       : result->result.stats;
            return Status{};
        }
    }
}

bool
FleetDispatcher::noteCompletionLocked(uint64_t fingerprint,
                                      const CpuStats &stats,
                                      bool *diverged)
{
    *diverged = false;
    const auto it = completed_.find(fingerprint);
    if (it == completed_.end()) {
        completed_.emplace(fingerprint, stats);
        ++counters_.resultsAccepted;
        return false;
    }
    ++counters_.duplicateResults;
    if (std::memcmp(&it->second, &stats, sizeof(CpuStats)) != 0) {
        // The at-least-once design leans on re-execution being
        // indistinguishable from retransmission; a divergent
        // duplicate means the determinism contract broke somewhere.
        ++counters_.determinismViolations;
        *diverged = true;
    }
    return true;
}

// ------------------------------------------------------------ stats

FleetStats
FleetDispatcher::stats() const
{
    // counters_.degraded records *health* degradation (every agent
    // demoted) only. The degraded_ atomic is additionally latched by
    // stop() so runJob() refuses late work, but an orderly shutdown
    // is not a health event — reporting it as one would poison the
    // "degraded 0" oracle in exit dumps of perfectly healthy fleets.
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

void
FleetDispatcher::dumpStats(std::ostream &os) const
{
    const FleetStats s = stats();
    os << "driver.fleet.agents " << s.agents << "\n";
    os << "driver.fleet.connects " << s.connects << "\n";
    os << "driver.fleet.reconnects " << s.reconnects << "\n";
    os << "driver.fleet.connectFailures " << s.connectFailures << "\n";
    os << "driver.fleet.leasesGranted " << s.leasesGranted << "\n";
    os << "driver.fleet.leasesExpired " << s.leasesExpired << "\n";
    os << "driver.fleet.leasesReassigned " << s.leasesReassigned
       << "\n";
    os << "driver.fleet.resultsAccepted " << s.resultsAccepted << "\n";
    os << "driver.fleet.duplicateResults " << s.duplicateResults
       << "\n";
    os << "driver.fleet.determinismViolations "
       << s.determinismViolations << "\n";
    os << "driver.fleet.heartbeats " << s.heartbeats << "\n";
    os << "driver.fleet.agentsDemoted " << s.agentsDemoted << "\n";
    os << "driver.fleet.degraded " << (s.degraded ? 1 : 0) << "\n";
}

} // namespace rarpred::driver
