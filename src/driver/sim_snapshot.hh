/**
 * @file
 * Mid-simulation checkpoint/restore and the online invariant auditor.
 *
 * Two-tier recovery beneath the sweep journal (DESIGN.md §6c): the
 * journal makes a *sweep* resumable at job granularity; this layer
 * makes a single *simulation* resumable at epoch granularity and
 * self-healing against corrupted hint state.
 *
 * Snapshot files ("RARS", version 1) follow the repo's binary-file
 * conventions (trace v2, RARJ journal): little-endian, CRC-32-guarded
 * header, CRC-guarded payload (the component section chain produced
 * by StateWriter). They are written atomically (temp + fsync +
 * rename, common/statesave.hh) so a crash can never expose a torn
 * snapshot under the final name — and a torn or stale file that does
 * appear is rejected by CRC/fingerprint and the run simply starts
 * from scratch.
 *
 * The restore path carries a divergence oracle: the snapshot records
 * a CRC fingerprint over a trailing window of consumed trace records;
 * on restore the source is fast-forwarded while recomputing that
 * fingerprint, and any mismatch (wrong trace, wrong position, bad
 * image) rewinds the source and regenerates from scratch instead of
 * silently producing wrong stats.
 *
 * The online auditor periodically validates structural invariants of
 * the hint tables (DDT, DPNT, synonym file, SRT): entry-count bounds,
 * synonym/index cross-references, LRU chain integrity, and a CRC over
 * each table image between audits (a changed image with no recorded
 * mutation is silent corruption). A violated structure is repaired by
 * *flushing it to empty* — hint state is performance-only (Moshovos &
 * Sohi), so the run continues correctly at a temporarily lower
 * prediction rate — and the repair is surfaced in driver.audit.*
 * counters rather than a crash.
 */

#ifndef RARPRED_DRIVER_SIM_SNAPSHOT_HH_
#define RARPRED_DRIVER_SIM_SNAPSHOT_HH_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "vm/trace.hh"

namespace rarpred::driver {

/**
 * Audit/snapshot counters, aggregated across all jobs of a runner
 * and dumped as driver.audit.* / driver.snapshot.* stats. Atomic:
 * worker threads update them concurrently.
 */
struct AuditCounters
{
    std::atomic<uint64_t> runs{0};          ///< audit passes executed
    std::atomic<uint64_t> violations{0};    ///< invariant violations
    std::atomic<uint64_t> flushes{0};       ///< structures flushed
    std::atomic<uint64_t> crcMismatches{0}; ///< silent-corruption CRCs
    std::atomic<uint64_t> snapshotsWritten{0};
    std::atomic<uint64_t> snapshotsRestored{0};
    std::atomic<uint64_t> restoreRejected{0}; ///< divergence fallbacks
    /// state_bitflip faults injected; also drives the injection
    /// round-robin so consecutive fires hit different structures
    /// even across separate arm/pump cycles.
    std::atomic<uint64_t> bitflipsInjected{0};
};

/**
 * Section tag wrapping the entire serialized sink inside a snapshot's
 * state blob: one outer CRC frame covering every component section,
 * so loadSnapshot() can validate the whole image without knowing the
 * sink's internal layout.
 */
constexpr uint32_t kSnapshotStateTag = 0x50414e53; // "SNAP"

/**
 * Per-job snapshot/audit context, installed thread-locally by the
 * runner (or a test) around the job body so pumpSimulation() can pick
 * it up without changing every sink's interface.
 */
struct SimContext
{
    /** Snapshot file path; empty disables snapshotting/restore. */
    std::string snapshotPath;
    /** Snapshot every N instructions; 0 disables epoch snapshots. */
    uint64_t snapshotEvery = 0;
    /** Attempt to restore from snapshotPath before simulating. */
    bool restore = false;
    /** Audit hint-table invariants every N instructions; 0 = off. */
    uint64_t auditEvery = 0;
    /** Identity of this (workload, config, scale, maxInsts) job. */
    uint64_t fingerprint = 0;
    /** Counter sink; may be nullptr. */
    AuditCounters *counters = nullptr;
};

/** RAII installer for the thread-local SimContext. */
class ScopedSimContext
{
  public:
    explicit ScopedSimContext(const SimContext &ctx);
    ~ScopedSimContext();

    ScopedSimContext(const ScopedSimContext &) = delete;
    ScopedSimContext &operator=(const ScopedSimContext &) = delete;

  private:
    const SimContext *prev_;
};

/** @return the installed context, or nullptr outside any scope. */
const SimContext *currentSimContext();

/**
 * Identity hash of one simulation job for snapshot validation: a
 * snapshot written by a different workload/config/scale/maxInsts
 * must never restore. Stable across platforms and runs.
 */
uint64_t snapshotFingerprint(std::string_view workload,
                             uint64_t config_hash, uint32_t scale,
                             uint64_t max_insts);

/**
 * Drop-in replacement for drainTrace() that adds, when a SimContext
 * is installed and the sink is an OooCpu or CloakingEngine:
 *  - restore-on-entry from the context's snapshot file (with the
 *    divergence oracle; rejection falls back to a from-scratch run
 *    via TraceSource::rewindToStart()),
 *  - epoch snapshots every snapshotEvery instructions,
 *  - periodic invariant audits with flush-to-safe repair,
 *  - the snapshot_torn / snapshot_stale / state_bitflip / epoch_kill
 *    fault points.
 * With no context (or a sink it cannot serialize) it is exactly
 * drainTrace(). @return instructions consumed from @p source by this
 * call plus any instructions skipped via restore — i.e. the stream
 * position reached, matching an uninterrupted drainTrace() total.
 */
uint64_t pumpSimulation(TraceSource &source, TraceSink &sink);

/**
 * Serialize @p sink (must be an OooCpu or CloakingEngine) and write
 * a complete snapshot file durably to @p path. Exposed for tests;
 * pumpSimulation() calls this at epoch boundaries.
 * @param consumed   Trace records already fed to the sink.
 * @param window_crc Divergence-oracle CRC over the trailing window
 *                   of consumed records (see TraceWindowCrc).
 */
Status writeSnapshot(const std::string &path, uint64_t fingerprint,
                     uint64_t consumed, uint32_t window_crc,
                     const TraceSink &sink);

/** Snapshot header fields + validated state blob, for tests. */
struct SnapshotImage
{
    uint64_t fingerprint = 0;
    uint64_t consumed = 0;
    uint32_t windowCrc = 0;
    std::vector<uint8_t> state;
};

/**
 * Read and fully validate a snapshot file: magic, version, header
 * CRC, and every section CRC in the state blob — all *before* any
 * component state is touched. @return Corruption/IoError on any
 * defect (including a torn tail).
 */
Result<SnapshotImage> loadSnapshot(const std::string &path);

/**
 * Rolling CRC fingerprint over the last K consumed trace records —
 * the divergence oracle's evidence that a restored run is consuming
 * the same trace at the same position as the run that snapshotted.
 */
class TraceWindowCrc
{
  public:
    static constexpr size_t kWindow = 1024;

    void push(const DynInst &di);

    /** CRC over the window's record hashes, oldest to newest. */
    uint32_t value() const;

  private:
    uint32_t ring_[kWindow] = {};
    uint64_t count_ = 0;
};

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_SIM_SNAPSHOT_HH_
