/**
 * @file
 * Multi-host worker fleet: lease-based dispatch of sweep cells to
 * remote `rarpred-agent` processes over TCP, using the service's
 * CRC-framed wire protocol (service/proto.hh AgentHello /
 * LeaseRequest / AgentHeartbeat / LeaseResult frames).
 *
 * Why a fleet: the process-isolated worker pool (worker_pool.hh)
 * contains failures inside one machine; the fleet spreads the same
 * cell jobs across machines, which is ROADMAP item 3's "multi-host
 * workers" follow-on. The failure model widens accordingly — network
 * partitions, straggler agents, whole-agent loss — so dispatch is
 * **lease-based at-least-once** instead of assuming delivery:
 *
 *  - Every cell handed to an agent carries a lease: an absolute
 *    expiry derived from the job watchdog deadline (plus slack), and
 *    a heartbeat-silence budget. The agent beacons AgentHeartbeat
 *    frames while the cell runs.
 *  - A lease expires on frame timeout, POLLHUP/EOF (agent died or
 *    the link dropped), heartbeat silence, or a CRC failure on the
 *    stream. An expired lease costs nothing but time: the cell is
 *    reassigned to another connection (possibly another agent), and
 *    the orphaned execution is left to die with its connection.
 *  - At-least-once delivery means the same cell can complete twice
 *    (a straggler finishing after its lease was reassigned, or an
 *    injected duplicate). Completions are deduplicated by cell
 *    fingerprint: the first CRC-valid result wins, and a determinism
 *    oracle asserts any second completion is byte-identical — the
 *    simulation contract makes re-execution indistinguishable from
 *    retransmission, which is what makes at-least-once safe here.
 *
 * Connection management mirrors the worker pool's supervision:
 * capped exponential backoff on reconnect, a per-agent flap detector
 * (consecutive failures, or too many drops inside a sliding window)
 * that demotes an agent for good, and a sticky pool-level
 * degradation once every agent is demoted — runJob() then returns
 * Unavailable and the caller falls down the ladder (fleet -> local
 * worker pool -> in-process), so a sweep always completes even with
 * the whole fleet unreachable.
 *
 * Determinism: an agent computes cells from the same (workload,
 * scale, maxInsts, CellConfigMsg) inputs as every other execution
 * route, so merged sweep stats are byte-identical whether a cell ran
 * in-process, in a local worker, or three machines away — including
 * when its lease expired once and it was reassigned.
 */

#ifndef RARPRED_DRIVER_FLEET_DISPATCHER_HH_
#define RARPRED_DRIVER_FLEET_DISPATCHER_HH_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hh"
#include "cpu/cpu_config.hh"
#include "driver/worker_pool.hh" // WorkerJobDesc
#include "service/proto.hh"

namespace rarpred::driver {

/** Fleet supervision knobs. Defaults suit production; tests shrink
 *  them. */
struct FleetConfig
{
    /** Agent endpoints, "host:port[,host:port...]"; numeric IPv4. */
    std::string agents;

    /** Deadline for one TCP connect + AgentHello handshake. */
    uint64_t connectTimeoutMs = 2000;

    /** Expire a lease after this much agent silence (no heartbeat,
     *  no result). Same role as the worker pool's heartbeat knob and
     *  wired from the same --worker-heartbeat-ms flag. */
    uint64_t heartbeatTimeoutMs = 10000;

    /** Slack added to the job watchdog deadline to form the lease
     *  expiry: the agent's own watchdog should fire first and return
     *  a clean DeadlineExceeded; the lease is the backstop. */
    uint64_t leaseSlackMs = 2000;

    /** Reconnect backoff: base << (consecutive failures - 1), capped. */
    uint64_t reconnectBackoffMs = 50;
    uint64_t reconnectBackoffCapMs = 2000;

    /** Per-agent flap detector: consecutive failures that demote the
     *  agent, and the drop budget inside the sliding window. */
    unsigned maxConsecutiveFailures = 3;
    unsigned flapDropBudget = 8;
    uint64_t flapWindowMs = 10000;
};

/** Counter snapshot for dumpStats() and test asserts. */
struct FleetStats
{
    uint64_t agents = 0;           ///< configured endpoints
    uint64_t connects = 0;         ///< successful connect+handshakes
    uint64_t reconnects = 0;       ///< connects replacing a lost conn
    uint64_t connectFailures = 0;
    uint64_t leasesGranted = 0;
    uint64_t leasesExpired = 0;    ///< timeout/EOF/CRC/silence
    uint64_t leasesReassigned = 0; ///< expired leases retried
    uint64_t resultsAccepted = 0;
    uint64_t duplicateResults = 0; ///< deduped by cell fingerprint
    uint64_t determinismViolations = 0; ///< dup differed byte-wise
    uint64_t heartbeats = 0;
    uint64_t agentsDemoted = 0;    ///< flap detector latched
    bool degraded = false;         ///< every agent demoted (sticky)
};

/**
 * The dispatcher. Thread-safe: SimJobRunner's worker threads call
 * runJob() concurrently, each leasing its cell over a checked-out
 * agent connection.
 */
class FleetDispatcher
{
  public:
    explicit FleetDispatcher(const FleetConfig &config);
    ~FleetDispatcher();

    FleetDispatcher(const FleetDispatcher &) = delete;
    FleetDispatcher &operator=(const FleetDispatcher &) = delete;

    /**
     * Parse the agent list. Never connects eagerly — connections are
     * opened on first use, so an unreachable fleet costs nothing
     * until exercised (and then degrades instead of failing).
     * InvalidArgument only for a malformed agent list.
     */
    Status start();

    /** Close every connection; idempotent. After stop() every
     *  runJob() returns Unavailable. */
    void stop();

    /**
     * Run one cell on the fleet, reassigning its lease across agents
     * until a CRC-valid result lands or every agent is demoted.
     *
     * Status protocol (same contract as WorkerPool::runJob):
     *  - OK: the agent's CpuStats (byte-identical to in-process).
     *  - Unavailable: the *fleet* cannot serve (degraded, stopped,
     *    unreachable) — callers fall back down the execution ladder;
     *    this does not consume a job attempt.
     *  - anything else: this attempt failed cleanly on a healthy
     *    agent (unknown workload, agent-side deadline) — feeds the
     *    caller's retry/quarantine path.
     */
    Result<CpuStats> runJob(const WorkerJobDesc &job);

    /** True once every agent is demoted (or stop() ran). Sticky. */
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    FleetStats stats() const;

    /** Write "driver.fleet.*" stat lines (the repo's stat format). */
    void dumpStats(std::ostream &os) const;

    /** Parse "host:port[,host:port...]"; exposed for tests. */
    static Result<std::vector<std::pair<std::string, uint16_t>>>
    parseAgentList(const std::string &spec);

  private:
    /** One pooled TCP connection. The decoder persists across leases
     *  on the same connection so bytes an agent flushed late (e.g. a
     *  duplicated LeaseResult) are decoded — and deduped — rather
     *  than corrupting the next lease's stream. */
    struct Conn
    {
        int fd = -1;
        service::FrameDecoder decoder;
    };

    struct Agent
    {
        std::string host;
        uint16_t port = 0;
        bool demoted = false;          ///< sticky per-agent latch
        unsigned consecutiveFailures = 0;
        std::deque<uint64_t> dropTimesMs; ///< flap sliding window
        std::vector<Conn> idle;        ///< pooled healthy connections
    };

    /** One leased attempt on one agent; updates health bookkeeping. */
    Status leaseOnAgent(size_t agent_idx, const WorkerJobDesc &job,
                        uint64_t fingerprint, CpuStats *out);
    /** Connect + AgentHello handshake with deadline. */
    Result<int> connectAgent(Agent &agent);
    /** Record a connection/lease failure; demotes on a flap. */
    void noteAgentFailureLocked(Agent &agent);
    /** Dedupe/oracle bookkeeping for one completed cell.
     *  @return true iff this completion was a duplicate. */
    bool noteCompletionLocked(uint64_t fingerprint,
                              const CpuStats &stats, bool *diverged);

    FleetConfig config_;
    std::atomic<bool> degraded_{false};
    std::atomic<bool> stopped_{false};
    bool started_ = false;
    std::atomic<uint64_t> leaseSeq_{1};
    std::atomic<uint64_t> connectSeq_{0}; ///< NetPartition fault index
    std::atomic<uint64_t> sendSeq_{0};    ///< NetDrop fault index

    mutable std::mutex mu_;
    std::vector<Agent> agents_;
    size_t rr_ = 0; ///< round-robin cursor over healthy agents
    /** Completed cells by fingerprint: the at-least-once dedupe map
     *  and the determinism oracle's reference copy. */
    std::map<uint64_t, CpuStats> completed_;
    /** Lease id -> cell fingerprint, so a straggler completion for an
     *  earlier lease can be booked against its own cell. Lease ids
     *  are monotone, so pruning drops the oldest entries. */
    std::map<uint64_t, uint64_t> leaseFingerprint_;

    // Counters (under mu_).
    FleetStats counters_;
};

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_FLEET_DISPATCHER_HH_
