/**
 * @file
 * Process-isolated simulation workers: a supervisor that forks a
 * pool of sandboxed `rarpred-worker` processes and dispatches cell
 * jobs to them over socketpairs, using the service's CRC-framed wire
 * protocol (service/proto.hh JobRequest / JobResult / WorkerHello /
 * WorkerHeartbeat frames).
 *
 * Why processes: every simulation job used to run as a thread inside
 * the bench or rarpredd process, so one wild write, assert, or OOM in
 * a single sweep cell took down the whole process and every tenant on
 * it. A worker process is the containment boundary the in-process
 * fault layer (watchdog, retry, quarantine) cannot provide: a SIGKILL,
 * segfault, or wedge in a worker costs one job attempt, which flows
 * into the existing retry/quarantine path as an ordinary non-OK
 * Status.
 *
 * Supervision (DESIGN.md §9):
 *  - Worker death is detected two ways: EOF/POLLHUP on the job socket
 *    (immediate, the primary signal) and SIGCHLD (a self-pipe wakes
 *    housekeeping so even idle workers are reaped promptly). Reaping
 *    is strictly by known pid — never waitpid(-1) — so the pool can
 *    coexist with any other children its host process manages.
 *  - A wedged worker is detected by heartbeat silence: the worker
 *    beacons forward progress from inside its trace pump, so a
 *    livelocked or stopped worker goes silent and is SIGKILLed at the
 *    heartbeat deadline.
 *  - Restarts use capped exponential backoff, and a flap detector
 *    (consecutive spawn failures, or too many restarts inside a
 *    sliding window) degrades the pool: runJob() then returns
 *    Unavailable and the caller falls back to in-process execution.
 *    Degradation is sticky for the pool's lifetime — a pool that
 *    cannot hold workers alive must not oscillate.
 *
 * Determinism: a worker computes the cell from the same (workload,
 * scale, maxInsts, CellConfigMsg) inputs the in-process path uses, so
 * results are byte-identical either way; the journal, golden, and
 * restart-replay oracles all hold under --workers-proc.
 */

#ifndef RARPRED_DRIVER_WORKER_POOL_HH_
#define RARPRED_DRIVER_WORKER_POOL_HH_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hh"
#include "cpu/cpu_config.hh"
#include "service/proto.hh"

namespace rarpred::driver {

/** Supervision knobs. Defaults suit production; tests shrink them. */
struct WorkerPoolConfig
{
    /** Worker processes; 0 is clamped to 1. */
    unsigned workers = 1;

    /** Kill a worker after this much mid-job silence (no heartbeat,
     *  no result). Generous by default: the first job on a fresh
     *  worker generates the workload trace before pumping. */
    uint64_t heartbeatTimeoutMs = 10000;
    /** How long a fresh worker gets to send its hello. */
    uint64_t helloTimeoutMs = 5000;

    /** Restart backoff: base << (consecutive failures - 1), capped. */
    uint64_t spawnBackoffMs = 50;
    uint64_t spawnBackoffCapMs = 2000;

    /** Flap detector: consecutive spawn failures that degrade the
     *  pool, and the restart budget inside the sliding window. */
    unsigned maxConsecutiveSpawnFailures = 3;
    unsigned flapRestartBudget = 8;
    uint64_t flapWindowMs = 10000;

    /** Per-worker trace-cache budgets, forwarded on the argv. */
    uint64_t traceBudgetBytes = 0;
    uint32_t traceBudgetTraces = 0;

    /** Worker binary; empty resolves RARPRED_WORKER_BIN, then
     *  rarpred-worker next to the running executable, then in a
     *  sibling driver/ directory (the build layout). */
    std::string workerBin;
};

/** Everything one cell job needs to be computed out of process. */
struct WorkerJobDesc
{
    uint64_t token = 0; ///< job identity echoed by result/heartbeats
    std::string workload;
    uint32_t scale = 1;
    uint64_t maxInsts = ~0ull;
    uint64_t deadlineMs = 0; ///< enforced by the worker's own watchdog
    service::CellConfigMsg config;
};

/** Counter snapshot for dumpStats() and test asserts. */
struct WorkerPoolStats
{
    uint64_t spawned = 0;      ///< successful spawns (hello received)
    uint64_t reaped = 0;       ///< children waited on (by pid)
    uint64_t restarts = 0;     ///< spawns replacing a dead worker
    uint64_t spawnFailures = 0;
    uint64_t crashes = 0;      ///< workers that died mid-job
    uint64_t hangKills = 0;    ///< killed for heartbeat silence
    uint64_t tornResults = 0;  ///< result streams rejected by CRC
    uint64_t staleResults = 0; ///< duplicate/reordered results dropped
    uint64_t jobsDispatched = 0;
    uint64_t jobsCompleted = 0;
    uint64_t jobsFailed = 0;
    uint64_t heartbeats = 0;
    bool degraded = false;
};

/**
 * The supervisor. Thread-safe: SimJobRunner's worker threads call
 * runJob() concurrently, each checking out a worker slot for the
 * duration of its job.
 */
class WorkerPool
{
  public:
    explicit WorkerPool(const WorkerPoolConfig &config);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Resolve the worker binary and install the (chained, refcounted)
     * SIGCHLD hook. Never spawns eagerly — workers start on first
     * use, so a pool behind a flag costs nothing until exercised.
     * A missing binary degrades the pool (runJob() returns
     * Unavailable) instead of failing: crash containment is an
     * enhancement, not a prerequisite, for the sweep to run.
     */
    Status start();

    /** Kill and reap every worker; idempotent. After stop() every
     *  runJob() returns Unavailable. */
    void stop();

    /**
     * Run one job on a pooled worker process.
     *
     * Status protocol:
     *  - OK: the worker's CpuStats (byte-identical to in-process).
     *  - Unavailable: the *pool* cannot serve (degraded, stopped, or
     *    the worker binary is unresolvable) — callers fall back to
     *    in-process execution; this does not consume a job attempt.
     *  - anything else: this attempt failed (worker crashed, hung,
     *    returned a torn or failed result) — feeds the caller's
     *    retry/quarantine path exactly like an in-process failure.
     */
    Result<CpuStats> runJob(const WorkerJobDesc &job);

    /** True once the flap detector latched (or stop() ran). */
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    WorkerPoolStats stats() const;

    /** Write "driver.worker.*" stat lines (the repo's stat format). */
    void dumpStats(std::ostream &os) const;

    /** Resolution order documented on WorkerPoolConfig::workerBin;
     *  exposed for tests. Empty string when nothing resolves. */
    static std::string resolveWorkerBinary(const std::string &hint);

    /**
     * Probe whether this kernel delivers SIGCHLD through the pool's
     * self-pipe with the ordering the chaos battery depends on: fork
     * a short-lived child and require both the pipe wake-up and a
     * successful by-pid reap within a bounded wait. Tests call this
     * to *skip* (not fail) the chaos drills on kernels without the
     * guarantee; the pool itself stays correct either way because
     * checkout-time WNOHANG polling backstops the self-pipe.
     */
    static bool probeChildReapCapability();

  private:
    struct Slot
    {
        pid_t pid = -1;
        int fd = -1;
        bool busy = false;
        uint64_t generation = 0; ///< successful spawns of this slot
        service::FrameDecoder decoder; ///< reset on every respawn
    };

    Slot *checkout();
    void checkin(Slot *slot);
    /** Reap workers that died while idle (SIGCHLD housekeeping). */
    void sweepDeadWorkers();
    /** Make sure @p slot has a live worker; spawns with backoff.
     *  Unavailable once the flap detector latches. */
    Status ensureAlive(Slot *slot);
    /** One fork+exec+hello handshake. */
    Status spawnWorker(Slot *slot);
    /** Kill (if needed) and reap @p slot's worker; marks it dead. */
    void retireSlot(Slot *slot, bool kill);
    /** Record a restart event; latches degraded_ on a flap. */
    void noteRestartLocked();
    Status dispatch(Slot *slot, const WorkerJobDesc &job,
                    CpuStats *out);

    WorkerPoolConfig config_;
    std::string workerBin_;
    std::atomic<bool> degraded_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<uint64_t> spawnSeq_{0}; ///< WorkerFlap fault index
    bool started_ = false;

    mutable std::mutex mu_;
    std::condition_variable slotCv_;
    std::vector<Slot> slots_;
    int chldPipe_[2] = {-1, -1}; ///< SIGCHLD self-pipe (nonblocking)
    unsigned consecutiveSpawnFailures_ = 0;
    std::deque<uint64_t> restartTimesMs_; ///< flap sliding window

    // Counters (under mu_).
    WorkerPoolStats counters_;
};

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_WORKER_POOL_HH_
