/**
 * @file
 * rarpred-agent: one fleet host serving leased sweep cells over TCP.
 *
 * A FleetDispatcher (bench --workers-remote, rarpredd --fleet)
 * connects, reads the AgentHello handshake, and grants leases: each
 * LeaseRequest carries one cell job plus the lease terms. The agent
 * answers with exactly one LeaseResult per lease received, beaconing
 * AgentHeartbeat frames while the cell computes so the dispatcher can
 * tell a straggling agent from a dead one.
 *
 * Cells run on a process-isolated WorkerPool shared across
 * connections (the same supervisor the local --workers-proc path
 * uses), so a crash in one cell costs one lease, not the agent. When
 * the pool cannot serve (no worker binary, degraded), the agent
 * computes the cell in-process — the fallback ladder exists on both
 * sides of the wire.
 *
 * The agent never replies to a lease it did not finish: a killed or
 * partitioned agent simply goes silent, the dispatcher's lease
 * expires, and the cell is reassigned. Determinism makes that safe —
 * a re-executed cell is byte-identical to the lost one.
 *
 * Chaos drills arm from RARPRED_FAULT in the *agent's* environment
 * (agent_kill, net_slow, result_dup), separate from the dispatcher
 * process's own spec — each side owns its failure modes.
 *
 * Exit codes: 0 clean shutdown (SIGTERM/SIGINT), 2 bad usage,
 * 3 startup failure.
 */

#include <sys/socket.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/io_util.hh"
#include "common/status.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sim_snapshot.hh"
#include "driver/trace_cache.hh"
#include "driver/worker_pool.hh"
#include "faultinject/driver_faults.hh"
#include "service/proto.hh"
#include "vm/recorded_trace.hh"
#include "workload/workload.hh"

namespace {

using namespace rarpred;

uint64_t
nowMs()
{
    using namespace std::chrono;
    return (uint64_t)duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** SIGTERM/SIGINT self-pipe: the accept loop polls it. */
int g_shutdownPipe[2] = {-1, -1};

extern "C" void
agentShutdownSignal(int)
{
    const char byte = 1;
    (void)!::write(g_shutdownPipe[1], &byte, 1);
}

/** Leases received across all connections: the agent_kill index. */
std::atomic<uint64_t> g_leaseSeq{0};

struct AgentOptions
{
    std::string bind = "127.0.0.1";
    uint16_t port = 0; ///< 0 = kernel-assigned, printed to stdout
    unsigned workers = 1;
    uint64_t workerHeartbeatMs = 10000;
    uint64_t traceBudgetBytes = 0;
    uint64_t traceBudgetTraces = 0;
};

/** Serializes frame writes: the beacon thread and the lease loop
 *  share one socket. */
struct ConnState
{
    int fd = -1;
    std::mutex sendMu;
};

Status
sendFrameLocked(ConnState &conn, service::FrameType type,
                const std::vector<uint8_t> &payload)
{
    const std::vector<uint8_t> bytes =
        service::encodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(conn.sendMu);
    return sendFull(conn.fd, bytes.data(), bytes.size());
}

/** Local (in-process) deadline guard for the pool-less fallback. */
struct AgentDeadlineExceeded
{
};

class DeadlineTraceSource : public TraceSource
{
  public:
    DeadlineTraceSource(TraceSource &inner, uint64_t deadline_at_ms)
        : inner_(inner), deadlineAtMs_(deadline_at_ms)
    {
    }

    bool
    next(DynInst &di) override
    {
        tick(1);
        return inner_.next(di);
    }

    size_t
    nextBlock(DynInst *out, size_t max) override
    {
        tick(max);
        return inner_.nextBlock(out, max);
    }

    bool rewindToStart() override { return inner_.rewindToStart(); }

  private:
    void
    tick(size_t records)
    {
        sinceCheck_ += records;
        if (sinceCheck_ < 4096)
            return;
        sinceCheck_ = 0;
        if (deadlineAtMs_ != 0 && nowMs() > deadlineAtMs_)
            throw AgentDeadlineExceeded{};
    }

    TraceSource &inner_;
    const uint64_t deadlineAtMs_; ///< absolute; 0 = no deadline
    uint64_t sinceCheck_ = 0;
};

/** In-process fallback when the worker pool cannot serve: same
 *  inputs, same stats, no isolation. The connection's beacon thread
 *  covers liveness. */
service::JobResultMsg
runLocal(const service::JobRequestMsg &req, driver::TraceCache &cache)
{
    service::JobResultMsg res;
    res.token = req.token;
    try {
        const Result<const Workload *> wl =
            lookupWorkload(req.workload);
        if (!wl.ok()) {
            res.errorCode = (uint8_t)wl.status().code();
            res.errorMsg = wl.status().message();
            return res;
        }
        const std::shared_ptr<const RecordedTrace> trace =
            cache.get(**wl, req.scale, req.maxInsts);
        RecordedTraceSource replay(*trace);
        DeadlineTraceSource guarded(
            replay,
            req.deadlineMs != 0 ? nowMs() + req.deadlineMs : 0);
        CpuConfig core;
        core.memDep = req.config.memDepPolicy();
        OooCpu cpu(core, req.config.toTimingConfig());
        driver::pumpSimulation(guarded, cpu);
        res.stats = cpu.stats();
    } catch (const AgentDeadlineExceeded &) {
        res.errorCode = (uint8_t)StatusCode::DeadlineExceeded;
        res.errorMsg = "job exceeded its " +
                       std::to_string(req.deadlineMs) + "ms deadline";
    } catch (const std::exception &e) {
        res.errorCode = (uint8_t)StatusCode::Internal;
        res.errorMsg = std::string("job threw: ") + e.what();
    }
    return res;
}

/** Serve one dispatcher connection until EOF/error. */
void
serveConnection(ConnState &conn, driver::WorkerPool &pool,
                driver::TraceCache &cache, unsigned slots)
{
    service::AgentHelloMsg hello;
    hello.pid = (uint64_t)::getpid();
    hello.slots = slots;
    if (!sendFrameLocked(conn, service::FrameType::AgentHello,
                         hello.encode())
             .ok())
        return;

    service::FrameDecoder decoder;
    uint8_t buf[4096];
    for (;;) {
        service::Frame frame;
        bool have = false;
        if (!decoder.next(&frame, &have).ok())
            return; // stream corrupt: the dispatcher reassigns
        if (!have) {
            const Result<size_t> got =
                recvChunk(conn.fd, buf, sizeof(buf));
            if (!got.ok() || *got == 0)
                return; // dispatcher closed (or link died)
            (void)decoder.feed(buf, *got);
            continue;
        }
        if (frame.type != service::FrameType::LeaseRequest)
            return; // protocol violation: drop the connection
        const Result<service::LeaseRequestMsg> lease =
            service::LeaseRequestMsg::decode(frame.payload);
        if (!lease.ok() || !lease->validate().ok())
            return;

        const uint64_t lease_index = g_leaseSeq++;
        // Chaos drill: the whole agent dies on the Nth lease — no
        // result, no FIN flush guarantees, the dispatcher's lease
        // expires and the cell lands on another agent.
        if (driverFaultFires(DriverFaultPoint::AgentKill, lease_index))
            ::raise(SIGKILL);
        // Chaos drill: a straggler — the agent stalls past any sane
        // heartbeat budget *before* beaconing, then still computes
        // and answers. The dispatcher must have moved on; the late
        // result is the at-least-once duplicate.
        if (driverFaultFires(DriverFaultPoint::NetSlow, lease_index))
            std::this_thread::sleep_for(std::chrono::milliseconds(3000));

        // Beacon AgentHeartbeat while the cell computes. First beat
        // immediately: the dispatcher's silence clock must not run
        // down while a cold trace generates.
        std::atomic<bool> done{false};
        std::thread beacon([&conn, &done,
                            lease_id = lease->leaseId] {
            uint64_t seq = 0;
            for (;;) {
                service::AgentHeartbeatMsg beat;
                beat.leaseId = lease_id;
                beat.seq = ++seq;
                if (!sendFrameLocked(
                         conn, service::FrameType::AgentHeartbeat,
                         beat.encode())
                         .ok())
                    return;
                for (int i = 0; i < 15; ++i) {
                    if (done.load(std::memory_order_relaxed))
                        return;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                }
            }
        });

        service::LeaseResultMsg reply;
        reply.leaseId = lease->leaseId;
        driver::WorkerJobDesc job;
        job.token = lease->job.token;
        job.workload = lease->job.workload;
        job.scale = lease->job.scale;
        job.maxInsts = lease->job.maxInsts;
        job.deadlineMs = lease->job.deadlineMs;
        job.config = lease->job.config;
        const Result<CpuStats> ran = pool.runJob(job);
        if (ran.ok()) {
            reply.result.token = job.token;
            reply.result.stats = *ran;
        } else if (ran.status().code() == StatusCode::Unavailable) {
            // Pool cannot serve: compute in-process. Same inputs,
            // byte-identical stats — just without crash containment.
            reply.result = runLocal(lease->job, cache);
        } else {
            reply.result.token = job.token;
            reply.result.errorCode = (uint8_t)ran.status().code();
            reply.result.errorMsg = ran.status().message();
        }

        done.store(true, std::memory_order_relaxed);
        beacon.join();

        const Status sent = sendFrameLocked(
            conn, service::FrameType::LeaseResult, reply.encode());
        if (!sent.ok())
            return; // dispatcher gave up on us; it will reassign
        // Chaos drill: the result is delivered twice. The duplicate
        // sits behind the first copy and surfaces at the *next* lease
        // on this connection, where the dispatcher must dedupe it by
        // fingerprint — never match it to that lease's cell.
        if (driverFaultFires(DriverFaultPoint::ResultDup, lease_index))
            (void)sendFrameLocked(
                conn, service::FrameType::LeaseResult, reply.encode());
    }
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: rarpred-agent [--port=N] [--bind=ADDR] [--workers=N]\n"
        "                     [--worker-heartbeat-ms=N]\n"
        "                     [--trace-budget-bytes=N] "
        "[--trace-budget=N]\n"
        "\n"
        "Serves leased sweep cells to a fleet dispatcher (bench\n"
        "--workers-remote / rarpredd --fleet). --port=0 (default)\n"
        "binds a kernel-assigned port and prints 'agent.port N'.\n"
        "env RARPRED_FAULT arms agent-side fault points (agent_kill,\n"
        "net_slow, result_dup).\n");
    return 2;
}

bool
parseU64Arg(const char *arg, const char *prefix, uint64_t *out)
{
    const size_t n = std::strlen(prefix);
    if (std::strncmp(arg, prefix, n) != 0)
        return false;
    char *end = nullptr;
    *out = std::strtoull(arg + n, &end, 10);
    return end != nullptr && *end == '\0' && end != arg + n;
}

} // namespace

int
main(int argc, char **argv)
{
    AgentOptions opts;
    for (int i = 1; i < argc; ++i) {
        uint64_t v = 0;
        if (parseU64Arg(argv[i], "--port=", &v) && v <= 65535)
            opts.port = (uint16_t)v;
        else if (std::strncmp(argv[i], "--bind=", 7) == 0)
            opts.bind = argv[i] + 7;
        else if (parseU64Arg(argv[i], "--workers=", &v) && v > 0 &&
                 v <= 256)
            opts.workers = (unsigned)v;
        else if (parseU64Arg(argv[i], "--worker-heartbeat-ms=", &v))
            opts.workerHeartbeatMs = v;
        else if (parseU64Arg(argv[i], "--trace-budget-bytes=", &v))
            opts.traceBudgetBytes = v;
        else if (parseU64Arg(argv[i], "--trace-budget=", &v))
            opts.traceBudgetTraces = v;
        else
            return usage();
    }

    // A dispatcher can vanish mid-frame; writes must fail, not kill.
    ::signal(SIGPIPE, SIG_IGN);

    const Status armed = armDriverFaultsFromEnv();
    if (!armed.ok()) {
        std::fprintf(stderr, "rarpred-agent: bad RARPRED_FAULT: %s\n",
                     armed.toString().c_str());
        return 2;
    }

    auto listen_fd = tcpListen(opts.bind, opts.port);
    if (!listen_fd.ok()) {
        std::fprintf(stderr, "rarpred-agent: %s\n",
                     listen_fd.status().toString().c_str());
        return 3;
    }
    auto port = tcpLocalPort(*listen_fd);
    if (!port.ok()) {
        std::fprintf(stderr, "rarpred-agent: %s\n",
                     port.status().toString().c_str());
        return 3;
    }
    // Tests (and scripts) parse this line to find a --port=0 agent.
    std::printf("agent.port %u\n", (unsigned)*port);
    std::fflush(stdout);

    driver::WorkerPoolConfig pool_config;
    pool_config.workers = opts.workers;
    pool_config.heartbeatTimeoutMs = opts.workerHeartbeatMs;
    pool_config.traceBudgetBytes = opts.traceBudgetBytes;
    pool_config.traceBudgetTraces = (uint32_t)opts.traceBudgetTraces;
    driver::WorkerPool pool(pool_config);
    const Status started = pool.start();
    if (!started.ok()) {
        std::fprintf(stderr, "rarpred-agent: worker pool: %s\n",
                     started.toString().c_str());
        return 3;
    }
    // Fallback trace cache for pool-less in-process execution.
    driver::TraceCache cache(driver::TraceCacheConfig{
        opts.traceBudgetBytes, (uint32_t)opts.traceBudgetTraces});

    if (::pipe(g_shutdownPipe) != 0) {
        std::fprintf(stderr, "rarpred-agent: pipe: %s\n",
                     std::strerror(errno));
        return 3;
    }
    struct sigaction sa = {};
    sa.sa_handler = agentShutdownSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    // Accept loop. Connection threads are joined on shutdown; a
    // connection whose dispatcher went away exits on EOF long before
    // that, so the join is a formality for all but live connections.
    constexpr unsigned kMaxConnections = 64;
    std::atomic<unsigned> active{0};
    std::vector<std::thread> threads;
    std::vector<std::unique_ptr<ConnState>> conns;
    for (;;) {
        struct pollfd pfds[2] = {
            {*listen_fd, POLLIN, 0},
            {g_shutdownPipe[0], POLLIN, 0},
        };
        const int rc = ::poll(pfds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pfds[1].revents != 0)
            break; // SIGTERM/SIGINT: graceful shutdown
        if ((pfds[0].revents & POLLIN) == 0)
            continue;
        auto fd = acceptDeadline(*listen_fd, /*timeout_ms=*/1);
        if (!fd.ok())
            continue;
        if (active.load(std::memory_order_relaxed) >=
            kMaxConnections) {
            // Flood guard: shed the connection instead of queueing
            // unbounded dispatcher state.
            ::close(*fd);
            continue;
        }
        auto conn = std::make_unique<ConnState>();
        conn->fd = *fd;
        ConnState &ref = *conn;
        conns.push_back(std::move(conn));
        ++active;
        threads.emplace_back([&ref, &pool, &cache, &active,
                              workers = opts.workers] {
            serveConnection(ref, pool, cache, workers);
            {
                // sendMu also guards fd teardown: the shutdown path
                // below must never shutdown() an fd we are closing.
                std::lock_guard<std::mutex> lock(ref.sendMu);
                ::close(ref.fd);
                ref.fd = -1;
            }
            --active;
        });
    }

    ::close(*listen_fd);
    // Wake blocked connection reads by shutting their sockets down;
    // serveConnection then sees EOF and unwinds.
    for (auto &c : conns) {
        std::lock_guard<std::mutex> lock(c->sendMu);
        if (c->fd >= 0)
            (void)::shutdown(c->fd, SHUT_RDWR);
    }
    for (std::thread &t : threads)
        t.join();
    pool.stop();
    return 0;
}
