/**
 * @file
 * Workload trace memoization for parallel sweeps.
 *
 * A sweep over N predictor configurations replays every workload's
 * execution N times. The functional execution itself is identical
 * across configuration points, so the TraceCache generates each
 * (workload, scale, max_insts) trace exactly once — even when many
 * worker threads request it concurrently — and hands out shared
 * ownership of the immutable recording.
 *
 * Concurrency contract:
 *  - get() may be called from any number of threads.
 *  - Generation is guarded by a per-slot std::once_flag: the first
 *    caller executes the MicroVM, everyone else blocks until the
 *    recording exists, then shares it.
 *  - The returned RecordedTrace is immutable; replaying it requires
 *    no synchronization (each replayer owns its own cursor).
 *
 * Memory: traces are retained for the cache's lifetime (a sweep over
 * the full 18-workload suite holds ~75M packed records, ~2.4 GB).
 * Sweeps that must bound residency can drop the cache between
 * workload groups; jobs keep their shared_ptr alive regardless.
 */

#ifndef RARPRED_DRIVER_TRACE_CACHE_HH_
#define RARPRED_DRIVER_TRACE_CACHE_HH_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "vm/recorded_trace.hh"
#include "workload/workload.hh"

namespace rarpred::driver {

/** Thread-safe generate-once cache of workload execution traces. */
class TraceCache
{
  public:
    /** Counters exposed for the runner's stat dump and for tests. */
    struct CacheStats
    {
        uint64_t generations = 0; ///< traces actually executed
        uint64_t hits = 0;        ///< get() calls served from cache
        uint64_t residentBytes = 0;
        uint64_t residentTraces = 0;
    };

    TraceCache() = default;
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * @return the recorded trace of @p w at @p scale, truncated to
     * @p max_insts — generating it on first request.
     */
    std::shared_ptr<const RecordedTrace>
    get(const Workload &w, uint32_t scale = 1, uint64_t max_insts = ~0ull);

    CacheStats stats() const;

    /**
     * Drop all cached traces (outstanding shared_ptrs stay valid).
     * Must not race with get(): call only between sweeps.
     */
    void clear();

  private:
    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<const RecordedTrace> trace;
    };

    using Key = std::tuple<std::string, uint32_t, uint64_t>;

    mutable std::mutex mu_;
    std::map<Key, std::unique_ptr<Slot>> slots_;
    std::atomic<uint64_t> generations_{0};
    std::atomic<uint64_t> hits_{0};
};

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_TRACE_CACHE_HH_
