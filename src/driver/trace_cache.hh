/**
 * @file
 * Workload trace memoization for parallel sweeps, with graceful
 * degradation under memory pressure.
 *
 * A sweep over N predictor configurations replays every workload's
 * execution N times. The functional execution itself is identical
 * across configuration points, so the TraceCache generates each
 * (workload, scale, max_insts) trace exactly once — even when many
 * worker threads request it concurrently — and hands out shared
 * ownership of the immutable recording.
 *
 * Memory budget: the full 18-workload suite holds ~75M packed
 * records (~2.4 GB). A cache configured with a budget (bytes and/or
 * trace count) keeps only the most-recently-used recordings
 * *resident*; the least-recently-used are evicted and transparently
 * regenerated on the next request. Degradation is graceful by
 * construction — regeneration re-runs the deterministic MicroVM, so
 * results are byte-identical, only slower. Outstanding shared_ptrs
 * held by in-flight jobs keep evicted traces alive regardless, so
 * the budget bounds what the *cache* pins, which is exactly the part
 * a sweep can control.
 *
 * Concurrency contract:
 *  - get()/getFile() may be called from any number of threads.
 *  - Generation is guarded per key: the first caller executes the
 *    MicroVM (or reads the file), everyone else blocks until the
 *    recording exists, then shares it. Distinct keys generate
 *    concurrently.
 *  - The returned RecordedTrace is immutable; replaying it requires
 *    no synchronization (each replayer owns its own cursor).
 */

#ifndef RARPRED_DRIVER_TRACE_CACHE_HH_
#define RARPRED_DRIVER_TRACE_CACHE_HH_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "common/status.hh"
#include "vm/recorded_trace.hh"
#include "workload/workload.hh"

namespace rarpred::driver {

/** Residency limits; 0 means unlimited. */
struct TraceCacheConfig
{
    uint64_t maxResidentBytes = 0;  ///< budget on pinned trace bytes
    uint32_t maxResidentTraces = 0; ///< budget on pinned trace count
};

/** Thread-safe generate-once cache of workload execution traces. */
class TraceCache
{
  public:
    /** Counters exposed for the runner's stat dump and for tests. */
    struct CacheStats
    {
        uint64_t generations = 0;   ///< traces actually executed
        uint64_t hits = 0;          ///< get() calls served from cache
        uint64_t evictions = 0;     ///< traces dropped for the budget
        uint64_t regenerations = 0; ///< generations of evicted keys
        uint64_t residentBytes = 0;
        uint64_t residentTraces = 0;
        uint64_t peakResidentTraces = 0; ///< never exceeds the budget
        uint64_t fileCorruptions = 0;    ///< file records failing CRC
        uint64_t fileRecordsSkipped = 0; ///< records resync dropped
    };

    TraceCache() = default;
    explicit TraceCache(const TraceCacheConfig &config)
        : config_(config)
    {
    }
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * @return the recorded trace of @p w at @p scale, truncated to
     * @p max_insts — generating it on first request or after an
     * eviction.
     */
    std::shared_ptr<const RecordedTrace>
    get(const Workload &w, uint32_t scale = 1, uint64_t max_insts = ~0ull);

    /**
     * @return the recorded contents of the trace file at @p path
     * (format v1/v2, see src/vm/trace_file.hh), loaded once and
     * shared like a generated trace. With @p resync, corrupt records
     * are skipped and counted (CacheStats::fileCorruptions /
     * fileRecordsSkipped) instead of failing the load; without it,
     * corruption surfaces as a non-OK Result.
     */
    Result<std::shared_ptr<const RecordedTrace>>
    getFile(const std::string &path, uint64_t max_insts = ~0ull,
            bool resync = false);

    const TraceCacheConfig &config() const { return config_; }

    CacheStats stats() const;

    /**
     * Drop all cached traces (outstanding shared_ptrs stay valid).
     * Must not race with get(): call only between sweeps.
     */
    void clear();

  private:
    struct Entry
    {
        std::mutex mu;
        std::condition_variable cv;
        bool generating = false;
        bool everGenerated = false;
        /// Outstanding copies keep an evicted trace reachable here
        /// until the last job drops it; re-admitting a still-alive
        /// weak ref is a hit, not a regeneration.
        std::weak_ptr<const RecordedTrace> weak;
        /// Set while resident: the cache's own pin. Cleared by
        /// eviction. Guarded by the cache-wide mutex, not entry mu.
        std::shared_ptr<const RecordedTrace> resident;
        /// Bytes charged against the budget while resident — always
        /// the *actual* size of the pinned trace, re-measured on
        /// every (re-)admission, so a regenerated trace of a
        /// different size never leaves a stale charge behind.
        /// Guarded by the cache-wide mutex.
        uint64_t residentBytes = 0;
        uint64_t lastUse = 0; ///< LRU clock; cache-wide mutex
    };

    using Key = std::tuple<std::string, uint32_t, uint64_t>;

    std::shared_ptr<Entry> lookupEntry(const Key &key);

    /**
     * Generate-once protocol around @p generate (which runs with no
     * locks held and must return the new trace or nullptr on error).
     */
    template <typename Fn>
    std::shared_ptr<const RecordedTrace>
    getOrGenerate(const Key &key, Fn &&generate);

    /** Pin @p trace for @p entry and evict past the budget. */
    void admit(const std::shared_ptr<Entry> &entry,
               const std::shared_ptr<const RecordedTrace> &trace);

    TraceCacheConfig config_;
    mutable std::mutex mu_;
    std::map<Key, std::shared_ptr<Entry>> slots_;
    uint64_t lruClock_ = 0;
    /// Incremental residency totals (cache-wide mutex): admission
    /// charges, eviction refunds. O(1) per admit instead of a full
    /// rescan, and asserted never to exceed the budget.
    uint64_t residentBytes_ = 0;
    uint64_t residentTraces_ = 0;
    uint64_t peakResidentTraces_ = 0;
    std::atomic<uint64_t> generations_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> regenerations_{0};
    std::atomic<uint64_t> fileCorruptions_{0};
    std::atomic<uint64_t> fileRecordsSkipped_{0};
};

} // namespace rarpred::driver

#endif // RARPRED_DRIVER_TRACE_CACHE_HH_
