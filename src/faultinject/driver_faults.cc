#include "faultinject/driver_faults.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace rarpred {

namespace {

constexpr size_t kNumPoints = 24;

struct Arming
{
    bool armed = false;
    uint64_t targetIndex = 0;
    uint64_t remaining = 0;
    uint64_t fired = 0;
};

std::mutex g_mu;
Arming g_points[kNumPoints];
// Fast path: skip the lock entirely while nothing is armed.
std::atomic<int> g_armedCount{0};

} // namespace

const char *
driverFaultPointName(DriverFaultPoint point)
{
    switch (point) {
      case DriverFaultPoint::JobCrash:
        return "job_crash";
      case DriverFaultPoint::JobHang:
        return "job_hang";
      case DriverFaultPoint::JobKill:
        return "job_kill";
      case DriverFaultPoint::JournalTornWrite:
        return "journal_torn";
      case DriverFaultPoint::CachePressure:
        return "cache_pressure";
      case DriverFaultPoint::SnapshotTorn:
        return "snapshot_torn";
      case DriverFaultPoint::SnapshotStale:
        return "snapshot_stale";
      case DriverFaultPoint::StateBitflip:
        return "state_bitflip";
      case DriverFaultPoint::EpochKill:
        return "epoch_kill";
      case DriverFaultPoint::ConnDrop:
        return "conn_drop";
      case DriverFaultPoint::RequestTorn:
        return "request_torn";
      case DriverFaultPoint::StoreCorrupt:
        return "store_corrupt";
      case DriverFaultPoint::DaemonKill:
        return "daemon_kill";
      case DriverFaultPoint::WorkerCrash:
        return "worker_crash";
      case DriverFaultPoint::WorkerHang:
        return "worker_hang";
      case DriverFaultPoint::WorkerFlap:
        return "worker_flap";
      case DriverFaultPoint::WorkerResultTorn:
        return "worker_result_torn";
      case DriverFaultPoint::WorkerResultDup:
        return "worker_result_dup";
      case DriverFaultPoint::NetDrop:
        return "net_drop";
      case DriverFaultPoint::NetPartition:
        return "net_partition";
      case DriverFaultPoint::NetSlow:
        return "net_slow";
      case DriverFaultPoint::AgentKill:
        return "agent_kill";
      case DriverFaultPoint::ResultDup:
        return "result_dup";
      case DriverFaultPoint::StoreEnospc:
        return "store_enospc";
    }
    return "unknown";
}

void
armDriverFault(DriverFaultPoint point, uint64_t target_index,
               uint64_t times)
{
    std::lock_guard<std::mutex> lock(g_mu);
    Arming &a = g_points[(size_t)point];
    if (!a.armed && times > 0)
        g_armedCount.fetch_add(1, std::memory_order_relaxed);
    if (a.armed && times == 0)
        g_armedCount.fetch_sub(1, std::memory_order_relaxed);
    a.armed = times > 0;
    a.targetIndex = target_index;
    a.remaining = times;
    a.fired = 0;
}

void
disarmDriverFaults()
{
    std::lock_guard<std::mutex> lock(g_mu);
    for (Arming &a : g_points)
        a = Arming{};
    g_armedCount.store(0, std::memory_order_relaxed);
}

bool
driverFaultFires(DriverFaultPoint point, uint64_t index)
{
    if (g_armedCount.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> lock(g_mu);
    Arming &a = g_points[(size_t)point];
    if (!a.armed || a.remaining == 0)
        return false;
    if (a.targetIndex != kDriverFaultAnyIndex && a.targetIndex != index)
        return false;
    --a.remaining;
    ++a.fired;
    if (a.remaining == 0) {
        a.armed = false;
        g_armedCount.fetch_sub(1, std::memory_order_relaxed);
    }
    return true;
}

uint64_t
driverFaultFireCount(DriverFaultPoint point)
{
    std::lock_guard<std::mutex> lock(g_mu);
    return g_points[(size_t)point].fired;
}

namespace {

/** Parse a decimal uint64 from [s, s+len); false on junk/empty. */
bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + (uint64_t)(c - '0');
    }
    out = v;
    return true;
}

Status
armOneSpec(const std::string &item)
{
    const size_t colon = item.find(':');
    if (colon == std::string::npos)
        return Status::invalidArgument("fault spec missing ':': " + item);
    const std::string name = item.substr(0, colon);
    std::string rest = item.substr(colon + 1);

    DriverFaultPoint point;
    if (name == "job_crash")
        point = DriverFaultPoint::JobCrash;
    else if (name == "job_hang")
        point = DriverFaultPoint::JobHang;
    else if (name == "job_kill")
        point = DriverFaultPoint::JobKill;
    else if (name == "journal_torn")
        point = DriverFaultPoint::JournalTornWrite;
    else if (name == "cache_pressure")
        point = DriverFaultPoint::CachePressure;
    else if (name == "snapshot_torn")
        point = DriverFaultPoint::SnapshotTorn;
    else if (name == "snapshot_stale")
        point = DriverFaultPoint::SnapshotStale;
    else if (name == "state_bitflip")
        point = DriverFaultPoint::StateBitflip;
    else if (name == "epoch_kill")
        point = DriverFaultPoint::EpochKill;
    else if (name == "conn_drop")
        point = DriverFaultPoint::ConnDrop;
    else if (name == "request_torn")
        point = DriverFaultPoint::RequestTorn;
    else if (name == "store_corrupt")
        point = DriverFaultPoint::StoreCorrupt;
    else if (name == "daemon_kill")
        point = DriverFaultPoint::DaemonKill;
    else if (name == "worker_crash")
        point = DriverFaultPoint::WorkerCrash;
    else if (name == "worker_hang")
        point = DriverFaultPoint::WorkerHang;
    else if (name == "worker_flap")
        point = DriverFaultPoint::WorkerFlap;
    else if (name == "worker_result_torn")
        point = DriverFaultPoint::WorkerResultTorn;
    else if (name == "worker_result_dup")
        point = DriverFaultPoint::WorkerResultDup;
    else if (name == "net_drop")
        point = DriverFaultPoint::NetDrop;
    else if (name == "net_partition")
        point = DriverFaultPoint::NetPartition;
    else if (name == "net_slow")
        point = DriverFaultPoint::NetSlow;
    else if (name == "agent_kill")
        point = DriverFaultPoint::AgentKill;
    else if (name == "result_dup")
        point = DriverFaultPoint::ResultDup;
    else if (name == "store_enospc")
        point = DriverFaultPoint::StoreEnospc;
    else
        return Status::invalidArgument("unknown fault point: " + name);

    uint64_t times = 1;
    const size_t x = rest.find('x');
    if (x != std::string::npos) {
        if (!parseU64(rest.substr(x + 1), times))
            return Status::invalidArgument("bad fault fire count: " + item);
        rest = rest.substr(0, x);
    }
    uint64_t index;
    if (rest == "*")
        index = kDriverFaultAnyIndex;
    else if (!parseU64(rest, index))
        return Status::invalidArgument("bad fault target index: " + item);

    armDriverFault(point, index, times);
    return Status{};
}

} // namespace

Status
armDriverFaultsFromSpec(const std::string &spec)
{
    size_t start = 0;
    while (start <= spec.size()) {
        const size_t comma = spec.find(',', start);
        const size_t end = comma == std::string::npos ? spec.size() : comma;
        if (end > start)
            RARPRED_RETURN_IF_ERROR(
                armOneSpec(spec.substr(start, end - start)));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return Status{};
}

Status
armDriverFaultsFromEnv()
{
    const char *spec = std::getenv("RARPRED_FAULT");
    if (spec == nullptr || spec[0] == '\0')
        return Status{};
    return armDriverFaultsFromSpec(spec);
}

} // namespace rarpred
