/**
 * @file
 * Speculation-safety oracle.
 *
 * Proves, per run, the property the paper only argues: cloaking and
 * bypassing speculation can change *performance*, never *correctness*.
 * Two functional executions of the same program run in lockstep:
 *
 *  - the golden side is a bare MicroVM — the architectural reference;
 *  - the faulted side runs the full cloaking mechanism with a
 *    FaultInjector flipping bits in its predictor state between
 *    instructions, and commits each load the way the hardware would:
 *    the speculative value when one was used and verified correct,
 *    the architectural value after a verification-triggered squash.
 *
 * The oracle asserts the two committed streams (seq, pc, nextPc,
 * eaddr, value) are bit-identical instruction by instruction, and that
 * final register files and data memories match. Any path by which a
 * corrupted speculative value escapes verification shows up as a
 * divergence. Store-set state is optionally exercised and corrupted
 * too; it gates issue timing only, so it participates as a
 * must-not-crash target.
 */

#ifndef RARPRED_FAULTINJECT_SAFETY_ORACLE_HH_
#define RARPRED_FAULTINJECT_SAFETY_ORACLE_HH_

#include <cstdint>
#include <string>

#include "common/status.hh"
#include "core/cloaking.hh"
#include "faultinject/fault_injector.hh"
#include "isa/program.hh"

namespace rarpred {

/** Oracle run configuration. */
struct OracleConfig
{
    /** Mechanism under test. Validated before the run starts. */
    CloakingConfig cloaking{};

    /** Fault injection knobs (ratePerStep 0 = fault-free check). */
    FaultInjectorConfig faults{};

    /** Stop after this many committed instructions. */
    uint64_t maxInsts = ~0ull;

    /** Also drive and corrupt a StoreSetPredictor alongside. */
    bool exerciseStoreSets = true;
};

/** What the oracle observed. */
struct OracleReport
{
    /** No architectural divergence — the safety property held. */
    bool passed = false;

    uint64_t instructions = 0; ///< committed instructions compared
    uint64_t loads = 0;        ///< loads among them

    uint64_t faultsInjected = 0; ///< total bit flips landed
    uint64_t specUsed = 0;       ///< loads committed via a spec value
    uint64_t specSquashed = 0;   ///< wrong spec values caught+squashed

    uint64_t divergences = 0;      ///< mismatching comparisons
    std::string firstDivergence;   ///< description of the first one
    uint64_t goldenDigest = 0;     ///< digest of the golden stream
    uint64_t faultedDigest = 0;    ///< digest of the faulted stream
};

/**
 * Run the oracle over @p program.
 * @return the report, or an error when the configuration is invalid.
 * A completed run with a violated safety property is NOT an error:
 * check report.passed (and report.firstDivergence).
 */
Result<OracleReport> runSafetyOracle(const Program &program,
                                     const OracleConfig &config);

} // namespace rarpred

#endif // RARPRED_FAULTINJECT_SAFETY_ORACLE_HH_
