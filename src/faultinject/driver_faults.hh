/**
 * @file
 * Deterministic fault points in the sweep driver itself.
 *
 * The predictor-state FaultInjector (fault_injector.hh) attacks the
 * *simulated* machine; these fault points attack the *harness* — the
 * thread pool, the checkpoint journal and the trace cache — so the
 * whole recovery path (retry, quarantine, resume, regenerate) is
 * exercised by tests instead of waiting for a real crash at 3 a.m.
 *
 * A fault point is armed for a specific target index (a job index for
 * the job faults, an append index for the journal fault) and fires a
 * bounded number of times; firing is consumed atomically so a
 * retried job observes exactly the configured number of failures.
 * When nothing is armed the checks are a single relaxed atomic load.
 *
 * Points:
 *  - JobCrash        : the worker throws before running the job body.
 *  - JobHang         : the worker wedges until the job deadline.
 *  - JobKill         : the worker SIGKILLs the whole process — for
 *                      end-to-end crash/resume tests of real benches.
 *  - JournalTornWrite: SweepJournal::append() writes half a record
 *                      and latches an I/O error (simulated power cut).
 *  - CachePressure   : TraceCache behaves as if its memory budget
 *                      were one trace, evicting on every admit.
 *  - SnapshotTorn    : the epoch snapshot writer persists only half
 *                      of the image (simulated power cut mid-write);
 *                      a later --restore must reject it by CRC.
 *  - SnapshotStale   : the snapshot is written with a wrong job
 *                      fingerprint, as if left over from a different
 *                      configuration; --restore must reject it.
 *  - StateBitflip    : a structural invariant of a hint table (DDT,
 *                      DPNT, synonym file, SRT — round-robin by fire
 *                      count, DDT first) is violated mid-simulation;
 *                      the online auditor must detect and flush it.
 *  - EpochKill       : SIGKILL immediately after the Nth epoch
 *                      snapshot is durably on disk — for end-to-end
 *                      kill/--restore byte-identity tests.
 *  - ConnDrop        : the service daemon closes a client connection
 *                      mid-reply-stream (simulated network fault);
 *                      the daemon must keep serving other tenants.
 *  - RequestTorn     : the daemon observes a truncated request frame,
 *                      as if the client died mid-send; the protocol
 *                      decoder must reject it as a recoverable error.
 *  - StoreCorrupt    : the result store flips one payload byte as it
 *                      persists a cell; a later read must reject the
 *                      entry by CRC and transparently re-simulate.
 *  - DaemonKill      : SIGKILL the daemon immediately after the Nth
 *                      result-store write is durable — for zero-loss
 *                      restart/replay byte-identity tests.
 *  - WorkerCrash     : a pool worker process raises SIGKILL mid-job;
 *                      the supervisor must contain it (restart the
 *                      worker, retry the cell, identical stats).
 *  - WorkerHang      : a pool worker wedges without heartbeats; the
 *                      supervisor must kill it at the heartbeat
 *                      deadline and retry.
 *  - WorkerFlap      : a pool worker exits immediately on spawn,
 *                      before its hello; repeated flapping must trip
 *                      the flap detector and degrade the pool to
 *                      in-process execution.
 *  - WorkerResultTorn: a worker flips one byte of its encoded result
 *                      frame; the supervisor must reject it by CRC
 *                      and retry, never merge torn stats.
 *  - WorkerResultDup : a worker sends its JobResult frame twice; the
 *                      stale duplicate arrives ahead of the next
 *                      job's result on the same slot and must be
 *                      dropped, never matched to the wrong cell.
 *  - NetDrop         : the fleet dispatcher loses the agent
 *                      connection right after sending a lease; the
 *                      lease must expire and the cell be reassigned.
 *  - NetPartition    : a fleet connect attempt fails as if the agent
 *                      host were unreachable; capped-backoff
 *                      reconnects must ride it out (or demote the
 *                      agent when it persists).
 *  - NetSlow         : the agent stalls without heartbeats before
 *                      serving a lease (straggler drill); the
 *                      dispatcher must expire the lease at the
 *                      heartbeat deadline and reassign.
 *  - AgentKill       : the agent process raises SIGKILL on receipt
 *                      of the Nth lease — every connection to it
 *                      drops mid-cell and the cells are reassigned.
 *  - ResultDup       : the agent sends a LeaseResult twice; the
 *                      dispatcher must dedupe by cell fingerprint
 *                      and assert the duplicate is byte-identical.
 *  - StoreEnospc     : the result store's durable write fails as if
 *                      the disk were full; the write must degrade to
 *                      a non-fatal Unavailable (skip caching, still
 *                      serve the computed result).
 *
 * The worker points are armed in — and consumed by — the *supervisor*
 * process: the fault order travels to the worker in the JobRequest
 * (or its argv, for WorkerFlap), so a fire budget of one means one
 * failure even though the retry may land on a different worker.
 *
 * Arming is process-global (the driver is, too). Tests arm
 * programmatically; CLI runs arm via the RARPRED_FAULT environment
 * variable, e.g. RARPRED_FAULT="job_kill:40" or
 * "job_crash:3x2,journal_torn:10".
 */

#ifndef RARPRED_FAULTINJECT_DRIVER_FAULTS_HH_
#define RARPRED_FAULTINJECT_DRIVER_FAULTS_HH_

#include <cstdint>
#include <string>

#include "common/status.hh"

namespace rarpred {

/** Places in the driver where an injected fault can fire. */
enum class DriverFaultPoint : uint8_t
{
    JobCrash,
    JobHang,
    JobKill,
    JournalTornWrite,
    CachePressure,
    SnapshotTorn,
    SnapshotStale,
    StateBitflip,
    EpochKill,
    ConnDrop,
    RequestTorn,
    StoreCorrupt,
    DaemonKill,
    WorkerCrash,
    WorkerHang,
    WorkerFlap,
    WorkerResultTorn,
    WorkerResultDup,
    NetDrop,
    NetPartition,
    NetSlow,
    AgentKill,
    ResultDup,
    StoreEnospc,
};

/** @return stable spec name for @p point ("job_crash", ...). */
const char *driverFaultPointName(DriverFaultPoint point);

/**
 * Arm @p point for @p target_index, firing at most @p times before
 * going inert. kDriverFaultAnyIndex matches every index. Re-arming
 * the same point replaces the previous arming.
 */
void armDriverFault(DriverFaultPoint point, uint64_t target_index,
                    uint64_t times = 1);

/** Index wildcard for armDriverFault(). */
constexpr uint64_t kDriverFaultAnyIndex = ~0ull;

/** Disarm every driver fault point (tests call this in teardown). */
void disarmDriverFaults();

/**
 * Check-and-consume: @return true iff @p point is armed for
 * @p index and still has firings left. Each true return consumes one
 * firing. Near-free when nothing is armed.
 */
bool driverFaultFires(DriverFaultPoint point, uint64_t index);

/** @return firings consumed so far at @p point (for test asserts). */
uint64_t driverFaultFireCount(DriverFaultPoint point);

/**
 * Arm fault points from a spec string:
 *   spec     := point ":" index [ "x" times ] { "," spec }
 *   point    := job_crash | job_hang | job_kill | journal_torn |
 *               cache_pressure | snapshot_torn | snapshot_stale |
 *               state_bitflip | epoch_kill | conn_drop |
 *               request_torn | store_corrupt | daemon_kill |
 *               worker_crash | worker_hang | worker_flap |
 *               worker_result_torn | worker_result_dup |
 *               net_drop | net_partition | net_slow | agent_kill |
 *               result_dup | store_enospc
 *   index    := decimal target index, or "*" for any
 *   times    := decimal fire budget (default 1)
 * e.g. "job_kill:40", "job_crash:3x2,cache_pressure:*".
 */
Status armDriverFaultsFromSpec(const std::string &spec);

/**
 * Arm from the RARPRED_FAULT environment variable when set; no-op
 * (OK) when unset. Called by the benches' shared arg parser so any
 * sweep binary can be crashed on demand.
 */
Status armDriverFaultsFromEnv();

} // namespace rarpred

#endif // RARPRED_FAULTINJECT_DRIVER_FAULTS_HH_
