#include "faultinject/safety_oracle.hh"

#include <algorithm>

#include "isa/reg.hh"
#include "predictor/store_sets.hh"
#include "vm/micro_vm.hh"

namespace rarpred {

namespace {

/** splitmix64-style mix, folded into a running stream digest. */
uint64_t
digestMix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    return h ^ (h >> 33);
}

uint64_t
digestInst(uint64_t h, const DynInst &di, uint64_t committed_value)
{
    h = digestMix(h, di.seq);
    h = digestMix(h, di.pc);
    h = digestMix(h, di.nextPc);
    h = digestMix(h, di.eaddr);
    h = digestMix(h, committed_value);
    return h;
}

std::string
describeDivergence(const char *what, const DynInst &di, uint64_t golden,
                   uint64_t faulted)
{
    return std::string(what) + " diverged at seq " +
           std::to_string(di.seq) + " (pc 0x" + std::to_string(di.pc) +
           "): golden " + std::to_string(golden) + " vs faulted " +
           std::to_string(faulted);
}

} // namespace

Result<OracleReport>
runSafetyOracle(const Program &program, const OracleConfig &config)
{
    RARPRED_RETURN_IF_ERROR(config.cloaking.validate());

    MicroVM golden(program);
    MicroVM faulted(program);
    CloakingEngine engine(config.cloaking);
    StoreSetPredictor storeSets;
    FaultInjector injector(config.faults);
    injector.attach(&engine);
    if (config.exerciseStoreSets)
        injector.attach(&storeSets);

    OracleReport report;
    auto diverge = [&](std::string what) {
        if (report.divergences == 0)
            report.firstDivergence = std::move(what);
        ++report.divergences;
    };

    DynInst gi, fi;
    while (report.instructions < config.maxInsts) {
        const bool golden_has = golden.next(gi);
        const bool faulted_has = faulted.next(fi);
        if (golden_has != faulted_has) {
            diverge("stream length diverged at seq " +
                    std::to_string(report.instructions));
            break;
        }
        if (!golden_has)
            break;

        // Faults land between instructions, exactly where a particle
        // strike would relative to the commit stream.
        injector.step();

        LoadOutcome outcome = engine.processInst(fi);

        // Commit the value the mechanism would commit: the speculative
        // value when used and verified correct, the architectural
        // value otherwise (including after a verification squash).
        uint64_t committed = fi.value;
        if (outcome.used) {
            ++report.specUsed;
            if (outcome.correct) {
                committed = outcome.specValue;
            } else {
                ++report.specSquashed; // recovery replays the real load
            }
        }

        if (config.exerciseStoreSets && fi.isMem()) {
            // Drive the (possibly corrupted) store-set tables the way
            // the LSQ would; predictions affect timing only, so the
            // oracle merely requires the calls to stay well-defined.
            if (fi.isStore()) {
                (void)storeSets.onStoreDispatch(fi.pc, fi.seq);
                storeSets.onStoreRetire(fi.pc, fi.seq);
            } else {
                (void)storeSets.onLoadDispatch(fi.pc);
            }
        }

        if (gi.pc != fi.pc || gi.nextPc != fi.nextPc ||
            gi.eaddr != fi.eaddr) {
            diverge(describeDivergence("control/address", gi, gi.pc,
                                       fi.pc));
        }
        if (committed != gi.value) {
            diverge(describeDivergence("committed value", gi, gi.value,
                                       committed));
        }

        report.goldenDigest = digestInst(report.goldenDigest, gi, gi.value);
        report.faultedDigest =
            digestInst(report.faultedDigest, fi, committed);
        ++report.instructions;
        if (gi.isLoad())
            ++report.loads;
    }

    // Architectural end-state must also match: register file...
    for (RegId r = 0; r < reg::kNumRegs; ++r) {
        if (golden.readReg(r) != faulted.readReg(r)) {
            diverge("register r" + std::to_string(r) +
                    " diverged: golden " +
                    std::to_string(golden.readReg(r)) + " vs faulted " +
                    std::to_string(faulted.readReg(r)));
        }
    }
    // ...and every word of data memory.
    const uint64_t mem_bytes =
        std::min(golden.memBytes(), faulted.memBytes());
    for (uint64_t addr = 0; addr < mem_bytes; addr += 8) {
        if (golden.readWord(addr) != faulted.readWord(addr)) {
            diverge("memory word at 0x" + std::to_string(addr) +
                    " diverged");
            break; // one is enough; don't spam the report
        }
    }

    report.faultsInjected = injector.faultsInjected();
    report.passed = report.divergences == 0 &&
                    report.goldenDigest == report.faultedDigest;
    return report;
}

} // namespace rarpred
