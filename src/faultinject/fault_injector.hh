/**
 * @file
 * Deterministic fault injection into speculation state.
 *
 * The central safety claim of cloaking/bypassing (and of this repo) is
 * that predictor state — DDT, DPNT, synonym file, store sets — is
 * *performance-only*: arbitrary corruption may change how often values
 * are predicted or how fast loads issue, but the verification load
 * guarantees it can never change an architectural result. FaultInjector
 * makes that claim testable by flipping bits in live predictor state at
 * a configurable, seed-reproducible rate while a simulation runs; the
 * speculation-safety oracle (safety_oracle.hh) then checks the
 * architectural stream against a golden run.
 *
 * A separate utility corrupts trace files on disk, for exercising the
 * trace format's CRC detection and resync recovery.
 */

#ifndef RARPRED_FAULTINJECT_FAULT_INJECTOR_HH_
#define RARPRED_FAULTINJECT_FAULT_INJECTOR_HH_

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/status.hh"

namespace rarpred {

class CloakingEngine;
class StoreSetPredictor;

/** Injection knobs. All rates are per attached target, per step(). */
struct FaultInjectorConfig
{
    /** RNG seed; the same seed replays the same fault sequence. */
    uint64_t seed = 1;

    /**
     * Probability that one bit flip is injected into each enabled
     * target on each step() (one step per simulated instruction).
     * 0 disables injection entirely.
     */
    double ratePerStep = 0.0;

    bool targetDdt = true;         ///< dependence detection table
    bool targetDpnt = true;        ///< prediction/naming table
    bool targetSynonymFile = true; ///< speculative value storage
    bool targetStoreSets = true;   ///< SSIT/LFST
};

/**
 * Flips bits in attached predictor structures at a configured rate.
 *
 * Drive it with step() once per simulated instruction, between
 * instructions — exactly where a particle strike or a latent array
 * fault would land relative to the pipeline's commit stream.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultInjectorConfig &config);

    /** Target the DDT, DPNT and synonym file inside @p engine. */
    void attach(CloakingEngine *engine) { engine_ = engine; }

    /** Target the SSIT/LFST of @p store_sets. */
    void attach(StoreSetPredictor *store_sets)
    {
        storeSets_ = store_sets;
    }

    /** Advance one instruction: maybe inject into each enabled target. */
    void step();

    /** @return total bit flips injected across all targets. */
    uint64_t
    faultsInjected() const
    {
        return faultsDdt_.value() + faultsDpnt_.value() + faultsSf_.value() +
               faultsStoreSets_.value();
    }

    uint64_t faultsDdt() const { return faultsDdt_.value(); }
    uint64_t faultsDpnt() const { return faultsDpnt_.value(); }
    uint64_t faultsSynonymFile() const { return faultsSf_.value(); }
    uint64_t faultsStoreSets() const { return faultsStoreSets_.value(); }

    /** Register per-target fault counters under @p group. */
    void registerStats(StatGroup &group);

    const FaultInjectorConfig &config() const { return config_; }

  private:
    FaultInjectorConfig config_;
    Rng rng_;
    CloakingEngine *engine_ = nullptr;
    StoreSetPredictor *storeSets_ = nullptr;
    Counter faultsDdt_;
    Counter faultsDpnt_;
    Counter faultsSf_;
    Counter faultsStoreSets_;
};

/**
 * Flip @p bits random bits inside the *record region* of the trace
 * file at @p path (the header is left intact), deterministically from
 * @p seed. Used to prove the reader's CRC catches payload damage.
 * @return the number of bits actually flipped (0 for an empty trace).
 */
Result<uint64_t> corruptTraceFile(const std::string &path, uint64_t bits,
                                  uint64_t seed);

} // namespace rarpred

#endif // RARPRED_FAULTINJECT_FAULT_INJECTOR_HH_
