#include "faultinject/fault_injector.hh"

#include <fstream>

#include "core/cloaking.hh"
#include "predictor/store_sets.hh"
#include "vm/trace_file.hh"

namespace rarpred {

FaultInjector::FaultInjector(const FaultInjectorConfig &config)
    : config_(config), rng_(config.seed)
{
}

void
FaultInjector::step()
{
    if (config_.ratePerStep <= 0.0)
        return;
    if (engine_) {
        if (config_.targetDdt && rng_.chance(config_.ratePerStep) &&
            engine_->detector().injectFault(rng_)) {
            ++faultsDdt_;
        }
        if (config_.targetDpnt && rng_.chance(config_.ratePerStep) &&
            engine_->dpnt().injectFault(rng_)) {
            ++faultsDpnt_;
        }
        if (config_.targetSynonymFile && rng_.chance(config_.ratePerStep) &&
            engine_->synonymFile().injectFault(rng_)) {
            ++faultsSf_;
        }
    }
    if (storeSets_ && config_.targetStoreSets &&
        rng_.chance(config_.ratePerStep) && storeSets_->injectFault(rng_)) {
        ++faultsStoreSets_;
    }
}

void
FaultInjector::registerStats(StatGroup &group)
{
    group.registerCounter("faultsDdt", &faultsDdt_);
    group.registerCounter("faultsDpnt", &faultsDpnt_);
    group.registerCounter("faultsSynonymFile", &faultsSf_);
    group.registerCounter("faultsStoreSets", &faultsStoreSets_);
}

Result<uint64_t>
corruptTraceFile(const std::string &path, uint64_t bits, uint64_t seed)
{
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    if (!file)
        return Status::ioError("cannot open trace file for corruption: " +
                               path);
    file.seekg(0, std::ios::end);
    const uint64_t size = (uint64_t)file.tellg();
    const uint64_t header = traceHeaderBytes();
    if (size <= header)
        return (uint64_t)0; // no record bytes to damage
    Rng rng(seed);
    uint64_t flipped = 0;
    for (uint64_t i = 0; i < bits; ++i) {
        const uint64_t offset = header + rng.below(size - header);
        file.seekg((std::streamoff)offset);
        char byte;
        file.read(&byte, 1);
        byte = (char)(byte ^ (char)(1u << rng.below(8)));
        file.seekp((std::streamoff)offset);
        file.write(&byte, 1);
        if (!file)
            return Status::ioError("read/write failed while corrupting: " +
                                   path);
        ++flipped;
    }
    file.flush();
    if (!file)
        return Status::ioError("flush failed while corrupting: " + path);
    return flipped;
}

} // namespace rarpred
