/**
 * @file
 * MicroISA opcode set and static classification helpers.
 *
 * A small RISC ISA sufficient to express the synthetic SPEC'95-like
 * workloads: integer/floating ALU operations with the functional-unit
 * latencies of the paper's Multiscalar configuration, word loads and
 * stores, conditional branches, direct calls and indirect returns.
 */

#ifndef RARPRED_ISA_OPCODE_HH_
#define RARPRED_ISA_OPCODE_HH_

#include <cstdint>

namespace rarpred {

/** Every MicroISA operation. */
enum class Opcode : uint8_t
{
    Nop,

    // Integer ALU (1 cycle, except Mul 4 and Div 12).
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Slt,
    Addi,
    Andi,
    Ori,
    Slti,
    Slli,
    Srli,
    Li,  ///< dst = imm (64-bit immediate materialization)
    Mov, ///< dst = src1

    // Memory (word = 8 bytes; address = int_reg[src1] + imm).
    Lw, ///< integer load word
    Sw, ///< integer store word; data in src2
    Lf, ///< floating-point load word
    Sf, ///< floating-point store word; data in src2

    // Floating point. S = single-precision latency class, D = double.
    FaddS, ///< 2 cycles
    FaddD, ///< 2 cycles
    FsubS, ///< 2 cycles
    FsubD, ///< 2 cycles
    FcmpS, ///< 2 cycles; integer dst receives 0/1
    FcmpD, ///< 2 cycles; integer dst receives 0/1
    FmulS, ///< 4 cycles
    FmulD, ///< 5 cycles
    FdivS, ///< 12 cycles
    FdivD, ///< 15 cycles
    Fmov,  ///< fp register move
    Fcvt,  ///< int src1 -> fp dst conversion (2 cycles)

    // Control. Branches compare int regs src1, src2 against target imm.
    Beq,
    Bne,
    Blt,
    Bge,
    Jump, ///< unconditional direct jump
    Call, ///< direct call; writes return address into reg::kRa
    Ret,  ///< indirect jump through src1 (conventionally reg::kRa)

    Halt, ///< terminate the program
};

/** Broad instruction classes used by the pipeline model. */
enum class InstClass : uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd, ///< add/sub/compare/convert: 2 cycles
    FpMulS,
    FpMulD,
    FpDivS,
    FpDivD,
    Load,
    Store,
    Branch,
    Nop,
};

/** @return the class of @p op. */
InstClass classOf(Opcode op);

/** @return true for Lw/Lf. */
bool isLoad(Opcode op);

/** @return true for Sw/Sf. */
bool isStore(Opcode op);

/** @return true for any control transfer (branches, jumps, call, ret). */
bool isControl(Opcode op);

/** @return true for conditional branches only. */
bool isCondBranch(Opcode op);

/** @return execution latency in cycles per the paper's Section 5.1. */
unsigned latencyOf(Opcode op);

/** @return a short mnemonic for disassembly. */
const char *mnemonic(Opcode op);

} // namespace rarpred

#endif // RARPRED_ISA_OPCODE_HH_
