/**
 * @file
 * Register identifiers for the MicroISA.
 *
 * The machine has 32 integer registers (r0 hardwired to zero) and 32
 * floating-point registers, flat-encoded as 0..31 and 32..63. This
 * mirrors the MIPS-I register model the paper's binaries used.
 */

#ifndef RARPRED_ISA_REG_HH_
#define RARPRED_ISA_REG_HH_

#include <cstdint>

namespace rarpred {

/** Flat register index: 0..31 integer, 32..63 floating point. */
using RegId = uint8_t;

namespace reg {

constexpr RegId kNumIntRegs = 32;
constexpr RegId kNumFpRegs = 32;
constexpr RegId kNumRegs = kNumIntRegs + kNumFpRegs;

/** Sentinel meaning "no register operand". */
constexpr RegId kNone = 0xff;

/** The always-zero integer register. */
constexpr RegId kZero = 0;

/** Conventional stack pointer. */
constexpr RegId kSp = 29;

/** Conventional global/static base pointer. */
constexpr RegId kGp = 28;

/** Conventional return-address register written by CALL. */
constexpr RegId kRa = 31;

/** @return true when @p r names a floating-point register. */
constexpr bool
isFp(RegId r)
{
    return r >= kNumIntRegs && r < kNumRegs;
}

/** @return the i-th integer register id. */
constexpr RegId
intReg(unsigned i)
{
    return (RegId)i;
}

/** @return the i-th floating-point register id. */
constexpr RegId
fpReg(unsigned i)
{
    return (RegId)(kNumIntRegs + i);
}

} // namespace reg
} // namespace rarpred

#endif // RARPRED_ISA_REG_HH_
