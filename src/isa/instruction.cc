#include "isa/instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace rarpred {

InstClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
        return InstClass::Nop;
      case Opcode::Mul:
        return InstClass::IntMul;
      case Opcode::Div:
        return InstClass::IntDiv;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Slt:
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Slti:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Li:
      case Opcode::Mov:
        return InstClass::IntAlu;
      case Opcode::FaddS:
      case Opcode::FaddD:
      case Opcode::FsubS:
      case Opcode::FsubD:
      case Opcode::FcmpS:
      case Opcode::FcmpD:
      case Opcode::Fmov:
      case Opcode::Fcvt:
        return InstClass::FpAdd;
      case Opcode::FmulS:
        return InstClass::FpMulS;
      case Opcode::FmulD:
        return InstClass::FpMulD;
      case Opcode::FdivS:
        return InstClass::FpDivS;
      case Opcode::FdivD:
        return InstClass::FpDivD;
      case Opcode::Lw:
      case Opcode::Lf:
        return InstClass::Load;
      case Opcode::Sw:
      case Opcode::Sf:
        return InstClass::Store;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jump:
      case Opcode::Call:
      case Opcode::Ret:
        return InstClass::Branch;
    }
    rarpred_panic("unknown opcode");
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Lw || op == Opcode::Lf;
}

bool
isStore(Opcode op)
{
    return op == Opcode::Sw || op == Opcode::Sf;
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jump:
      case Opcode::Call:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

unsigned
latencyOf(Opcode op)
{
    // Latencies per Section 5.1 of the paper.
    switch (classOf(op)) {
      case InstClass::IntAlu:
      case InstClass::Nop:
      case InstClass::Branch:
        return 1;
      case InstClass::IntMul:
        return 4;
      case InstClass::IntDiv:
        return 12;
      case InstClass::FpAdd:
        return 2;
      case InstClass::FpMulS:
        return 4;
      case InstClass::FpMulD:
        return 5;
      case InstClass::FpDivS:
        return 12;
      case InstClass::FpDivD:
        return 15;
      case InstClass::Load:
      case InstClass::Store:
        return 1; // address generation; memory latency modelled separately
    }
    rarpred_panic("unknown instruction class");
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Slt: return "slt";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Slti: return "slti";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Li: return "li";
      case Opcode::Mov: return "mov";
      case Opcode::Lw: return "lw";
      case Opcode::Sw: return "sw";
      case Opcode::Lf: return "lf";
      case Opcode::Sf: return "sf";
      case Opcode::FaddS: return "fadd.s";
      case Opcode::FaddD: return "fadd.d";
      case Opcode::FsubS: return "fsub.s";
      case Opcode::FsubD: return "fsub.d";
      case Opcode::FcmpS: return "fcmp.s";
      case Opcode::FcmpD: return "fcmp.d";
      case Opcode::FmulS: return "fmul.s";
      case Opcode::FmulD: return "fmul.d";
      case Opcode::FdivS: return "fdiv.s";
      case Opcode::FdivD: return "fdiv.d";
      case Opcode::Fmov: return "fmov";
      case Opcode::Fcvt: return "fcvt";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jump: return "j";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
    }
    return "???";
}

namespace {

std::string
regName(RegId r)
{
    if (r == reg::kNone)
        return "-";
    std::ostringstream os;
    if (reg::isFp(r))
        os << "f" << (unsigned)(r - reg::kNumIntRegs);
    else
        os << "r" << (unsigned)r;
    return os.str();
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << mnemonic(inst.op);
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::Lw:
      case Opcode::Lf:
        os << " " << regName(inst.dst) << ", " << inst.imm << "("
           << regName(inst.src1) << ")";
        break;
      case Opcode::Sw:
      case Opcode::Sf:
        os << " " << regName(inst.src2) << ", " << inst.imm << "("
           << regName(inst.src1) << ")";
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        os << " " << regName(inst.src1) << ", " << regName(inst.src2)
           << ", @" << inst.target;
        break;
      case Opcode::Jump:
      case Opcode::Call:
        os << " @" << inst.target;
        break;
      case Opcode::Ret:
        os << " " << regName(inst.src1);
        break;
      case Opcode::Li:
        os << " " << regName(inst.dst) << ", " << inst.imm;
        break;
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Slti:
      case Opcode::Slli:
      case Opcode::Srli:
        os << " " << regName(inst.dst) << ", " << regName(inst.src1) << ", "
           << inst.imm;
        break;
      default:
        os << " " << regName(inst.dst) << ", " << regName(inst.src1);
        if (inst.src2 != reg::kNone)
            os << ", " << regName(inst.src2);
        break;
    }
    return os.str();
}

} // namespace rarpred
