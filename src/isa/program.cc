#include "isa/program.hh"

#include <sstream>

namespace rarpred {

std::string
Program::listing() const
{
    std::ostringstream os;
    for (size_t i = 0; i < code_.size(); ++i)
        os << pcOfIndex(i) << ":\t" << disassemble(code_[i]) << "\n";
    return os.str();
}

} // namespace rarpred
