#include "isa/program_builder.hh"

#include <bit>
#include <utility>

#include "common/logging.hh"

namespace rarpred {

ProgramBuilder::ProgramBuilder(std::string name, uint64_t mem_bytes)
    : name_(std::move(name)), memBytes_(mem_bytes), dataBrk_(0x1000)
{
    rarpred_assert(mem_bytes % 8 == 0);
    rarpred_assert(mem_bytes > 0x1000);
}

void
ProgramBuilder::emit(Instruction inst)
{
    rarpred_assert(!built_);
    code_.push_back(inst);
}

void
ProgramBuilder::label(const std::string &name)
{
    auto [it, inserted] = labels_.emplace(name, (uint32_t)code_.size());
    (void)it;
    if (!inserted)
        rarpred_fatal("duplicate label: " + name);
}

void
ProgramBuilder::branchTo(Opcode op, RegId s1, RegId s2,
                         const std::string &target)
{
    Instruction inst;
    inst.op = op;
    inst.src1 = s1;
    inst.src2 = s2;
    fixups_.emplace_back(code_.size(), target);
    emit(inst);
}

void
ProgramBuilder::beq(RegId s1, RegId s2, const std::string &target)
{
    branchTo(Opcode::Beq, s1, s2, target);
}

void
ProgramBuilder::bne(RegId s1, RegId s2, const std::string &target)
{
    branchTo(Opcode::Bne, s1, s2, target);
}

void
ProgramBuilder::blt(RegId s1, RegId s2, const std::string &target)
{
    branchTo(Opcode::Blt, s1, s2, target);
}

void
ProgramBuilder::bge(RegId s1, RegId s2, const std::string &target)
{
    branchTo(Opcode::Bge, s1, s2, target);
}

void
ProgramBuilder::jump(const std::string &target)
{
    branchTo(Opcode::Jump, reg::kNone, reg::kNone, target);
}

void
ProgramBuilder::call(const std::string &target)
{
    Instruction inst;
    inst.op = Opcode::Call;
    inst.dst = reg::kRa;
    fixups_.emplace_back(code_.size(), target);
    emit(inst);
}

void
ProgramBuilder::ret(RegId ra)
{
    Instruction inst;
    inst.op = Opcode::Ret;
    inst.src1 = ra;
    emit(inst);
}

void
ProgramBuilder::halt()
{
    emit({Opcode::Halt, reg::kNone, reg::kNone, reg::kNone, 0, 0});
}

void
ProgramBuilder::nop()
{
    emit({Opcode::Nop, reg::kNone, reg::kNone, reg::kNone, 0, 0});
}

namespace {

Instruction
threeReg(Opcode op, RegId d, RegId s1, RegId s2)
{
    Instruction inst;
    inst.op = op;
    inst.dst = d;
    inst.src1 = s1;
    inst.src2 = s2;
    return inst;
}

Instruction
twoRegImm(Opcode op, RegId d, RegId s1, int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.dst = d;
    inst.src1 = s1;
    inst.imm = imm;
    return inst;
}

} // namespace

void
ProgramBuilder::add(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Add, d, s1, s2));
}

void
ProgramBuilder::sub(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Sub, d, s1, s2));
}

void
ProgramBuilder::mul(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Mul, d, s1, s2));
}

void
ProgramBuilder::div(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Div, d, s1, s2));
}

void
ProgramBuilder::and_(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::And, d, s1, s2));
}

void
ProgramBuilder::or_(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Or, d, s1, s2));
}

void
ProgramBuilder::xor_(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Xor, d, s1, s2));
}

void
ProgramBuilder::sll(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Sll, d, s1, s2));
}

void
ProgramBuilder::srl(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Srl, d, s1, s2));
}

void
ProgramBuilder::slt(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::Slt, d, s1, s2));
}

void
ProgramBuilder::addi(RegId d, RegId s1, int64_t imm)
{
    emit(twoRegImm(Opcode::Addi, d, s1, imm));
}

void
ProgramBuilder::andi(RegId d, RegId s1, int64_t imm)
{
    emit(twoRegImm(Opcode::Andi, d, s1, imm));
}

void
ProgramBuilder::ori(RegId d, RegId s1, int64_t imm)
{
    emit(twoRegImm(Opcode::Ori, d, s1, imm));
}

void
ProgramBuilder::slti(RegId d, RegId s1, int64_t imm)
{
    emit(twoRegImm(Opcode::Slti, d, s1, imm));
}

void
ProgramBuilder::slli(RegId d, RegId s1, int64_t imm)
{
    emit(twoRegImm(Opcode::Slli, d, s1, imm));
}

void
ProgramBuilder::srli(RegId d, RegId s1, int64_t imm)
{
    emit(twoRegImm(Opcode::Srli, d, s1, imm));
}

void
ProgramBuilder::li(RegId d, int64_t imm)
{
    emit(twoRegImm(Opcode::Li, d, reg::kNone, imm));
}

void
ProgramBuilder::mov(RegId d, RegId s1)
{
    emit(threeReg(Opcode::Mov, d, s1, reg::kNone));
}

void
ProgramBuilder::lw(RegId d, RegId base, int64_t offset)
{
    rarpred_assert(!reg::isFp(d));
    emit(twoRegImm(Opcode::Lw, d, base, offset));
}

void
ProgramBuilder::sw(RegId base, int64_t offset, RegId src)
{
    rarpred_assert(!reg::isFp(src));
    Instruction inst = twoRegImm(Opcode::Sw, reg::kNone, base, offset);
    inst.src2 = src;
    emit(inst);
}

void
ProgramBuilder::lf(RegId d, RegId base, int64_t offset)
{
    rarpred_assert(reg::isFp(d));
    emit(twoRegImm(Opcode::Lf, d, base, offset));
}

void
ProgramBuilder::sf(RegId base, int64_t offset, RegId src)
{
    rarpred_assert(reg::isFp(src));
    Instruction inst = twoRegImm(Opcode::Sf, reg::kNone, base, offset);
    inst.src2 = src;
    emit(inst);
}

void
ProgramBuilder::fadds(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FaddS, d, s1, s2));
}

void
ProgramBuilder::faddd(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FaddD, d, s1, s2));
}

void
ProgramBuilder::fsubs(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FsubS, d, s1, s2));
}

void
ProgramBuilder::fsubd(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FsubD, d, s1, s2));
}

void
ProgramBuilder::fcmps(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FcmpS, d, s1, s2));
}

void
ProgramBuilder::fcmpd(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FcmpD, d, s1, s2));
}

void
ProgramBuilder::fmuls(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FmulS, d, s1, s2));
}

void
ProgramBuilder::fmuld(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FmulD, d, s1, s2));
}

void
ProgramBuilder::fdivs(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FdivS, d, s1, s2));
}

void
ProgramBuilder::fdivd(RegId d, RegId s1, RegId s2)
{
    emit(threeReg(Opcode::FdivD, d, s1, s2));
}

void
ProgramBuilder::fmov(RegId d, RegId s1)
{
    emit(threeReg(Opcode::Fmov, d, s1, reg::kNone));
}

void
ProgramBuilder::fcvt(RegId d, RegId s1)
{
    rarpred_assert(reg::isFp(d) && !reg::isFp(s1));
    emit(threeReg(Opcode::Fcvt, d, s1, reg::kNone));
}

void
ProgramBuilder::push(RegId r)
{
    addi(reg::kSp, reg::kSp, -8);
    sw(reg::kSp, 0, r);
}

void
ProgramBuilder::pop(RegId r)
{
    lw(r, reg::kSp, 0);
    addi(reg::kSp, reg::kSp, 8);
}

uint64_t
ProgramBuilder::allocWords(uint64_t num_words)
{
    uint64_t addr = dataBrk_;
    dataBrk_ += num_words * 8;
    rarpred_assert(dataBrk_ < memBytes_ - 0x10000); // keep room for stack
    return addr;
}

void
ProgramBuilder::initWord(uint64_t addr, uint64_t value)
{
    rarpred_assert(addr % 8 == 0 && addr < memBytes_);
    data_.push_back({addr, value});
}

void
ProgramBuilder::initWordF(uint64_t addr, double value)
{
    initWord(addr, std::bit_cast<uint64_t>(value));
}

Program
ProgramBuilder::build()
{
    rarpred_assert(!built_);
    built_ = true;
    for (const auto &[index, target] : fixups_) {
        auto it = labels_.find(target);
        if (it == labels_.end())
            rarpred_fatal("undefined label: " + target);
        code_[index].target = it->second;
    }
    return Program(name_, std::move(code_), std::move(data_), memBytes_);
}

} // namespace rarpred
