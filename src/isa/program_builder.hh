/**
 * @file
 * Label-based in-C++ assembler for MicroISA programs.
 *
 * The synthetic SPEC'95-like workloads are written against this
 * builder. It provides one method per opcode, forward-referencing
 * labels with fixup at build() time, a bump allocator for the data
 * segment, and stack push/pop helpers implementing the software
 * calling convention (return address saved by callees that call).
 */

#ifndef RARPRED_ISA_PROGRAM_BUILDER_HH_
#define RARPRED_ISA_PROGRAM_BUILDER_HH_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"

namespace rarpred {

/** Builds a Program instruction by instruction. */
class ProgramBuilder
{
  public:
    /**
     * @param name Program name (reported in experiment output).
     * @param mem_bytes Data memory size; the stack grows down from the
     *        top of this region. Must be a multiple of 8.
     */
    explicit ProgramBuilder(std::string name,
                            uint64_t mem_bytes = 16ull << 20);

    // --- Labels and control flow -----------------------------------

    /** Bind @p name to the next emitted instruction. */
    void label(const std::string &name);

    void beq(RegId s1, RegId s2, const std::string &target);
    void bne(RegId s1, RegId s2, const std::string &target);
    void blt(RegId s1, RegId s2, const std::string &target);
    void bge(RegId s1, RegId s2, const std::string &target);
    void jump(const std::string &target);

    /** Direct call; writes the return byte address into reg::kRa. */
    void call(const std::string &target);

    /** Return through @p ra (conventionally reg::kRa). */
    void ret(RegId ra = reg::kRa);

    void halt();
    void nop();

    // --- Integer ALU ------------------------------------------------

    void add(RegId d, RegId s1, RegId s2);
    void sub(RegId d, RegId s1, RegId s2);
    void mul(RegId d, RegId s1, RegId s2);
    void div(RegId d, RegId s1, RegId s2);
    void and_(RegId d, RegId s1, RegId s2);
    void or_(RegId d, RegId s1, RegId s2);
    void xor_(RegId d, RegId s1, RegId s2);
    void sll(RegId d, RegId s1, RegId s2);
    void srl(RegId d, RegId s1, RegId s2);
    void slt(RegId d, RegId s1, RegId s2);
    void addi(RegId d, RegId s1, int64_t imm);
    void andi(RegId d, RegId s1, int64_t imm);
    void ori(RegId d, RegId s1, int64_t imm);
    void slti(RegId d, RegId s1, int64_t imm);
    void slli(RegId d, RegId s1, int64_t imm);
    void srli(RegId d, RegId s1, int64_t imm);
    void li(RegId d, int64_t imm);
    void mov(RegId d, RegId s1);

    // --- Memory -----------------------------------------------------

    void lw(RegId d, RegId base, int64_t offset);
    void sw(RegId base, int64_t offset, RegId src);
    void lf(RegId d, RegId base, int64_t offset);
    void sf(RegId base, int64_t offset, RegId src);

    // --- Floating point ---------------------------------------------

    void fadds(RegId d, RegId s1, RegId s2);
    void faddd(RegId d, RegId s1, RegId s2);
    void fsubs(RegId d, RegId s1, RegId s2);
    void fsubd(RegId d, RegId s1, RegId s2);
    void fcmps(RegId d, RegId s1, RegId s2);
    void fcmpd(RegId d, RegId s1, RegId s2);
    void fmuls(RegId d, RegId s1, RegId s2);
    void fmuld(RegId d, RegId s1, RegId s2);
    void fdivs(RegId d, RegId s1, RegId s2);
    void fdivd(RegId d, RegId s1, RegId s2);
    void fmov(RegId d, RegId s1);
    void fcvt(RegId d, RegId s1);

    // --- Calling-convention helpers ---------------------------------

    /** addi sp, sp, -8 ; sw r, 0(sp) */
    void push(RegId r);

    /** lw r, 0(sp) ; addi sp, sp, 8 */
    void pop(RegId r);

    // --- Data segment -----------------------------------------------

    /**
     * Reserve @p num_words consecutive 8-byte words in the data
     * segment. @return the byte address of the first word.
     */
    uint64_t allocWords(uint64_t num_words);

    /** Set the initial value of the word at @p addr (8-aligned). */
    void initWord(uint64_t addr, uint64_t value);

    /** Set the initial value of the word at @p addr to a double. */
    void initWordF(uint64_t addr, double value);

    /** @return the byte address of the top of the stack region. */
    uint64_t stackTop() const { return memBytes_; }

    /** @return the current number of emitted instructions. */
    size_t numInsts() const { return code_.size(); }

    /**
     * Resolve all label references and produce the final Program.
     * Fails fatally on undefined labels.
     */
    Program build();

  private:
    void emit(Instruction inst);
    void branchTo(Opcode op, RegId s1, RegId s2, const std::string &target);

    std::string name_;
    uint64_t memBytes_;
    uint64_t dataBrk_;
    std::vector<Instruction> code_;
    std::vector<DataWord> data_;
    std::unordered_map<std::string, uint32_t> labels_;
    std::vector<std::pair<size_t, std::string>> fixups_;
    bool built_ = false;
};

} // namespace rarpred

#endif // RARPRED_ISA_PROGRAM_BUILDER_HH_
