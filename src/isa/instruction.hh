/**
 * @file
 * Static instruction representation for the MicroISA.
 */

#ifndef RARPRED_ISA_INSTRUCTION_HH_
#define RARPRED_ISA_INSTRUCTION_HH_

#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "isa/reg.hh"

namespace rarpred {

/**
 * One static MicroISA instruction.
 *
 * Fields are interpreted per opcode:
 *  - ALU: dst = src1 OP src2 (or imm for the immediate forms).
 *  - Lw/Lf: dst = mem[int(src1) + imm].
 *  - Sw/Sf: mem[int(src1) + imm] = src2.
 *  - Branches: compare int(src1) with int(src2); target is an
 *    instruction index resolved by ProgramBuilder.
 *  - Call/Jump: target is an instruction index.
 *  - Ret: jumps to the byte address held in int(src1).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId dst = reg::kNone;
    RegId src1 = reg::kNone;
    RegId src2 = reg::kNone;
    int64_t imm = 0;
    /** Branch/jump/call target as a static instruction index. */
    uint32_t target = 0;

    /** @return execution latency in cycles. */
    unsigned latency() const { return latencyOf(op); }

    /** @return broad class used by the pipeline model. */
    InstClass instClass() const { return classOf(op); }

    bool isLoad() const { return rarpred::isLoad(op); }
    bool isStore() const { return rarpred::isStore(op); }
    bool isMem() const { return isLoad() || isStore(); }
    bool isControl() const { return rarpred::isControl(op); }
};

/** @return a human-readable disassembly of @p inst. */
std::string disassemble(const Instruction &inst);

/** Byte size of every MicroISA instruction (for PC arithmetic). */
constexpr uint64_t kInstBytes = 4;

/** @return byte PC of static instruction index @p index. */
constexpr uint64_t
pcOfIndex(uint64_t index)
{
    return index * kInstBytes;
}

/** @return static instruction index of byte PC @p pc. */
constexpr uint64_t
indexOfPc(uint64_t pc)
{
    return pc / kInstBytes;
}

} // namespace rarpred

#endif // RARPRED_ISA_INSTRUCTION_HH_
