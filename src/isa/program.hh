/**
 * @file
 * A finalized MicroISA program: code plus initial data image.
 */

#ifndef RARPRED_ISA_PROGRAM_HH_
#define RARPRED_ISA_PROGRAM_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace rarpred {

/**
 * Initial memory contents for a program: 8-byte words written before
 * execution begins. The VM's data memory is byte addressed but all
 * MicroISA accesses are aligned 8-byte words, matching the word
 * granularity the paper uses for the DDT.
 */
struct DataWord
{
    uint64_t addr; ///< byte address, 8-aligned
    uint64_t value;
};

/** A complete program ready for execution. */
class Program
{
  public:
    Program() = default;

    Program(std::string name, std::vector<Instruction> code,
            std::vector<DataWord> data, uint64_t mem_bytes)
        : name_(std::move(name)), code_(std::move(code)),
          data_(std::move(data)), memBytes_(mem_bytes)
    {}

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &code() const { return code_; }
    const std::vector<DataWord> &initialData() const { return data_; }

    /** Size of the data memory the VM must provision, in bytes. */
    uint64_t memBytes() const { return memBytes_; }

    /** Number of static instructions. */
    size_t numInsts() const { return code_.size(); }

    /** @return full disassembly listing, one instruction per line. */
    std::string listing() const;

  private:
    std::string name_;
    std::vector<Instruction> code_;
    std::vector<DataWord> data_;
    uint64_t memBytes_ = 0;
};

} // namespace rarpred

#endif // RARPRED_ISA_PROGRAM_HH_
