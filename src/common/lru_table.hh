/**
 * @file
 * Fully-associative LRU table.
 *
 * Used for structures the paper models as fully associative: the
 * 128-entry Dependence Detection Table, the 16K-entry last-value
 * predictor of Section 5.5, and the "infinite" configurations used to
 * establish upper bounds (capacity 0 means unbounded).
 */

#ifndef RARPRED_COMMON_LRU_TABLE_HH_
#define RARPRED_COMMON_LRU_TABLE_HH_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.hh"

namespace rarpred {

/**
 * A fully-associative, LRU-replaced key/value table.
 *
 * @tparam Key   Hashable key type (addresses, PCs, synonyms).
 * @tparam Value Payload stored per entry.
 */
template <typename Key, typename Value>
class FullyAssocLruTable
{
  public:
    /** An entry displaced by an insertion. */
    struct Eviction
    {
        Key key;
        Value value;
    };

    /**
     * @param capacity Maximum number of entries; 0 means unbounded
     *                 ("infinite" table in the paper's experiments).
     */
    explicit FullyAssocLruTable(size_t capacity = 0) : capacity_(capacity) {}

    /**
     * Look up @p key and promote it to most-recently-used.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    touch(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        lru_.splice(lru_.begin(), lru_, it->second);
        return &it->second->second;
    }

    /**
     * Look up @p key without changing recency order.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    find(const Key &key)
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second->second;
    }

    /** Const variant of find(). */
    const Value *
    find(const Key &key) const
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second->second;
    }

    /**
     * Insert or overwrite @p key with @p value and make it MRU.
     * @return the entry evicted to make room, if any.
     */
    std::optional<Eviction>
    insert(const Key &key, Value value)
    {
        auto it = map_.find(key);
        if (it != map_.end()) {
            it->second->second = std::move(value);
            lru_.splice(lru_.begin(), lru_, it->second);
            return std::nullopt;
        }
        std::optional<Eviction> victim;
        if (capacity_ != 0 && map_.size() >= capacity_) {
            auto last = std::prev(lru_.end());
            victim = Eviction{last->first, std::move(last->second)};
            map_.erase(last->first);
            lru_.erase(last);
        }
        lru_.emplace_front(key, std::move(value));
        map_[key] = lru_.begin();
        return victim;
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return false;
        lru_.erase(it->second);
        map_.erase(it);
        return true;
    }

    /** Remove every entry. */
    void
    clear()
    {
        map_.clear();
        lru_.clear();
    }

    /** @return current number of entries. */
    size_t size() const { return map_.size(); }

    /** @return configured capacity (0 = unbounded). */
    size_t capacity() const { return capacity_; }

    /**
     * Visit every entry in MRU-to-LRU order.
     * @param fn Callable taking (const Key&, Value&).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &kv : lru_)
            fn(kv.first, kv.second);
    }

  private:
    using LruList = std::list<std::pair<Key, Value>>;

    size_t capacity_;
    LruList lru_;
    std::unordered_map<Key, typename LruList::iterator> map_;
};

} // namespace rarpred

#endif // RARPRED_COMMON_LRU_TABLE_HH_
