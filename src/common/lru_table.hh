/**
 * @file
 * Fully-associative LRU table.
 *
 * Used for structures the paper models as fully associative: the
 * 128-entry Dependence Detection Table, the 16K-entry last-value
 * predictor of Section 5.5, and the "infinite" configurations used to
 * establish upper bounds (capacity 0 means unbounded).
 */

#ifndef RARPRED_COMMON_LRU_TABLE_HH_
#define RARPRED_COMMON_LRU_TABLE_HH_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/statesave.hh"

namespace rarpred {

/**
 * A fully-associative, LRU-replaced key/value table.
 *
 * @tparam Key   Hashable key type (addresses, PCs, synonyms).
 * @tparam Value Payload stored per entry.
 */
template <typename Key, typename Value>
class FullyAssocLruTable
{
  public:
    /** An entry displaced by an insertion. */
    struct Eviction
    {
        Key key;
        Value value;
    };

    /**
     * @param capacity Maximum number of entries; 0 means unbounded
     *                 ("infinite" table in the paper's experiments).
     */
    explicit FullyAssocLruTable(size_t capacity = 0) : capacity_(capacity) {}

    /**
     * Look up @p key and promote it to most-recently-used.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    touch(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        lru_.splice(lru_.begin(), lru_, it->second);
        return &it->second->second;
    }

    /**
     * Look up @p key without changing recency order.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    find(const Key &key)
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second->second;
    }

    /** Const variant of find(). */
    const Value *
    find(const Key &key) const
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second->second;
    }

    /**
     * Insert or overwrite @p key with @p value and make it MRU.
     * @return the entry evicted to make room, if any.
     */
    std::optional<Eviction>
    insert(const Key &key, Value value)
    {
        auto it = map_.find(key);
        if (it != map_.end()) {
            it->second->second = std::move(value);
            lru_.splice(lru_.begin(), lru_, it->second);
            return std::nullopt;
        }
        std::optional<Eviction> victim;
        if (capacity_ != 0 && map_.size() >= capacity_) {
            auto last = std::prev(lru_.end());
            victim = Eviction{last->first, std::move(last->second)};
            map_.erase(last->first);
            lru_.erase(last);
        }
        lru_.emplace_front(key, std::move(value));
        map_[key] = lru_.begin();
        return victim;
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return false;
        lru_.erase(it->second);
        map_.erase(it);
        return true;
    }

    /** Remove every entry. */
    void
    clear()
    {
        map_.clear();
        lru_.clear();
    }

    /** @return current number of entries. */
    size_t size() const { return map_.size(); }

    /** @return configured capacity (0 = unbounded). */
    size_t capacity() const { return capacity_; }

    /**
     * Visit every entry in MRU-to-LRU order.
     * @param fn Callable taking (const Key&, Value&).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &kv : lru_)
            fn(kv.first, kv.second);
    }

    /** Const variant of forEach(): (const Key&, const Value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &kv : lru_)
            fn(kv.first, kv.second);
    }

    /**
     * Structural self-check for the online auditor: the index and the
     * recency list must agree entry for entry, and the capacity bound
     * must hold. @return false on any violation.
     */
    bool
    auditIntegrity() const
    {
        if (map_.size() != lru_.size())
            return false;
        if (capacity_ != 0 && map_.size() > capacity_)
            return false;
        for (auto it = lru_.begin(); it != lru_.end(); ++it) {
            auto mapped = map_.find(it->first);
            if (mapped == map_.end() || mapped->second != it)
                return false;
        }
        return true;
    }

    /**
     * Serialize entries in MRU-to-LRU order. Keys must be integral
     * (every instantiation in this repo uses 64-bit keys); values are
     * written by @p saveValue (StateWriter&, const Value&).
     */
    template <typename SaveFn>
    void
    saveState(StateWriter &w, SaveFn &&saveValue) const
    {
        w.u64(lru_.size());
        for (const auto &kv : lru_) {
            w.u64((uint64_t)kv.first);
            saveValue(w, kv.second);
        }
    }

    /**
     * Rebuild the table from a saveState() image, reproducing the
     * exact recency order. @p loadValue is
     * (StateReader&, Value*) -> Status.
     */
    template <typename LoadFn>
    Status
    restoreState(StateReader &r, LoadFn &&loadValue)
    {
        uint64_t count = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&count));
        if (capacity_ != 0 && count > capacity_)
            return Status::corruption("LRU table image over capacity");
        std::vector<std::pair<Key, Value>> entries;
        entries.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
            uint64_t key = 0;
            Value value{};
            RARPRED_RETURN_IF_ERROR(r.u64(&key));
            RARPRED_RETURN_IF_ERROR(loadValue(r, &value));
            entries.emplace_back((Key)key, std::move(value));
        }
        clear();
        // Saved MRU-first; inserting back-to-front recreates the list
        // with the first saved entry ending up most recently used.
        for (auto it = entries.rbegin(); it != entries.rend(); ++it)
            insert(it->first, std::move(it->second));
        return Status{};
    }

  private:
    using LruList = std::list<std::pair<Key, Value>>;

    size_t capacity_;
    LruList lru_;
    std::unordered_map<Key, typename LruList::iterator> map_;
};

} // namespace rarpred

#endif // RARPRED_COMMON_LRU_TABLE_HH_
