/**
 * @file
 * Recoverable error handling: Status and Result<T>.
 *
 * The error-handling policy of this repo (see DESIGN.md §11):
 *  - panic()  : internal invariant violated — a simulator bug; aborts.
 *  - fatal()  : unusable request at a *program entry point* (CLI
 *               drivers, examples); exits.
 *  - Status   : anything a library caller could reasonably want to
 *               handle — missing or corrupt trace files, unknown
 *               workload names, invalid table geometries. Library code
 *               must report these as Status/Result values and must
 *               never exit the process.
 *
 * Status is a (code, message) pair; Result<T> is an expected-style
 * union of a value and a non-OK Status.
 */

#ifndef RARPRED_COMMON_STATUS_HH_
#define RARPRED_COMMON_STATUS_HH_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace rarpred {

/** Broad error categories, in the spirit of absl::StatusCode. */
enum class StatusCode : uint8_t
{
    Ok,
    InvalidArgument,    ///< caller passed something nonsensical
    NotFound,           ///< named entity does not exist
    IoError,            ///< the OS/filesystem failed us
    Corruption,         ///< data failed an integrity check
    OutOfRange,         ///< a value exceeds its legal range
    FailedPrecondition, ///< object not in a state to do that
    DeadlineExceeded,   ///< work exceeded its time budget
    Cancelled,          ///< caller (or a signal) asked to stop
    Internal,           ///< unexpected failure (e.g. a caught exception)
    ResourceExhausted,  ///< a bounded queue/budget is full; retry later
    Unavailable,        ///< the serving side is not accepting work
};

/** @return a stable lowercase name for @p code ("ok", "io-error", ...). */
const char *statusCodeName(StatusCode code);

/** A success-or-error value; default-constructed Status is OK. */
class Status
{
  public:
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status
    invalidArgument(std::string msg)
    {
        return {StatusCode::InvalidArgument, std::move(msg)};
    }

    static Status
    notFound(std::string msg)
    {
        return {StatusCode::NotFound, std::move(msg)};
    }

    static Status
    ioError(std::string msg)
    {
        return {StatusCode::IoError, std::move(msg)};
    }

    static Status
    corruption(std::string msg)
    {
        return {StatusCode::Corruption, std::move(msg)};
    }

    static Status
    outOfRange(std::string msg)
    {
        return {StatusCode::OutOfRange, std::move(msg)};
    }

    static Status
    failedPrecondition(std::string msg)
    {
        return {StatusCode::FailedPrecondition, std::move(msg)};
    }

    static Status
    deadlineExceeded(std::string msg)
    {
        return {StatusCode::DeadlineExceeded, std::move(msg)};
    }

    static Status
    cancelled(std::string msg)
    {
        return {StatusCode::Cancelled, std::move(msg)};
    }

    static Status
    internal(std::string msg)
    {
        return {StatusCode::Internal, std::move(msg)};
    }

    static Status
    resourceExhausted(std::string msg)
    {
        return {StatusCode::ResourceExhausted, std::move(msg)};
    }

    static Status
    unavailable(std::string msg)
    {
        return {StatusCode::Unavailable, std::move(msg)};
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** @return "ok" or "<code-name>: <message>". */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * Holds either a T or a non-OK Status.
 *
 * Accessing value() on an error Result is a programming error and
 * panics; check ok() (or status()) first.
 */
template <typename T>
class Result
{
  public:
    using value_type = T;

    /** Implicit from a value: success. */
    Result(T value) : state_(std::move(value)) {}

    /** Implicit from a non-OK status: failure. OK status panics. */
    Result(Status status) : state_(std::move(status))
    {
        if (std::get<Status>(state_).ok())
            rarpred_panic("Result constructed from OK status");
    }

    bool ok() const { return std::holds_alternative<T>(state_); }

    /** @return the error, or an OK status when a value is held. */
    Status
    status() const
    {
        if (ok())
            return Status{};
        return std::get<Status>(state_);
    }

    T &
    value()
    {
        if (!ok())
            rarpred_panic("Result::value() on error: " +
                          std::get<Status>(state_).toString());
        return std::get<T>(state_);
    }

    const T &
    value() const
    {
        if (!ok())
            rarpred_panic("Result::value() on error: " +
                          std::get<Status>(state_).toString());
        return std::get<T>(state_);
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    std::variant<T, Status> state_;
};

/** Propagate a non-OK Status to the caller. */
#define RARPRED_RETURN_IF_ERROR(expr)                                         \
    do {                                                                      \
        ::rarpred::Status rarpred_status_ = (expr);                           \
        if (!rarpred_status_.ok())                                            \
            return rarpred_status_;                                           \
    } while (0)

} // namespace rarpred

#endif // RARPRED_COMMON_STATUS_HH_
