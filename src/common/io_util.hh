/**
 * @file
 * EINTR-safe file-descriptor I/O helpers shared by everything that
 * talks over a socket or pipe: the service daemon, its client, and
 * the process-isolated worker pool.
 *
 * These exist because every ad-hoc read/write loop in the tree had
 * to re-derive the same three rules:
 *  - EINTR is not an error: a signal (SIGCHLD from the worker pool,
 *    SIGTERM during a drain) interrupts a blocking call and the call
 *    must simply be retried.
 *  - A short write is not an error: write()/send() may transfer less
 *    than asked and the remainder must be resubmitted.
 *  - On a socket, send() with MSG_NOSIGNAL (plus, in the daemon, the
 *    process-wide SIGPIPE ignore) turns a disconnected peer into a
 *    recoverable Status instead of a process kill.
 *
 * tests/test_io_util.cc drives these with mid-transfer signals (a
 * no-SA_RESTART handler forcing real EINTRs) and pipe-capacity-sized
 * transfers forcing real short writes.
 */

#ifndef RARPRED_COMMON_IO_UTIL_HH_
#define RARPRED_COMMON_IO_UTIL_HH_

#include <cstddef>

#include "common/status.hh"

namespace rarpred {

/**
 * Read exactly @p len bytes into @p buf, retrying EINTR and short
 * reads. @return the byte count actually read: == len normally,
 * < len iff the peer closed the stream first (EOF is the caller's
 * to interpret — mid-frame it is Corruption, between frames a clean
 * shutdown). IoError on any other failure.
 */
Result<size_t> readFull(int fd, void *buf, size_t len);

/**
 * Write all @p len bytes with write(), retrying EINTR and short
 * writes. For sockets prefer sendFull(): a vanished peer makes plain
 * write() raise SIGPIPE unless the process ignores it.
 */
Status writeFull(int fd, const void *buf, size_t len);

/**
 * Write all @p len bytes with send(MSG_NOSIGNAL), retrying EINTR and
 * short writes. A disconnected peer surfaces as IoError (EPIPE), not
 * a signal. Sockets only.
 */
Status sendFull(int fd, const void *buf, size_t len);

/**
 * One read() of up to @p len bytes, retrying only EINTR. @return the
 * byte count (0 = EOF). For read-some loops that feed an incremental
 * decoder and cannot know a frame's size up front.
 */
Result<size_t> readChunk(int fd, void *buf, size_t len);

/** One recv() of up to @p len bytes, retrying only EINTR. */
Result<size_t> recvChunk(int fd, void *buf, size_t len);

} // namespace rarpred

#endif // RARPRED_COMMON_IO_UTIL_HH_
