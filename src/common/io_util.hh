/**
 * @file
 * EINTR-safe file-descriptor I/O helpers shared by everything that
 * talks over a socket or pipe: the service daemon, its client, and
 * the process-isolated worker pool.
 *
 * These exist because every ad-hoc read/write loop in the tree had
 * to re-derive the same three rules:
 *  - EINTR is not an error: a signal (SIGCHLD from the worker pool,
 *    SIGTERM during a drain) interrupts a blocking call and the call
 *    must simply be retried.
 *  - A short write is not an error: write()/send() may transfer less
 *    than asked and the remainder must be resubmitted.
 *  - On a socket, send() with MSG_NOSIGNAL (plus, in the daemon, the
 *    process-wide SIGPIPE ignore) turns a disconnected peer into a
 *    recoverable Status instead of a process kill.
 *
 * tests/test_io_util.cc drives these with mid-transfer signals (a
 * no-SA_RESTART handler forcing real EINTRs) and pipe-capacity-sized
 * transfers forcing real short writes.
 */

#ifndef RARPRED_COMMON_IO_UTIL_HH_
#define RARPRED_COMMON_IO_UTIL_HH_

#include <cstddef>

#include "common/status.hh"

struct sockaddr; // <sys/socket.h>, not dragged into every includer

namespace rarpred {

/**
 * Read exactly @p len bytes into @p buf, retrying EINTR and short
 * reads. @return the byte count actually read: == len normally,
 * < len iff the peer closed the stream first (EOF is the caller's
 * to interpret — mid-frame it is Corruption, between frames a clean
 * shutdown). IoError on any other failure.
 */
Result<size_t> readFull(int fd, void *buf, size_t len);

/**
 * Write all @p len bytes with write(), retrying EINTR and short
 * writes. For sockets prefer sendFull(): a vanished peer makes plain
 * write() raise SIGPIPE unless the process ignores it.
 */
Status writeFull(int fd, const void *buf, size_t len);

/**
 * Write all @p len bytes with send(MSG_NOSIGNAL), retrying EINTR and
 * short writes. A disconnected peer surfaces as IoError (EPIPE), not
 * a signal. Sockets only.
 */
Status sendFull(int fd, const void *buf, size_t len);

/**
 * One read() of up to @p len bytes, retrying only EINTR. @return the
 * byte count (0 = EOF). For read-some loops that feed an incremental
 * decoder and cannot know a frame's size up front.
 */
Result<size_t> readChunk(int fd, void *buf, size_t len);

/** One recv() of up to @p len bytes, retrying only EINTR. */
Result<size_t> recvChunk(int fd, void *buf, size_t len);

// ------------------------------------- sockets with deadlines
//
// The fleet dispatcher and the service client must never block
// indefinitely on a peer that stopped answering: every connect,
// accept, and read is bounded by an explicit deadline, after which
// the caller decides (retry another agent, expire a lease, surface
// DeadlineExceeded). All helpers retry EINTR; deadlines are absolute
// so a signal storm cannot extend them.

/**
 * Connect @p fd to @p addr within @p timeout_ms (0 = block forever).
 * The socket is flipped to non-blocking for the connect and restored
 * after. A refused/unreachable peer and an expired deadline both
 * surface as Unavailable (the caller treats the peer as down either
 * way); other failures are IoError.
 */
Status connectDeadline(int fd, const struct sockaddr *addr,
                       unsigned addr_len, uint64_t timeout_ms);

/**
 * Open a TCP connection to @p host : @p port within @p timeout_ms.
 * @p host must be a numeric IPv4 address ("127.0.0.1") — the fleet
 * names agents by address, so no resolver (and no resolver stalls)
 * are involved. @return the connected fd.
 */
Result<int> tcpConnect(const std::string &host, uint16_t port,
                       uint64_t timeout_ms);

/**
 * Create a TCP listener bound to @p host : @p port (0 = any free
 * port) with SO_REUSEADDR. @return the listening fd; the actual
 * bound port is readable via tcpLocalPort().
 */
Result<int> tcpListen(const std::string &host, uint16_t port,
                      int backlog = 16);

/** @return the local port a bound socket ended up on. */
Result<uint16_t> tcpLocalPort(int fd);

/**
 * Accept one connection within @p timeout_ms (0 = block forever).
 * DeadlineExceeded when nothing arrived in time; retries EINTR.
 */
Result<int> acceptDeadline(int listen_fd, uint64_t timeout_ms);

/**
 * Wait for @p fd to become readable within @p timeout_ms.
 * @return true if readable (or peer-closed), false on deadline.
 */
Result<bool> pollReadable(int fd, uint64_t timeout_ms);

} // namespace rarpred

#endif // RARPRED_COMMON_IO_UTIL_HH_
