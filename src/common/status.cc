#include "common/status.hh"

namespace rarpred {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::InvalidArgument:
        return "invalid-argument";
      case StatusCode::NotFound:
        return "not-found";
      case StatusCode::IoError:
        return "io-error";
      case StatusCode::Corruption:
        return "corruption";
      case StatusCode::OutOfRange:
        return "out-of-range";
      case StatusCode::FailedPrecondition:
        return "failed-precondition";
      case StatusCode::DeadlineExceeded:
        return "deadline-exceeded";
      case StatusCode::Cancelled:
        return "cancelled";
      case StatusCode::Internal:
        return "internal";
      case StatusCode::ResourceExhausted:
        return "resource-exhausted";
      case StatusCode::Unavailable:
        return "unavailable";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

} // namespace rarpred
