/**
 * @file
 * Set-associative LRU table.
 *
 * The finite, banked structures of the paper are set associative: the
 * 8K 2-way DPNT, the 1K 2-way synonym file (Section 5.6.1), and all of
 * the caches in the memory hierarchy use this template (caches store
 * their line metadata as the value).
 */

#ifndef RARPRED_COMMON_SET_ASSOC_TABLE_HH_
#define RARPRED_COMMON_SET_ASSOC_TABLE_HH_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/statesave.hh"

namespace rarpred {

/**
 * A set-associative key/value table with true-LRU replacement per set.
 *
 * Keys are 64-bit integers (PCs, block addresses, synonyms). The set
 * index is taken from the low bits of the key; the full key is kept as
 * the tag, so aliasing never produces a false hit.
 */
template <typename Value>
class SetAssocTable
{
  public:
    /** An entry displaced by an insertion. */
    struct Eviction
    {
        uint64_t key;
        Value value;
    };

    /**
     * @param num_entries Total entry count; must be a multiple of assoc
     *                    and num_entries/assoc must be a power of two.
     * @param assoc       Associativity (ways per set).
     */
    SetAssocTable(size_t num_entries, size_t assoc)
        : assoc_(assoc), numSets_(num_entries / assoc)
    {
        rarpred_assert(assoc >= 1);
        rarpred_assert(num_entries % assoc == 0);
        rarpred_assert(isPowerOf2(numSets_));
        indexMask_ = numSets_ - 1;
        sets_.resize(numSets_);
        for (auto &set : sets_)
            set.reserve(assoc_);
    }

    /**
     * Look up @p key and promote it to MRU within its set.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    touch(uint64_t key)
    {
        auto &set = sets_[indexOf(key)];
        for (size_t i = 0; i < set.size(); ++i) {
            if (set[i].first == key) {
                promote(set, i);
                return &set[0].second;
            }
        }
        return nullptr;
    }

    /**
     * Look up @p key without changing recency order.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    find(uint64_t key)
    {
        auto &set = sets_[indexOf(key)];
        for (auto &way : set)
            if (way.first == key)
                return &way.second;
        return nullptr;
    }

    /** Const variant of find(). */
    const Value *
    find(uint64_t key) const
    {
        const auto &set = sets_[indexOf(key)];
        for (const auto &way : set)
            if (way.first == key)
                return &way.second;
        return nullptr;
    }

    /**
     * Insert or overwrite @p key with @p value, making it MRU.
     * @return the LRU entry evicted from the set, if the set was full.
     */
    std::optional<Eviction>
    insert(uint64_t key, Value value)
    {
        auto &set = sets_[indexOf(key)];
        for (size_t i = 0; i < set.size(); ++i) {
            if (set[i].first == key) {
                set[i].second = std::move(value);
                promote(set, i);
                return std::nullopt;
            }
        }
        std::optional<Eviction> victim;
        if (set.size() >= assoc_) {
            auto &lru = set.back();
            victim = Eviction{lru.first, std::move(lru.second)};
            set.pop_back();
        }
        set.insert(set.begin(), {key, std::move(value)});
        return victim;
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(uint64_t key)
    {
        auto &set = sets_[indexOf(key)];
        for (size_t i = 0; i < set.size(); ++i) {
            if (set[i].first == key) {
                set.erase(set.begin() + i);
                return true;
            }
        }
        return false;
    }

    /** Remove every entry. */
    void
    clear()
    {
        for (auto &set : sets_)
            set.clear();
    }

    /** @return current number of valid entries across all sets. */
    size_t
    size() const
    {
        size_t n = 0;
        for (const auto &set : sets_)
            n += set.size();
        return n;
    }

    /** @return total capacity in entries. */
    size_t capacity() const { return numSets_ * assoc_; }

    /** @return the number of sets. */
    size_t numSets() const { return numSets_; }

    /** @return the associativity. */
    size_t assoc() const { return assoc_; }

    /**
     * Visit every valid entry (set by set, MRU first within a set).
     * @param fn Callable taking (uint64_t key, Value&).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &set : sets_)
            for (auto &way : set)
                fn(way.first, way.second);
    }

    /** Const variant of forEach(): (uint64_t key, const Value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &set : sets_)
            for (const auto &way : set)
                fn(way.first, way.second);
    }

    /**
     * Structural self-check for the online auditor: every set within
     * its associativity, every tag indexed into the set that holds
     * it, no duplicate tags in a set. @return false on any violation.
     */
    bool
    auditIntegrity() const
    {
        for (size_t si = 0; si < sets_.size(); ++si) {
            const auto &set = sets_[si];
            if (set.size() > assoc_)
                return false;
            for (size_t i = 0; i < set.size(); ++i) {
                if (indexOf(set[i].first) != si)
                    return false;
                for (size_t j = i + 1; j < set.size(); ++j)
                    if (set[j].first == set[i].first)
                        return false;
            }
        }
        return true;
    }

    /**
     * Serialize geometry plus every set, ways MRU-first. Values are
     * written by @p saveValue (StateWriter&, const Value&).
     */
    template <typename SaveFn>
    void
    saveState(StateWriter &w, SaveFn &&saveValue) const
    {
        w.u64(numSets_);
        w.u64(assoc_);
        for (const auto &set : sets_) {
            w.u32((uint32_t)set.size());
            for (const auto &way : set) {
                w.u64(way.first);
                saveValue(w, way.second);
            }
        }
    }

    /**
     * Rebuild from a saveState() image, reproducing the per-set LRU
     * order. @p loadValue is (StateReader&, Value*) -> Status.
     */
    template <typename LoadFn>
    Status
    restoreState(StateReader &r, LoadFn &&loadValue)
    {
        uint64_t numSets = 0, assoc = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&numSets));
        RARPRED_RETURN_IF_ERROR(r.u64(&assoc));
        if (numSets != numSets_ || assoc != assoc_) {
            return Status::failedPrecondition(
                "table snapshot has a different geometry");
        }
        for (size_t si = 0; si < sets_.size(); ++si) {
            uint32_t ways = 0;
            RARPRED_RETURN_IF_ERROR(r.u32(&ways));
            if (ways > assoc_)
                return Status::corruption("set image over associativity");
            Set loaded;
            loaded.reserve(assoc_);
            for (uint32_t i = 0; i < ways; ++i) {
                uint64_t key = 0;
                Value value{};
                RARPRED_RETURN_IF_ERROR(r.u64(&key));
                RARPRED_RETURN_IF_ERROR(loadValue(r, &value));
                if (indexOf(key) != si)
                    return Status::corruption(
                        "set image tag indexes a different set");
                loaded.emplace_back(key, std::move(value));
            }
            sets_[si] = std::move(loaded);
        }
        return Status{};
    }

  private:
    using Set = std::vector<std::pair<uint64_t, Value>>;

    size_t indexOf(uint64_t key) const { return key & indexMask_; }

    static void
    promote(Set &set, size_t i)
    {
        if (i == 0)
            return;
        auto entry = std::move(set[i]);
        set.erase(set.begin() + i);
        set.insert(set.begin(), std::move(entry));
    }

    size_t assoc_;
    size_t numSets_;
    uint64_t indexMask_;
    std::vector<Set> sets_;
};

} // namespace rarpred

#endif // RARPRED_COMMON_SET_ASSOC_TABLE_HH_
