/**
 * @file
 * Set-associative LRU table.
 *
 * The finite, banked structures of the paper are set associative: the
 * 8K 2-way DPNT, the 1K 2-way synonym file (Section 5.6.1), and all of
 * the caches in the memory hierarchy use this template (caches store
 * their line metadata as the value).
 *
 * Storage is one contiguous slot array (numSets * assoc ways) with a
 * per-set occupancy count; ways of a set are kept MRU-first by
 * shifting within the set, exactly mirroring the recency semantics of
 * the former vector-of-vectors layout. A whole set lands on one or
 * two cache lines and the table performs no heap allocation after
 * construction — part of the hot path's zero-allocation contract.
 */

#ifndef RARPRED_COMMON_SET_ASSOC_TABLE_HH_
#define RARPRED_COMMON_SET_ASSOC_TABLE_HH_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/statesave.hh"

namespace rarpred {

/**
 * A set-associative key/value table with true-LRU replacement per set.
 *
 * Keys are 64-bit integers (PCs, block addresses, synonyms). The set
 * index is taken from the low bits of the key; the full key is kept as
 * the tag, so aliasing never produces a false hit.
 */
template <typename Value>
class SetAssocTable
{
  public:
    /** An entry displaced by an insertion. */
    struct Eviction
    {
        uint64_t key;
        Value value;
    };

    /**
     * @param num_entries Total entry count; must be a multiple of assoc
     *                    and num_entries/assoc must be a power of two.
     * @param assoc       Associativity (ways per set).
     */
    SetAssocTable(size_t num_entries, size_t assoc)
        : assoc_(assoc), numSets_(num_entries / assoc)
    {
        rarpred_assert(assoc >= 1);
        rarpred_assert(num_entries % assoc == 0);
        rarpred_assert(isPowerOf2(numSets_));
        indexMask_ = numSets_ - 1;
        slots_.resize(numSets_ * assoc_);
        sizes_.assign(numSets_, 0);
    }

    /**
     * Look up @p key and promote it to MRU within its set.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    touch(uint64_t key)
    {
        const size_t base = indexOf(key) * assoc_;
        const size_t n = sizes_[indexOf(key)];
        for (size_t i = 0; i < n; ++i) {
            if (slots_[base + i].first == key) {
                promote(base, i);
                return &slots_[base].second;
            }
        }
        return nullptr;
    }

    /**
     * Look up @p key without changing recency order.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    find(uint64_t key)
    {
        const size_t base = indexOf(key) * assoc_;
        const size_t n = sizes_[indexOf(key)];
        for (size_t i = 0; i < n; ++i)
            if (slots_[base + i].first == key)
                return &slots_[base + i].second;
        return nullptr;
    }

    /** Const variant of find(). */
    const Value *
    find(uint64_t key) const
    {
        const size_t base = indexOf(key) * assoc_;
        const size_t n = sizes_[indexOf(key)];
        for (size_t i = 0; i < n; ++i)
            if (slots_[base + i].first == key)
                return &slots_[base + i].second;
        return nullptr;
    }

    /**
     * Insert or overwrite @p key with @p value, making it MRU.
     * @return the LRU entry evicted from the set, if the set was full.
     */
    std::optional<Eviction>
    insert(uint64_t key, Value value)
    {
        const size_t si = indexOf(key);
        const size_t base = si * assoc_;
        size_t n = sizes_[si];
        for (size_t i = 0; i < n; ++i) {
            if (slots_[base + i].first == key) {
                slots_[base + i].second = std::move(value);
                promote(base, i);
                return std::nullopt;
            }
        }
        std::optional<Eviction> victim;
        if (n >= assoc_) {
            auto &lru = slots_[base + assoc_ - 1];
            victim = Eviction{lru.first, std::move(lru.second)};
            n = assoc_ - 1;
        }
        // Shift [0, n) one way right, then write the new MRU way.
        for (size_t i = n; i > 0; --i)
            slots_[base + i] = std::move(slots_[base + i - 1]);
        slots_[base].first = key;
        slots_[base].second = std::move(value);
        sizes_[si] = (uint32_t)(n + 1);
        return victim;
    }

    /**
     * Look up @p key: on a hit promote it to MRU, on a miss insert
     * @p init as the set's MRU (silently dropping the LRU way of a
     * full set). One set scan — equivalent to touch() followed by
     * insert() on miss. The eviction, if any, is reported through
     * @p evicted when the caller passes one (else discarded).
     * @return the entry pointer and whether it was newly inserted.
     */
    std::pair<Value *, bool>
    touchOrInsert(uint64_t key, Value init,
                  std::optional<Eviction> *evicted = nullptr)
    {
        const size_t si = indexOf(key);
        const size_t base = si * assoc_;
        size_t n = sizes_[si];
        for (size_t i = 0; i < n; ++i) {
            if (slots_[base + i].first == key) {
                promote(base, i);
                return {&slots_[base].second, false};
            }
        }
        if (n >= assoc_) {
            if (evicted) {
                auto &lru = slots_[base + assoc_ - 1];
                *evicted = Eviction{lru.first, std::move(lru.second)};
            }
            n = assoc_ - 1;
        }
        for (size_t i = n; i > 0; --i)
            slots_[base + i] = std::move(slots_[base + i - 1]);
        slots_[base].first = key;
        slots_[base].second = std::move(init);
        sizes_[si] = (uint32_t)(n + 1);
        return {&slots_[base].second, true};
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(uint64_t key)
    {
        const size_t si = indexOf(key);
        const size_t base = si * assoc_;
        const size_t n = sizes_[si];
        for (size_t i = 0; i < n; ++i) {
            if (slots_[base + i].first == key) {
                for (size_t j = i + 1; j < n; ++j)
                    slots_[base + j - 1] = std::move(slots_[base + j]);
                slots_[base + n - 1] = {};
                sizes_[si] = (uint32_t)(n - 1);
                return true;
            }
        }
        return false;
    }

    /** Remove every entry. */
    void
    clear()
    {
        for (auto &slot : slots_)
            slot = {};
        sizes_.assign(numSets_, 0);
    }

    /** @return current number of valid entries across all sets. */
    size_t
    size() const
    {
        size_t n = 0;
        for (uint32_t s : sizes_)
            n += s;
        return n;
    }

    /** @return total capacity in entries. */
    size_t capacity() const { return numSets_ * assoc_; }

    /** @return the number of sets. */
    size_t numSets() const { return numSets_; }

    /** @return the associativity. */
    size_t assoc() const { return assoc_; }

    /**
     * Visit every valid entry (set by set, MRU first within a set).
     * @param fn Callable taking (uint64_t key, Value&).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t si = 0; si < numSets_; ++si)
            for (size_t i = 0; i < sizes_[si]; ++i)
                fn(slots_[si * assoc_ + i].first,
                   slots_[si * assoc_ + i].second);
    }

    /** Const variant of forEach(): (uint64_t key, const Value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t si = 0; si < numSets_; ++si)
            for (size_t i = 0; i < sizes_[si]; ++i)
                fn(slots_[si * assoc_ + i].first,
                   slots_[si * assoc_ + i].second);
    }

    /**
     * Structural self-check for the online auditor: every set within
     * its associativity, every tag indexed into the set that holds
     * it, no duplicate tags in a set. @return false on any violation.
     */
    bool
    auditIntegrity() const
    {
        for (size_t si = 0; si < numSets_; ++si) {
            const size_t n = sizes_[si];
            const size_t base = si * assoc_;
            if (n > assoc_)
                return false;
            for (size_t i = 0; i < n; ++i) {
                if (indexOf(slots_[base + i].first) != si)
                    return false;
                for (size_t j = i + 1; j < n; ++j)
                    if (slots_[base + j].first == slots_[base + i].first)
                        return false;
            }
        }
        return true;
    }

    /**
     * Serialize geometry plus every set, ways MRU-first. Values are
     * written by @p saveValue (StateWriter&, const Value&).
     */
    template <typename SaveFn>
    void
    saveState(StateWriter &w, SaveFn &&saveValue) const
    {
        w.u64(numSets_);
        w.u64(assoc_);
        for (size_t si = 0; si < numSets_; ++si) {
            w.u32(sizes_[si]);
            for (size_t i = 0; i < sizes_[si]; ++i) {
                w.u64(slots_[si * assoc_ + i].first);
                saveValue(w, slots_[si * assoc_ + i].second);
            }
        }
    }

    /**
     * Rebuild from a saveState() image, reproducing the per-set LRU
     * order. @p loadValue is (StateReader&, Value*) -> Status.
     */
    template <typename LoadFn>
    Status
    restoreState(StateReader &r, LoadFn &&loadValue)
    {
        uint64_t numSets = 0, assoc = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&numSets));
        RARPRED_RETURN_IF_ERROR(r.u64(&assoc));
        if (numSets != numSets_ || assoc != assoc_) {
            return Status::failedPrecondition(
                "table snapshot has a different geometry");
        }
        for (size_t si = 0; si < numSets_; ++si) {
            uint32_t ways = 0;
            RARPRED_RETURN_IF_ERROR(r.u32(&ways));
            if (ways > assoc_)
                return Status::corruption("set image over associativity");
            const size_t base = si * assoc_;
            for (uint32_t i = 0; i < ways; ++i) {
                uint64_t key = 0;
                Value value{};
                RARPRED_RETURN_IF_ERROR(r.u64(&key));
                RARPRED_RETURN_IF_ERROR(loadValue(r, &value));
                if (indexOf(key) != si)
                    return Status::corruption(
                        "set image tag indexes a different set");
                slots_[base + i] = {key, std::move(value)};
            }
            for (size_t i = ways; i < assoc_; ++i)
                slots_[base + i] = {};
            sizes_[si] = ways;
        }
        return Status{};
    }

  private:
    size_t indexOf(uint64_t key) const { return key & indexMask_; }

    /** Rotate way @p i of the set at @p base to the MRU position. */
    void
    promote(size_t base, size_t i)
    {
        if (i == 0)
            return;
        auto entry = std::move(slots_[base + i]);
        for (size_t j = i; j > 0; --j)
            slots_[base + j] = std::move(slots_[base + j - 1]);
        slots_[base] = std::move(entry);
    }

    size_t assoc_;
    size_t numSets_;
    uint64_t indexMask_;
    std::vector<std::pair<uint64_t, Value>> slots_;
    std::vector<uint32_t> sizes_;
};

} // namespace rarpred

#endif // RARPRED_COMMON_SET_ASSOC_TABLE_HH_
