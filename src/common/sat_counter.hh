/**
 * @file
 * Saturating counter used by confidence mechanisms and branch predictors.
 */

#ifndef RARPRED_COMMON_SAT_COUNTER_HH_
#define RARPRED_COMMON_SAT_COUNTER_HH_

#include <cstdint>

#include "common/logging.hh"

namespace rarpred {

/**
 * An n-bit up/down saturating counter.
 *
 * The counter saturates at 0 and 2^bits - 1. The "taken"/"predict"
 * decision is conventionally counter >= 2^(bits-1) (the MSB), which
 * matches the classic 2-bit automaton used by the paper's adaptive
 * cloaking confidence mechanism and by the branch predictors.
 */
class SatCounter
{
  public:
    /**
     * @param bits Counter width in bits (1..8).
     * @param initial Initial counter value.
     */
    explicit SatCounter(unsigned bits = 2, uint8_t initial = 0)
        : bits_(bits), max_((uint8_t)((1u << bits) - 1)), value_(initial)
    {
        rarpred_assert(bits >= 1 && bits <= 8);
        rarpred_assert(initial <= max_);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Reset to the weakest not-taken state. */
    void reset() { value_ = 0; }

    /** Set to the strongest taken state. */
    void saturate() { value_ = max_; }

    /** Set an explicit value (clamped to the representable range). */
    void
    set(uint8_t v)
    {
        value_ = v > max_ ? max_ : v;
    }

    /** @return the raw counter value. */
    uint8_t value() const { return value_; }

    /** @return the maximum representable value. */
    uint8_t maxValue() const { return max_; }

    /** @return true when the MSB is set (conventional predict-taken). */
    bool predict() const { return value_ >= (uint8_t)(1u << (bits_ - 1)); }

    /** @return true when fully saturated high. */
    bool isMax() const { return value_ == max_; }

  private:
    unsigned bits_;
    uint8_t max_;
    uint8_t value_;
};

} // namespace rarpred

#endif // RARPRED_COMMON_SAT_COUNTER_HH_
