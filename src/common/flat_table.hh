/**
 * @file
 * Branch-light open-addressing hash tables for the simulate hot path.
 *
 * Two structures share one probe discipline (linear probing over a
 * power-of-two slot array with tombstones and a mixed 64-bit hash):
 *
 *  - FlatMap<Value>:      a u64 -> Value map used where the hot loop
 *                         previously paid std::unordered_map node
 *                         allocation per insert (bandwidth limiters,
 *                         unbounded hint-table mode).
 *  - FlatLruTable<Value>: a fully-associative LRU table that replaces
 *                         the std::list + std::unordered_map pair in
 *                         FullyAssocLruTable. Entries live in a
 *                         contiguous slab; the recency list is
 *                         intrusive (prev/next slot indices), so a
 *                         touch is a probe plus four index writes and
 *                         a steady-state insert performs zero heap
 *                         allocations.
 *
 * Semantics are identical to the structures they replace: LRU order,
 * eviction decisions, forEach order (MRU-to-LRU), and the
 * saveState/restoreState wire format are all preserved bit for bit —
 * the golden-stats and snapshot layers depend on that.
 *
 * Both tables keep ProbeStats (lookups, probe steps, max probe
 * length, resizes, live load factor) so the bench layer can report
 * measured load factors; the counters are mutable and cost two adds
 * per lookup.
 *
 * Same-capacity rehashes (tombstone purges) recycle a spare slot
 * array instead of allocating, so once a table has reached its
 * steady-state footprint it never touches the heap again — the
 * zero-allocation property test_arena.cc asserts over the simulate
 * loop depends on this.
 */

#ifndef RARPRED_COMMON_FLAT_TABLE_HH_
#define RARPRED_COMMON_FLAT_TABLE_HH_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/statesave.hh"

namespace rarpred {

/** Probe-path counters exposed by the flat tables. */
struct ProbeStats
{
    uint64_t lookups = 0;  ///< probe sequences started
    uint64_t probes = 0;   ///< total slots inspected
    uint64_t maxProbe = 0; ///< longest single probe sequence
    uint64_t resizes = 0;  ///< rehashes (growth + tombstone purges)
    size_t size = 0;       ///< live entries
    size_t slots = 0;      ///< slot-array capacity

    /** Live entries per slot; the fill the probe path actually sees. */
    double
    loadFactor() const
    {
        return slots == 0 ? 0.0 : (double)size / (double)slots;
    }

    /** Mean probe length per lookup. */
    double
    avgProbe() const
    {
        return lookups == 0 ? 0.0 : (double)probes / (double)lookups;
    }
};

/** Final mix of splitmix64: full-avalanche, cheap, dense-key friendly. */
inline uint64_t
flatHashU64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/**
 * Open-addressed u64 -> Value map. Values must be default-
 * constructible and movable. Iteration order is unspecified (as with
 * the std::unordered_map it replaces); callers that need determinism
 * sort keys, exactly as before.
 */
template <typename Value>
class FlatMap
{
  public:
    explicit FlatMap(size_t min_slots = 16)
    {
        size_t cap = 16;
        while (cap < min_slots)
            cap <<= 1;
        slots_.assign(cap, Slot{});
        ctrl_.assign(cap, kEmpty);
        mask_ = cap - 1;
    }

    /**
     * Look up @p key, inserting it with @p init if absent.
     * @return reference to the stored value, valid until the next
     *         insertion.
     */
    Value &
    findOrInsert(uint64_t key, const Value &init)
    {
        maybeGrow();
        size_t i = flatHashU64(key) & mask_;
        size_t first_tomb = kNone;
        uint64_t steps = 0;
        for (;; i = (i + 1) & mask_) {
            ++steps;
            const uint8_t c = ctrl_[i];
            if (c == kFull && slots_[i].key == key) {
                note(steps);
                return slots_[i].value;
            }
            if (c == kEmpty) {
                note(steps);
                if (first_tomb != kNone) {
                    i = first_tomb;
                    --tombs_;
                }
                ctrl_[i] = kFull;
                slots_[i].key = key;
                slots_[i].value = init;
                ++size_;
                return slots_[i].value;
            }
            if (c == kTomb && first_tomb == kNone)
                first_tomb = i;
        }
    }

    /** Insert or overwrite @p key with @p value. */
    void
    insert(uint64_t key, Value value)
    {
        findOrInsert(key, Value{}) = std::move(value);
    }

    /** @return pointer to the value for @p key, or nullptr. */
    Value *
    find(uint64_t key)
    {
        const size_t i = probe(key);
        return i == kNone ? nullptr : &slots_[i].value;
    }

    /** Const variant of find(). */
    const Value *
    find(uint64_t key) const
    {
        const size_t i = probe(key);
        return i == kNone ? nullptr : &slots_[i].value;
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(uint64_t key)
    {
        const size_t i = probe(key);
        if (i == kNone)
            return false;
        ctrl_[i] = kTomb;
        slots_[i].value = Value{};
        --size_;
        ++tombs_;
        return true;
    }

    /**
     * Remove every entry for which @p pred(key, value) holds.
     * @return number of entries removed.
     */
    template <typename Pred>
    size_t
    eraseIf(Pred &&pred)
    {
        size_t removed = 0;
        for (size_t i = 0; i < slots_.size(); ++i) {
            if (ctrl_[i] != kFull)
                continue;
            if (pred(slots_[i].key, slots_[i].value)) {
                ctrl_[i] = kTomb;
                slots_[i].value = Value{};
                --size_;
                ++tombs_;
                ++removed;
            }
        }
        return removed;
    }

    /** Remove every entry; slot capacity is retained. */
    void
    clear()
    {
        for (size_t i = 0; i < slots_.size(); ++i) {
            if (ctrl_[i] == kFull)
                slots_[i].value = Value{};
            ctrl_[i] = kEmpty;
        }
        size_ = 0;
        tombs_ = 0;
    }

    size_t size() const { return size_; }
    size_t slotCount() const { return slots_.size(); }

    /** Visit every entry with (uint64_t key, Value&); any order. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t i = 0; i < slots_.size(); ++i)
            if (ctrl_[i] == kFull)
                fn(slots_[i].key, slots_[i].value);
    }

    /** Const variant of forEach(). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < slots_.size(); ++i)
            if (ctrl_[i] == kFull)
                fn(slots_[i].key, slots_[i].value);
    }

    /** Probe-path counters plus the current fill. */
    ProbeStats
    probeStats() const
    {
        ProbeStats s = stats_;
        s.size = size_;
        s.slots = slots_.size();
        return s;
    }

  private:
    static constexpr uint8_t kEmpty = 0;
    static constexpr uint8_t kFull = 1;
    static constexpr uint8_t kTomb = 2;
    static constexpr size_t kNone = (size_t)-1;

    struct Slot
    {
        uint64_t key = 0;
        Value value{};
    };

    void
    note(uint64_t steps) const
    {
        ++stats_.lookups;
        stats_.probes += steps;
        if (steps > stats_.maxProbe)
            stats_.maxProbe = steps;
    }

    size_t
    probe(uint64_t key) const
    {
        size_t i = flatHashU64(key) & mask_;
        uint64_t steps = 0;
        for (;; i = (i + 1) & mask_) {
            ++steps;
            const uint8_t c = ctrl_[i];
            if (c == kFull && slots_[i].key == key) {
                note(steps);
                return i;
            }
            if (c == kEmpty) {
                note(steps);
                return kNone;
            }
        }
    }

    /**
     * Keep combined (live + tombstone) fill under 7/8 so probes stay
     * short and the insert loop always finds an empty slot, and purge
     * eagerly once tombstones alone cover a quarter of the slots —
     * erase-heavy users (LRU eviction churn) would otherwise drag the
     * average probe length toward the 7/8 ceiling between purges.
     * Grow 2x when the live fill itself is high; otherwise rebuild at
     * the same capacity to purge tombstones, recycling the spare
     * arrays (the purge amortizes to ~4 slot writes per erase).
     */
    void
    maybeGrow()
    {
        if ((size_ + tombs_ + 1) * 8 < slots_.size() * 7 &&
            tombs_ * 4 < slots_.size())
            return;
        const size_t cap = slots_.size();
        rehashTo(size_ * 2 >= cap ? cap * 2 : cap);
    }

    void
    rehashTo(size_t new_cap)
    {
        ++stats_.resizes;
        if (spareCtrl_.size() != new_cap) {
            spareSlots_.assign(new_cap, Slot{});
            spareCtrl_.assign(new_cap, kEmpty);
        } else {
            for (size_t i = 0; i < new_cap; ++i) {
                spareCtrl_[i] = kEmpty;
                spareSlots_[i] = Slot{};
            }
        }
        slots_.swap(spareSlots_);
        ctrl_.swap(spareCtrl_);
        mask_ = new_cap - 1;
        tombs_ = 0;
        for (size_t i = 0; i < spareCtrl_.size(); ++i) {
            if (spareCtrl_[i] != kFull)
                continue;
            size_t j = flatHashU64(spareSlots_[i].key) & mask_;
            while (ctrl_[j] == kFull)
                j = (j + 1) & mask_;
            ctrl_[j] = kFull;
            slots_[j].key = spareSlots_[i].key;
            slots_[j].value = std::move(spareSlots_[i].value);
        }
    }

    std::vector<Slot> slots_;
    std::vector<uint8_t> ctrl_;
    std::vector<Slot> spareSlots_;
    std::vector<uint8_t> spareCtrl_;
    size_t mask_ = 0;
    size_t size_ = 0;
    size_t tombs_ = 0;
    mutable ProbeStats stats_;
};

/**
 * Fully-associative LRU table on the flat probe path: a drop-in
 * replacement for FullyAssocLruTable<uint64_t, Value> with identical
 * semantics and serialization format. Entries live in a contiguous
 * node slab linked into an intrusive MRU list; the key index is a
 * FlatMap of slab positions.
 */
template <typename Value>
class FlatLruTable
{
  public:
    /** An entry displaced by an insertion. */
    struct Eviction
    {
        uint64_t key;
        Value value;
    };

    /**
     * @param capacity Maximum number of entries; 0 means unbounded
     *                 ("infinite" table in the paper's experiments).
     */
    // The index gets 4x the entry count in slots: bounded tables
    // churn through erase tombstones on every eviction, and the
    // extra headroom keeps probe chains short between purges.
    explicit FlatLruTable(size_t capacity = 0)
        : capacity_(capacity),
          index_(capacity == 0 ? 16 : capacity * 4)
    {
        if (capacity_ != 0)
            nodes_.reserve(capacity_);
    }

    /**
     * Look up @p key and promote it to most-recently-used.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    touch(uint64_t key)
    {
        uint32_t *ni = index_.find(key);
        if (ni == nullptr)
            return nullptr;
        moveToFront(*ni);
        return &nodes_[*ni].value;
    }

    /**
     * Look up @p key without changing recency order.
     * @return pointer to the stored value, or nullptr on miss.
     */
    Value *
    find(uint64_t key)
    {
        uint32_t *ni = index_.find(key);
        return ni == nullptr ? nullptr : &nodes_[*ni].value;
    }

    /** Const variant of find(). */
    const Value *
    find(uint64_t key) const
    {
        const uint32_t *ni = index_.find(key);
        return ni == nullptr ? nullptr : &nodes_[*ni].value;
    }

    /**
     * Insert or overwrite @p key with @p value and make it MRU.
     * @return the entry evicted to make room, if any.
     */
    std::optional<Eviction>
    insert(uint64_t key, Value value)
    {
        // One index probe resolves both the overwrite and the miss
        // case. The claimed reference stays valid across the victim
        // erase below: erase only marks a tombstone, it never moves
        // slots, and findOrInsert rehashes before returning.
        uint32_t &ni = index_.findOrInsert(key, kNil);
        if (ni != kNil) {
            nodes_[ni].value = std::move(value);
            moveToFront(ni);
            return std::nullopt;
        }
        std::optional<Eviction> victim;
        uint32_t idx;
        if (capacity_ != 0 && size_ >= capacity_) {
            idx = tail_;
            victim = Eviction{nodes_[idx].key,
                              std::move(nodes_[idx].value)};
            index_.erase(nodes_[idx].key);
            unlink(idx);
            --size_;
        } else if (freeHead_ != kNil) {
            idx = freeHead_;
            freeHead_ = nodes_[idx].next;
        } else {
            rarpred_assert(nodes_.size() < kNil);
            idx = (uint32_t)nodes_.size();
            nodes_.emplace_back();
        }
        nodes_[idx].key = key;
        nodes_[idx].value = std::move(value);
        linkFront(idx);
        ++size_;
        ni = idx;
        return victim;
    }

    /**
     * Look up @p key: on a hit promote it to MRU, on a miss insert
     * @p init as MRU (evicting the LRU entry of a full table). One
     * index probe either way — exactly equivalent to touch()
     * followed by insert() on miss, minus the second probe.
     * @return the entry pointer and whether it was newly inserted.
     */
    std::pair<Value *, bool>
    touchOrInsert(uint64_t key, Value init)
    {
        uint32_t &ni = index_.findOrInsert(key, kNil);
        if (ni != kNil) {
            moveToFront(ni);
            return {&nodes_[ni].value, false};
        }
        uint32_t idx;
        if (capacity_ != 0 && size_ >= capacity_) {
            idx = tail_;
            index_.erase(nodes_[idx].key);
            unlink(idx);
            --size_;
        } else if (freeHead_ != kNil) {
            idx = freeHead_;
            freeHead_ = nodes_[idx].next;
        } else {
            rarpred_assert(nodes_.size() < kNil);
            idx = (uint32_t)nodes_.size();
            nodes_.emplace_back();
        }
        nodes_[idx].key = key;
        nodes_[idx].value = std::move(init);
        linkFront(idx);
        ++size_;
        ni = idx;
        return {&nodes_[idx].value, true};
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(uint64_t key)
    {
        uint32_t *ni = index_.find(key);
        if (ni == nullptr)
            return false;
        const uint32_t idx = *ni;
        index_.erase(key);
        unlink(idx);
        nodes_[idx].value = Value{};
        nodes_[idx].next = freeHead_;
        freeHead_ = idx;
        --size_;
        return true;
    }

    /** Remove every entry; the node slab is retained. */
    void
    clear()
    {
        index_.clear();
        nodes_.clear();
        head_ = tail_ = freeHead_ = kNil;
        size_ = 0;
    }

    /** @return current number of entries. */
    size_t size() const { return size_; }

    /** @return configured capacity (0 = unbounded). */
    size_t capacity() const { return capacity_; }

    /**
     * Visit every entry in MRU-to-LRU order.
     * @param fn Callable taking (uint64_t key, Value&).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (uint32_t i = head_; i != kNil; i = nodes_[i].next)
            fn(nodes_[i].key, nodes_[i].value);
    }

    /** Const variant of forEach(): (uint64_t key, const Value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (uint32_t i = head_; i != kNil; i = nodes_[i].next)
            fn(nodes_[i].key, nodes_[i].value);
    }

    /**
     * Structural self-check for the online auditor: the index and the
     * intrusive recency list must agree entry for entry, the list
     * links must be consistent in both directions, and the capacity
     * bound must hold. @return false on any violation.
     */
    bool
    auditIntegrity() const
    {
        if (capacity_ != 0 && size_ > capacity_)
            return false;
        if (index_.size() != size_)
            return false;
        size_t walked = 0;
        uint32_t prev = kNil;
        for (uint32_t i = head_; i != kNil; i = nodes_[i].next) {
            if (walked++ > size_)
                return false;
            if (nodes_[i].prev != prev)
                return false;
            const uint32_t *ni = index_.find(nodes_[i].key);
            if (ni == nullptr || *ni != i)
                return false;
            prev = i;
        }
        return walked == size_ && tail_ == prev;
    }

    /**
     * Serialize entries in MRU-to-LRU order; identical wire format to
     * FullyAssocLruTable::saveState. @p saveValue is
     * (StateWriter&, const Value&).
     */
    template <typename SaveFn>
    void
    saveState(StateWriter &w, SaveFn &&saveValue) const
    {
        w.u64(size_);
        for (uint32_t i = head_; i != kNil; i = nodes_[i].next) {
            w.u64(nodes_[i].key);
            saveValue(w, nodes_[i].value);
        }
    }

    /**
     * Rebuild the table from a saveState() image, reproducing the
     * exact recency order. @p loadValue is
     * (StateReader&, Value*) -> Status.
     */
    template <typename LoadFn>
    Status
    restoreState(StateReader &r, LoadFn &&loadValue)
    {
        uint64_t count = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&count));
        if (capacity_ != 0 && count > capacity_)
            return Status::corruption("LRU table image over capacity");
        std::vector<std::pair<uint64_t, Value>> entries;
        entries.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
            uint64_t key = 0;
            Value value{};
            RARPRED_RETURN_IF_ERROR(r.u64(&key));
            RARPRED_RETURN_IF_ERROR(loadValue(r, &value));
            entries.emplace_back(key, std::move(value));
        }
        clear();
        // Saved MRU-first; inserting back-to-front recreates the list
        // with the first saved entry ending up most recently used.
        for (auto it = entries.rbegin(); it != entries.rend(); ++it)
            insert(it->first, std::move(it->second));
        return Status{};
    }

    /** Probe-path counters of the key index. */
    ProbeStats probeStats() const { return index_.probeStats(); }

  private:
    static constexpr uint32_t kNil = (uint32_t)-1;

    struct Node
    {
        uint64_t key = 0;
        Value value{};
        uint32_t prev = kNil;
        uint32_t next = kNil;
    };

    void
    unlink(uint32_t i)
    {
        Node &n = nodes_[i];
        if (n.prev != kNil)
            nodes_[n.prev].next = n.next;
        else
            head_ = n.next;
        if (n.next != kNil)
            nodes_[n.next].prev = n.prev;
        else
            tail_ = n.prev;
    }

    void
    linkFront(uint32_t i)
    {
        Node &n = nodes_[i];
        n.prev = kNil;
        n.next = head_;
        if (head_ != kNil)
            nodes_[head_].prev = i;
        head_ = i;
        if (tail_ == kNil)
            tail_ = i;
    }

    void
    moveToFront(uint32_t i)
    {
        if (head_ == i)
            return;
        unlink(i);
        linkFront(i);
    }

    size_t capacity_;
    FlatMap<uint32_t> index_;
    std::vector<Node> nodes_;
    uint32_t head_ = kNil;
    uint32_t tail_ = kNil;
    uint32_t freeHead_ = kNil;
    size_t size_ = 0;
};

} // namespace rarpred

#endif // RARPRED_COMMON_FLAT_TABLE_HH_
