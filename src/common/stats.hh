/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named scalar counters and distributions with a
 * StatGroup; experiments dump them in a stable, grep-friendly format.
 */

#ifndef RARPRED_COMMON_STATS_HH_
#define RARPRED_COMMON_STATS_HH_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace rarpred {

/** A monotonically updated 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(uint64_t n)
    {
        value_ += n;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** A simple bucketed distribution over unsigned samples. */
class Histogram
{
  public:
    /**
     * @param num_buckets Number of buckets.
     * @param bucket_width Width of each bucket; samples beyond the last
     *                     bucket accumulate in an overflow bucket.
     */
    Histogram(size_t num_buckets, uint64_t bucket_width);

    /** Record one sample. */
    void sample(uint64_t value);

    /** @return total number of samples recorded. */
    uint64_t count() const { return count_; }

    /** @return arithmetic mean of the samples (0 when empty). */
    double mean() const;

    /** @return count in bucket @p i (the last bucket is overflow). */
    uint64_t bucket(size_t i) const { return buckets_[i]; }

    /** @return number of buckets including the overflow bucket. */
    size_t numBuckets() const { return buckets_.size(); }

    void reset();

  private:
    uint64_t bucketWidth_;
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
};

/**
 * A named collection of statistics.
 *
 * Components keep Counter members and register them by name; dump()
 * writes "group.name value" lines, stable across runs for diffing.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name; the counter must outlive
     *  the group. */
    void registerCounter(const std::string &stat_name, Counter *c);

    /** Write all registered stats as "group.stat value" lines. */
    void dump(std::ostream &os) const;

    /** Reset every registered counter. */
    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter *> counters_;
};

} // namespace rarpred

#endif // RARPRED_COMMON_STATS_HH_
