/**
 * @file
 * CRC-32-guarded state serialization for simulation snapshots.
 *
 * Every stateful component (tables, predictors, caches, the CPU, the
 * VM) implements saveState(StateWriter &) / restoreState(StateReader
 * &) on top of these primitives. The byte format follows the repo's
 * binary-file conventions (trace v2, RARJ journal): little-endian
 * scalars, explicit lengths, CRC-guarded frames.
 *
 * Sections: beginSection(tag)/endSection() wrap a run of fields in a
 * frame {u32 tag, u32 payloadLen, payload, u32 crc32(tag+len+payload)}
 * so a reader can (a) verify integrity *before* applying any state
 * and (b) attribute corruption to a component. Sections nest; the CRC
 * of an outer section covers its inner sections.
 *
 * StateReader returns Status instead of throwing: a truncated or
 * bit-flipped snapshot must surface as Corruption, never as UB.
 */

#ifndef RARPRED_COMMON_STATESAVE_HH_
#define RARPRED_COMMON_STATESAVE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace rarpred {

/** Append-only buffer of little-endian fields and CRC'd sections. */
class StateWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back((uint8_t)(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back((uint8_t)(v >> (8 * i)));
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    bytes(const void *data, size_t len)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    /** Open a CRC-guarded frame; must be balanced by endSection(). */
    void beginSection(uint32_t tag);

    /** Close the innermost open frame, patching length and CRC. */
    void endSection();

    const std::vector<uint8_t> &buffer() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
    std::vector<size_t> open_; ///< offsets of open frames' tag fields
};

/** Validating cursor over a StateWriter-produced buffer. */
class StateReader
{
  public:
    StateReader(const uint8_t *data, size_t len)
        : data_(data), len_(len)
    {
    }

    explicit StateReader(const std::vector<uint8_t> &buf)
        : StateReader(buf.data(), buf.size())
    {
    }

    Status u8(uint8_t *out);
    Status u32(uint32_t *out);
    Status u64(uint64_t *out);
    Status boolean(bool *out);
    Status bytes(void *out, size_t len);

    /**
     * Enter the frame at the cursor: verify its tag matches @p tag
     * and its CRC over the whole frame holds, then position the
     * cursor at the payload start.
     */
    Status enterSection(uint32_t tag);

    /**
     * Leave the innermost frame. Corruption when fields remain
     * unread — a length mismatch means writer and reader disagree
     * about the format, which must not pass silently.
     */
    Status leaveSection();

    /** Bytes left before the innermost frame boundary (or EOF). */
    size_t remaining() const;

    bool atEnd() const { return pos_ >= len_; }

  private:
    Status need(size_t n) const;

    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
    std::vector<size_t> bounds_; ///< payload-end offsets of open frames
};

/**
 * Verify every top-level section frame in @p buf without applying
 * anything: walks tag/len/crc frames back to back until the buffer
 * ends. Use before restoreState() so a corrupt snapshot is rejected
 * while the live component state is still untouched.
 */
Status validateSectionChain(const uint8_t *data, size_t len);

/**
 * Power-loss-durable file write: write @p len bytes to a temp file
 * next to @p path, fsync it, atomically rename it over @p path, and
 * fsync the containing directory. After this returns OK, a SIGKILL
 * (or power cut) can no longer produce a zero-length or half-written
 * file at @p path. Shared by the sweep journal's header write and the
 * snapshot writer.
 *
 * With a non-null @p errno_out, the errno of the failing syscall is
 * stored there (0 on success) so callers can distinguish resource
 * exhaustion (ENOSPC/EDQUOT) from genuine I/O failure and degrade
 * instead of dying — the result store treats a full disk as a cache
 * miss, not an error.
 */
Status durableWriteFile(const std::string &path, const void *data,
                        size_t len, int *errno_out = nullptr);

} // namespace rarpred

#endif // RARPRED_COMMON_STATESAVE_HH_
