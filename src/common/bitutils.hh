/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 */

#ifndef RARPRED_COMMON_BITUTILS_HH_
#define RARPRED_COMMON_BITUTILS_HH_

#include <cstdint>

namespace rarpred {

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** @return a mask with the low @p bits bits set. */
constexpr uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~uint64_t(0) : (uint64_t(1) << bits) - 1;
}

} // namespace rarpred

#endif // RARPRED_COMMON_BITUTILS_HH_
