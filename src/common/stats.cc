#include "common/stats.hh"

#include "common/logging.hh"

namespace rarpred {

Histogram::Histogram(size_t num_buckets, uint64_t bucket_width)
    : bucketWidth_(bucket_width), buckets_(num_buckets + 1, 0)
{
    rarpred_assert(num_buckets >= 1 && bucket_width >= 1);
}

void
Histogram::sample(uint64_t value)
{
    size_t idx = value / bucketWidth_;
    if (idx >= buckets_.size() - 1)
        idx = buckets_.size() - 1;
    ++buckets_[idx];
    ++count_;
    sum_ += value;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : (double)sum_ / (double)count_;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    count_ = 0;
    sum_ = 0;
}

void
StatGroup::registerCounter(const std::string &stat_name, Counter *c)
{
    rarpred_assert(c != nullptr);
    counters_[stat_name] = c;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, counter] : counters_)
        os << name_ << "." << stat_name << " " << counter->value() << "\n";
}

void
StatGroup::reset()
{
    for (auto &[stat_name, counter] : counters_) {
        (void)stat_name;
        counter->reset();
    }
}

} // namespace rarpred
