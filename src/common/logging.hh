/**
 * @file
 * Error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated (a simulator bug); aborts.
 * fatal()  -- the user asked for something impossible (bad config); exits.
 * warn()   -- something is approximated; simulation continues.
 * inform() -- status output.
 */

#ifndef RARPRED_COMMON_LOGGING_HH_
#define RARPRED_COMMON_LOGGING_HH_

#include <string>

namespace rarpred {

/** Print "panic: <msg>" with location info and abort(). */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Print "fatal: <msg>" with location info and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print "warn: <msg>" to stderr. */
void warnImpl(const std::string &msg);

/** Print "info: <msg>" to stderr. */
void informImpl(const std::string &msg);

} // namespace rarpred

#define rarpred_panic(msg) ::rarpred::panicImpl(__FILE__, __LINE__, (msg))
#define rarpred_fatal(msg) ::rarpred::fatalImpl(__FILE__, __LINE__, (msg))
#define rarpred_warn(msg) ::rarpred::warnImpl((msg))
#define rarpred_inform(msg) ::rarpred::informImpl((msg))

/** Assert that holds in all build types; panics with the expression text. */
#define rarpred_assert(expr)                                                  \
    do {                                                                      \
        if (!(expr)) {                                                        \
            ::rarpred::panicImpl(__FILE__, __LINE__,                          \
                                 "assertion failed: " #expr);                 \
        }                                                                     \
    } while (0)

#endif // RARPRED_COMMON_LOGGING_HH_
