/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * Used by the trace file format to detect header and record
 * corruption. Table-driven software implementation; no hardware
 * dependency, identical results on every platform.
 */

#ifndef RARPRED_COMMON_CRC32_HH_
#define RARPRED_COMMON_CRC32_HH_

#include <array>
#include <cstddef>
#include <cstdint>

namespace rarpred {

namespace detail {

constexpr std::array<uint32_t, 256>
makeCrc32Table()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0u);
        table[i] = crc;
    }
    return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = makeCrc32Table();

} // namespace detail

/**
 * Incrementally extend a CRC-32.
 * @param crc Running CRC (start with 0 for a fresh computation).
 * @param data Bytes to absorb.
 * @param len Number of bytes.
 */
inline uint32_t
crc32Update(uint32_t crc, const void *data, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    crc = ~crc;
    for (size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ detail::kCrc32Table[(crc ^ bytes[i]) & 0xff];
    return ~crc;
}

/** @return the CRC-32 of @p len bytes at @p data. */
inline uint32_t
crc32(const void *data, size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace rarpred

#endif // RARPRED_COMMON_CRC32_HH_
