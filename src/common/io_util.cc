#include "common/io_util.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace rarpred {

Result<size_t>
readFull(int fd, void *buf, size_t len)
{
    auto *p = static_cast<uint8_t *>(buf);
    size_t got = 0;
    while (got < len) {
        const ssize_t n = ::read(fd, p + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("read: ") +
                                   std::strerror(errno));
        }
        if (n == 0)
            return got; // EOF before len: the caller decides
        got += (size_t)n;
    }
    return got;
}

Status
writeFull(int fd, const void *buf, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("write: ") +
                                   std::strerror(errno));
        }
        p += n;
        len -= (size_t)n;
    }
    return Status{};
}

Status
sendFull(int fd, const void *buf, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("send: ") +
                                   std::strerror(errno));
        }
        p += n;
        len -= (size_t)n;
    }
    return Status{};
}

Result<size_t>
readChunk(int fd, void *buf, size_t len)
{
    for (;;) {
        const ssize_t n = ::read(fd, buf, len);
        if (n >= 0)
            return (size_t)n;
        if (errno == EINTR)
            continue;
        return Status::ioError(std::string("read: ") +
                               std::strerror(errno));
    }
}

Result<size_t>
recvChunk(int fd, void *buf, size_t len)
{
    for (;;) {
        const ssize_t n = ::recv(fd, buf, len, 0);
        if (n >= 0)
            return (size_t)n;
        if (errno == EINTR)
            continue;
        return Status::ioError(std::string("recv: ") +
                               std::strerror(errno));
    }
}

// ------------------------------------- sockets with deadlines

namespace {

uint64_t
monoMs()
{
    return (uint64_t)std::chrono::duration_cast<
               std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** poll() @p fd for @p events until an absolute deadline; EINTR
 *  re-polls with the *remaining* budget so signals cannot extend it.
 *  @return >0 ready, 0 deadline, <0 (never: errors become Status). */
Result<int>
pollDeadline(int fd, short events, uint64_t deadline_ms,
             bool forever)
{
    for (;;) {
        int wait = -1;
        if (!forever) {
            const uint64_t now = monoMs();
            if (now >= deadline_ms)
                return 0;
            wait = (int)(deadline_ms - now);
        }
        struct pollfd pfd = {fd, events, 0};
        const int rc = ::poll(&pfd, 1, wait);
        if (rc > 0)
            return rc;
        if (rc == 0)
            return 0;
        if (errno == EINTR)
            continue;
        return Status::ioError(std::string("poll: ") +
                               std::strerror(errno));
    }
}

} // namespace

Status
connectDeadline(int fd, const struct sockaddr *addr,
                unsigned addr_len, uint64_t timeout_ms)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return Status::ioError(std::string("fcntl: ") +
                               std::strerror(errno));
    if (timeout_ms > 0 &&
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
        return Status::ioError(std::string("fcntl: ") +
                               std::strerror(errno));
    // Restore blocking mode on every exit path.
    const auto restore = [&]() {
        if (timeout_ms > 0)
            (void)::fcntl(fd, F_SETFL, flags);
    };

    int rc;
    do {
        rc = ::connect(fd, addr, (socklen_t)addr_len);
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
        restore();
        return Status{};
    }
    if (errno != EINPROGRESS) {
        const int err = errno;
        restore();
        return Status::unavailable(std::string("connect: ") +
                                   std::strerror(err));
    }
    auto ready = pollDeadline(fd, POLLOUT, monoMs() + timeout_ms,
                              /*forever=*/false);
    if (!ready.ok()) {
        restore();
        return ready.status();
    }
    if (*ready == 0) {
        restore();
        return Status::unavailable("connect timed out after " +
                                   std::to_string(timeout_ms) + " ms");
    }
    int soerr = 0;
    socklen_t soerr_len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) !=
        0) {
        const int err = errno;
        restore();
        return Status::ioError(std::string("getsockopt: ") +
                               std::strerror(err));
    }
    restore();
    if (soerr != 0)
        return Status::unavailable(std::string("connect: ") +
                                   std::strerror(soerr));
    return Status{};
}

namespace {

Result<struct sockaddr_in>
parseIpv4(const std::string &host, uint16_t port)
{
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1)
        return Status::invalidArgument(
            "not a numeric IPv4 address: '" + host + "'");
    return sa;
}

} // namespace

Result<int>
tcpConnect(const std::string &host, uint16_t port,
           uint64_t timeout_ms)
{
    auto sa = parseIpv4(host, port);
    RARPRED_RETURN_IF_ERROR(sa.status());
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    const Status s = connectDeadline(
        fd, reinterpret_cast<const struct sockaddr *>(&*sa),
        sizeof(*sa), timeout_ms);
    if (!s.ok()) {
        ::close(fd);
        return Status{s.code(), "connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    s.message()};
    }
    // Leases are small frames on a chatty path; never Nagle-delay a
    // heartbeat.
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    return fd;
}

Result<int>
tcpListen(const std::string &host, uint16_t port, int backlog)
{
    auto sa = parseIpv4(host, port);
    RARPRED_RETURN_IF_ERROR(sa.status());
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    if (::bind(fd, reinterpret_cast<const struct sockaddr *>(&*sa),
               sizeof(*sa)) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::ioError("bind " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(err));
    }
    if (::listen(fd, backlog) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::ioError(std::string("listen: ") +
                               std::strerror(err));
    }
    return fd;
}

Result<uint16_t>
tcpLocalPort(int fd)
{
    struct sockaddr_in sa;
    socklen_t len = sizeof(sa);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&sa),
                      &len) != 0)
        return Status::ioError(std::string("getsockname: ") +
                               std::strerror(errno));
    return (uint16_t)ntohs(sa.sin_port);
}

Result<int>
acceptDeadline(int listen_fd, uint64_t timeout_ms)
{
    auto ready = pollDeadline(listen_fd, POLLIN,
                              monoMs() + timeout_ms,
                              /*forever=*/timeout_ms == 0);
    RARPRED_RETURN_IF_ERROR(ready.status());
    if (*ready == 0)
        return Status::deadlineExceeded(
            "accept timed out after " + std::to_string(timeout_ms) +
            " ms");
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return Status::ioError(std::string("accept: ") +
                               std::strerror(errno));
    }
}

Result<bool>
pollReadable(int fd, uint64_t timeout_ms)
{
    auto ready = pollDeadline(fd, POLLIN, monoMs() + timeout_ms,
                              /*forever=*/timeout_ms == 0);
    RARPRED_RETURN_IF_ERROR(ready.status());
    return *ready > 0;
}

} // namespace rarpred
