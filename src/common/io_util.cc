#include "common/io_util.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rarpred {

Result<size_t>
readFull(int fd, void *buf, size_t len)
{
    auto *p = static_cast<uint8_t *>(buf);
    size_t got = 0;
    while (got < len) {
        const ssize_t n = ::read(fd, p + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("read: ") +
                                   std::strerror(errno));
        }
        if (n == 0)
            return got; // EOF before len: the caller decides
        got += (size_t)n;
    }
    return got;
}

Status
writeFull(int fd, const void *buf, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("write: ") +
                                   std::strerror(errno));
        }
        p += n;
        len -= (size_t)n;
    }
    return Status{};
}

Status
sendFull(int fd, const void *buf, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("send: ") +
                                   std::strerror(errno));
        }
        p += n;
        len -= (size_t)n;
    }
    return Status{};
}

Result<size_t>
readChunk(int fd, void *buf, size_t len)
{
    for (;;) {
        const ssize_t n = ::read(fd, buf, len);
        if (n >= 0)
            return (size_t)n;
        if (errno == EINTR)
            continue;
        return Status::ioError(std::string("read: ") +
                               std::strerror(errno));
    }
}

Result<size_t>
recvChunk(int fd, void *buf, size_t len)
{
    for (;;) {
        const ssize_t n = ::recv(fd, buf, len, 0);
        if (n >= 0)
            return (size_t)n;
        if (errno == EINTR)
            continue;
        return Status::ioError(std::string("recv: ") +
                               std::strerror(errno));
    }
}

} // namespace rarpred
