/**
 * @file
 * Size/associativity-configurable table.
 *
 * The paper evaluates its structures at several design points:
 * "infinite" (to bound achievable accuracy), fully associative with a
 * capacity (DDT, last-value predictor), and set associative (DPNT,
 * synonym file). HybridTable selects the right organization from a
 * (entries, assoc) pair so client code has a single interface:
 *
 *   entries == 0            -> unbounded (never evicts)
 *   assoc == 0 or == entries-> fully associative, LRU
 *   otherwise               -> set associative, LRU per set
 */

#ifndef RARPRED_COMMON_HYBRID_TABLE_HH_
#define RARPRED_COMMON_HYBRID_TABLE_HH_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitutils.hh"
#include "common/flat_table.hh"
#include "common/set_assoc_table.hh"
#include "common/statesave.hh"
#include "common/status.hh"

namespace rarpred {

/** Geometry of a HybridTable. */
struct TableGeometry
{
    size_t entries = 0; ///< 0 = unbounded
    size_t assoc = 0;   ///< 0 = fully associative (ignored if unbounded)
};

/**
 * Check that @p geom describes a constructible table: a set-associative
 * organization needs entries divisible by assoc and a power-of-two set
 * count. Validate user-supplied geometries with this *before* handing
 * them to a table; construction treats violations as internal bugs
 * (panic), not user errors.
 * @param what Name of the table being configured, for the message.
 */
inline Status
validateGeometry(const TableGeometry &geom, const std::string &what)
{
    if (geom.entries == 0 || geom.assoc == 0 || geom.assoc >= geom.entries)
        return Status{}; // unbounded or fully associative
    if (geom.entries % geom.assoc != 0)
        return Status::invalidArgument(
            what + ": entries (" + std::to_string(geom.entries) +
            ") not a multiple of associativity (" +
            std::to_string(geom.assoc) + ")");
    if (!isPowerOf2(geom.entries / geom.assoc))
        return Status::invalidArgument(
            what + ": set count (" +
            std::to_string(geom.entries / geom.assoc) +
            ") is not a power of two");
    return Status{};
}

/** A 64-bit-keyed table whose organization is chosen at run time. */
template <typename Value>
class HybridTable
{
  public:
    explicit HybridTable(TableGeometry geom) : geom_(geom)
    {
        if (geom.entries == 0) {
            // unbounded flat map, nothing to construct
        } else if (geom.assoc == 0 || geom.assoc >= geom.entries) {
            full_ = std::make_unique<FlatLruTable<Value>>(geom.entries);
        } else {
            setAssoc_ = std::make_unique<SetAssocTable<Value>>(geom.entries,
                                                               geom.assoc);
        }
    }

    /** Look up @p key, updating recency. @return value or nullptr. */
    Value *
    touch(uint64_t key)
    {
        if (full_)
            return full_->touch(key);
        if (setAssoc_)
            return setAssoc_->touch(key);
        return map_.find(key);
    }

    /** Look up @p key without updating recency. */
    Value *
    find(uint64_t key)
    {
        if (full_)
            return full_->find(key);
        if (setAssoc_)
            return setAssoc_->find(key);
        return map_.find(key);
    }

    /**
     * Look up @p key, promoting on a hit and inserting @p init on a
     * miss — one probe/scan in every organization, equivalent to
     * touch() followed by insert() on miss.
     * @return the entry pointer and whether it was newly inserted.
     */
    std::pair<Value *, bool>
    touchOrInsert(uint64_t key, Value init)
    {
        if (full_)
            return full_->touchOrInsert(key, std::move(init));
        if (setAssoc_)
            return setAssoc_->touchOrInsert(key, std::move(init));
        const size_t before = map_.size();
        Value &ref = map_.findOrInsert(key, std::move(init));
        return {&ref, map_.size() != before};
    }

    /** Insert or overwrite @p key. Evictions are silent here. */
    void
    insert(uint64_t key, Value value)
    {
        if (full_)
            full_->insert(key, std::move(value));
        else if (setAssoc_)
            setAssoc_->insert(key, std::move(value));
        else
            map_.insert(key, std::move(value));
    }

    /** Remove @p key. @return true if present. */
    bool
    erase(uint64_t key)
    {
        if (full_)
            return full_->erase(key);
        if (setAssoc_)
            return setAssoc_->erase(key);
        return map_.erase(key);
    }

    void
    clear()
    {
        if (full_)
            full_->clear();
        else if (setAssoc_)
            setAssoc_->clear();
        else
            map_.clear();
    }

    size_t
    size() const
    {
        if (full_)
            return full_->size();
        if (setAssoc_)
            return setAssoc_->size();
        return map_.size();
    }

    /** Visit every entry with (uint64_t key, Value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        if (full_)
            full_->forEach(fn);
        else if (setAssoc_)
            setAssoc_->forEach(fn);
        else
            map_.forEach(fn);
    }

    /** Const variant of forEach(): (uint64_t key, const Value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (full_)
            full_->forEach(fn);
        else if (setAssoc_)
            setAssoc_->forEach(fn);
        else
            map_.forEach(fn);
    }

    /**
     * Structural self-check for the online auditor; delegates to the
     * underlying organization (the unbounded map has no structural
     * invariants beyond what unordered_map maintains itself).
     */
    bool
    auditIntegrity() const
    {
        if (full_)
            return full_->auditIntegrity();
        if (setAssoc_)
            return setAssoc_->auditIntegrity();
        return true;
    }

    /**
     * Serialize organization + entries. The unbounded map is written
     * sorted by key so the image is deterministic regardless of hash
     * iteration order (snapshots must be byte-stable).
     */
    template <typename SaveFn>
    void
    saveState(StateWriter &w, SaveFn &&saveValue) const
    {
        w.u64(geom_.entries);
        w.u64(geom_.assoc);
        if (full_) {
            w.u8(1);
            full_->saveState(w, saveValue);
        } else if (setAssoc_) {
            w.u8(2);
            setAssoc_->saveState(w, saveValue);
        } else {
            w.u8(0);
            std::vector<uint64_t> keys;
            keys.reserve(map_.size());
            map_.forEach([&](uint64_t k, const Value &) {
                keys.push_back(k);
            });
            std::sort(keys.begin(), keys.end());
            w.u64(keys.size());
            for (uint64_t k : keys) {
                w.u64(k);
                saveValue(w, *map_.find(k));
            }
        }
    }

    /** Rebuild from a saveState() image; geometry must match. */
    template <typename LoadFn>
    Status
    restoreState(StateReader &r, LoadFn &&loadValue)
    {
        uint64_t entries = 0, assoc = 0;
        uint8_t mode = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&entries));
        RARPRED_RETURN_IF_ERROR(r.u64(&assoc));
        if (entries != geom_.entries || assoc != geom_.assoc) {
            return Status::failedPrecondition(
                "table snapshot has a different geometry");
        }
        RARPRED_RETURN_IF_ERROR(r.u8(&mode));
        const uint8_t want = full_ ? 1 : setAssoc_ ? 2 : 0;
        if (mode != want)
            return Status::corruption("table snapshot organization "
                                      "does not match geometry");
        if (full_)
            return full_->restoreState(r, loadValue);
        if (setAssoc_)
            return setAssoc_->restoreState(r, loadValue);
        uint64_t count = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&count));
        map_.clear();
        for (uint64_t i = 0; i < count; ++i) {
            uint64_t key = 0;
            Value value{};
            RARPRED_RETURN_IF_ERROR(r.u64(&key));
            RARPRED_RETURN_IF_ERROR(loadValue(r, &value));
            map_.insert(key, std::move(value));
        }
        return Status{};
    }

    const TableGeometry &geometry() const { return geom_; }

    /**
     * Probe-path counters of the underlying organization. The
     * set-associative mode has no probe sequence; it reports fill
     * (size/capacity) only.
     */
    ProbeStats
    probeStats() const
    {
        if (full_)
            return full_->probeStats();
        if (setAssoc_) {
            ProbeStats s;
            s.size = setAssoc_->size();
            s.slots = setAssoc_->capacity();
            return s;
        }
        return map_.probeStats();
    }

  private:
    TableGeometry geom_;
    std::unique_ptr<FlatLruTable<Value>> full_;
    std::unique_ptr<SetAssocTable<Value>> setAssoc_;
    FlatMap<Value> map_;
};

} // namespace rarpred

#endif // RARPRED_COMMON_HYBRID_TABLE_HH_
