/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Workload data initialization and any randomized behaviour in the
 * simulator must go through this generator so that every experiment is
 * exactly reproducible from its seed.
 */

#ifndef RARPRED_COMMON_RNG_HH_
#define RARPRED_COMMON_RNG_HH_

#include <cstdint>

namespace rarpred {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : s_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next 64 random bits. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** @return a uniform integer in [0, bound) ; bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return (double)(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

} // namespace rarpred

#endif // RARPRED_COMMON_RNG_HH_
