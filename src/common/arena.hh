/**
 * @file
 * Bump-pointer arena and arena-backed bounded ring.
 *
 * The simulate hot path must not touch the heap in steady state (the
 * allocation-counter test in tests/test_arena.cc asserts this), so
 * per-instruction dynamic state — the commit ring, the in-flight
 * store queue, the value/commit completion rings — lives in memory
 * carved from an Arena owned by the component. An Arena grows in
 * chunks, never frees individual allocations, and reset() rewinds it
 * for reuse without returning memory to the system; destruction
 * releases everything (RAII — nothing leaks on exceptions or early
 * returns). The idiom follows scarab's op pool: allocate up front,
 * recycle forever.
 */

#ifndef RARPRED_COMMON_ARENA_HH_
#define RARPRED_COMMON_ARENA_HH_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace rarpred {

/** A chunked bump allocator. Not thread-safe; one owner per arena. */
class Arena
{
  public:
    /** @param chunk_bytes Granularity of chunk growth. */
    explicit Arena(size_t chunk_bytes = 64 * 1024)
        : chunkBytes_(chunk_bytes)
    {
        rarpred_assert(chunk_bytes > 0);
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes aligned to @p align (a power of two).
     * The memory is uninitialized and lives until reset()/destruction.
     */
    void *
    allocateBytes(size_t bytes, size_t align)
    {
        rarpred_assert(align != 0 && (align & (align - 1)) == 0);
        for (;; ++cur_, offset_ = 0) {
            if (cur_ == chunks_.size()) {
                const size_t want =
                    bytes + align > chunkBytes_ ? bytes + align
                                                : chunkBytes_;
                chunks_.push_back(
                    {std::make_unique<std::byte[]>(want), want});
            }
            Chunk &c = chunks_[cur_];
            const uintptr_t base = (uintptr_t)c.data.get();
            const uintptr_t aligned =
                (base + offset_ + align - 1) & ~(uintptr_t)(align - 1);
            const size_t new_offset = (size_t)(aligned - base) + bytes;
            if (new_offset <= c.size) {
                offset_ = new_offset;
                used_ = inUseBefore_ + new_offset;
                return (void *)aligned;
            }
            // This chunk is (or has become) too small; move on. Track
            // the bytes consumed so bytesInUse() stays meaningful.
            inUseBefore_ += offset_;
        }
    }

    /**
     * Allocate and value-initialize an array of @p n trivially-
     * destructible Ts (no destructor will ever run).
     */
    template <typename T>
    T *
    allocateArray(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without destructors");
        T *p = (T *)allocateBytes(n * sizeof(T), alignof(T));
        for (size_t i = 0; i < n; ++i)
            new (p + i) T();
        return p;
    }

    /**
     * Rewind the arena: every previous allocation is invalidated, all
     * chunks are retained for reuse, and no memory is freed.
     */
    void
    reset()
    {
        cur_ = 0;
        offset_ = 0;
        inUseBefore_ = 0;
        used_ = 0;
    }

    /** Bytes handed out since the last reset (including padding). */
    size_t bytesInUse() const { return used_; }

    /** Bytes held from the system across resets. */
    size_t
    bytesReserved() const
    {
        size_t n = 0;
        for (const Chunk &c : chunks_)
            n += c.size;
        return n;
    }

    /** Number of chunks held. */
    size_t chunkCount() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        size_t size;
    };

    size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    size_t cur_ = 0;         ///< chunk currently bumped
    size_t offset_ = 0;      ///< bump offset within chunks_[cur_]
    size_t inUseBefore_ = 0; ///< bytes consumed in chunks before cur_
    size_t used_ = 0;
};

/**
 * A fixed-capacity FIFO ring over arena storage: push_back/pop_front
 * plus random access, replacing std::deque in the hot loop (libstdc++
 * deques allocate and free map blocks in steady state; this never
 * allocates after init). Storage is rounded up to a power of two so
 * every access is a mask, not a division. Overflow beyond the
 * requested capacity is a logic error (rarpred_assert).
 */
template <typename T>
class ArenaRing
{
  public:
    ArenaRing() = default;

    /** Carve storage for @p capacity elements out of @p arena. */
    void
    init(Arena &arena, size_t capacity)
    {
        rarpred_assert(data_ == nullptr);
        rarpred_assert(capacity > 0);
        size_t slots = 1;
        while (slots < capacity)
            slots <<= 1;
        data_ = arena.allocateArray<T>(slots);
        mask_ = slots - 1;
        capacity_ = capacity;
    }

    void
    push_back(const T &v)
    {
        rarpred_assert(size_ < capacity_);
        data_[(head_ + size_) & mask_] = v;
        ++size_;
    }

    void
    pop_front()
    {
        rarpred_assert(size_ > 0);
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    T &operator[](size_t i) { return data_[(head_ + i) & mask_]; }
    const T &
    operator[](size_t i) const
    {
        return data_[(head_ + i) & mask_];
    }

    T &front() { return data_[head_]; }
    const T &front() const { return data_[head_]; }
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    size_t capacity() const { return capacity_; }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    T *data_ = nullptr;
    size_t capacity_ = 0;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace rarpred

#endif // RARPRED_COMMON_ARENA_HH_
