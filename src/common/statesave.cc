#include "common/statesave.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.hh"

namespace rarpred {

namespace {

/// Byte overhead of a section frame around its payload.
constexpr size_t kFrameHeadBytes = 8; // u32 tag + u32 payloadLen
constexpr size_t kFrameTailBytes = 4; // u32 crc32 over tag+len+payload

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)p[i] << (8 * i);
    return v;
}

void
putU32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = (uint8_t)(v >> (8 * i));
}

} // namespace

void
StateWriter::beginSection(uint32_t tag)
{
    open_.push_back(buf_.size());
    u32(tag);
    u32(0); // payload length, patched by endSection()
}

void
StateWriter::endSection()
{
    const size_t head = open_.back();
    open_.pop_back();
    const size_t payload = buf_.size() - head - kFrameHeadBytes;
    putU32(buf_.data() + head + 4, (uint32_t)payload);
    const uint32_t crc =
        crc32(buf_.data() + head, kFrameHeadBytes + payload);
    u32(crc);
}

Status
StateReader::need(size_t n) const
{
    size_t bound = bounds_.empty() ? len_ : bounds_.back();
    if (pos_ + n > bound)
        return Status::corruption("state stream truncated");
    return Status{};
}

Status
StateReader::u8(uint8_t *out)
{
    RARPRED_RETURN_IF_ERROR(need(1));
    *out = data_[pos_++];
    return Status{};
}

Status
StateReader::u32(uint32_t *out)
{
    RARPRED_RETURN_IF_ERROR(need(4));
    *out = getU32(data_ + pos_);
    pos_ += 4;
    return Status{};
}

Status
StateReader::u64(uint64_t *out)
{
    RARPRED_RETURN_IF_ERROR(need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)data_[pos_ + i] << (8 * i);
    *out = v;
    pos_ += 8;
    return Status{};
}

Status
StateReader::boolean(bool *out)
{
    uint8_t v = 0;
    RARPRED_RETURN_IF_ERROR(u8(&v));
    if (v > 1)
        return Status::corruption("boolean field out of range");
    *out = v != 0;
    return Status{};
}

Status
StateReader::bytes(void *out, size_t len)
{
    RARPRED_RETURN_IF_ERROR(need(len));
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status{};
}

Status
StateReader::enterSection(uint32_t tag)
{
    RARPRED_RETURN_IF_ERROR(need(kFrameHeadBytes));
    const size_t head = pos_;
    const uint32_t gotTag = getU32(data_ + head);
    if (gotTag != tag)
        return Status::corruption("section tag mismatch");
    const uint32_t payload = getU32(data_ + head + 4);
    RARPRED_RETURN_IF_ERROR(
        need(kFrameHeadBytes + payload + kFrameTailBytes));
    const uint32_t want =
        getU32(data_ + head + kFrameHeadBytes + payload);
    const uint32_t got = crc32(data_ + head, kFrameHeadBytes + payload);
    if (want != got)
        return Status::corruption("section CRC mismatch");
    pos_ = head + kFrameHeadBytes;
    bounds_.push_back(pos_ + payload);
    return Status{};
}

Status
StateReader::leaveSection()
{
    const size_t bound = bounds_.back();
    if (pos_ != bound)
        return Status::corruption("section has unread payload");
    bounds_.pop_back();
    pos_ = bound + kFrameTailBytes; // skip the already-verified CRC
    return Status{};
}

size_t
StateReader::remaining() const
{
    size_t bound = bounds_.empty() ? len_ : bounds_.back();
    return bound > pos_ ? bound - pos_ : 0;
}

Status
validateSectionChain(const uint8_t *data, size_t len)
{
    size_t pos = 0;
    while (pos < len) {
        if (pos + kFrameHeadBytes + kFrameTailBytes > len)
            return Status::corruption("truncated section frame");
        const uint32_t payload = getU32(data + pos + 4);
        const size_t frame =
            kFrameHeadBytes + (size_t)payload + kFrameTailBytes;
        if (pos + frame > len)
            return Status::corruption("section frame overruns buffer");
        const uint32_t want =
            getU32(data + pos + kFrameHeadBytes + payload);
        const uint32_t got =
            crc32(data + pos, kFrameHeadBytes + payload);
        if (want != got)
            return Status::corruption("section CRC mismatch");
        pos += frame;
    }
    return Status{};
}

Status
durableWriteFile(const std::string &path, const void *data, size_t len,
                 int *errno_out)
{
    if (errno_out != nullptr)
        *errno_out = 0;
    const auto fail = [errno_out](int err) {
        if (errno_out != nullptr)
            *errno_out = err;
    };
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        fail(errno);
        return Status::ioError("cannot create " + tmp + ": " +
                               std::strerror(errno));
    }
    const auto *p = static_cast<const uint8_t *>(data);
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            fail(err);
            return Status::ioError("short write to " + tmp + ": " +
                                   std::strerror(err));
        }
        off += (size_t)n;
    }
    // The fsync *before* the rename is the load-bearing part: rename
    // is atomic, but without it a crash can expose the new name with
    // zero-length (unflushed) contents.
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        fail(err);
        return Status::ioError("fsync " + tmp + ": " +
                               std::strerror(err));
    }
    if (::close(fd) != 0) {
        fail(errno);
        return Status::ioError("close " + tmp + ": " +
                               std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        fail(err);
        return Status::ioError("rename " + tmp + " -> " + path + ": " +
                               std::strerror(err));
    }
    // Make the rename itself durable. Failure here is not fatal: the
    // data is intact, only the directory entry may be replayed.
    std::string dir = ".";
    if (auto slash = path.find_last_of('/'); slash != std::string::npos)
        dir = path.substr(0, slash == 0 ? 1 : slash);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        (void)::fsync(dfd);
        ::close(dfd);
    }
    return Status{};
}

} // namespace rarpred
