#include "memory/cache.hh"

#include "common/logging.hh"

namespace rarpred {

Cache::Cache(const CacheConfig &config)
    : config_(config), blockBits_(floorLog2(config.blockBytes)),
      tags_(config.sizeBytes / config.blockBytes, config.assoc)
{
    rarpred_assert(isPowerOf2(config.blockBytes));
    rarpred_assert(config.sizeBytes % config.blockBytes == 0);
}

bool
Cache::access(uint64_t addr, bool is_write,
              std::optional<Writeback> *writeback)
{
    const uint64_t block = blockOf(addr);
    if (LineMeta *line = tags_.touch(block)) {
        ++hits_;
        if (is_write)
            line->dirty = true;
        return true;
    }
    ++misses_;
    auto evicted = tags_.insert(block, LineMeta{is_write});
    if (writeback && evicted && evicted->value.dirty)
        *writeback = Writeback{evicted->key << blockBits_};
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    return tags_.find(blockOf(addr)) != nullptr;
}

void
Cache::invalidate(uint64_t addr)
{
    tags_.erase(blockOf(addr));
}

} // namespace rarpred
