#include "memory/cache.hh"

#include "common/logging.hh"

namespace rarpred {

Cache::Cache(const CacheConfig &config)
    : config_(config), blockBits_(floorLog2(config.blockBytes)),
      tags_(config.sizeBytes / config.blockBytes, config.assoc)
{
    rarpred_assert(isPowerOf2(config.blockBytes));
    rarpred_assert(config.sizeBytes % config.blockBytes == 0);
}

bool
Cache::access(uint64_t addr, bool is_write,
              std::optional<Writeback> *writeback)
{
    const uint64_t block = blockOf(addr);
    std::optional<SetAssocTable<LineMeta>::Eviction> evicted;
    auto [line, miss] = tags_.touchOrInsert(block, LineMeta{is_write},
                                            writeback ? &evicted : nullptr);
    if (!miss) {
        ++hits_;
        if (is_write)
            line->dirty = true;
        return true;
    }
    ++misses_;
    if (evicted && evicted->value.dirty)
        *writeback = Writeback{evicted->key << blockBits_};
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    return tags_.find(blockOf(addr)) != nullptr;
}

void
Cache::invalidate(uint64_t addr)
{
    tags_.erase(blockOf(addr));
}

void
Cache::saveState(StateWriter &w) const
{
    tags_.saveState(w, [](StateWriter &out, const LineMeta &m) {
        out.boolean(m.dirty);
    });
    w.u64(hits_.value());
    w.u64(misses_.value());
}

Status
Cache::restoreState(StateReader &r)
{
    RARPRED_RETURN_IF_ERROR(
        tags_.restoreState(r, [](StateReader &in, LineMeta *m) {
            return in.boolean(&m->dirty);
        }));
    uint64_t hits = 0, misses = 0;
    RARPRED_RETURN_IF_ERROR(r.u64(&hits));
    RARPRED_RETURN_IF_ERROR(r.u64(&misses));
    hits_.reset();
    hits_ += hits;
    misses_.reset();
    misses_ += misses;
    return Status{};
}

} // namespace rarpred
