/**
 * @file
 * Combining write buffer between cache levels (Section 5.1: 32-block
 * buffers between L1 and L2 and between L2 and memory, with write
 * combining and load hits-on-miss).
 */

#ifndef RARPRED_MEMORY_WRITE_BUFFER_HH_
#define RARPRED_MEMORY_WRITE_BUFFER_HH_

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/statesave.hh"
#include "common/stats.hh"

namespace rarpred {

/**
 * A combining write buffer.
 *
 * Entries hold block addresses with a drain-complete timestamp; a
 * store to a block already buffered combines with it. Loads probe the
 * buffer (hit-on-miss support). The buffer drains one block per
 * drainLatency cycles; when full, a new store stalls until the oldest
 * entry drains.
 *
 * Entries live in a ring over storage allocated once at construction
 * (the deque this replaced allocated chunk blocks in steady state;
 * the hot loop must not touch the heap).
 */
class WriteBuffer
{
  public:
    /**
     * @param capacity Blocks buffered (paper: 32).
     * @param block_bytes Block size of the downstream level.
     * @param drain_latency Cycles to retire one block downstream.
     */
    WriteBuffer(size_t capacity, uint64_t block_bytes,
                unsigned drain_latency)
        : capacity_(capacity), blockBits_(floorLog2(block_bytes)),
          drainLatency_(drain_latency)
    {
        size_t slots = 1;
        while (slots < capacity_)
            slots <<= 1;
        ring_.assign(slots, Entry{});
        mask_ = slots - 1;
    }

    /**
     * Insert a block write at @p cycle.
     * @return the cycle at which the store can be considered complete
     *         (equals @p cycle unless the buffer was full).
     */
    uint64_t
    push(uint64_t addr, uint64_t cycle)
    {
        const uint64_t block = addr >> blockBits_;
        drainUpTo(cycle);
        for (size_t i = 0; i < size_; ++i) {
            if (at(i).block == block) {
                ++combines_;
                return cycle; // write combining
            }
        }
        uint64_t ready = cycle;
        if (size_ >= capacity_) {
            // Stall until the oldest entry finishes draining.
            ready = at(0).drainDone;
            drainUpTo(ready);
            ++fullStalls_;
        }
        const uint64_t start =
            size_ == 0 ? ready : at(size_ - 1).drainDone;
        ring_[(head_ + size_) & mask_] = {block, start + drainLatency_};
        ++size_;
        return ready;
    }

    /** @return true when @p addr's block is buffered at @p cycle. */
    bool
    contains(uint64_t addr, uint64_t cycle)
    {
        drainUpTo(cycle);
        const uint64_t block = addr >> blockBits_;
        for (size_t i = 0; i < size_; ++i)
            if (at(i).block == block)
                return true;
        return false;
    }

    size_t occupancy() const { return size_; }
    uint64_t combines() const { return combines_.value(); }
    uint64_t fullStalls() const { return fullStalls_.value(); }

    void
    saveState(StateWriter &w) const
    {
        w.u64(size_);
        for (size_t i = 0; i < size_; ++i) {
            w.u64(at(i).block);
            w.u64(at(i).drainDone);
        }
        w.u64(combines_.value());
        w.u64(fullStalls_.value());
    }

    Status
    restoreState(StateReader &r)
    {
        uint64_t size = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&size));
        if (size > capacity_)
            return Status::corruption("write buffer image over capacity");
        head_ = 0;
        size_ = 0;
        for (uint64_t i = 0; i < size; ++i) {
            Entry e{};
            RARPRED_RETURN_IF_ERROR(r.u64(&e.block));
            RARPRED_RETURN_IF_ERROR(r.u64(&e.drainDone));
            ring_[size_++] = e;
        }
        uint64_t combines = 0, stalls = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&combines));
        RARPRED_RETURN_IF_ERROR(r.u64(&stalls));
        combines_.reset();
        combines_ += combines;
        fullStalls_.reset();
        fullStalls_ += stalls;
        return Status{};
    }

  private:
    struct Entry
    {
        uint64_t block;
        uint64_t drainDone;
    };

    Entry &at(size_t i) { return ring_[(head_ + i) & mask_]; }
    const Entry &at(size_t i) const { return ring_[(head_ + i) & mask_]; }

    void
    drainUpTo(uint64_t cycle)
    {
        while (size_ > 0 && at(0).drainDone <= cycle) {
            head_ = (head_ + 1) & mask_;
            --size_;
        }
    }

    size_t capacity_;
    unsigned blockBits_;
    unsigned drainLatency_;
    std::vector<Entry> ring_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t size_ = 0;
    Counter combines_;
    Counter fullStalls_;
};

} // namespace rarpred

#endif // RARPRED_MEMORY_WRITE_BUFFER_HH_
