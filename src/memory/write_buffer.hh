/**
 * @file
 * Combining write buffer between cache levels (Section 5.1: 32-block
 * buffers between L1 and L2 and between L2 and memory, with write
 * combining and load hits-on-miss).
 */

#ifndef RARPRED_MEMORY_WRITE_BUFFER_HH_
#define RARPRED_MEMORY_WRITE_BUFFER_HH_

#include <cstdint>
#include <deque>

#include "common/bitutils.hh"
#include "common/statesave.hh"
#include "common/stats.hh"

namespace rarpred {

/**
 * A combining write buffer.
 *
 * Entries hold block addresses with a drain-complete timestamp; a
 * store to a block already buffered combines with it. Loads probe the
 * buffer (hit-on-miss support). The buffer drains one block per
 * drainLatency cycles; when full, a new store stalls until the oldest
 * entry drains.
 */
class WriteBuffer
{
  public:
    /**
     * @param capacity Blocks buffered (paper: 32).
     * @param block_bytes Block size of the downstream level.
     * @param drain_latency Cycles to retire one block downstream.
     */
    WriteBuffer(size_t capacity, uint64_t block_bytes,
                unsigned drain_latency)
        : capacity_(capacity), blockBits_(floorLog2(block_bytes)),
          drainLatency_(drain_latency)
    {}

    /**
     * Insert a block write at @p cycle.
     * @return the cycle at which the store can be considered complete
     *         (equals @p cycle unless the buffer was full).
     */
    uint64_t
    push(uint64_t addr, uint64_t cycle)
    {
        const uint64_t block = addr >> blockBits_;
        drainUpTo(cycle);
        for (auto &e : entries_) {
            if (e.block == block) {
                ++combines_;
                return cycle; // write combining
            }
        }
        uint64_t ready = cycle;
        if (entries_.size() >= capacity_) {
            // Stall until the oldest entry finishes draining.
            ready = entries_.front().drainDone;
            drainUpTo(ready);
            ++fullStalls_;
        }
        const uint64_t start =
            entries_.empty() ? ready : entries_.back().drainDone;
        entries_.push_back({block, start + drainLatency_});
        return ready;
    }

    /** @return true when @p addr's block is buffered at @p cycle. */
    bool
    contains(uint64_t addr, uint64_t cycle)
    {
        drainUpTo(cycle);
        const uint64_t block = addr >> blockBits_;
        for (const auto &e : entries_)
            if (e.block == block)
                return true;
        return false;
    }

    size_t occupancy() const { return entries_.size(); }
    uint64_t combines() const { return combines_.value(); }
    uint64_t fullStalls() const { return fullStalls_.value(); }

    void
    saveState(StateWriter &w) const
    {
        w.u64(entries_.size());
        for (const Entry &e : entries_) {
            w.u64(e.block);
            w.u64(e.drainDone);
        }
        w.u64(combines_.value());
        w.u64(fullStalls_.value());
    }

    Status
    restoreState(StateReader &r)
    {
        uint64_t size = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&size));
        if (size > capacity_)
            return Status::corruption("write buffer image over capacity");
        entries_.clear();
        for (uint64_t i = 0; i < size; ++i) {
            Entry e{};
            RARPRED_RETURN_IF_ERROR(r.u64(&e.block));
            RARPRED_RETURN_IF_ERROR(r.u64(&e.drainDone));
            entries_.push_back(e);
        }
        uint64_t combines = 0, stalls = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&combines));
        RARPRED_RETURN_IF_ERROR(r.u64(&stalls));
        combines_.reset();
        combines_ += combines;
        fullStalls_.reset();
        fullStalls_ += stalls;
        return Status{};
    }

  private:
    struct Entry
    {
        uint64_t block;
        uint64_t drainDone;
    };

    void
    drainUpTo(uint64_t cycle)
    {
        while (!entries_.empty() && entries_.front().drainDone <= cycle)
            entries_.pop_front();
    }

    size_t capacity_;
    unsigned blockBits_;
    unsigned drainLatency_;
    std::deque<Entry> entries_;
    Counter combines_;
    Counter fullStalls_;
};

} // namespace rarpred

#endif // RARPRED_MEMORY_WRITE_BUFFER_HH_
