/**
 * @file
 * Single cache level: set-associative tag store with true LRU and
 * write-back/write-allocate policy.
 */

#ifndef RARPRED_MEMORY_CACHE_HH_
#define RARPRED_MEMORY_CACHE_HH_

#include <cstdint>
#include <optional>
#include <string>

#include "common/bitutils.hh"
#include "common/set_assoc_table.hh"
#include "common/statesave.hh"
#include "common/stats.hh"

namespace rarpred {

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * 1024;
    uint64_t blockBytes = 16;
    unsigned assoc = 2;
    unsigned hitLatency = 2; ///< cycles
};

/** Tag store for one cache level. */
class Cache
{
  public:
    /** A block written back on eviction. */
    struct Writeback
    {
        uint64_t blockAddr; ///< block-aligned byte address
    };

    explicit Cache(const CacheConfig &config);

    /**
     * Access the cache.
     * @param addr Byte address.
     * @param is_write True for stores (marks the block dirty).
     * @param[out] writeback Set when a dirty block was evicted.
     * @return true on hit.
     */
    bool access(uint64_t addr, bool is_write,
                std::optional<Writeback> *writeback = nullptr);

    /** Probe without allocating or updating LRU. @return true on hit. */
    bool probe(uint64_t addr) const;

    /** Invalidate a block if present. */
    void invalidate(uint64_t addr);

    const CacheConfig &config() const { return config_; }

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }

    /** Hit latency in cycles. */
    unsigned hitLatency() const { return config_.hitLatency; }

    /** Serialize the tag store (exact LRU order) and hit counters. */
    void saveState(StateWriter &w) const;
    Status restoreState(StateReader &r);

  private:
    struct LineMeta
    {
        bool dirty = false;
    };

    uint64_t blockOf(uint64_t addr) const
    {
        return addr >> blockBits_;
    }

    CacheConfig config_;
    unsigned blockBits_;
    SetAssocTable<LineMeta> tags_;
    Counter hits_;
    Counter misses_;
};

} // namespace rarpred

#endif // RARPRED_MEMORY_CACHE_HH_
