/**
 * @file
 * The full memory hierarchy of Section 5.1:
 *  - 32K / 16B-block / 2-way L1 data cache, 2-cycle hits
 *  - 64K / 16B-block / 2-way L1 instruction cache, 2-cycle hits
 *  - unified 4M / 128B-block / 8-way L2, 10-cycle hits
 *  - infinite main memory, 50-cycle miss latency (first word)
 *  - 32-block combining write buffers between L1/L2 and L2/memory,
 *    with load hits-on-miss.
 */

#ifndef RARPRED_MEMORY_MEMORY_SYSTEM_HH_
#define RARPRED_MEMORY_MEMORY_SYSTEM_HH_

#include <cstdint>

#include "memory/cache.hh"
#include "memory/write_buffer.hh"

namespace rarpred {

/** Hierarchy-level configuration. */
struct MemorySystemConfig
{
    CacheConfig l1d{"l1d", 32 * 1024, 16, 2, 2};
    CacheConfig l1i{"l1i", 64 * 1024, 16, 2, 2};
    CacheConfig l2{"l2", 4 * 1024 * 1024, 128, 8, 10};
    unsigned memLatency = 50;       ///< first-word main memory latency
    size_t writeBufferBlocks = 32;  ///< per buffer
};

/**
 * Latency-model view of the memory hierarchy used by the trace-driven
 * CPU: each access returns its total latency in cycles and updates
 * cache/buffer state.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemorySystemConfig &config);

    /** Demand data load at @p cycle. @return latency in cycles. */
    unsigned load(uint64_t addr, uint64_t cycle);

    /**
     * Data store at @p cycle.
     * @return cycles until the store has left the store queue (write
     *         buffers absorb misses; only a full buffer stalls).
     */
    unsigned store(uint64_t addr, uint64_t cycle);

    /** Instruction fetch of the block containing @p pc. */
    unsigned ifetch(uint64_t pc, uint64_t cycle);

    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }

    /** Serialize all three caches and both write buffers. */
    void
    saveState(StateWriter &w) const
    {
        l1d_.saveState(w);
        l1i_.saveState(w);
        l2_.saveState(w);
        l1ToL2_.saveState(w);
        l2ToMem_.saveState(w);
    }

    Status
    restoreState(StateReader &r)
    {
        RARPRED_RETURN_IF_ERROR(l1d_.restoreState(r));
        RARPRED_RETURN_IF_ERROR(l1i_.restoreState(r));
        RARPRED_RETURN_IF_ERROR(l2_.restoreState(r));
        RARPRED_RETURN_IF_ERROR(l1ToL2_.restoreState(r));
        return l2ToMem_.restoreState(r);
    }

  private:
    /** L2-and-below latency for a demand miss from an L1. */
    unsigned l2Access(uint64_t addr, uint64_t cycle, bool is_write);

    MemorySystemConfig config_;
    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    WriteBuffer l1ToL2_;
    WriteBuffer l2ToMem_;
};

} // namespace rarpred

#endif // RARPRED_MEMORY_MEMORY_SYSTEM_HH_
