#include "memory/memory_system.hh"

namespace rarpred {

MemorySystem::MemorySystem(const MemorySystemConfig &config)
    : config_(config), l1d_(config.l1d), l1i_(config.l1i), l2_(config.l2),
      l1ToL2_(config.writeBufferBlocks, config.l2.blockBytes,
              config.l2.hitLatency),
      l2ToMem_(config.writeBufferBlocks, config.l2.blockBytes,
               config.memLatency)
{
}

unsigned
MemorySystem::l2Access(uint64_t addr, uint64_t cycle, bool is_write)
{
    std::optional<Cache::Writeback> wb;
    if (l2_.access(addr, is_write, &wb)) {
        return l2_.hitLatency();
    }
    if (wb)
        l2ToMem_.push(wb->blockAddr, cycle);
    // Hit-on-miss in the L2-to-memory write buffer: the block is still
    // in flight downstream and can be returned quickly.
    if (!is_write && l2ToMem_.contains(addr, cycle))
        return l2_.hitLatency();
    return l2_.hitLatency() + config_.memLatency;
}

unsigned
MemorySystem::load(uint64_t addr, uint64_t cycle)
{
    std::optional<Cache::Writeback> wb;
    if (l1d_.access(addr, false, &wb))
        return l1d_.hitLatency();
    if (wb)
        l1ToL2_.push(wb->blockAddr, cycle);
    if (l1ToL2_.contains(addr, cycle))
        return l1d_.hitLatency() + 1; // hit on in-flight written block
    return l1d_.hitLatency() + l2Access(addr, cycle, false);
}

unsigned
MemorySystem::store(uint64_t addr, uint64_t cycle)
{
    std::optional<Cache::Writeback> wb;
    if (l1d_.access(addr, true, &wb))
        return l1d_.hitLatency();
    if (wb)
        l1ToL2_.push(wb->blockAddr, cycle);
    // Write-allocate: the line is fetched, but the store itself only
    // occupies the queue until it is handed to the write buffer.
    const uint64_t ready = l1ToL2_.push(addr, cycle);
    return l1d_.hitLatency() + (unsigned)(ready - cycle);
}

unsigned
MemorySystem::ifetch(uint64_t pc, uint64_t cycle)
{
    std::optional<Cache::Writeback> wb;
    if (l1i_.access(pc, false, &wb))
        return l1i_.hitLatency();
    return l1i_.hitLatency() + l2Access(pc, cycle, false);
}

} // namespace rarpred
