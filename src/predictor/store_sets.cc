#include "predictor/store_sets.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace rarpred {

StoreSetPredictor::StoreSetPredictor(size_t ssit_entries,
                                     size_t lfst_entries)
    : ssit_(ssit_entries, kNoSsid), lfst_(lfst_entries, kNoStore)
{
    rarpred_assert(isPowerOf2(ssit_entries));
    rarpred_assert(isPowerOf2(lfst_entries));
}

std::optional<uint64_t>
StoreSetPredictor::onStoreDispatch(uint64_t pc, uint64_t seq)
{
    const uint32_t ssid = ssit_[ssitIndex(pc)];
    if (ssid == kNoSsid)
        return std::nullopt;
    uint64_t &last = lfst_[ssid & (lfst_.size() - 1)];
    std::optional<uint64_t> prev;
    if (last != kNoStore)
        prev = last; // in-order store-store constraint within the set
    last = seq;
    return prev;
}

std::optional<uint64_t>
StoreSetPredictor::onLoadDispatch(uint64_t pc)
{
    const uint32_t ssid = ssit_[ssitIndex(pc)];
    if (ssid == kNoSsid)
        return std::nullopt;
    const uint64_t last = lfst_[ssid & (lfst_.size() - 1)];
    if (last == kNoStore)
        return std::nullopt;
    return last;
}

void
StoreSetPredictor::onStoreRetire(uint64_t pc, uint64_t seq)
{
    const uint32_t ssid = ssit_[ssitIndex(pc)];
    if (ssid == kNoSsid)
        return;
    uint64_t &last = lfst_[ssid & (lfst_.size() - 1)];
    if (last == seq)
        last = kNoStore; // no younger store of this set in flight
}

void
StoreSetPredictor::onViolation(uint64_t load_pc, uint64_t store_pc)
{
    uint32_t &load_ssid = ssit_[ssitIndex(load_pc)];
    uint32_t &store_ssid = ssit_[ssitIndex(store_pc)];
    ++assignments_;
    if (load_ssid == kNoSsid && store_ssid == kNoSsid) {
        const uint32_t ssid = nextSsid_++;
        load_ssid = ssid;
        store_ssid = ssid;
    } else if (load_ssid == kNoSsid) {
        load_ssid = store_ssid;
    } else if (store_ssid == kNoSsid) {
        store_ssid = load_ssid;
    } else if (load_ssid != store_ssid) {
        // Value-biased merge: the smaller SSID wins, one side at a
        // time (the rule the paper reuses for DPNT synonyms).
        ++merges_;
        if (load_ssid < store_ssid)
            store_ssid = load_ssid;
        else
            load_ssid = store_ssid;
    }
}

bool
StoreSetPredictor::injectFault(Rng &rng)
{
    if (rng.below(2) == 0) {
        uint32_t &slot = ssit_[(size_t)rng.below(ssit_.size())];
        slot ^= 1u << rng.below(32);
    } else {
        uint64_t &slot = lfst_[(size_t)rng.below(lfst_.size())];
        slot ^= 1ull << rng.below(64);
    }
    return true;
}

void
StoreSetPredictor::clear()
{
    std::fill(ssit_.begin(), ssit_.end(), kNoSsid);
    std::fill(lfst_.begin(), lfst_.end(), kNoStore);
    nextSsid_ = 0;
}

void
StoreSetPredictor::saveState(StateWriter &w) const
{
    w.u64(ssit_.size());
    for (uint32_t ssid : ssit_)
        w.u32(ssid);
    w.u64(lfst_.size());
    for (uint64_t seq : lfst_)
        w.u64(seq);
    w.u32(nextSsid_);
    w.u64(assignments_);
    w.u64(merges_);
}

Status
StoreSetPredictor::restoreState(StateReader &r)
{
    uint64_t size = 0;
    RARPRED_RETURN_IF_ERROR(r.u64(&size));
    if (size != ssit_.size())
        return Status::failedPrecondition(
            "store-set snapshot has a different SSIT size");
    for (uint32_t &ssid : ssit_)
        RARPRED_RETURN_IF_ERROR(r.u32(&ssid));
    RARPRED_RETURN_IF_ERROR(r.u64(&size));
    if (size != lfst_.size())
        return Status::failedPrecondition(
            "store-set snapshot has a different LFST size");
    for (uint64_t &seq : lfst_)
        RARPRED_RETURN_IF_ERROR(r.u64(&seq));
    RARPRED_RETURN_IF_ERROR(r.u32(&nextSsid_));
    RARPRED_RETURN_IF_ERROR(r.u64(&assignments_));
    return r.u64(&merges_);
}

} // namespace rarpred
