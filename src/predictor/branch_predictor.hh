/**
 * @file
 * Branch direction predictors and return address stack (Section 5.1:
 * a 64K-entry combined predictor with a 2-bit chooser selecting
 * between a 2-bit bimodal table and GSHARE, plus a 64-entry call
 * stack).
 */

#ifndef RARPRED_PREDICTOR_BRANCH_PREDICTOR_HH_
#define RARPRED_PREDICTOR_BRANCH_PREDICTOR_HH_

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/sat_counter.hh"

namespace rarpred {

/** Classic 2-bit-counter bimodal predictor. */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(size_t entries);

    bool predict(uint64_t pc) const;
    void update(uint64_t pc, bool taken);

  private:
    size_t indexOf(uint64_t pc) const { return (pc >> 2) & mask_; }

    uint64_t mask_;
    std::vector<SatCounter> table_;
};

/** GSHARE: global history XOR PC indexes a 2-bit counter table. */
class GsharePredictor
{
  public:
    /**
     * @param entries Table size (power of two).
     * @param history_bits Global history length.
     */
    GsharePredictor(size_t entries, unsigned history_bits);

    bool predict(uint64_t pc) const;

    /** Update counter and shift @p taken into the global history. */
    void update(uint64_t pc, bool taken);

  private:
    size_t
    indexOf(uint64_t pc) const
    {
        return ((pc >> 2) ^ history_) & mask_;
    }

    uint64_t mask_;
    uint64_t historyMask_;
    uint64_t history_ = 0;
    std::vector<SatCounter> table_;
};

/**
 * Combined predictor: a 2-bit chooser per entry selects bimodal or
 * GSHARE; both components always train, the chooser trains toward
 * whichever component was correct.
 */
class CombinedPredictor
{
  public:
    /** @param entries Entries per table (paper total: 64K). */
    explicit CombinedPredictor(size_t entries = 16384,
                               unsigned history_bits = 12);

    bool predict(uint64_t pc) const;
    void update(uint64_t pc, bool taken);

    uint64_t lookups() const { return lookups_; }
    uint64_t correct() const { return correct_; }

    /** Convenience: predict, record accuracy, update. */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const bool p = predict(pc);
        ++lookups_;
        if (p == taken)
            ++correct_;
        update(pc, taken);
        return p == taken;
    }

  private:
    size_t indexOf(uint64_t pc) const { return (pc >> 2) & mask_; }

    uint64_t mask_;
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<SatCounter> chooser_; ///< MSB set -> use gshare
    uint64_t lookups_ = 0;
    uint64_t correct_ = 0;
};

/** 64-entry return address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(size_t depth = 64) : depth_(depth) {}

    void
    push(uint64_t return_pc)
    {
        if (stack_.size() >= depth_)
            stack_.erase(stack_.begin()); // overflow: drop the oldest
        stack_.push_back(return_pc);
    }

    /** @return predicted return target, or 0 when empty. */
    uint64_t
    pop()
    {
        if (stack_.empty())
            return 0;
        uint64_t top = stack_.back();
        stack_.pop_back();
        return top;
    }

    size_t size() const { return stack_.size(); }

  private:
    size_t depth_;
    std::vector<uint64_t> stack_;
};

} // namespace rarpred

#endif // RARPRED_PREDICTOR_BRANCH_PREDICTOR_HH_
