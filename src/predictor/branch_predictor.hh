/**
 * @file
 * Branch direction predictors and return address stack (Section 5.1:
 * a 64K-entry combined predictor with a 2-bit chooser selecting
 * between a 2-bit bimodal table and GSHARE, plus a 64-entry call
 * stack).
 */

#ifndef RARPRED_PREDICTOR_BRANCH_PREDICTOR_HH_
#define RARPRED_PREDICTOR_BRANCH_PREDICTOR_HH_

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/sat_counter.hh"
#include "common/statesave.hh"

namespace rarpred {

namespace detail {

/** Serialize a saturating-counter table (values only; widths fixed). */
inline void
saveCounterTable(StateWriter &w, const std::vector<SatCounter> &table)
{
    w.u64(table.size());
    for (const SatCounter &c : table)
        w.u8(c.value());
}

inline Status
restoreCounterTable(StateReader &r, std::vector<SatCounter> &table)
{
    uint64_t size = 0;
    RARPRED_RETURN_IF_ERROR(r.u64(&size));
    if (size != table.size())
        return Status::failedPrecondition(
            "predictor snapshot has a different table size");
    for (SatCounter &c : table) {
        uint8_t v = 0;
        RARPRED_RETURN_IF_ERROR(r.u8(&v));
        if (v > c.maxValue())
            return Status::corruption("saturating counter over max");
        c.set(v);
    }
    return Status{};
}

} // namespace detail

/** Classic 2-bit-counter bimodal predictor. */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(size_t entries);

    bool predict(uint64_t pc) const;
    void update(uint64_t pc, bool taken);

    void saveState(StateWriter &w) const
    {
        detail::saveCounterTable(w, table_);
    }

    Status restoreState(StateReader &r)
    {
        return detail::restoreCounterTable(r, table_);
    }

  private:
    size_t indexOf(uint64_t pc) const { return (pc >> 2) & mask_; }

    uint64_t mask_;
    std::vector<SatCounter> table_;
};

/** GSHARE: global history XOR PC indexes a 2-bit counter table. */
class GsharePredictor
{
  public:
    /**
     * @param entries Table size (power of two).
     * @param history_bits Global history length.
     */
    GsharePredictor(size_t entries, unsigned history_bits);

    bool predict(uint64_t pc) const;

    /** Update counter and shift @p taken into the global history. */
    void update(uint64_t pc, bool taken);

    void saveState(StateWriter &w) const
    {
        detail::saveCounterTable(w, table_);
        w.u64(history_);
    }

    Status restoreState(StateReader &r)
    {
        RARPRED_RETURN_IF_ERROR(detail::restoreCounterTable(r, table_));
        RARPRED_RETURN_IF_ERROR(r.u64(&history_));
        if ((history_ & ~historyMask_) != 0)
            return Status::corruption("global history out of range");
        return Status{};
    }

  private:
    size_t
    indexOf(uint64_t pc) const
    {
        return ((pc >> 2) ^ history_) & mask_;
    }

    uint64_t mask_;
    uint64_t historyMask_;
    uint64_t history_ = 0;
    std::vector<SatCounter> table_;
};

/**
 * Combined predictor: a 2-bit chooser per entry selects bimodal or
 * GSHARE; both components always train, the chooser trains toward
 * whichever component was correct.
 */
class CombinedPredictor
{
  public:
    /** @param entries Entries per table (paper total: 64K). */
    explicit CombinedPredictor(size_t entries = 16384,
                               unsigned history_bits = 12);

    bool predict(uint64_t pc) const;
    void update(uint64_t pc, bool taken);

    uint64_t lookups() const { return lookups_; }
    uint64_t correct() const { return correct_; }

    /** Convenience: predict, record accuracy, update. */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const bool p = predict(pc);
        ++lookups_;
        if (p == taken)
            ++correct_;
        update(pc, taken);
        return p == taken;
    }

    void saveState(StateWriter &w) const
    {
        bimodal_.saveState(w);
        gshare_.saveState(w);
        detail::saveCounterTable(w, chooser_);
        w.u64(lookups_);
        w.u64(correct_);
    }

    Status restoreState(StateReader &r)
    {
        RARPRED_RETURN_IF_ERROR(bimodal_.restoreState(r));
        RARPRED_RETURN_IF_ERROR(gshare_.restoreState(r));
        RARPRED_RETURN_IF_ERROR(detail::restoreCounterTable(r, chooser_));
        RARPRED_RETURN_IF_ERROR(r.u64(&lookups_));
        return r.u64(&correct_);
    }

  private:
    size_t indexOf(uint64_t pc) const { return (pc >> 2) & mask_; }

    uint64_t mask_;
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<SatCounter> chooser_; ///< MSB set -> use gshare
    uint64_t lookups_ = 0;
    uint64_t correct_ = 0;
};

/** 64-entry return address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(size_t depth = 64) : depth_(depth) {}

    void
    push(uint64_t return_pc)
    {
        if (stack_.size() >= depth_)
            stack_.erase(stack_.begin()); // overflow: drop the oldest
        stack_.push_back(return_pc);
    }

    /** @return predicted return target, or 0 when empty. */
    uint64_t
    pop()
    {
        if (stack_.empty())
            return 0;
        uint64_t top = stack_.back();
        stack_.pop_back();
        return top;
    }

    size_t size() const { return stack_.size(); }

    void
    saveState(StateWriter &w) const
    {
        w.u64(stack_.size());
        for (uint64_t pc : stack_)
            w.u64(pc);
    }

    Status
    restoreState(StateReader &r)
    {
        uint64_t size = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&size));
        if (size > depth_)
            return Status::corruption("return stack image over depth");
        stack_.clear();
        stack_.reserve(size);
        for (uint64_t i = 0; i < size; ++i) {
            uint64_t pc = 0;
            RARPRED_RETURN_IF_ERROR(r.u64(&pc));
            stack_.push_back(pc);
        }
        return Status{};
    }

  private:
    size_t depth_;
    std::vector<uint64_t> stack_;
};

} // namespace rarpred

#endif // RARPRED_PREDICTOR_BRANCH_PREDICTOR_HH_
