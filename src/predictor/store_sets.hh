/**
 * @file
 * Store-set memory dependence predictor (Chrysos & Emer, ISCA 1998 —
 * the paper's citation [5], whose incremental merge rule the DPNT
 * also borrows).
 *
 * Loads that have suffered memory-order violations are assigned to
 * the *store set* of the offending store; afterwards the load waits
 * for the last fetched store of its set instead of speculating past
 * it. Two tables:
 *  - SSIT: PC-indexed Store Set ID Table (loads and stores);
 *  - LFST: SSID-indexed Last Fetched Store Table (in-flight store).
 *
 * The paper's base processor uses naive speculation; store sets are
 * the natural "do better" extension and are exercised by
 * bench_ablation_memdep as an ablation of the base machine.
 */

#ifndef RARPRED_PREDICTOR_STORE_SETS_HH_
#define RARPRED_PREDICTOR_STORE_SETS_HH_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitutils.hh"
#include "common/statesave.hh"

namespace rarpred {

class Rng;

/** The store-set predictor. */
class StoreSetPredictor
{
  public:
    /**
     * @param ssit_entries SSIT size (power of two; Chrysos & Emer use
     *        16K/64K).
     * @param lfst_entries LFST size (power of two; bounds live SSIDs).
     */
    StoreSetPredictor(size_t ssit_entries = 16384,
                      size_t lfst_entries = 4096);

    /**
     * A store is dispatched.
     * @return the sequence number of the previous in-flight store of
     *         its set (store-store ordering), if any.
     */
    std::optional<uint64_t> onStoreDispatch(uint64_t pc, uint64_t seq);

    /**
     * A load is dispatched.
     * @return the in-flight store it must wait for, if its set has
     *         one.
     */
    std::optional<uint64_t> onLoadDispatch(uint64_t pc);

    /** The store with @p seq left the window (committed). */
    void onStoreRetire(uint64_t pc, uint64_t seq);

    /**
     * A memory-order violation occurred between @p load_pc and
     * @p store_pc: assign them to a common store set, using the
     * value-biased incremental merge rule.
     */
    void onViolation(uint64_t load_pc, uint64_t store_pc);

    /** Clear all assignments (cyclic clearing in the original). */
    void clear();

    /**
     * Fault-injection hook (src/faultinject): flip one random bit in
     * a random SSIT or LFST slot. Store-set state only gates *when*
     * loads issue, never what they read, so any corruption here must
     * at worst cost performance (extra waits or extra violations).
     * @return true (these tables are direct-mapped and always exist).
     */
    bool injectFault(Rng &rng);

    uint64_t assignments() const { return assignments_; }
    uint64_t merges() const { return merges_; }

    /** Serialize both tables, the SSID allocator, and counters. */
    void saveState(StateWriter &w) const;
    Status restoreState(StateReader &r);

  private:
    static constexpr uint32_t kNoSsid = ~0u;
    static constexpr uint64_t kNoStore = ~0ull;

    size_t ssitIndex(uint64_t pc) const
    {
        return (pc >> 2) & (ssit_.size() - 1);
    }

    std::vector<uint32_t> ssit_;
    std::vector<uint64_t> lfst_;
    uint32_t nextSsid_ = 0;
    uint64_t assignments_ = 0;
    uint64_t merges_ = 0;
};

} // namespace rarpred

#endif // RARPRED_PREDICTOR_STORE_SETS_HH_
