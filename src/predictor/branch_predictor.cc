#include "predictor/branch_predictor.hh"

#include "common/logging.hh"

namespace rarpred {

BimodalPredictor::BimodalPredictor(size_t entries)
    : mask_(entries - 1), table_(entries, SatCounter(2, 1))
{
    rarpred_assert(isPowerOf2(entries));
}

bool
BimodalPredictor::predict(uint64_t pc) const
{
    return table_[indexOf(pc)].predict();
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    auto &counter = table_[indexOf(pc)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
}

GsharePredictor::GsharePredictor(size_t entries, unsigned history_bits)
    : mask_(entries - 1), historyMask_(mask(history_bits)),
      table_(entries, SatCounter(2, 1))
{
    rarpred_assert(isPowerOf2(entries));
}

bool
GsharePredictor::predict(uint64_t pc) const
{
    return table_[indexOf(pc)].predict();
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    auto &counter = table_[indexOf(pc)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

CombinedPredictor::CombinedPredictor(size_t entries,
                                     unsigned history_bits)
    : mask_(entries - 1), bimodal_(entries),
      gshare_(entries, history_bits),
      chooser_(entries, SatCounter(2, 2))
{
    rarpred_assert(isPowerOf2(entries));
}

bool
CombinedPredictor::predict(uint64_t pc) const
{
    const bool use_gshare = chooser_[indexOf(pc)].predict();
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
CombinedPredictor::update(uint64_t pc, bool taken)
{
    const bool bim = bimodal_.predict(pc);
    const bool gsh = gshare_.predict(pc);
    auto &choice = chooser_[indexOf(pc)];
    if (gsh == taken && bim != taken)
        choice.increment();
    else if (bim == taken && gsh != taken)
        choice.decrement();
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

} // namespace rarpred
