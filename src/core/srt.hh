/**
 * @file
 * Synonym Rename Table (SRT) — the bypassing half of the mechanism
 * (Sections 3.2 and 5.6.1).
 *
 * At decode, an instruction predicted as a producer associates its
 * synonym with the location of the value it will produce (in a real
 * pipeline, the physical register tag; in this trace-driven model,
 * the producer's dynamic sequence number). A predicted consumer
 * inspects the SRT and the Synonym File in parallel: an SRT hit means
 * the producer has not committed yet and the value flows directly
 * from its (future) register — the speculative DEF->USE link of
 * Figure 1(b) — while an SRT miss means the value has retired into
 * the Synonym File.
 */

#ifndef RARPRED_CORE_SRT_HH_
#define RARPRED_CORE_SRT_HH_

#include <cstdint>
#include <optional>

#include "common/hybrid_table.hh"
#include "core/dpnt.hh"

namespace rarpred {

/** The synonym rename table. */
class SynonymRenameTable
{
  public:
    /**
     * @param geometry Capacity; the paper sizes it with the window
     *        (in-flight producers only). entries==0 is unbounded.
     */
    explicit SynonymRenameTable(TableGeometry geometry = {128, 0})
        : table_(geometry)
    {}

    /**
     * A predicted producer entered the window: its synonym now names
     * the in-flight value. The newest producer wins, as renaming
     * does.
     */
    void
    rename(Synonym synonym, uint64_t producer_seq)
    {
        ++mutations_;
        table_.insert(synonym, producer_seq);
        ++renames_;
    }

    /**
     * Consumer-side inspection at decode.
     * @return the in-flight producer's sequence number, or nullopt
     *         when the synonym has retired to the Synonym File.
     */
    std::optional<uint64_t>
    lookup(Synonym synonym)
    {
        // touch() reorders recency, which changes the serialized image
        // the CRC audit hashes, so it counts as a mutation.
        ++mutations_;
        uint64_t *seq = table_.touch(synonym);
        if (!seq)
            return std::nullopt;
        return *seq;
    }

    /**
     * The producer with @p producer_seq committed: its value now
     * lives in the Synonym File, so drop the rename — unless a newer
     * producer has already renamed the synonym.
     */
    void
    retire(Synonym synonym, uint64_t producer_seq)
    {
        ++mutations_;
        uint64_t *seq = table_.find(synonym);
        if (seq && *seq == producer_seq)
            table_.erase(synonym);
    }

    size_t size() const { return table_.size(); }
    uint64_t renames() const { return renames_; }

    void
    clear()
    {
        ++mutations_;
        table_.clear();
    }

    /**
     * Deterministic structural corruption for the online auditor:
     * insert a rename under a synonym no DPNT could have allocated
     * (high bit set), violating the key-range invariant.
     */
    bool
    injectStructuralFault()
    {
        table_.insert((1ull << 63) | 1, 0);
        return true;
    }

    /**
     * Structural invariants for the online auditor: table integrity,
     * size within geometry, every renamed synonym actually allocated
     * (< @p synonym_bound).
     */
    bool
    auditOk(uint64_t synonym_bound) const
    {
        if (!table_.auditIntegrity())
            return false;
        const auto &geom = table_.geometry();
        if (geom.entries != 0 && table_.size() > geom.entries)
            return false;
        bool ok = true;
        table_.forEach([&](uint64_t synonym, const uint64_t &) {
            if (synonym == kNoSynonym || synonym >= synonym_bound)
                ok = false;
        });
        return ok;
    }

    /** Serialize the table (exact recency order) and counters. */
    void
    saveState(StateWriter &w) const
    {
        table_.saveState(w, [](StateWriter &out, const uint64_t &seq) {
            out.u64(seq);
        });
        w.u64(renames_);
        w.u64(mutations_);
    }

    Status
    restoreState(StateReader &r)
    {
        const auto loadSeq = [](StateReader &in, uint64_t *seq) {
            return in.u64(seq);
        };
        RARPRED_RETURN_IF_ERROR(table_.restoreState(r, loadSeq));
        RARPRED_RETURN_IF_ERROR(r.u64(&renames_));
        return r.u64(&mutations_);
    }

    /** Monotone count of mutating operations (for CRC audits). */
    uint64_t mutations() const { return mutations_; }

    /** Probe-path counters / fill of the underlying table. */
    ProbeStats probeStats() const { return table_.probeStats(); }

  private:
    HybridTable<uint64_t> table_;
    uint64_t renames_ = 0;
    uint64_t mutations_ = 0;
};

} // namespace rarpred

#endif // RARPRED_CORE_SRT_HH_
