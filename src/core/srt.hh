/**
 * @file
 * Synonym Rename Table (SRT) — the bypassing half of the mechanism
 * (Sections 3.2 and 5.6.1).
 *
 * At decode, an instruction predicted as a producer associates its
 * synonym with the location of the value it will produce (in a real
 * pipeline, the physical register tag; in this trace-driven model,
 * the producer's dynamic sequence number). A predicted consumer
 * inspects the SRT and the Synonym File in parallel: an SRT hit means
 * the producer has not committed yet and the value flows directly
 * from its (future) register — the speculative DEF->USE link of
 * Figure 1(b) — while an SRT miss means the value has retired into
 * the Synonym File.
 */

#ifndef RARPRED_CORE_SRT_HH_
#define RARPRED_CORE_SRT_HH_

#include <cstdint>
#include <optional>

#include "common/hybrid_table.hh"
#include "core/dpnt.hh"

namespace rarpred {

/** The synonym rename table. */
class SynonymRenameTable
{
  public:
    /**
     * @param geometry Capacity; the paper sizes it with the window
     *        (in-flight producers only). entries==0 is unbounded.
     */
    explicit SynonymRenameTable(TableGeometry geometry = {128, 0})
        : table_(geometry)
    {}

    /**
     * A predicted producer entered the window: its synonym now names
     * the in-flight value. The newest producer wins, as renaming
     * does.
     */
    void
    rename(Synonym synonym, uint64_t producer_seq)
    {
        table_.insert(synonym, producer_seq);
        ++renames_;
    }

    /**
     * Consumer-side inspection at decode.
     * @return the in-flight producer's sequence number, or nullopt
     *         when the synonym has retired to the Synonym File.
     */
    std::optional<uint64_t>
    lookup(Synonym synonym)
    {
        uint64_t *seq = table_.touch(synonym);
        if (!seq)
            return std::nullopt;
        return *seq;
    }

    /**
     * The producer with @p producer_seq committed: its value now
     * lives in the Synonym File, so drop the rename — unless a newer
     * producer has already renamed the synonym.
     */
    void
    retire(Synonym synonym, uint64_t producer_seq)
    {
        uint64_t *seq = table_.find(synonym);
        if (seq && *seq == producer_seq)
            table_.erase(synonym);
    }

    size_t size() const { return table_.size(); }
    uint64_t renames() const { return renames_; }

    void clear() { table_.clear(); }

  private:
    HybridTable<uint64_t> table_;
    uint64_t renames_ = 0;
};

} // namespace rarpred

#endif // RARPRED_CORE_SRT_HH_
