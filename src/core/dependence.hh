/**
 * @file
 * Memory dependence types shared by the detection, prediction and
 * analysis layers.
 */

#ifndef RARPRED_CORE_DEPENDENCE_HH_
#define RARPRED_CORE_DEPENDENCE_HH_

#include <cstdint>

namespace rarpred {

/** Kind of memory dependence between two instructions. */
enum class DepType : uint8_t
{
    Raw, ///< store (source) -> load (sink)
    Rar, ///< earliest load (source) -> later load (sink)
};

/**
 * A detected dynamic memory dependence, represented as the paper does:
 * a (PC_source, PC_sink) pair. For RAR dependences the source is the
 * earliest-in-program-order load of the group (Section 2).
 */
struct Dependence
{
    DepType type = DepType::Raw;
    uint64_t sourcePc = 0;
    uint64_t sinkPc = 0;

    bool operator==(const Dependence &o) const = default;
};

} // namespace rarpred

#endif // RARPRED_CORE_DEPENDENCE_HH_
