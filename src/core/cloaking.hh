/**
 * @file
 * Speculative memory cloaking engine (functional model).
 *
 * Composes the DDT, DPNT and Synonym File into the full cloaking
 * mechanism of Sections 3.1/5.3: detection at commit, PC-based
 * prediction, speculative value propagation through synonyms, and
 * verification against the architectural value. Operates on the
 * committed trace, which is exactly the vantage point of the paper's
 * accuracy experiments (Figures 5-7 and both tables); the timing
 * pipeline of src/cpu reuses the same components for Figures 9-10.
 */

#ifndef RARPRED_CORE_CLOAKING_HH_
#define RARPRED_CORE_CLOAKING_HH_

#include <cstdint>
#include <ostream>
#include <string>

#include "common/status.hh"
#include "core/ddt.hh"
#include "core/dpnt.hh"
#include "core/synonym_file.hh"
#include "vm/trace.hh"

namespace rarpred {

/** Which dependence types the mechanism exploits. */
enum class CloakingMode : uint8_t
{
    RawOnly,   ///< original RAW-based cloaking/bypassing [15]
    RarOnly,   ///< RAR extension alone (analysis configurations)
    RawPlusRar ///< the paper's combined mechanism
};

/** Complete configuration of a cloaking mechanism. */
struct CloakingConfig
{
    CloakingMode mode = CloakingMode::RawPlusRar;
    /** DDT geometry/policy; entries default to the paper's 128. */
    DdtConfig ddt{};
    /** DPNT geometry and policies (default: infinite, adaptive). */
    DpntConfig dpnt{};
    /** Synonym file geometry (default: infinite). */
    TableGeometry sf{0, 0};
    /**
     * Detect dependences and train the DPNT at run time (the paper's
     * hardware mechanism). Disable for software-guided cloaking
     * (Reinman et al. [17]), where the DPNT is preloaded from a
     * profile and only prediction/verification run in hardware.
     */
    bool onlineTraining = true;

    /**
     * Check that every geometry and parameter in this configuration
     * is constructible. User-facing drivers must call this before
     * building a CloakingEngine; a violation reported here would
     * otherwise surface as a panic inside table construction.
     */
    Status validate() const;
};

/** Accuracy statistics over all executed loads (Figure 6 metrics). */
struct CloakingStats
{
    uint64_t loads = 0;
    uint64_t stores = 0;
    /** Loads whose used speculative value was correct, by producer. */
    uint64_t coveredRaw = 0;
    uint64_t coveredRar = 0;
    /** Loads whose used speculative value was wrong, by producer. */
    uint64_t mispredRaw = 0;
    uint64_t mispredRar = 0;
    /** Loads predicted as consumers whose SF entry held no value. */
    uint64_t predictedEmpty = 0;
    /** Dependences detected by the DDT, by type. */
    uint64_t detectedRaw = 0;
    uint64_t detectedRar = 0;

    uint64_t covered() const { return coveredRaw + coveredRar; }
    uint64_t mispredicted() const { return mispredRaw + mispredRar; }

    /** Coverage as a fraction of all executed loads. */
    double
    coverage() const
    {
        return loads == 0 ? 0.0 : (double)covered() / (double)loads;
    }

    /** Misspeculation rate as a fraction of all executed loads. */
    double
    mispredictionRate() const
    {
        return loads == 0 ? 0.0 : (double)mispredicted() / (double)loads;
    }

    /** Write gem5-style "prefix.stat value" lines. */
    void
    dump(std::ostream &os, const std::string &prefix = "cloaking") const
    {
        os << prefix << ".loads " << loads << "\n";
        os << prefix << ".stores " << stores << "\n";
        os << prefix << ".coveredRaw " << coveredRaw << "\n";
        os << prefix << ".coveredRar " << coveredRar << "\n";
        os << prefix << ".mispredRaw " << mispredRaw << "\n";
        os << prefix << ".mispredRar " << mispredRar << "\n";
        os << prefix << ".predictedEmpty " << predictedEmpty << "\n";
        os << prefix << ".detectedRaw " << detectedRaw << "\n";
        os << prefix << ".detectedRar " << detectedRar << "\n";
        os << prefix << ".coverage " << coverage() << "\n";
        os << prefix << ".mispredictionRate " << mispredictionRate()
           << "\n";
    }
};

/** Per-load outcome, for experiments that cross-tabulate mechanisms. */
struct LoadOutcome
{
    bool wasLoad = false;
    /** A speculative value was used for this load. */
    bool used = false;
    /** The used value was correct. */
    bool correct = false;
    /** The speculative value that was used (valid when used). */
    uint64_t specValue = 0;
    /** Producer type of the used value (valid when used). */
    DepType type = DepType::Raw;
    /** Dynamic seq of the producing instruction (valid when used). */
    uint64_t producerSeq = 0;
    /** The producer was a store (valid when used). */
    bool producerIsStore = false;
    /** Synonym this instruction carries (kNoSynonym when unnamed). */
    Synonym synonym = kNoSynonym;
    /**
     * This instruction (store or load) was predicted as a producer
     * and deposited its value — the event that renames the synonym in
     * the SRT for bypassing (Section 3.2).
     */
    bool predictedProducer = false;
};

/** The cloaking mechanism. */
class CloakingEngine final : public TraceSink
{
  public:
    explicit CloakingEngine(const CloakingConfig &config);

    /** Process one committed instruction. */
    void onInst(const DynInst &di) override { (void)processInst(di); }

    /** Batched feed: one virtual call per block (class is final). */
    void
    onBatch(const DynInst *batch, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            (void)processInst(batch[i]);
    }

    /**
     * Process one committed instruction and report what happened to
     * it. Sequence per Figure 4: consumer predict + verify against
     * the architectural value, then producer deposit, then dependence
     * detection and DPNT training.
     */
    LoadOutcome processInst(const DynInst &di);

    const CloakingStats &stats() const { return stats_; }
    const CloakingConfig &config() const { return config_; }

    /** Access to the underlying predictor state (tests, ablations). */
    Dpnt &dpnt() { return dpnt_; }
    SynonymFile &synonymFile() { return sf_; }
    DependenceDetector &detector() { return detector_; }

    void resetStats() { stats_ = CloakingStats{}; }

    /** Serialize detector, DPNT, synonym file, and statistics. */
    void saveState(StateWriter &w) const;
    Status restoreState(StateReader &r);

  private:
    static DdtConfig ddtConfigFor(const CloakingConfig &config);

    CloakingConfig config_;
    DependenceDetector detector_;
    Dpnt dpnt_;
    SynonymFile sf_;
    CloakingStats stats_;
};

} // namespace rarpred

#endif // RARPRED_CORE_CLOAKING_HH_
