/**
 * @file
 * Profile-guided ("software-guided") cloaking, after Reinman, Calder,
 * Tullsen, Tyson and Austin [17]: a profiling pass identifies the
 * stable dependence pairs offline, the DPNT is preloaded from the
 * profile, and at run time only prediction and verification remain —
 * no dependence detection hardware.
 */

#ifndef RARPRED_CORE_PROFILE_CLOAKING_HH_
#define RARPRED_CORE_PROFILE_CLOAKING_HH_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cloaking.hh"

namespace rarpred {

/** One profiled dependence pair with its observed behaviour. */
struct ProfiledPair
{
    Dependence dep;
    uint64_t occurrences = 0;  ///< times the sink saw this dependence
    uint64_t valueMatches = 0; ///< times cloaking would be correct

    double
    stability() const
    {
        return occurrences == 0
                   ? 0.0
                   : (double)valueMatches / (double)occurrences;
    }
};

/** The output of the profiling pass. */
struct CloakingProfile
{
    std::vector<ProfiledPair> pairs;
};

/**
 * Profiling pass: observes a training run, records every detected
 * dependence pair, and measures whether the value that would flow
 * through the synonym would have been correct.
 */
class DependenceProfiler : public TraceSink
{
  public:
    /** @param ddt Detection configuration for the profiling run. */
    explicit DependenceProfiler(const DdtConfig &ddt = {});

    void onInst(const DynInst &di) override;

    /**
     * Select the pairs worth marking in software.
     * @param min_occurrences Drop pairs seen fewer times.
     * @param min_stability Drop pairs whose value flowed correctly
     *        less often than this fraction.
     */
    CloakingProfile profile(uint64_t min_occurrences = 8,
                            double min_stability = 0.9) const;

    /** @return number of distinct pairs observed. */
    size_t pairsObserved() const { return pairs_.size(); }

  private:
    struct PairKey
    {
        uint64_t src;
        uint64_t sink;
        bool raw;

        bool operator==(const PairKey &o) const = default;
    };

    struct PairKeyHash
    {
        size_t
        operator()(const PairKey &k) const
        {
            return std::hash<uint64_t>()(k.src * 0x9e3779b97f4a7c15ull ^
                                         k.sink ^ (k.raw ? 1 : 0));
        }
    };

    DependenceDetector detector_;
    /** Last value produced per producer PC (what the SF would hold). */
    std::unordered_map<uint64_t, uint64_t> lastValue_;
    std::unordered_map<PairKey, ProfiledPair, PairKeyHash> pairs_;
};

/**
 * Build a cloaking engine whose DPNT is preloaded from @p profile and
 * whose online detection/training is disabled (the software-guided
 * configuration).
 */
CloakingEngine makeProfileGuidedEngine(const CloakingProfile &profile,
                                       CloakingConfig config = {});

} // namespace rarpred

#endif // RARPRED_CORE_PROFILE_CLOAKING_HH_
