/**
 * @file
 * Last-value load value predictor (Lipasti/Wilkerson/Shen [12]),
 * used by Section 5.5 to compare and combine with cloaking.
 */

#ifndef RARPRED_CORE_VALUE_PREDICTOR_HH_
#define RARPRED_CORE_VALUE_PREDICTOR_HH_

#include <cstdint>
#include <vector>

#include "common/hybrid_table.hh"
#include "vm/trace.hh"

namespace rarpred {

/** Accuracy statistics for the value predictor. */
struct ValuePredictorStats
{
    uint64_t loads = 0;
    uint64_t hits = 0;    ///< table hit: a prediction was made
    uint64_t correct = 0; ///< predicted value equalled the loaded value

    /** Correct predictions as a fraction of all executed loads. */
    double
    accuracy() const
    {
        return loads == 0 ? 0.0 : (double)correct / (double)loads;
    }
};

/**
 * PC-indexed last-value predictor.
 *
 * The Section 5.5 configuration is a 16K-entry fully-associative
 * table. Predicts that a load will read the same value as its
 * previous execution.
 */
class LastValuePredictor : public TraceSink
{
  public:
    /** @param geometry default is the paper's 16K fully-associative. */
    explicit LastValuePredictor(TableGeometry geometry = {16384, 0})
        : table_(geometry)
    {}

    void onInst(const DynInst &di) override { (void)processInst(di); }

    /** Outcome of one load's prediction. */
    struct Result
    {
        bool wasLoad = false;
        bool hit = false;     ///< the table made a prediction
        bool correct = false; ///< the prediction matched the value
    };

    /** Process one committed instruction with a detailed outcome. */
    Result
    processDetailed(const DynInst &di)
    {
        Result result;
        if (!di.isLoad())
            return result;
        result.wasLoad = true;
        ++stats_.loads;
        if (uint64_t *last = table_.touch(di.pc >> 2)) {
            ++stats_.hits;
            result.hit = true;
            result.correct = (*last == di.value);
            if (result.correct)
                ++stats_.correct;
            *last = di.value;
        } else {
            table_.insert(di.pc >> 2, di.value);
        }
        return result;
    }

    /**
     * Process one committed instruction.
     * @return true when the instruction is a load and the predicted
     *         value was correct.
     */
    bool
    processInst(const DynInst &di)
    {
        return processDetailed(di).correct;
    }

    const ValuePredictorStats &stats() const { return stats_; }

    void resetStats() { stats_ = ValuePredictorStats{}; }

  private:
    HybridTable<uint64_t> table_;
    ValuePredictorStats stats_;
};

/**
 * Stride value predictor: predicts lastValue + stride once the same
 * stride has been observed twice in a row (the classic two-delta
 * rule). Covers induction-variable loads the last-value predictor
 * misses.
 */
class StrideValuePredictor : public TraceSink
{
  public:
    explicit StrideValuePredictor(TableGeometry geometry = {16384, 0})
        : table_(geometry)
    {}

    void onInst(const DynInst &di) override { (void)processInst(di); }

    /** @return prediction outcome for this instruction. */
    LastValuePredictor::Result
    processDetailed(const DynInst &di)
    {
        LastValuePredictor::Result result;
        if (!di.isLoad())
            return result;
        result.wasLoad = true;
        ++stats_.loads;
        Entry *e = table_.touch(di.pc >> 2);
        if (!e) {
            table_.insert(di.pc >> 2, Entry{di.value, 0, false});
            return result;
        }
        ++stats_.hits;
        const int64_t new_stride =
            (int64_t)(di.value - e->lastValue);
        if (e->strideStable) {
            result.hit = true;
            result.correct =
                (uint64_t)((int64_t)e->lastValue + e->stride) ==
                di.value;
            if (result.correct)
                ++stats_.correct;
        }
        e->strideStable = (new_stride == e->stride);
        e->stride = new_stride;
        e->lastValue = di.value;
        return result;
    }

    bool
    processInst(const DynInst &di)
    {
        return processDetailed(di).correct;
    }

    const ValuePredictorStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        uint64_t lastValue = 0;
        int64_t stride = 0;
        bool strideStable = false;
    };

    HybridTable<Entry> table_;
    ValuePredictorStats stats_;
};

/**
 * Context-based (finite context method) value predictor: a per-PC
 * first level hashes the last few values into a context; a shared
 * second-level table maps contexts to the value that followed them.
 * The "context-based predictors could increase coverage" direction
 * Section 5.5 mentions.
 */
class ContextValuePredictor : public TraceSink
{
  public:
    /**
     * @param l1_geometry Per-PC history table.
     * @param l2_entries Shared value table (power of two).
     * @param order Values of history folded into the context.
     */
    ContextValuePredictor(TableGeometry l1_geometry = {16384, 0},
                          size_t l2_entries = 65536, unsigned order = 4)
        : l1_(l1_geometry), l2_(l2_entries), order_(order)
    {}

    void onInst(const DynInst &di) override { (void)processInst(di); }

    LastValuePredictor::Result
    processDetailed(const DynInst &di)
    {
        LastValuePredictor::Result result;
        if (!di.isLoad())
            return result;
        result.wasLoad = true;
        ++stats_.loads;
        Entry *e = l1_.touch(di.pc >> 2);
        if (!e) {
            l1_.insert(di.pc >> 2, Entry{});
            e = l1_.find(di.pc >> 2);
        } else {
            ++stats_.hits;
        }
        const size_t index = (size_t)(e->context & (l2_.size() - 1));
        Slot &slot = l2_[index];
        if (slot.valid) {
            result.hit = true;
            result.correct = slot.value == di.value;
            if (result.correct)
                ++stats_.correct;
        }
        // Train: the observed value follows this context.
        slot.valid = true;
        slot.value = di.value;
        // Fold the value into the per-PC context (order_ is implied
        // by how fast old values shift out).
        const uint64_t fold = di.value * 0x9e3779b97f4a7c15ull;
        e->context =
            ((e->context << (64 / (order_ + 1))) ^ fold) ^ (di.pc >> 2);
        return result;
    }

    bool
    processInst(const DynInst &di)
    {
        return processDetailed(di).correct;
    }

    const ValuePredictorStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        uint64_t context = 0;
    };

    struct Slot
    {
        bool valid = false;
        uint64_t value = 0;
    };

    HybridTable<Entry> l1_;
    std::vector<Slot> l2_;
    unsigned order_;
    ValuePredictorStats stats_;
};

} // namespace rarpred

#endif // RARPRED_CORE_VALUE_PREDICTOR_HH_
