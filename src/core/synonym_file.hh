/**
 * @file
 * Synonym File (SF): synonym-indexed speculative value storage.
 *
 * Producers (stores, and the earliest load of a RAR group) deposit
 * their value here under their synonym; predicted consumers read it
 * speculatively (Section 3.1, actions 3/4/6 of Figure 4). Entries are
 * allocated empty when a producer is predicted and marked full once
 * the producer's value is available.
 */

#ifndef RARPRED_CORE_SYNONYM_FILE_HH_
#define RARPRED_CORE_SYNONYM_FILE_HH_

#include <cstdint>

#include "common/hybrid_table.hh"
#include "common/rng.hh"
#include "core/dpnt.hh"

namespace rarpred {

/** One synonym file entry. */
struct SfEntry
{
    bool full = false;        ///< value has been produced
    uint64_t value = 0;       ///< the speculative value
    bool fromStore = false;   ///< producer was a store (RAW) vs load (RAR)
    uint64_t producerPc = 0;  ///< PC of the producing instruction
    uint64_t producerSeq = 0; ///< dynamic seq of the producer (timing)
};

/** The synonym file. */
class SynonymFile
{
  public:
    /** @param geometry entries==0 models an infinite SF. */
    explicit SynonymFile(TableGeometry geometry) : table_(geometry) {}

    /** Allocate an empty entry for @p synonym (producer predicted). */
    void
    allocate(Synonym synonym)
    {
        ++mutations_;
        table_.insert(synonym, SfEntry{});
    }

    /**
     * Deposit a produced value, creating the entry when needed.
     * @param synonym The producer's synonym.
     * @param value The produced value.
     * @param from_store True when the producer is a store.
     * @param producer_pc PC of the producer.
     * @param producer_seq Dynamic sequence number of the producer,
     *        used by the timing model to locate its completion time.
     */
    void
    produce(Synonym synonym, uint64_t value, bool from_store,
            uint64_t producer_pc, uint64_t producer_seq = 0)
    {
        ++mutations_;
        table_.insert(synonym, SfEntry{true, value, from_store,
                                       producer_pc, producer_seq});
    }

    /**
     * Consumer-side lookup.
     * @return the entry (full or not), or nullptr when absent.
     */
    SfEntry *
    consume(Synonym synonym)
    {
        // touch() reorders recency, which changes the serialized image
        // the CRC audit hashes, so it counts as a mutation.
        ++mutations_;
        return table_.touch(synonym);
    }

    /** Non-mutating lookup. */
    const SfEntry *peek(Synonym synonym) { return table_.find(synonym); }

    void
    clear()
    {
        ++mutations_;
        table_.clear();
    }

    /**
     * Fault-injection hook (src/faultinject): corrupt one random
     * field of one random entry. Flipping a bit of a stored value is
     * the most dangerous fault in the whole mechanism — a consumer
     * may read the corrupted word — so the verification load *must*
     * reject it; the speculation-safety oracle proves it does.
     * @return false when the file is empty (nothing to corrupt).
     */
    bool
    injectFault(Rng &rng)
    {
        if (table_.size() == 0)
            return false;
        const size_t victim = (size_t)rng.below(table_.size());
        bool injected = false;
        size_t i = 0;
        table_.forEach([&](uint64_t, SfEntry &e) {
            if (i++ != victim)
                return;
            switch (rng.below(4)) {
              case 0:
                e.value ^= 1ull << rng.below(64);
                break;
              case 1:
                e.full = !e.full;
                break;
              case 2:
                e.fromStore = !e.fromStore;
                break;
              default:
                e.producerPc ^= 1ull << rng.below(64);
                break;
            }
            injected = true;
        });
        return injected;
    }

    size_t size() const { return table_.size(); }

    /**
     * Deterministic structural corruption for the online auditor: set
     * a high bit of one entry's producer PC, violating pc < 2^32.
     * @return false when the file is empty.
     */
    bool
    injectStructuralFault()
    {
        bool injected = false;
        table_.forEach([&](uint64_t, SfEntry &e) {
            if (injected)
                return;
            e.producerPc |= 1ull << 63;
            injected = true;
        });
        return injected;
    }

    /**
     * Structural invariants for the online auditor: table integrity,
     * size within geometry, every key a synonym the DPNT has actually
     * allocated (< @p synonym_bound), and producer PCs < 2^32.
     */
    bool
    auditOk(uint64_t synonym_bound) const
    {
        if (!table_.auditIntegrity())
            return false;
        const auto &geom = table_.geometry();
        if (geom.entries != 0 && table_.size() > geom.entries)
            return false;
        bool ok = true;
        table_.forEach([&](uint64_t synonym, const SfEntry &e) {
            if (synonym == kNoSynonym || synonym >= synonym_bound)
                ok = false;
            if (e.producerPc >= (1ull << 32))
                ok = false;
        });
        return ok;
    }

    /** Serialize the file, preserving exact recency order. */
    void
    saveState(StateWriter &w) const
    {
        table_.saveState(w, [](StateWriter &out, const SfEntry &e) {
            out.boolean(e.full);
            out.u64(e.value);
            out.boolean(e.fromStore);
            out.u64(e.producerPc);
            out.u64(e.producerSeq);
        });
        w.u64(mutations_);
    }

    Status
    restoreState(StateReader &r)
    {
        const auto loadEntry = [](StateReader &in, SfEntry *e) {
            RARPRED_RETURN_IF_ERROR(in.boolean(&e->full));
            RARPRED_RETURN_IF_ERROR(in.u64(&e->value));
            RARPRED_RETURN_IF_ERROR(in.boolean(&e->fromStore));
            RARPRED_RETURN_IF_ERROR(in.u64(&e->producerPc));
            return in.u64(&e->producerSeq);
        };
        RARPRED_RETURN_IF_ERROR(table_.restoreState(r, loadEntry));
        return r.u64(&mutations_);
    }

    /** Monotone count of mutating operations (for CRC audits). */
    uint64_t mutations() const { return mutations_; }

    /** Probe-path counters / fill of the underlying table. */
    ProbeStats probeStats() const { return table_.probeStats(); }

  private:
    HybridTable<SfEntry> table_;
    uint64_t mutations_ = 0;
};

} // namespace rarpred

#endif // RARPRED_CORE_SYNONYM_FILE_HH_
