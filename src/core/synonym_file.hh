/**
 * @file
 * Synonym File (SF): synonym-indexed speculative value storage.
 *
 * Producers (stores, and the earliest load of a RAR group) deposit
 * their value here under their synonym; predicted consumers read it
 * speculatively (Section 3.1, actions 3/4/6 of Figure 4). Entries are
 * allocated empty when a producer is predicted and marked full once
 * the producer's value is available.
 */

#ifndef RARPRED_CORE_SYNONYM_FILE_HH_
#define RARPRED_CORE_SYNONYM_FILE_HH_

#include <cstdint>

#include "common/hybrid_table.hh"
#include "core/dpnt.hh"

namespace rarpred {

/** One synonym file entry. */
struct SfEntry
{
    bool full = false;        ///< value has been produced
    uint64_t value = 0;       ///< the speculative value
    bool fromStore = false;   ///< producer was a store (RAW) vs load (RAR)
    uint64_t producerPc = 0;  ///< PC of the producing instruction
    uint64_t producerSeq = 0; ///< dynamic seq of the producer (timing)
};

/** The synonym file. */
class SynonymFile
{
  public:
    /** @param geometry entries==0 models an infinite SF. */
    explicit SynonymFile(TableGeometry geometry) : table_(geometry) {}

    /** Allocate an empty entry for @p synonym (producer predicted). */
    void
    allocate(Synonym synonym)
    {
        table_.insert(synonym, SfEntry{});
    }

    /**
     * Deposit a produced value, creating the entry when needed.
     * @param synonym The producer's synonym.
     * @param value The produced value.
     * @param from_store True when the producer is a store.
     * @param producer_pc PC of the producer.
     * @param producer_seq Dynamic sequence number of the producer,
     *        used by the timing model to locate its completion time.
     */
    void
    produce(Synonym synonym, uint64_t value, bool from_store,
            uint64_t producer_pc, uint64_t producer_seq = 0)
    {
        table_.insert(synonym, SfEntry{true, value, from_store,
                                       producer_pc, producer_seq});
    }

    /**
     * Consumer-side lookup.
     * @return the entry (full or not), or nullptr when absent.
     */
    SfEntry *consume(Synonym synonym) { return table_.touch(synonym); }

    /** Non-mutating lookup. */
    const SfEntry *peek(Synonym synonym) { return table_.find(synonym); }

    void clear() { table_.clear(); }

    size_t size() const { return table_.size(); }

  private:
    HybridTable<SfEntry> table_;
};

} // namespace rarpred

#endif // RARPRED_CORE_SYNONYM_FILE_HH_
