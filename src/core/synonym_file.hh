/**
 * @file
 * Synonym File (SF): synonym-indexed speculative value storage.
 *
 * Producers (stores, and the earliest load of a RAR group) deposit
 * their value here under their synonym; predicted consumers read it
 * speculatively (Section 3.1, actions 3/4/6 of Figure 4). Entries are
 * allocated empty when a producer is predicted and marked full once
 * the producer's value is available.
 */

#ifndef RARPRED_CORE_SYNONYM_FILE_HH_
#define RARPRED_CORE_SYNONYM_FILE_HH_

#include <cstdint>

#include "common/hybrid_table.hh"
#include "common/rng.hh"
#include "core/dpnt.hh"

namespace rarpred {

/** One synonym file entry. */
struct SfEntry
{
    bool full = false;        ///< value has been produced
    uint64_t value = 0;       ///< the speculative value
    bool fromStore = false;   ///< producer was a store (RAW) vs load (RAR)
    uint64_t producerPc = 0;  ///< PC of the producing instruction
    uint64_t producerSeq = 0; ///< dynamic seq of the producer (timing)
};

/** The synonym file. */
class SynonymFile
{
  public:
    /** @param geometry entries==0 models an infinite SF. */
    explicit SynonymFile(TableGeometry geometry) : table_(geometry) {}

    /** Allocate an empty entry for @p synonym (producer predicted). */
    void
    allocate(Synonym synonym)
    {
        table_.insert(synonym, SfEntry{});
    }

    /**
     * Deposit a produced value, creating the entry when needed.
     * @param synonym The producer's synonym.
     * @param value The produced value.
     * @param from_store True when the producer is a store.
     * @param producer_pc PC of the producer.
     * @param producer_seq Dynamic sequence number of the producer,
     *        used by the timing model to locate its completion time.
     */
    void
    produce(Synonym synonym, uint64_t value, bool from_store,
            uint64_t producer_pc, uint64_t producer_seq = 0)
    {
        table_.insert(synonym, SfEntry{true, value, from_store,
                                       producer_pc, producer_seq});
    }

    /**
     * Consumer-side lookup.
     * @return the entry (full or not), or nullptr when absent.
     */
    SfEntry *consume(Synonym synonym) { return table_.touch(synonym); }

    /** Non-mutating lookup. */
    const SfEntry *peek(Synonym synonym) { return table_.find(synonym); }

    void clear() { table_.clear(); }

    /**
     * Fault-injection hook (src/faultinject): corrupt one random
     * field of one random entry. Flipping a bit of a stored value is
     * the most dangerous fault in the whole mechanism — a consumer
     * may read the corrupted word — so the verification load *must*
     * reject it; the speculation-safety oracle proves it does.
     * @return false when the file is empty (nothing to corrupt).
     */
    bool
    injectFault(Rng &rng)
    {
        if (table_.size() == 0)
            return false;
        const size_t victim = (size_t)rng.below(table_.size());
        bool injected = false;
        size_t i = 0;
        table_.forEach([&](uint64_t, SfEntry &e) {
            if (i++ != victim)
                return;
            switch (rng.below(4)) {
              case 0:
                e.value ^= 1ull << rng.below(64);
                break;
              case 1:
                e.full = !e.full;
                break;
              case 2:
                e.fromStore = !e.fromStore;
                break;
              default:
                e.producerPc ^= 1ull << rng.below(64);
                break;
            }
            injected = true;
        });
        return injected;
    }

    size_t size() const { return table_.size(); }

  private:
    HybridTable<SfEntry> table_;
};

} // namespace rarpred

#endif // RARPRED_CORE_SYNONYM_FILE_HH_
