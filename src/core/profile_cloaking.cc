#include "core/profile_cloaking.hh"

namespace rarpred {

DependenceProfiler::DependenceProfiler(const DdtConfig &ddt)
    : detector_(ddt)
{
}

void
DependenceProfiler::onInst(const DynInst &di)
{
    if (di.isStore()) {
        detector_.onStore(di.pc, di.eaddr);
        lastValue_[di.pc] = di.value;
        return;
    }
    if (!di.isLoad())
        return;

    if (auto dep = detector_.onLoad(di.pc, di.eaddr)) {
        PairKey key{dep->sourcePc, dep->sinkPc,
                    dep->type == DepType::Raw};
        ProfiledPair &pair = pairs_[key];
        pair.dep = *dep;
        ++pair.occurrences;
        auto it = lastValue_.find(dep->sourcePc);
        if (it != lastValue_.end() && it->second == di.value)
            ++pair.valueMatches;
    }
    // The load is itself a potential RAR producer: record what it
    // would deposit.
    lastValue_[di.pc] = di.value;
}

CloakingProfile
DependenceProfiler::profile(uint64_t min_occurrences,
                            double min_stability) const
{
    CloakingProfile result;
    for (const auto &[key, pair] : pairs_) {
        (void)key;
        if (pair.occurrences >= min_occurrences &&
            pair.stability() >= min_stability) {
            result.pairs.push_back(pair);
        }
    }
    return result;
}

CloakingEngine
makeProfileGuidedEngine(const CloakingProfile &profile,
                        CloakingConfig config)
{
    config.onlineTraining = false;
    CloakingEngine engine(config);
    for (const auto &pair : profile.pairs)
        engine.dpnt().train(pair.dep);
    return engine;
}

} // namespace rarpred
