/**
 * @file
 * Dependence Prediction and Naming Table (DPNT).
 *
 * PC-indexed table associating static instructions with synonyms — the
 * new name space through which cloaked values flow (Section 3.1). Each
 * entry carries two predictors, one for the producer role and one for
 * the consumer role, because a load can be both (e.g., the RAW sink of
 * a store and simultaneously the RAR source for later loads).
 *
 * Two confidence mechanisms from Section 5.3:
 *  - 1-bit non-adaptive: predict always once the role was ever
 *    detected (a rough upper bound on coverage);
 *  - 2-bit adaptive automaton: predicts as soon as a dependence is
 *    detected, but after a misprediction requires two correct
 *    (shadow) predictions before a speculative value may be used
 *    again.
 *
 * Two synonym merge policies from Section 5.1, used when a dependence
 * is detected between instructions that already carry different
 * synonyms:
 *  - FullMerge: replace every DPNT instance of the losing synonym
 *    (associative scan, as in the original cloaking proposal [15]);
 *  - Incremental (Chrysos & Emer [5]): replace only the larger-valued
 *    synonym and only for the instruction at hand; the value bias
 *    makes all members converge to the smallest synonym over time.
 */

#ifndef RARPRED_CORE_DPNT_HH_
#define RARPRED_CORE_DPNT_HH_

#include <cstdint>

#include "common/hybrid_table.hh"
#include "common/sat_counter.hh"
#include "core/dependence.hh"

namespace rarpred {

class Rng;

/** A value name in the cloaking name space. 0 means "none". */
using Synonym = uint64_t;

constexpr Synonym kNoSynonym = 0;

/** Confidence mechanism selection (Section 5.3). */
enum class ConfidenceKind : uint8_t
{
    OneBitNonAdaptive,
    TwoBitAdaptive,
};

/** Synonym merge policy selection (Section 5.1). */
enum class MergePolicy : uint8_t
{
    FullMerge,
    Incremental,
};

/** Per-role (producer or consumer) prediction state. */
struct RolePredictor
{
    bool valid = false; ///< the role has been detected at least once
    SatCounter conf{2, 0};

    /** First detection: predict immediately (counter saturated). */
    void
    allocate()
    {
        if (!valid) {
            valid = true;
            conf.saturate();
        }
    }

    /**
     * Should a speculative value be *used*?
     * With the adaptive automaton only a saturated counter qualifies.
     */
    bool
    use(ConfidenceKind kind) const
    {
        if (!valid)
            return false;
        return kind == ConfidenceKind::OneBitNonAdaptive || conf.isMax();
    }

    /** Verification outcome: the (shadow) prediction was correct. */
    void onCorrect() { conf.increment(); }

    /**
     * Verification outcome: incorrect. Drop to 1 so two correct
     * predictions are required before use (2-bit automaton).
     */
    void onIncorrect() { conf.set(1); }
};

/** One DPNT entry. */
struct DpntEntry
{
    Synonym synonym = kNoSynonym;
    RolePredictor producer;
    RolePredictor consumer;
    /** True when this PC produces as a store (RAW), false as a load. */
    bool producerIsStore = false;
};

/** DPNT configuration. */
struct DpntConfig
{
    /** Table geometry; entries == 0 models the paper's infinite DPNT. */
    TableGeometry geometry{0, 0};
    ConfidenceKind confidence = ConfidenceKind::TwoBitAdaptive;
    MergePolicy merge = MergePolicy::Incremental;
};

/** The prediction and naming table. */
class Dpnt
{
  public:
    explicit Dpnt(const DpntConfig &config);

    /**
     * Prediction-side lookup for @p pc (updates recency).
     * @return the entry, or nullptr when this PC has no history.
     */
    DpntEntry *lookup(uint64_t pc);

    /**
     * Train on a detected dependence: create/merge synonyms and mark
     * the source as producer and the sink as consumer.
     */
    void train(const Dependence &dep);

    /** @return number of synonyms allocated so far. */
    uint64_t synonymsAllocated() const { return nextSynonym_ - 1; }

    /** @return number of merge events (both policies). */
    uint64_t mergeCount() const { return merges_; }

    const DpntConfig &config() const { return config_; }

    /**
     * Fault-injection hook (src/faultinject): corrupt one random
     * field of one random entry — a synonym bit, a role-valid flag, a
     * confidence counter, or the producer-kind flag. DPNT state is
     * performance-only: any wrong prediction it induces must be
     * caught by cloaking verification.
     * @return false when the table is empty (nothing to corrupt).
     */
    bool injectFault(Rng &rng);

    /**
     * Deterministic structural corruption for the online auditor: set
     * a high bit of one entry's synonym, violating the invariant that
     * every assigned synonym is below nextSynonym_.
     * @return false when no entry carries a synonym.
     */
    bool injectStructuralFault();

    /**
     * Structural invariants for the online auditor: table integrity,
     * size within geometry, and every synonym within the allocated
     * range.
     */
    bool auditOk() const;

    /** Serialize the table, allocator, and merge count. */
    void saveState(StateWriter &w) const;
    Status restoreState(StateReader &r);

    /** Monotone count of mutating operations (for CRC audits). */
    uint64_t mutations() const { return mutations_; }

    /** Probe-path counters / fill of the underlying table. */
    ProbeStats probeStats() const { return table_.probeStats(); }

    void clear();

  private:
    DpntEntry *findOrInsert(uint64_t pc);
    Synonym allocSynonym() { return nextSynonym_++; }
    /** Point every entry holding @p from at @p to (full merge). */
    void replaceAll(Synonym from, Synonym to);

    DpntConfig config_;
    HybridTable<DpntEntry> table_;
    Synonym nextSynonym_ = 1;
    uint64_t merges_ = 0;
    uint64_t mutations_ = 0;
};

} // namespace rarpred

#endif // RARPRED_CORE_DPNT_HH_
