#include "core/ddt.hh"

#include "common/rng.hh"

namespace rarpred {

DependenceDetector::DependenceDetector(const DdtConfig &config)
    : config_(config), table_(config.entries),
      loadTable_(config.separateTables ? config.entries : 0)
{
}

void
DependenceDetector::onStore(uint64_t pc, uint64_t addr)
{
    ++mutations_;
    const uint64_t line = lineOf(addr);
    if (config_.separateTables) {
        // A store ends any RAR chain through this address: the next
        // load must see the store (RAW), not the old first load.
        loadTable_.erase(line);
        if (config_.trackStores)
            table_.insert(line, Entry{true, pc});
        return;
    }
    if (config_.trackStores) {
        table_.insert(line, Entry{true, pc});
    } else {
        // Stores are not tracked (RAR-only configuration), but they
        // still kill the recorded first load for the address.
        table_.erase(line);
    }
}

std::optional<Dependence>
DependenceDetector::onLoad(uint64_t pc, uint64_t addr)
{
    ++mutations_;
    const uint64_t line = lineOf(addr);

    if (config_.separateTables) {
        if (Entry *e = table_.touch(line)) {
            // RAW with the recorded store. The load is not recorded:
            // the store remains the producer for this address.
            return Dependence{DepType::Raw, e->pc, pc};
        }
        if (!config_.trackLoads)
            return std::nullopt;
        // Single-probe hit-or-record: a hit keeps the first load as
        // the producer, a miss records this load.
        auto [e, inserted] = loadTable_.touchOrInsert(line, Entry{false, pc});
        if (!inserted)
            return Dependence{DepType::Rar, e->pc, pc};
        return std::nullopt;
    }

    if (!config_.trackLoads) {
        Entry *e = table_.touch(line);
        if (e) {
            if (e->isStore)
                return Dependence{DepType::Raw, e->pc, pc};
            return Dependence{DepType::Rar, e->pc, pc};
        }
        return std::nullopt;
    }
    auto [e, inserted] = table_.touchOrInsert(line, Entry{false, pc});
    if (!inserted) {
        if (e->isStore)
            return Dependence{DepType::Raw, e->pc, pc};
        return Dependence{DepType::Rar, e->pc, pc};
    }
    return std::nullopt;
}

void
DependenceDetector::clear()
{
    ++mutations_;
    table_.clear();
    loadTable_.clear();
}

bool
DependenceDetector::injectFault(Rng &rng)
{
    const size_t total = table_.size() + loadTable_.size();
    if (total == 0)
        return false;
    size_t victim = (size_t)rng.below(total);
    auto &table = victim < table_.size() ? table_ : loadTable_;
    if (victim >= table_.size())
        victim -= table_.size();
    bool injected = false;
    size_t i = 0;
    table.forEach([&](uint64_t, Entry &e) {
        if (i++ != victim)
            return;
        // One spare bit position beyond the PC toggles the kind flag.
        const unsigned bit = (unsigned)rng.below(65);
        if (bit == 64)
            e.isStore = !e.isStore;
        else
            e.pc ^= 1ull << bit;
        injected = true;
    });
    return injected;
}

bool
DependenceDetector::injectStructuralFault()
{
    auto &table = table_.size() > 0 ? table_ : loadTable_;
    if (table.size() == 0)
        return false;
    bool injected = false;
    table.forEach([&](uint64_t, Entry &e) {
        if (injected)
            return;
        e.pc |= 1ull << 63;
        injected = true;
    });
    return injected;
}

bool
DependenceDetector::auditOk() const
{
    // PC-bound invariant: MicroISA byte PCs fit 32 bits (PackedInst
    // stores them as u32), so a recorded PC above that is corruption.
    if (!table_.auditIntegrity() || !loadTable_.auditIntegrity())
        return false;
    bool ok = true;
    const auto checkPc = [&ok](uint64_t, const Entry &e) {
        if (e.pc >= (1ull << 32))
            ok = false;
    };
    table_.forEach(checkPc);
    loadTable_.forEach(checkPc);
    return ok;
}

void
DependenceDetector::saveState(StateWriter &w) const
{
    const auto saveEntry = [](StateWriter &out, const Entry &e) {
        out.boolean(e.isStore);
        out.u64(e.pc);
    };
    table_.saveState(w, saveEntry);
    loadTable_.saveState(w, saveEntry);
    w.u64(mutations_);
}

Status
DependenceDetector::restoreState(StateReader &r)
{
    const auto loadEntry = [](StateReader &in, Entry *e) {
        RARPRED_RETURN_IF_ERROR(in.boolean(&e->isStore));
        return in.u64(&e->pc);
    };
    RARPRED_RETURN_IF_ERROR(table_.restoreState(r, loadEntry));
    RARPRED_RETURN_IF_ERROR(loadTable_.restoreState(r, loadEntry));
    return r.u64(&mutations_);
}

} // namespace rarpred
