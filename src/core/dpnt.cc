#include "core/dpnt.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rarpred {

Dpnt::Dpnt(const DpntConfig &config)
    : config_(config), table_(config.geometry)
{
}

DpntEntry *
Dpnt::lookup(uint64_t pc)
{
    // Counts as a mutation: touch() reorders recency, which changes
    // the serialized table image the CRC audit hashes.
    ++mutations_;
    // PCs are 4-byte aligned; drop the zero bits so set indexing uses
    // meaningful address bits.
    return table_.touch(pc >> 2);
}

DpntEntry *
Dpnt::findOrInsert(uint64_t pc)
{
    return table_.touchOrInsert(pc >> 2, DpntEntry{}).first;
}

void
Dpnt::replaceAll(Synonym from, Synonym to)
{
    table_.forEach([&](uint64_t, DpntEntry &e) {
        if (e.synonym == from)
            e.synonym = to;
    });
}

void
Dpnt::train(const Dependence &dep)
{
    ++mutations_;
    // Ensure both entries exist first: inserting the second can move
    // or evict the first within its set, so pointers are only taken
    // afterwards, via non-mutating finds.
    table_.touchOrInsert(dep.sourcePc >> 2, DpntEntry{});
    table_.touchOrInsert(dep.sinkPc >> 2, DpntEntry{});
    DpntEntry *src = table_.find(dep.sourcePc >> 2);
    DpntEntry *sink = table_.find(dep.sinkPc >> 2);
    if (!src || !sink) {
        // One displaced the other from a finite table; nothing to link.
        return;
    }

    if (src->synonym == kNoSynonym && sink->synonym == kNoSynonym) {
        Synonym s = allocSynonym();
        src->synonym = s;
        sink->synonym = s;
    } else if (src->synonym == kNoSynonym) {
        src->synonym = sink->synonym;
    } else if (sink->synonym == kNoSynonym) {
        sink->synonym = src->synonym;
    } else if (src->synonym != sink->synonym) {
        // Both named, names differ: merge the communication groups.
        ++merges_;
        if (config_.merge == MergePolicy::FullMerge) {
            Synonym keep = std::min(src->synonym, sink->synonym);
            Synonym lose = std::max(src->synonym, sink->synonym);
            replaceAll(lose, keep);
        } else {
            // Chrysos-Emer incremental merge: replace the larger
            // synonym, and only for its own instruction. The bias
            // toward smaller values makes the group converge.
            if (src->synonym > sink->synonym)
                src->synonym = sink->synonym;
            else
                sink->synonym = src->synonym;
        }
    }

    src->producer.allocate();
    src->producerIsStore = (dep.type == DepType::Raw);
    sink->consumer.allocate();
}

bool
Dpnt::injectFault(Rng &rng)
{
    if (table_.size() == 0)
        return false;
    const size_t victim = (size_t)rng.below(table_.size());
    bool injected = false;
    size_t i = 0;
    table_.forEach([&](uint64_t, DpntEntry &e) {
        if (i++ != victim)
            return;
        switch (rng.below(6)) {
          case 0:
            e.synonym ^= 1ull << rng.below(64);
            break;
          case 1:
            e.producer.valid = !e.producer.valid;
            break;
          case 2:
            e.consumer.valid = !e.consumer.valid;
            break;
          case 3:
            e.producer.conf.set(
                (uint8_t)rng.below(e.producer.conf.maxValue() + 1u));
            break;
          case 4:
            e.consumer.conf.set(
                (uint8_t)rng.below(e.consumer.conf.maxValue() + 1u));
            break;
          default:
            e.producerIsStore = !e.producerIsStore;
            break;
        }
        injected = true;
    });
    return injected;
}

void
Dpnt::clear()
{
    ++mutations_;
    table_.clear();
    nextSynonym_ = 1;
    merges_ = 0;
}

bool
Dpnt::injectStructuralFault()
{
    bool injected = false;
    table_.forEach([&](uint64_t, DpntEntry &e) {
        if (injected || e.synonym == kNoSynonym)
            return;
        e.synonym |= 1ull << 63;
        injected = true;
    });
    return injected;
}

bool
Dpnt::auditOk() const
{
    if (!table_.auditIntegrity())
        return false;
    if (config_.geometry.entries != 0 &&
        table_.size() > config_.geometry.entries) {
        return false;
    }
    bool ok = true;
    table_.forEach([&](uint64_t, const DpntEntry &e) {
        if (e.synonym != kNoSynonym && e.synonym >= nextSynonym_)
            ok = false;
    });
    return ok;
}

void
Dpnt::saveState(StateWriter &w) const
{
    table_.saveState(w, [](StateWriter &out, const DpntEntry &e) {
        out.u64(e.synonym);
        out.boolean(e.producer.valid);
        out.u8(e.producer.conf.value());
        out.boolean(e.consumer.valid);
        out.u8(e.consumer.conf.value());
        out.boolean(e.producerIsStore);
    });
    w.u64(nextSynonym_);
    w.u64(merges_);
    w.u64(mutations_);
}

Status
Dpnt::restoreState(StateReader &r)
{
    const auto loadEntry = [](StateReader &in, DpntEntry *e) {
        uint8_t conf = 0;
        RARPRED_RETURN_IF_ERROR(in.u64(&e->synonym));
        RARPRED_RETURN_IF_ERROR(in.boolean(&e->producer.valid));
        RARPRED_RETURN_IF_ERROR(in.u8(&conf));
        if (conf > e->producer.conf.maxValue())
            return Status::corruption("confidence counter over max");
        e->producer.conf.set(conf);
        RARPRED_RETURN_IF_ERROR(in.boolean(&e->consumer.valid));
        RARPRED_RETURN_IF_ERROR(in.u8(&conf));
        if (conf > e->consumer.conf.maxValue())
            return Status::corruption("confidence counter over max");
        e->consumer.conf.set(conf);
        return in.boolean(&e->producerIsStore);
    };
    RARPRED_RETURN_IF_ERROR(table_.restoreState(r, loadEntry));
    RARPRED_RETURN_IF_ERROR(r.u64(&nextSynonym_));
    RARPRED_RETURN_IF_ERROR(r.u64(&merges_));
    return r.u64(&mutations_);
}

} // namespace rarpred
