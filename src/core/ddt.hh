/**
 * @file
 * Dependence Detection Table (DDT).
 *
 * The DDT is an address-indexed cache recording which instruction
 * last touched each (word-granular) address; it is the mechanism both
 * RAW-based and RAR-based cloaking use to *detect* dependences at
 * commit time (Section 3.1 and [15]).
 *
 * Recording rules (Section 3.1):
 *  - A store records its PC at the address, displacing any load
 *    record (the store becomes the producer for later RAW sinks).
 *  - A load is recorded only when (a) no preceding store is recorded
 *    for the address, and (b) no other load is recorded for the
 *    address — this annotates the earliest-in-program-order load as
 *    the RAR producer.
 *
 * The table is finite with LRU replacement; its size bounds how far
 * back dependences can be detected (Figure 5 sweeps it 32..2K).
 * The paper also discusses using *separate* DDTs for loads and for
 * stores, which removes the anomaly of stores being evicted by loads
 * (Section 5.6.2); DdtConfig::separateTables enables that variant.
 */

#ifndef RARPRED_CORE_DDT_HH_
#define RARPRED_CORE_DDT_HH_

#include <cstdint>
#include <optional>

#include "common/flat_table.hh"
#include "core/dependence.hh"

namespace rarpred {

class Rng;

/** Configuration of a DependenceDetector. */
struct DdtConfig
{
    /** Entry count (unique addresses tracked); 0 = unbounded. */
    size_t entries = 128;

    /** Track loads (enables RAR detection). */
    bool trackLoads = true;

    /** Track stores (enables RAW detection). */
    bool trackStores = true;

    /**
     * Use one table for stores and one for loads, each of `entries`
     * entries, instead of a single shared table.
     */
    bool separateTables = false;

    /** log2 of the detection granularity in bytes (3 = 8-byte word). */
    unsigned granularityLog2 = 3;
};

/**
 * Detects RAW and RAR memory dependences from the committed
 * instruction stream.
 */
class DependenceDetector
{
  public:
    explicit DependenceDetector(const DdtConfig &config);

    /**
     * Observe a committed store.
     *
     * The store displaces any recorded load for the address (or, with
     * separate tables, invalidates the load-table entry) so that later
     * loads see a RAW, not a stale RAR, producer.
     */
    void onStore(uint64_t pc, uint64_t addr);

    /**
     * Observe a committed load.
     * @return the dependence this load's access detects, if any:
     *         RAW when a store is recorded for the address, RAR when
     *         an earlier load is recorded.
     */
    std::optional<Dependence> onLoad(uint64_t pc, uint64_t addr);

    /** Forget everything. */
    void clear();

    /**
     * Fault-injection hook (src/faultinject): flip one random bit of
     * one random entry's payload. DDT contents are performance-only —
     * a corrupted producer PC may train a bogus synonym, but the
     * cloaking verification load must still catch any wrong value.
     * @return false when the table is empty (nothing to corrupt).
     */
    bool injectFault(Rng &rng);

    /**
     * Deterministic structural corruption for the online auditor: set
     * a high bit of one recorded producer PC, violating the pc < 2^32
     * invariant (MicroISA byte PCs fit 32 bits, see PackedInst).
     * @return false when the table is empty (nothing to corrupt).
     */
    bool injectStructuralFault();

    /**
     * Structural invariants for the online auditor: internal LRU/index
     * agreement, capacity bounds, and every recorded PC < 2^32.
     */
    bool auditOk() const;

    /** Serialize both tables, preserving exact LRU order. */
    void saveState(StateWriter &w) const;
    Status restoreState(StateReader &r);

    /** Monotone count of mutating observations (for CRC audits). */
    uint64_t mutations() const { return mutations_; }

    /**
     * Probe-path counters of the shared (or store) table; with
     * separateTables the load table's counters are reported
     * separately by loadProbeStats().
     */
    ProbeStats probeStats() const { return table_.probeStats(); }
    ProbeStats loadProbeStats() const { return loadTable_.probeStats(); }

    const DdtConfig &config() const { return config_; }

  private:
    /** What occupies a tracked address. */
    struct Entry
    {
        bool isStore = false;
        uint64_t pc = 0;
    };

    uint64_t lineOf(uint64_t addr) const
    {
        return addr >> config_.granularityLog2;
    }

    DdtConfig config_;
    /** Shared table, or the store table when separateTables. */
    FlatLruTable<Entry> table_;
    /** Load table, used only when separateTables. */
    FlatLruTable<Entry> loadTable_;
    uint64_t mutations_ = 0;
};

} // namespace rarpred

#endif // RARPRED_CORE_DDT_HH_
