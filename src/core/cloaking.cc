#include "core/cloaking.hh"

namespace rarpred {

Status
CloakingConfig::validate() const
{
    RARPRED_RETURN_IF_ERROR(validateGeometry(dpnt.geometry, "dpnt"));
    RARPRED_RETURN_IF_ERROR(validateGeometry(sf, "synonym file"));
    if (ddt.granularityLog2 > 12)
        return Status::outOfRange(
            "ddt: detection granularity log2 (" +
            std::to_string(ddt.granularityLog2) +
            ") exceeds the supported maximum of 12 (4KiB)");
    return Status{};
}

DdtConfig
CloakingEngine::ddtConfigFor(const CloakingConfig &config)
{
    DdtConfig ddt = config.ddt;
    switch (config.mode) {
      case CloakingMode::RawOnly:
        ddt.trackLoads = false;
        break;
      case CloakingMode::RarOnly:
        ddt.trackStores = false;
        break;
      case CloakingMode::RawPlusRar:
        break;
    }
    return ddt;
}

CloakingEngine::CloakingEngine(const CloakingConfig &config)
    : config_(config), detector_(ddtConfigFor(config)),
      dpnt_(config.dpnt), sf_(config.sf)
{
}

LoadOutcome
CloakingEngine::processInst(const DynInst &di)
{
    LoadOutcome outcome;
    if (!di.isMem())
        return outcome;

    const ConfidenceKind conf = config_.dpnt.confidence;

    if (di.isStore()) {
        ++stats_.stores;
        // Producer side: a store predicted as producer deposits its
        // value under its synonym (available at commit; in the timing
        // model it is available as soon as the store's data is).
        if (DpntEntry *e = dpnt_.lookup(di.pc)) {
            if (e->synonym != kNoSynonym && e->producer.valid) {
                sf_.produce(e->synonym, di.value, true, di.pc, di.seq);
                outcome.synonym = e->synonym;
                outcome.predictedProducer = true;
            }
        }
        detector_.onStore(di.pc, di.eaddr);
        return outcome;
    }

    // --- Load ---
    outcome.wasLoad = true;
    ++stats_.loads;

    DpntEntry *e = dpnt_.lookup(di.pc);

    // 1. Consumer side: predict, fetch the speculative value, verify
    //    against the architectural value di.value. Verification also
    //    happens when confidence is below the use threshold (shadow
    //    prediction), which is how the 2-bit automaton climbs back.
    if (e && e->synonym != kNoSynonym && e->consumer.valid) {
        if (SfEntry *sf = sf_.consume(e->synonym)) {
            if (sf->full) {
                const bool correct = (sf->value == di.value);
                const bool use = e->consumer.use(conf);
                if (use) {
                    outcome.used = true;
                    outcome.correct = correct;
                    outcome.specValue = sf->value;
                    outcome.type =
                        sf->fromStore ? DepType::Raw : DepType::Rar;
                    outcome.producerSeq = sf->producerSeq;
                    outcome.producerIsStore = sf->fromStore;
                    if (correct) {
                        if (sf->fromStore)
                            ++stats_.coveredRaw;
                        else
                            ++stats_.coveredRar;
                    } else {
                        if (sf->fromStore)
                            ++stats_.mispredRaw;
                        else
                            ++stats_.mispredRar;
                    }
                }
                if (correct)
                    e->consumer.onCorrect();
                else
                    e->consumer.onIncorrect();
            } else if (e->consumer.use(conf)) {
                ++stats_.predictedEmpty;
            }
        } else if (e->consumer.use(conf)) {
            ++stats_.predictedEmpty;
        }
    }

    if (e && e->synonym != kNoSynonym)
        outcome.synonym = e->synonym;

    // 2. Producer side: the earliest load of a RAR group deposits the
    //    value it just read.
    if (e && e->synonym != kNoSynonym && e->producer.valid) {
        sf_.produce(e->synonym, di.value, false, di.pc, di.seq);
        outcome.predictedProducer = true;
    }

    // 3. Detection and training (hardware mechanism only).
    if (config_.onlineTraining) {
        if (auto dep = detector_.onLoad(di.pc, di.eaddr)) {
            if (dep->type == DepType::Raw)
                ++stats_.detectedRaw;
            else
                ++stats_.detectedRar;
            dpnt_.train(*dep);
        }
    }

    return outcome;
}

void
CloakingEngine::saveState(StateWriter &w) const
{
    detector_.saveState(w);
    dpnt_.saveState(w);
    sf_.saveState(w);
    w.u64(stats_.loads);
    w.u64(stats_.stores);
    w.u64(stats_.coveredRaw);
    w.u64(stats_.coveredRar);
    w.u64(stats_.mispredRaw);
    w.u64(stats_.mispredRar);
    w.u64(stats_.predictedEmpty);
    w.u64(stats_.detectedRaw);
    w.u64(stats_.detectedRar);
}

Status
CloakingEngine::restoreState(StateReader &r)
{
    RARPRED_RETURN_IF_ERROR(detector_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(dpnt_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(sf_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.loads));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.stores));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.coveredRaw));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.coveredRar));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.mispredRaw));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.mispredRar));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.predictedEmpty));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.detectedRaw));
    return r.u64(&stats_.detectedRar);
}

} // namespace rarpred
