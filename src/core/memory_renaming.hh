/**
 * @file
 * Combined cloaking + value prediction ("memory renaming" in the
 * style of Tyson & Austin [20], which the paper's related-work and
 * Section 5.5 identify as the natural synergy).
 *
 * A per-PC 2-bit chooser arbitrates between the cloaking/bypassing
 * value (via the synonym file) and the last-value predictor. Both
 * components always train; the chooser trains toward whichever was
 * correct, exactly like the combined branch predictor's selector.
 */

#ifndef RARPRED_CORE_MEMORY_RENAMING_HH_
#define RARPRED_CORE_MEMORY_RENAMING_HH_

#include <cstdint>

#include "common/hybrid_table.hh"
#include "common/sat_counter.hh"
#include "core/cloaking.hh"
#include "core/value_predictor.hh"

namespace rarpred {

/** Accuracy statistics for the combined mechanism. */
struct MemoryRenamingStats
{
    uint64_t loads = 0;
    uint64_t usedCloak = 0;   ///< speculated with the cloaked value
    uint64_t usedVp = 0;      ///< speculated with the last value
    uint64_t correct = 0;     ///< used value was correct
    uint64_t wrong = 0;       ///< used value was wrong
    /** Loads only the combination got right (neither alone decides —
     *  chooser picked the working component). */
    uint64_t rescuedByChoice = 0;

    double
    coverage() const
    {
        return loads == 0 ? 0.0 : (double)correct / (double)loads;
    }

    double
    mispredictionRate() const
    {
        return loads == 0 ? 0.0 : (double)wrong / (double)loads;
    }
};

/** The combined mechanism. */
class MemoryRenaming : public TraceSink
{
  public:
    /**
     * @param cloaking Cloaking configuration (Section 5.6.1 defaults
     *        apply when default-constructed).
     * @param vp_geometry Last-value predictor geometry (paper: 16K
     *        fully associative).
     */
    explicit MemoryRenaming(const CloakingConfig &cloaking = {},
                            TableGeometry vp_geometry = {16384, 0})
        : engine_(cloaking), vp_(vp_geometry), choosers_({0, 0})
    {}

    void onInst(const DynInst &di) override { (void)processInst(di); }

    /**
     * Process one committed instruction.
     * @return true when the combined mechanism produced a correct
     *         speculative value for a load.
     */
    bool
    processInst(const DynInst &di)
    {
        // Train/evaluate both components unconditionally.
        LoadOutcome cloak = engine_.processInst(di);
        const LastValuePredictor::Result vp = vp_.processDetailed(di);
        if (!cloak.wasLoad)
            return false;
        ++stats_.loads;

        const bool cloak_correct = cloak.used && cloak.correct;

        // Chooser: MSB set -> prefer cloaking.
        const uint64_t key = di.pc >> 2;
        SatCounter *chooser = choosers_.touch(key);
        if (!chooser) {
            choosers_.insert(key, SatCounter(2, 2));
            chooser = choosers_.find(key);
        }
        const bool prefer_cloak = chooser->predict();

        bool used = false, correct = false, used_cloak = false;
        if (cloak.used && (prefer_cloak || !vp.hit)) {
            used = true;
            used_cloak = true;
            correct = cloak_correct;
        } else if (vp.hit) {
            used = true;
            correct = vp.correct;
        }

        // Train the chooser toward the component that was right.
        if (cloak_correct && !vp.correct)
            chooser->increment();
        else if (vp.correct && !cloak_correct)
            chooser->decrement();

        if (used) {
            if (used_cloak)
                ++stats_.usedCloak;
            else
                ++stats_.usedVp;
            if (correct) {
                ++stats_.correct;
                if (cloak_correct != vp.correct)
                    ++stats_.rescuedByChoice;
            } else {
                ++stats_.wrong;
            }
        }
        return used && correct;
    }

    const MemoryRenamingStats &stats() const { return stats_; }
    CloakingEngine &cloaking() { return engine_; }
    LastValuePredictor &valuePredictor() { return vp_; }

  private:
    CloakingEngine engine_;
    LastValuePredictor vp_;
    HybridTable<SatCounter> choosers_;
    MemoryRenamingStats stats_;
};

} // namespace rarpred

#endif // RARPRED_CORE_MEMORY_RENAMING_HH_
