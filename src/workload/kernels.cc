#include "workload/kernels.hh"

#include <algorithm>
#include <numeric>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rarpred::kernels {

namespace {

// Kernel scratch registers (see the register convention in kernels.hh).
constexpr RegId t0 = 8;
constexpr RegId t1 = 9;
constexpr RegId t2 = 10;
constexpr RegId t3 = 11;
constexpr RegId t4 = 12;
constexpr RegId t5 = 13;
constexpr RegId t6 = 14;
constexpr RegId t7 = 15;
constexpr RegId t8 = 16;
constexpr RegId t9 = 17;
constexpr RegId t10 = 18;
constexpr RegId t11 = 19;
constexpr RegId t12 = 20;
constexpr RegId t13 = 21;

// Registers for loop-invariant values hoisted out of kernel loops.
constexpr RegId s0 = 22;
constexpr RegId s1 = 23;
constexpr RegId s2 = 24;
constexpr RegId s3 = 25;
constexpr RegId s4 = 26;
constexpr RegId s5 = 27;

constexpr RegId f0 = reg::fpReg(0);
constexpr RegId f1 = reg::fpReg(1);
constexpr RegId f2 = reg::fpReg(2);
constexpr RegId f3 = reg::fpReg(3);
constexpr RegId f4 = reg::fpReg(4);
constexpr RegId f5 = reg::fpReg(5);
constexpr RegId f6 = reg::fpReg(6);

} // namespace

// ---------------------------------------------------------------------
// Data builders
// ---------------------------------------------------------------------

uint64_t
allocList(ProgramBuilder &b, Rng &rng, size_t num_nodes, bool shuffled)
{
    rarpred_assert(num_nodes >= 1);
    const uint64_t head_cell = b.allocWords(1);
    const uint64_t base = b.allocWords(num_nodes * 4);

    std::vector<size_t> order(num_nodes);
    std::iota(order.begin(), order.end(), 0);
    if (shuffled) {
        for (size_t i = num_nodes - 1; i > 0; --i)
            std::swap(order[i], order[rng.below(i + 1)]);
    }

    auto node_addr = [&](size_t i) { return base + (uint64_t)i * 32; };
    for (size_t k = 0; k < num_nodes; ++k) {
        const uint64_t addr = node_addr(order[k]);
        b.initWord(addr + 0, rng.below(1000));  // data
        b.initWord(addr + 8, rng.below(64));    // key
        b.initWord(addr + 16, 0);               // pad
        const uint64_t next =
            k + 1 < num_nodes ? node_addr(order[k + 1]) : 0;
        b.initWord(addr + 24, next);
    }
    b.initWord(head_cell, node_addr(order[0]));
    return head_cell;
}

uint64_t
allocHashTable(ProgramBuilder &b, Rng &rng, size_t num_buckets,
               size_t num_keys)
{
    rarpred_assert(isPowerOf2(num_buckets));
    const uint64_t buckets = b.allocWords(num_buckets);
    const uint64_t pool = b.allocWords(num_keys * 3);

    std::vector<uint64_t> head(num_buckets, 0);
    for (size_t k = 0; k < num_keys; ++k) {
        const uint64_t node = pool + (uint64_t)k * 24;
        const uint64_t key = k;
        const size_t bucket = key & (num_buckets - 1);
        b.initWord(node + 0, key);
        b.initWord(node + 8, rng.below(1 << 16)); // value
        b.initWord(node + 16, head[bucket]);      // next (chain)
        head[bucket] = node;
    }
    for (size_t i = 0; i < num_buckets; ++i)
        b.initWord(buckets + (uint64_t)i * 8, head[i]);
    return buckets;
}

uint64_t
allocStream(ProgramBuilder &b, size_t length,
            const std::vector<uint64_t> &values)
{
    rarpred_assert(values.size() == length);
    const uint64_t base = b.allocWords(length);
    for (size_t i = 0; i < length; ++i)
        b.initWord(base + (uint64_t)i * 8, values[i]);
    return base;
}

namespace {

/** Recursively lay out a balanced BST over [lo, hi). */
uint64_t
buildTreeRange(ProgramBuilder &b, uint64_t base, size_t &next_slot,
               uint64_t lo, uint64_t hi, Rng &rng)
{
    if (lo >= hi)
        return 0;
    const uint64_t mid = lo + (hi - lo) / 2;
    const uint64_t node = base + (uint64_t)next_slot * 32;
    ++next_slot;
    const uint64_t left = buildTreeRange(b, base, next_slot, lo, mid, rng);
    const uint64_t right =
        buildTreeRange(b, base, next_slot, mid + 1, hi, rng);
    b.initWord(node + 0, mid);           // key
    b.initWord(node + 8, left);          // left
    b.initWord(node + 16, right);        // right
    b.initWord(node + 24, rng.below(97)); // value
    return node;
}

} // namespace

uint64_t
allocTree(ProgramBuilder &b, Rng &rng, size_t num_nodes)
{
    const uint64_t base = b.allocWords(num_nodes * 4);
    size_t next_slot = 0;
    uint64_t root = buildTreeRange(b, base, next_slot, 1, num_nodes + 1,
                                   rng);
    rarpred_assert(next_slot == num_nodes);
    return root;
}

uint64_t
allocIntArray(ProgramBuilder &b, Rng &rng, size_t words,
              uint64_t max_value)
{
    const uint64_t base = b.allocWords(words);
    for (size_t i = 0; i < words; ++i)
        b.initWord(base + (uint64_t)i * 8, rng.below(max_value));
    return base;
}

uint64_t
allocFpArray(ProgramBuilder &b, Rng &rng, size_t words)
{
    const uint64_t base = b.allocWords(words);
    for (size_t i = 0; i < words; ++i)
        b.initWordF(base + (uint64_t)i * 8, rng.uniform() + 1e-3);
    return base;
}

uint64_t
allocGlobal(ProgramBuilder &b, uint64_t initial)
{
    const uint64_t addr = b.allocWords(1);
    b.initWord(addr, initial);
    return addr;
}

std::vector<uint64_t>
mixedStream(Rng &rng, size_t length, uint64_t universe,
            uint64_t hot_count, double hot_frac)
{
    rarpred_assert(universe >= 1 && hot_count >= 1 &&
                   hot_count <= universe);
    // A fixed random hot set, so the hot values are spread through
    // the universe rather than clustered at the low end.
    std::vector<uint64_t> hot(hot_count);
    for (auto &h : hot)
        h = rng.below(universe);
    std::vector<uint64_t> stream(length);
    for (auto &v : stream) {
        if (rng.chance(hot_frac))
            v = hot[rng.below(hot_count)];
        else
            v = rng.below(universe);
    }
    return stream;
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

void
emitMain(ProgramBuilder &b, const std::vector<std::string> &entries,
         uint64_t outer_iters)
{
    rarpred_assert(b.numInsts() == 0); // main must start at PC 0
    b.li(1, (int64_t)outer_iters);
    b.label("main_loop");
    for (const auto &entry : entries)
        b.call(entry);
    b.addi(1, 1, -1);
    b.bne(1, reg::kZero, "main_loop");
    b.halt();
}

void
emitMainPeriodic(ProgramBuilder &b,
                 const std::vector<PeriodicEntry> &entries,
                 uint64_t outer_iters)
{
    rarpred_assert(b.numInsts() == 0); // main must start at PC 0
    // r1: remaining outer iterations, counting down to 0.
    // r2..: per-entry period countdowns (main driver registers).
    b.li(1, (int64_t)outer_iters);
    RegId counter = 2;
    for (const auto &e : entries) {
        rarpred_assert(e.period >= 1);
        if (e.period > 1)
            b.li(counter++, (int64_t)e.period);
    }
    rarpred_assert(counter <= 8); // r1..r7 reserved for the driver
    b.label("main_loop");
    counter = 2;
    for (size_t i = 0; i < entries.size(); ++i) {
        const auto &e = entries[i];
        if (e.period == 1) {
            b.call(e.entry);
            continue;
        }
        const std::string skip = "main_skip_" + std::to_string(i);
        const RegId c = counter++;
        b.addi(c, c, -1);
        b.bne(c, reg::kZero, skip);
        b.li(c, (int64_t)e.period);
        b.call(e.entry);
        b.label(skip);
    }
    b.addi(1, 1, -1);
    b.bne(1, reg::kZero, "main_loop");
    b.halt();
}

// ---------------------------------------------------------------------
// Integer kernels
// ---------------------------------------------------------------------

void
emitListWalk(ProgramBuilder &b, const std::string &name,
             const ListWalkParams &p)
{
    const std::string loop = name + "_loop";
    const std::string skip = name + "_skip";
    const std::string done = name + "_done";
    const std::string foo_odd = name + "_fodd";
    const std::string foo_end = name + "_fend";

    b.label(name);
    b.li(t0, (int64_t)p.headPtrAddr);
    b.lw(t0, t0, 0); // node = *head
    b.li(s0, (int64_t)p.sumAddr);
    b.li(s1, (int64_t)p.countAddr);
    b.li(s2, p.matchKey);
    b.label(loop);
    b.beq(t0, reg::kZero, done);
    // foo(l): sum += l->data -- sum lives in memory.
    if (p.twoSiteFoo) {
        // Site selected by key parity: the later bar re-read then has
        // a node-dependent RAR source.
        b.lw(t9, t0, 8); // l->key (site K0)
        b.andi(t9, t9, 1);
        b.bne(t9, reg::kZero, foo_odd);
        b.lw(t1, t0, 0); // l->data (site A-even)
        b.jump(foo_end);
        b.label(foo_odd);
        b.lw(t1, t0, 0); // l->data (site A-odd)
        b.label(foo_end);
    } else {
        b.lw(t1, t0, 0); // l->data (site A)
    }
    b.lw(t3, s0, 0);
    b.add(t3, t3, t1);
    b.sw(s0, 0, t3);
    // bar(l): if (l->data == matchKey) count++ -- re-reads l->data.
    b.lw(t4, t0, 0); // l->data (site B) -> RAR with site A
    b.lw(t5, t0, 8); // l->key
    b.bne(t5, s2, skip);
    b.lw(t8, s1, 0);
    b.add(t8, t8, t4);
    b.sw(s1, 0, t8);
    b.label(skip);
    b.lw(t0, t0, 24); // l = l->next
    b.jump(loop);
    b.label(done);
    b.ret();
}

void
emitListWalkUnrolled(ProgramBuilder &b, const std::string &name,
                     const ListWalkUnrolledParams &p)
{
    rarpred_assert(p.depth >= 1 && p.depth <= 24);
    b.label(name);
    b.li(t0, (int64_t)p.headPtrAddr);
    b.lw(t0, t0, 0);       // head node
    b.mov(t2, reg::kZero); // register accumulator
    for (size_t d = 0; d < p.depth; ++d) {
        const std::string skip = name + "_s" + std::to_string(d);
        b.lw(t1, t0, 0); // node->data (per-position site)
        b.add(t2, t2, t1);
        b.lw(t3, t0, 8); // node->key (per-position site)
        // A biased, data-dependent branch per node.
        b.slti(t4, t3, 60);
        b.beq(t4, reg::kZero, skip);
        b.xor_(t2, t2, t3);
        b.label(skip);
        b.lw(t0, t0, 24); // node->next (per-position site)
    }
    b.li(t5, (int64_t)p.sumAddr);
    b.lw(t6, t5, 0);
    b.add(t6, t6, t2);
    b.sw(t5, 0, t6);
    b.ret();
}

void
emitHashProbe(ProgramBuilder &b, const std::string &name,
              const HashProbeParams &p)
{
    rarpred_assert(isPowerOf2(p.numBuckets));
    const std::string loop = name + "_loop";
    const std::string chain = name + "_chain";
    const std::string found = name + "_found";
    const std::string next_key = name + "_next";
    const std::string nowrap = name + "_nowrap";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.cursorAddr);
    b.lw(t1, t0, 0); // cursor
    b.li(t2, (int64_t)p.probesPerCall);
    b.li(s0, (int64_t)p.streamAddr);
    b.li(s1, (int64_t)p.tableAddr);
    b.li(s2, (int64_t)p.streamLen);
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    // key = stream[cursor]
    b.slli(t3, t1, 3);
    b.add(t3, s0, t3);
    b.lw(t5, t3, 0); // key
    // head = table[key & (B-1)]
    b.andi(t6, t5, (int64_t)(p.numBuckets - 1));
    b.slli(t6, t6, 3);
    b.add(t6, s1, t6);
    b.lw(t8, t6, 0); // node = bucket head
    b.label(chain);
    b.beq(t8, reg::kZero, next_key);
    b.lw(t9, t8, 0); // node->key
    b.beq(t9, t5, found);
    b.lw(t8, t8, 16); // node = node->next
    b.jump(chain);
    b.label(found);
    b.lw(t10, t8, 8); // node->value
    if (p.updateValues) {
        b.addi(t10, t10, 1);
        b.sw(t8, 8, t10); // write back -> future RAW on revisits
    }
    b.label(next_key);
    b.addi(t1, t1, 1);
    b.blt(t1, s2, nowrap);
    b.mov(t1, reg::kZero);
    b.label(nowrap);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.sw(t0, 0, t1); // persist cursor
    b.ret();
}

void
emitCallChain(ProgramBuilder &b, const std::string &name,
              const CallChainParams &p)
{
    const std::string loop = name + "_loop";
    const std::string nowrap = name + "_nowrap";
    const std::string done = name + "_done";
    const std::string outer = name + "_outer";
    const std::string leaf = name + "_leaf";

    b.label(name);
    b.li(t0, (int64_t)p.cursorAddr);
    b.lw(t1, t0, 0); // cursor
    b.li(t2, (int64_t)p.elemsPerCall);
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    b.push(reg::kRa);
    b.push(t0);
    b.push(t2);
    b.call(outer); // takes index in t1, preserves it
    b.pop(t2);
    b.pop(t0);
    b.pop(reg::kRa);
    b.addi(t1, t1, 1);
    b.li(t3, (int64_t)p.arrayLen);
    b.blt(t1, t3, nowrap);
    b.mov(t1, reg::kZero);
    b.label(nowrap);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.sw(t0, 0, t1); // persist cursor
    b.ret();

    // outer(index=t1): x = array[index]; spill x; y = leaf(x);
    // acc += x + y
    b.label(outer);
    b.push(reg::kRa);
    b.push(t1); // spill the index (restored after the call)
    b.slli(t4, t1, 3);
    b.li(t5, (int64_t)p.arrayAddr);
    b.add(t4, t5, t4);
    b.lw(t6, t4, 0); // x = array[index]
    b.push(t6);      // spill x (short-distance stack RAW)
    b.call(leaf);    // leaf reads t6, returns in t7
    b.pop(t6);       // reload x
    b.add(t7, t7, t6);
    b.li(t8, (int64_t)p.accAddr);
    b.lw(t9, t8, 0);
    b.add(t9, t9, t7);
    b.sw(t8, 0, t9);
    b.pop(t1); // restore index
    b.pop(reg::kRa);
    b.ret();

    // leaf(x=t6) -> t7 = ((x << 1) + x) ^ (x >> 3)
    b.label(leaf);
    b.slli(t7, t6, 1);
    b.add(t7, t7, t6);
    b.srli(t10, t6, 3);
    b.xor_(t7, t7, t10);
    b.ret();
}

void
emitTreeSearch(ProgramBuilder &b, const std::string &name,
               const TreeSearchParams &p)
{
    const std::string loop = name + "_loop";
    const std::string walk = name + "_walk";
    const std::string left = name + "_left";
    const std::string hit = name + "_hit";
    const std::string miss = name + "_miss";
    const std::string nowrap = name + "_nowrap";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.cursorAddr);
    b.lw(t1, t0, 0);
    b.li(t2, (int64_t)p.queriesPerCall);
    b.li(s0, (int64_t)p.streamAddr);
    b.li(s1, (int64_t)p.rootAddr);
    b.li(s2, (int64_t)p.foundAddr);
    b.li(s3, (int64_t)p.streamLen);
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    b.slli(t3, t1, 3);
    b.add(t3, s0, t3);
    b.lw(t5, t3, 0); // q = stream[cursor]
    b.mov(t6, s1);   // node = root
    b.label(walk);
    b.beq(t6, reg::kZero, miss);
    b.lw(t7, t6, 0); // node->key
    b.beq(t7, t5, hit);
    b.blt(t5, t7, left);
    b.lw(t6, t6, 16); // node = node->right
    b.jump(walk);
    b.label(left);
    b.lw(t6, t6, 8); // node = node->left
    b.jump(walk);
    b.label(hit);
    b.lw(t8, t6, 24); // node->value
    b.lw(t10, s2, 0);
    b.add(t10, t10, t8);
    b.sw(s2, 0, t10);
    b.label(miss);
    b.addi(t1, t1, 1);
    b.blt(t1, s3, nowrap);
    b.mov(t1, reg::kZero);
    b.label(nowrap);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.sw(t0, 0, t1);
    b.ret();
}

void
emitIntSweep(ProgramBuilder &b, const std::string &name,
             const IntSweepParams &p)
{
    const std::string loop = name + "_loop";
    const std::string skip = name + "_skip";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.arrayAddr);
    b.li(t1, (int64_t)p.arrayLen);
    b.mov(t2, reg::kZero); // sum
    b.mov(t3, reg::kZero); // count
    b.li(t4, (int64_t)p.threshold);
    b.label(loop);
    b.beq(t1, reg::kZero, done);
    b.lw(t5, t0, 0);
    // Dependent ALU chain to tune the memory-instruction density.
    for (unsigned i = 0; i < p.extraAlu; ++i) {
        if (i % 3 == 0)
            b.slli(t5, t5, 1);
        else if (i % 3 == 1)
            b.addi(t5, t5, 13);
        else
            b.srli(t5, t5, 1);
    }
    b.add(t2, t2, t5);
    if (p.writeBack)
        b.sw(t0, 0, t5); // in-place transform
    b.blt(t5, t4, skip); // data-dependent branch
    b.addi(t3, t3, 1);
    b.label(skip);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, -1);
    b.jump(loop);
    b.label(done);
    b.li(t6, (int64_t)p.sumAddr);
    b.lw(t7, t6, 0);
    b.add(t7, t7, t2);
    b.sw(t6, 0, t7);
    b.li(t8, (int64_t)p.cntAddr);
    b.lw(t9, t8, 0);
    b.add(t9, t9, t3);
    b.sw(t8, 0, t9);
    b.ret();
}

void
emitDispatch(ProgramBuilder &b, const std::string &name,
             const DispatchParams &p)
{
    rarpred_assert(isPowerOf2(p.numOps));
    const std::string loop = name + "_loop";
    const std::string nowrap = name + "_nowrap";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.cursorAddr);
    b.lw(t1, t0, 0);
    b.li(t2, (int64_t)p.opsPerCall);
    b.li(s0, (int64_t)p.opStreamAddr);
    b.li(s1, (int64_t)p.opTableAddr);
    b.li(s2, (int64_t)p.cycleAddr);
    b.li(s3, (int64_t)p.simRegsAddr);
    b.li(s4, (int64_t)p.opStreamLen);
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    // op = opStream[cursor]
    b.slli(t3, t1, 3);
    b.add(t3, s0, t3);
    b.lw(t5, t3, 0);
    // lat = opTable[op] -- tiny, hot table: dense RAR
    b.slli(t6, t5, 3);
    b.add(t6, s1, t6);
    b.lw(t8, t6, 0);
    // cycles += lat (global RMW -> short RAW)
    b.lw(t10, s2, 0);
    b.add(t10, t10, t8);
    b.sw(s2, 0, t10);
    // simRegs[op & 31] = simRegs[op & 31] + lat (RAW across visits)
    b.andi(t11, t5, 31);
    b.slli(t11, t11, 3);
    b.add(t11, s3, t11);
    b.lw(t13, t11, 0);
    b.add(t13, t13, t8);
    b.sw(t11, 0, t13);
    // advance
    b.addi(t1, t1, 1);
    b.blt(t1, s4, nowrap);
    b.mov(t1, reg::kZero);
    b.label(nowrap);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.sw(t0, 0, t1);
    b.ret();
}

void
emitRecordUpdate(ProgramBuilder &b, const std::string &name,
                 const RecordUpdateParams &p)
{
    const std::string loop = name + "_loop";
    const std::string nowrap = name + "_nowrap";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.cursorAddr);
    b.lw(t1, t0, 0);
    b.li(t2, (int64_t)p.updatesPerCall);
    b.li(s0, (int64_t)p.streamAddr);
    b.li(s1, (int64_t)p.recordsAddr);
    b.li(s2, (int64_t)p.streamLen);
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    // idx = stream[cursor]; rec = records + idx*32
    b.slli(t3, t1, 3);
    b.add(t3, s0, t3);
    b.lw(t5, t3, 0);
    b.slli(t5, t5, 5);
    b.add(t5, s1, t5);
    // read-modify-write all four record fields (store heavy)
    b.lw(t7, t5, 0);
    b.lw(t8, t5, 8);
    b.lw(t12, t5, 24);
    b.add(t9, t7, t8);
    b.sw(t5, 0, t9);
    b.addi(t8, t8, 1);
    b.sw(t5, 8, t8);
    b.sw(t5, 16, t7); // audit copy of the old first field
    b.add(t12, t12, t9);
    b.sw(t5, 24, t12);
    // advance
    b.addi(t1, t1, 1);
    b.blt(t1, s2, nowrap);
    b.mov(t1, reg::kZero);
    b.label(nowrap);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.sw(t0, 0, t1);
    b.ret();
}

void
emitGlobalsRead(ProgramBuilder &b, const std::string &name,
                const GlobalsReadParams &p)
{
    rarpred_assert(p.numGlobals >= 4);
    const std::string rep = name + "_rep";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.repeatsPerCall);
    b.li(t1, (int64_t)p.globalsAddr);
    b.mov(t2, reg::kZero); // sum
    b.label(rep);
    b.beq(t0, reg::kZero, done);
    for (size_t g = 0; g < p.numGlobals; ++g) {
        b.lw(t3, t1, (int64_t)(g * 8));
        b.add(t2, t2, t3);
    }
    // A couple of re-reads from distinct sites (cross-PC RAR).
    b.lw(t4, t1, 0);
    b.lw(t5, t1, 8);
    b.add(t2, t2, t4);
    b.add(t2, t2, t5);
    b.addi(t0, t0, -1);
    b.jump(rep);
    b.label(done);
    b.li(t6, (int64_t)p.sinkAddr);
    b.lw(t7, t6, 0);
    b.add(t7, t7, t2);
    b.sw(t6, 0, t7);
    b.ret();
}

void
emitGlobalsRmw(ProgramBuilder &b, const std::string &name,
               const GlobalsRmwParams &p)
{
    rarpred_assert(p.numGlobals >= 1 && p.numGlobals <= 8);
    const std::string loop = name + "_loop";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.globalsAddr);
    b.li(t1, (int64_t)p.roundsPerCall);
    b.label(loop);
    b.beq(t1, reg::kZero, done);
    for (size_t g = 0; g < p.numGlobals; ++g) {
        const int64_t off = (int64_t)g * 8;
        b.lw(t2, t0, off);
        b.addi(t2, t2, (int64_t)g + 1);
        for (unsigned a = 0; a < p.chainAlu; ++a) {
            if (a % 2 == 0)
                b.xor_(t2, t2, t1);
            else
                b.addi(t2, t2, 3);
        }
        b.sw(t0, off, t2);
    }
    b.addi(t1, t1, -1);
    b.jump(loop);
    b.label(done);
    b.ret();
}

void
emitFill(ProgramBuilder &b, const std::string &name, const FillParams &p)
{
    const std::string loop = name + "_loop";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.dstAddr);
    b.li(t1, (int64_t)p.words);
    b.li(t2, (int64_t)p.seedAddr);
    b.lw(t3, t2, 0); // seed value
    b.label(loop);
    b.beq(t1, reg::kZero, done);
    b.sw(t0, 0, t3);
    b.addi(t3, t3, 1);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, -1);
    b.jump(loop);
    b.label(done);
    b.sw(t2, 0, t3); // persist the rolling seed
    b.ret();
}

void
emitCopyTransform(ProgramBuilder &b, const std::string &name,
                  const CopyTransformParams &p)
{
    const std::string loop = name + "_loop";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.srcAddr);
    b.li(t1, (int64_t)p.dstAddr);
    b.li(t2, (int64_t)p.words);
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    b.lw(t3, t0, 0);
    b.slli(t4, t3, 1);
    b.xor_(t4, t4, t3);
    b.sw(t1, 0, t4);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, 8);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.ret();
}

// ---------------------------------------------------------------------
// Floating-point kernels
// ---------------------------------------------------------------------

void
emitStencil(ProgramBuilder &b, const std::string &name,
            const StencilParams &p)
{
    rarpred_assert(p.taps >= 3 && p.taps % 2 == 1);
    rarpred_assert(p.words >= p.taps);
    rarpred_assert(p.reloadWeights || p.taps == 3);
    const std::string loop = name + "_loop";
    const std::string done = name + "_done";
    const int64_t half = (int64_t)(p.taps / 2);

    b.label(name);
    b.li(t0, (int64_t)(p.inAddr + 8 * (uint64_t)half));  // center ptr
    b.li(t1, (int64_t)(p.outAddr + 8 * (uint64_t)half));
    if (p.out2Addr != 0)
        b.li(t4, (int64_t)(p.out2Addr + 8 * (uint64_t)half));
    b.li(t2, (int64_t)(p.words - (p.taps - 1)));
    if (!p.reloadWeights) {
        b.li(t3, (int64_t)p.weightAddr);
        b.lf(f1, t3, 0);
        b.lf(f2, t3, 8);
        b.lf(f3, t3, 16);
    }
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    if (!p.reloadWeights) {
        // Three-tap form with register-resident weights. Each in[]
        // element is read by the three tap sites in consecutive
        // iterations -> dense short-distance RAR.
        b.lf(f4, t0, -8);
        b.lf(f5, t0, 0);
        b.lf(f6, t0, 8);
        b.fmuld(f4, f4, f1);
        b.fmuld(f5, f5, f2);
        b.fmuld(f6, f6, f3);
        b.faddd(f4, f4, f5);
        b.faddd(f4, f4, f6);
        b.sf(t1, 0, f4);
        if (p.out2Addr != 0)
            b.sf(t4, 0, f4);
    } else {
        // General form: weights live in memory and are re-read every
        // iteration — the "long-lifetime variables that are not
        // register allocated" of the paper's Fortran codes
        // (self-RAR on every weight load).
        b.li(t3, (int64_t)p.weightAddr);
        b.fcvt(f0, reg::kZero); // acc = 0.0
        for (unsigned tap = 0; tap < p.taps; ++tap) {
            const int64_t in_off = ((int64_t)tap - half) * 8;
            b.lf(f1, t0, in_off);
            b.lf(f2, t3, (int64_t)tap * 8);
            b.fmuld(f3, f1, f2);
            b.faddd(f0, f0, f3);
        }
        b.sf(t1, 0, f0);
        if (p.out2Addr != 0)
            b.sf(t4, 0, f0);
    }
    b.addi(t0, t0, 8);
    b.addi(t1, t1, 8);
    if (p.out2Addr != 0)
        b.addi(t4, t4, 8);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.ret();
}

void
emitFpGlobals(ProgramBuilder &b, const std::string &name,
              const FpGlobalsParams &p)
{
    rarpred_assert(p.numGlobals >= 8);
    const std::string rep = name + "_rep";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.repeatsPerCall);
    b.li(t1, (int64_t)p.globalsAddr);
    b.li(t2, (int64_t)p.outAddr);
    b.label(rep);
    b.beq(t0, reg::kZero, done);
    // Accumulate the globals in triples (two ops per three loads,
    // fpppp-like memory density); each load is a distinct static site
    // that re-reads the same never-stored word every repeat
    // (self-RAR).
    b.lf(f0, t1, 0);
    for (size_t g = 1; g + 2 < p.numGlobals; g += 3) {
        b.lf(f1, t1, (int64_t)(g * 8));
        b.lf(f3, t1, (int64_t)((g + 1) * 8));
        b.lf(f6, t1, (int64_t)((g + 2) * 8));
        b.fmuld(f1, f1, f3);
        b.faddd(f1, f1, f6);
        b.faddd(f0, f0, f1);
    }
    if (p.mutateCursorAddr != 0) {
        // Every 8th repeat, overwrite one rotating global between the
        // first reads and the re-reads below: the affected re-read
        // then sees a value the synonym file does not (occasional
        // misspeculation), and the next block's read of that global
        // experiences a short RAW instead of its usual self-RAR.
        const std::string skip_mut = name + "_nomut";
        const uint64_t mask = (uint64_t(1) << floorLog2(p.numGlobals)) - 1;
        b.li(t3, (int64_t)p.mutateCursorAddr);
        b.lw(t4, t3, 0);
        b.addi(t4, t4, 1);
        b.sw(t3, 0, t4);
        b.andi(t5, t4, 7);
        b.bne(t5, reg::kZero, skip_mut);
        b.srli(t5, t4, 3);
        b.andi(t5, t5, (int64_t)mask);
        b.slli(t5, t5, 3);
        b.add(t5, t1, t5);
        b.sf(t5, 0, f0); // globals[rotation] = current accumulator
        b.label(skip_mut);
    }
    // Re-read a few globals from different PCs (cross-PC RAR).
    b.lf(f2, t1, 0);
    b.lf(f3, t1, 16);
    b.lf(f4, t1, 32);
    b.faddd(f2, f2, f3);
    b.fmuld(f2, f2, f4);
    b.faddd(f0, f0, f2);
    // Result stores to a separate area (keeps globals unstored).
    rarpred_assert(p.storesPerRepeat >= 1);
    b.fsubd(f5, f0, f2);
    for (size_t s = 0; s < p.storesPerRepeat; ++s) {
        const RegId src = s % 3 == 0 ? f0 : (s % 3 == 1 ? f2 : f5);
        b.sf(t2, (int64_t)s * 8, src);
    }
    b.addi(t0, t0, -1);
    b.jump(rep);
    b.label(done);
    b.ret();
}

void
emitFpReduce(ProgramBuilder &b, const std::string &name,
             const FpReduceParams &p)
{
    const std::string loop = name + "_loop";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.aAddr);
    b.li(t1, (int64_t)p.bAddr);
    b.li(t2, (int64_t)p.words);
    b.fcvt(f0, reg::kZero); // acc = 0.0
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    b.lf(f1, t0, 0);
    b.lf(f2, t1, 0);
    b.fmuld(f3, f1, f2);
    b.faddd(f0, f0, f3);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, 8);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.li(t3, (int64_t)p.resultAddr);
    b.sf(t3, 0, f0);
    b.ret();
}

void
emitMatMul(ProgramBuilder &b, const std::string &name,
           const MatMulParams &p)
{
    const std::string i_loop = name + "_i";
    const std::string j_loop = name + "_j";
    const std::string k_loop = name + "_k";
    const std::string k_done = name + "_kd";
    const std::string j_done = name + "_jd";
    const std::string done = name + "_done";
    const int64_t n = (int64_t)p.n;
    const int64_t row_bytes = n * 8;

    b.label(name);
    b.li(t0, 0); // i
    b.li(t13, n);
    b.label(i_loop);
    b.beq(t0, t13, done);
    b.li(t1, 0); // j
    b.label(j_loop);
    b.beq(t1, t13, j_done);
    // a_ptr = A + i*n*8 ; b_ptr = B + j*8 ; c = C + (i*n + j)*8
    b.li(t2, row_bytes);
    b.mul(t3, t0, t2);
    b.li(t4, (int64_t)p.aAddr);
    b.add(t4, t4, t3); // a_ptr
    b.slli(t5, t1, 3);
    b.li(t6, (int64_t)p.bAddr);
    b.add(t6, t6, t5); // b_ptr
    b.li(t7, (int64_t)p.cAddr);
    b.add(t7, t7, t3);
    b.add(t7, t7, t5); // c addr
    b.lf(f0, t7, 0);   // acc = C[i][j]
    b.li(t8, 0);       // k
    b.label(k_loop);
    b.beq(t8, t13, k_done);
    b.lf(f1, t4, 0); // A[i][k]
    b.lf(f2, t6, 0); // B[k][j] -- re-read for every i: long-range RAR
    b.fmuld(f3, f1, f2);
    b.faddd(f0, f0, f3);
    b.addi(t4, t4, 8);
    b.add(t6, t6, t2);
    b.addi(t8, t8, 1);
    b.jump(k_loop);
    b.label(k_done);
    b.sf(t7, 0, f0);
    b.addi(t1, t1, 1);
    b.jump(j_loop);
    b.label(j_done);
    b.addi(t0, t0, 1);
    b.jump(i_loop);
    b.label(done);
    b.ret();
}

void
emitParticle(ProgramBuilder &b, const std::string &name,
             const ParticleParams &p)
{
    rarpred_assert(isPowerOf2(p.gridWords));
    const std::string loop = name + "_loop";
    const std::string nowrap = name + "_nowrap";
    const std::string done = name + "_done";

    b.label(name);
    b.li(t0, (int64_t)p.cursorAddr);
    b.lw(t1, t0, 0); // particle index
    b.li(t2, (int64_t)p.particlesPerCall);
    b.li(s0, (int64_t)p.particlesAddr);
    b.li(s1, (int64_t)p.gridAddr);
    b.li(s2, (int64_t)p.dtAddr);
    b.li(s3, (int64_t)p.numParticles);
    b.label(loop);
    b.beq(t2, reg::kZero, done);
    // part = particles + idx*32
    b.slli(t3, t1, 5);
    b.add(t3, s0, t3);
    b.lf(f0, t3, 0); // x
    b.lf(f1, t3, 8); // v
    // Two-point field gather: grid[g] and grid[g+1] with
    // g = (idx*7) & mask -- a hot grid read by many particles (RAR).
    b.slli(t6, t1, 3);
    b.sub(t6, t6, t1); // idx*7
    b.andi(t6, t6, (int64_t)(p.gridWords - 2));
    b.slli(t6, t6, 3);
    b.add(t6, s1, t6);
    b.lf(f2, t6, 0);
    b.lf(f6, t6, 8);
    b.faddd(f2, f2, f6); // interpolated field
    // dt reloaded every particle (never stored -> self-RAR)
    b.lf(f3, s2, 0);
    // v += field*dt ; x += v*dt
    b.fmuld(f4, f2, f3);
    b.faddd(f1, f1, f4);
    b.fmuld(f5, f1, f3);
    b.faddd(f0, f0, f5);
    b.sf(t3, 0, f0);
    b.sf(t3, 8, f1);
    b.sf(t3, 16, f5); // last displacement (diagnostic field)
    // advance
    b.addi(t1, t1, 1);
    b.blt(t1, s3, nowrap);
    b.mov(t1, reg::kZero);
    b.label(nowrap);
    b.addi(t2, t2, -1);
    b.jump(loop);
    b.label(done);
    b.sw(t0, 0, t1);
    b.ret();
}

} // namespace rarpred::kernels
