#include "workload/workload.hh"

#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"
#include "workload/factory.hh"
#include "workload/fuzz.hh"

namespace rarpred {

namespace {

/**
 * Dynamic "factory.fuzz:SEED" workloads, materialized on first
 * lookup. A deque keeps earlier pointers valid across growth, and the
 * mutex makes lookups safe from rarpredd's worker threads. Entries
 * are tiny (a name and a build closure) and live for the process.
 */
const Workload *
lookupFuzzWorkload(const std::string &name)
{
    static std::mutex mu;
    static std::deque<Workload> storage;
    static std::unordered_map<std::string, const Workload *> by_name;

    const std::string spec = name.substr(strlen("factory.fuzz:"));
    if (spec.empty())
        return nullptr;
    char *end = nullptr;
    const uint64_t seed = std::strtoull(spec.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return nullptr;

    std::lock_guard<std::mutex> lock(mu);
    auto it = by_name.find(name);
    if (it != by_name.end())
        return it->second;

    const FuzzCase c = drawFuzzCase(seed);
    Result<Workload> w = makeFactoryWorkload(name, c.seed, c.params);
    if (!w.ok())
        return nullptr; // drawFuzzCase only emits valid params
    storage.push_back(std::move(*w));
    by_name.emplace(name, &storage.back());
    return &storage.back();
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = {
        {"go", "099.go", false, buildGo},
        {"m88", "124.m88ksim", false, buildM88ksim},
        {"gcc", "126.gcc", false, buildGcc},
        {"com", "129.compress", false, buildCompress},
        {"li", "130.li", false, buildLi},
        {"ijp", "132.ijpeg", false, buildIjpeg},
        {"per", "134.perl", false, buildPerl},
        {"vor", "147.vortex", false, buildVortex},
        {"tom", "101.tomcatv", true, buildTomcatv},
        {"swm", "102.swim", true, buildSwim},
        {"su2", "103.su2cor", true, buildSu2cor},
        {"hyd", "104.hydro2d", true, buildHydro2d},
        {"mgd", "107.mgrid", true, buildMgrid},
        {"apl", "110.applu", true, buildApplu},
        {"trb", "125.turb3d", true, buildTurb3d},
        {"aps", "141.apsi", true, buildApsi},
        {"fp*", "145.fpppp", true, buildFpppp},
        {"wav", "146.wave5", true, buildWave5},
    };
    return workloads;
}

Result<const Workload *>
lookupWorkload(const std::string &abbrev)
{
    for (const auto &w : allWorkloads())
        if (w.abbrev == abbrev)
            return &w;

    // The factory namespace: shipped presets by name, then dynamic
    // fuzzer cases as "factory.fuzz:SEED" (decimal seed). Both are
    // sweepable anywhere a paper workload is — benches, rarpredd.
    if (abbrev.rfind("factory.", 0) == 0) {
        for (const auto &w : factoryPresetWorkloads())
            if (w.abbrev == abbrev)
                return &w;
        if (abbrev.rfind("factory.fuzz:", 0) == 0)
            if (const Workload *w = lookupFuzzWorkload(abbrev))
                return w;
    }
    return Status::notFound("unknown workload: " + abbrev);
}

const Workload &
findWorkload(const std::string &abbrev)
{
    Result<const Workload *> found = lookupWorkload(abbrev);
    if (!found.ok())
        rarpred_fatal(found.status().message());
    return **found;
}

} // namespace rarpred
