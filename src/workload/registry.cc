#include "workload/workload.hh"

#include "common/logging.hh"

namespace rarpred {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = {
        {"go", "099.go", false, buildGo},
        {"m88", "124.m88ksim", false, buildM88ksim},
        {"gcc", "126.gcc", false, buildGcc},
        {"com", "129.compress", false, buildCompress},
        {"li", "130.li", false, buildLi},
        {"ijp", "132.ijpeg", false, buildIjpeg},
        {"per", "134.perl", false, buildPerl},
        {"vor", "147.vortex", false, buildVortex},
        {"tom", "101.tomcatv", true, buildTomcatv},
        {"swm", "102.swim", true, buildSwim},
        {"su2", "103.su2cor", true, buildSu2cor},
        {"hyd", "104.hydro2d", true, buildHydro2d},
        {"mgd", "107.mgrid", true, buildMgrid},
        {"apl", "110.applu", true, buildApplu},
        {"trb", "125.turb3d", true, buildTurb3d},
        {"aps", "141.apsi", true, buildApsi},
        {"fp*", "145.fpppp", true, buildFpppp},
        {"wav", "146.wave5", true, buildWave5},
    };
    return workloads;
}

Result<const Workload *>
lookupWorkload(const std::string &abbrev)
{
    for (const auto &w : allWorkloads())
        if (w.abbrev == abbrev)
            return &w;
    return Status::notFound("unknown workload: " + abbrev);
}

const Workload &
findWorkload(const std::string &abbrev)
{
    Result<const Workload *> found = lookupWorkload(abbrev);
    if (!found.ok())
        rarpred_fatal(found.status().message());
    return **found;
}

} // namespace rarpred
