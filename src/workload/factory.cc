#include "workload/factory.hh"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workload/kernels.hh"

namespace rarpred {

namespace {

// Kernel scratch registers (same convention as kernels.cc; the main
// driver owns r1..r7).
constexpr RegId t0 = 8;
constexpr RegId t1 = 9;
constexpr RegId t2 = 10;
constexpr RegId t3 = 11;
constexpr RegId t4 = 12;
constexpr RegId t5 = 13;
constexpr RegId t6 = 14;
constexpr RegId t7 = 15;
constexpr RegId t8 = 16;
constexpr RegId t9 = 17;
constexpr RegId t10 = 18;
constexpr RegId t11 = 19;
constexpr RegId t12 = 20;
constexpr RegId s0 = 22;
constexpr RegId s1 = 23;
constexpr RegId s2 = 24;
constexpr RegId f0 = reg::fpReg(0);
constexpr RegId f1 = reg::fpReg(1);
constexpr RegId f2 = reg::fpReg(2);
constexpr RegId f3 = reg::fpReg(3);
constexpr RegId f4 = reg::fpReg(4);

// Plan-word layout. Pool byte offsets top out at workingSetWords *
// 8 <= 2^21, comfortably inside the mask.
constexpr uint64_t kOffsetMask = 0xFFFFFF;
constexpr unsigned kStoreBit = 24;
constexpr unsigned kShareBit = 25;
constexpr unsigned kBranchBit = 26;

constexpr uint64_t kMaxWorkingSetWords = 1ull << 18;
constexpr uint64_t kMaxPlanEntries = 1ull << 16;
constexpr uint64_t kMaxAccessesPerCall = 1ull << 14;
constexpr uint64_t kMaxOuterIters = 1ull << 22;
constexpr uint32_t kMaxDepChain = 32;
constexpr uint32_t kMaxChaseDepth = 4096;

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

uint64_t
foldIn(uint64_t h, uint64_t v)
{
    return mix64(h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
}

uint64_t
doubleBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

/** Smallest stride >= 7 coprime to @p n, so the walk visits all of n. */
uint64_t
strideFor(uint64_t n)
{
    for (uint64_t k = 7;; ++k)
        if (std::gcd(k, n) == 1)
            return k;
}

/** The baked word-index sequence for one plan, per pick strategy. */
std::vector<uint64_t>
planIndices(Rng &rng, const FactoryParams &p)
{
    const uint64_t ws = p.workingSetWords;
    std::vector<uint64_t> idx(p.planEntries);
    switch (p.addrPick) {
      case AddressPick::Sequential:
        for (uint64_t i = 0; i < p.planEntries; ++i)
            idx[i] = i % ws;
        break;
      case AddressPick::Strided: {
        const uint64_t stride = strideFor(ws);
        for (uint64_t i = 0; i < p.planEntries; ++i)
            idx[i] = (i * stride) % ws;
        break;
      }
      case AddressPick::Shuffled: {
        std::vector<uint64_t> perm(ws);
        std::iota(perm.begin(), perm.end(), 0);
        for (uint64_t i = ws - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.below(i + 1)]);
        for (uint64_t i = 0; i < p.planEntries; ++i)
            idx[i] = perm[i % ws];
        break;
      }
      case AddressPick::Pooled: {
        const uint64_t hot_count = std::max<uint64_t>(4, ws / 16);
        std::vector<uint64_t> hot(hot_count);
        for (auto &h : hot)
            h = rng.below(ws);
        for (uint64_t i = 0; i < p.planEntries; ++i)
            idx[i] = rng.chance(0.75) ? hot[rng.below(hot_count)]
                                      : rng.below(ws);
        break;
      }
    }
    return idx;
}

/**
 * The factory's core kernel: walk the baked plan, one pool access
 * (plus optional intervention store, optional second-site re-read,
 * and a data-dependent branch) per entry. Integer flavour.
 */
void
emitCoreInt(ProgramBuilder &b, const std::string &name,
            const FactoryParams &p, uint64_t plan_addr,
            uint64_t pool_addr, uint64_t cursor_addr, uint64_t sum_addr)
{
    b.label(name);
    b.li(s0, (int64_t)plan_addr);
    b.li(s1, (int64_t)pool_addr);
    b.li(s2, (int64_t)p.planEntries);
    b.li(t0, (int64_t)cursor_addr);
    b.lw(t1, t0, 0); // plan cursor
    b.li(t2, (int64_t)p.accessesPerCall);
    b.mov(t3, reg::kZero); // register accumulator

    b.label(name + "_loop");
    b.beq(t2, reg::kZero, name + "_done");
    b.slli(t4, t1, 3);
    b.add(t4, s0, t4);
    b.lw(t5, t4, 0); // plan word
    b.andi(t6, t5, (int64_t)kOffsetMask);
    b.add(t6, s1, t6);
    b.lw(t7, t6, 0); // site A: the knob-driven pool access
    for (uint32_t k = 0; k < p.depChainLength; ++k) {
        if (k % 2 == 0)
            b.addi(t7, t7, (int64_t)k + 1);
        else
            b.xor_(t7, t7, t5);
    }
    b.add(t3, t3, t7);

    b.srli(t8, t5, kStoreBit);
    b.andi(t8, t8, 1);
    b.beq(t8, reg::kZero, name + "_nostore");
    b.addi(t9, t7, 3);
    b.sw(t6, 0, t9); // intervention: the re-read becomes RAW
    b.label(name + "_nostore");

    b.srli(t8, t5, kShareBit);
    b.andi(t8, t8, 1);
    b.beq(t8, reg::kZero, name + "_noshare");
    b.lw(t10, t6, 0); // site B: the RAR sink
    b.add(t3, t3, t10);
    b.label(name + "_noshare");

    b.srli(t8, t5, kBranchBit);
    b.andi(t8, t8, 1);
    b.beq(t8, reg::kZero, name + "_nottaken");
    b.xor_(t3, t3, t5);
    b.label(name + "_nottaken");

    b.addi(t1, t1, 1);
    b.blt(t1, s2, name + "_nowrap");
    b.mov(t1, reg::kZero);
    b.label(name + "_nowrap");
    b.addi(t2, t2, -1);
    b.jump(name + "_loop");

    b.label(name + "_done");
    b.sw(t0, 0, t1); // persist the cursor
    b.li(t11, (int64_t)sum_addr);
    b.lw(t12, t11, 0);
    b.add(t12, t12, t3);
    b.sw(t11, 0, t12);
    b.ret();
}

/**
 * Floating-point flavour of the core kernel: the pool holds doubles,
 * the dependence chain is faddd/fmuld (decaying constants keep values
 * bounded), control still keys off the integer plan bits.
 */
void
emitCoreFp(ProgramBuilder &b, const std::string &name,
           const FactoryParams &p, uint64_t plan_addr,
           uint64_t pool_addr, uint64_t cursor_addr, uint64_t sum_addr,
           uint64_t const_addr)
{
    b.label(name);
    b.li(s0, (int64_t)plan_addr);
    b.li(s1, (int64_t)pool_addr);
    b.li(s2, (int64_t)p.planEntries);
    b.li(t0, (int64_t)cursor_addr);
    b.lw(t1, t0, 0);
    b.li(t2, (int64_t)p.accessesPerCall);
    b.li(t9, (int64_t)const_addr);
    b.lf(f1, t9, 0);  // decay multiplier
    b.lf(f2, t9, 8);  // additive step
    b.li(t11, (int64_t)sum_addr);
    b.lf(f4, t11, 0); // fp accumulator

    b.label(name + "_loop");
    b.beq(t2, reg::kZero, name + "_done");
    b.slli(t4, t1, 3);
    b.add(t4, s0, t4);
    b.lw(t5, t4, 0);
    b.andi(t6, t5, (int64_t)kOffsetMask);
    b.add(t6, s1, t6);
    b.lf(f0, t6, 0); // site A
    for (uint32_t k = 0; k < p.depChainLength; ++k) {
        if (k % 2 == 0)
            b.fmuld(f0, f0, f1);
        else
            b.faddd(f0, f0, f2);
    }
    b.faddd(f4, f4, f0);

    b.srli(t8, t5, kStoreBit);
    b.andi(t8, t8, 1);
    b.beq(t8, reg::kZero, name + "_nostore");
    b.faddd(f3, f0, f2);
    b.sf(t6, 0, f3);
    b.label(name + "_nostore");

    b.srli(t8, t5, kShareBit);
    b.andi(t8, t8, 1);
    b.beq(t8, reg::kZero, name + "_noshare");
    b.lf(f3, t6, 0); // site B: the RAR sink
    b.faddd(f4, f4, f3);
    b.label(name + "_noshare");

    b.srli(t8, t5, kBranchBit);
    b.andi(t8, t8, 1);
    b.beq(t8, reg::kZero, name + "_nottaken");
    b.fmuld(f4, f4, f1);
    b.label(name + "_nottaken");

    b.addi(t1, t1, 1);
    b.blt(t1, s2, name + "_nowrap");
    b.mov(t1, reg::kZero);
    b.label(name + "_nowrap");
    b.addi(t2, t2, -1);
    b.jump(name + "_loop");

    b.label(name + "_done");
    b.sw(t0, 0, t1);
    b.sf(t11, 0, f4);
    b.ret();
}

} // namespace

const char *
addressPickName(AddressPick pick)
{
    switch (pick) {
      case AddressPick::Sequential:
        return "sequential";
      case AddressPick::Strided:
        return "strided";
      case AddressPick::Shuffled:
        return "shuffled";
      case AddressPick::Pooled:
        return "pooled";
    }
    return "unknown";
}

Result<AddressPick>
parseAddressPick(const std::string &name)
{
    for (AddressPick pick :
         {AddressPick::Sequential, AddressPick::Strided,
          AddressPick::Shuffled, AddressPick::Pooled})
        if (name == addressPickName(pick))
            return pick;
    return Status::invalidArgument("unknown address-pick strategy: " +
                                   name);
}

Status
FactoryParams::validate() const
{
    auto frac = [](double v) { return v >= 0.0 && v <= 1.0; };
    if (!frac(rarSharing))
        return Status::invalidArgument("rarSharing must be in [0, 1]");
    if (!frac(storeIntervention))
        return Status::invalidArgument(
            "storeIntervention must be in [0, 1]");
    if (!frac(branchEntropy))
        return Status::invalidArgument(
            "branchEntropy must be in [0, 1]");
    if (workingSetWords < 8 || workingSetWords > kMaxWorkingSetWords)
        return Status::invalidArgument(
            "workingSetWords must be in [8, 2^18]");
    if (planEntries < 16 || planEntries > kMaxPlanEntries)
        return Status::invalidArgument(
            "planEntries must be in [16, 2^16]");
    if (accessesPerCall < 1 || accessesPerCall > kMaxAccessesPerCall)
        return Status::invalidArgument(
            "accessesPerCall must be in [1, 2^14]");
    if (outerIters < 1 || outerIters > kMaxOuterIters)
        return Status::invalidArgument(
            "outerIters must be in [1, 2^22]");
    if (depChainLength > kMaxDepChain)
        return Status::invalidArgument("depChainLength must be <= 32");
    if (chaseDepth > kMaxChaseDepth)
        return Status::invalidArgument("chaseDepth must be <= 4096");
    if (addrPick > AddressPick::Pooled)
        return Status::invalidArgument("invalid addrPick");
    return Status{};
}

uint64_t
FactoryParams::fingerprint() const
{
    uint64_t h = 0xfac707f1ull;
    h = foldIn(h, doubleBits(rarSharing));
    h = foldIn(h, doubleBits(storeIntervention));
    h = foldIn(h, chaseDepth);
    h = foldIn(h, workingSetWords);
    h = foldIn(h, doubleBits(branchEntropy));
    h = foldIn(h, depChainLength);
    h = foldIn(h, (uint64_t)addrPick);
    h = foldIn(h, planEntries);
    h = foldIn(h, accessesPerCall);
    h = foldIn(h, outerIters);
    h = foldIn(h, fpData ? 1 : 0);
    return h;
}

Program
buildFactoryProgram(const std::string &name, uint64_t seed,
                    const FactoryParams &p, uint32_t scale)
{
    const Status valid = p.validate();
    if (!valid.ok())
        rarpred_fatal("buildFactoryProgram(" + name +
                      "): " + valid.message());

    // Every random draw below comes from this generator, and the
    // stream position of each draw is a pure function of the params —
    // (seed, params) -> byte-identical program.
    Rng rng(mix64(seed ^ p.fingerprint()));

    const uint64_t data_words = p.workingSetWords + p.planEntries +
                                (uint64_t)p.chaseDepth * 4 + 16;
    const uint64_t need = 0x1000 + data_words * 8 + 0x40000;
    const uint64_t mem_bytes =
        std::max<uint64_t>(16ull << 20, (need + 0xFFFF) & ~0xFFFFull);
    ProgramBuilder b(name, mem_bytes);

    // --- Data: pool, baked plan, globals --------------------------
    const uint64_t pool = b.allocWords(p.workingSetWords);
    for (uint64_t i = 0; i < p.workingSetWords; ++i) {
        if (p.fpData)
            b.initWordF(pool + i * 8, rng.uniform());
        else
            b.initWord(pool + i * 8, rng.below(1ull << 20));
    }

    const std::vector<uint64_t> idx = planIndices(rng, p);
    std::vector<uint64_t> plan(p.planEntries);
    for (uint64_t i = 0; i < p.planEntries; ++i) {
        uint64_t word = (idx[i] * 8) & kOffsetMask;
        if (rng.chance(p.storeIntervention))
            word |= 1ull << kStoreBit;
        if (rng.chance(p.rarSharing))
            word |= 1ull << kShareBit;
        if (rng.chance(p.branchEntropy / 2.0))
            word |= 1ull << kBranchBit;
        plan[i] = word;
    }
    const uint64_t plan_addr =
        kernels::allocStream(b, plan.size(), plan);

    const uint64_t cursor = kernels::allocGlobal(b);
    const uint64_t sum = kernels::allocGlobal(b);
    uint64_t fp_consts = 0;
    if (p.fpData) {
        fp_consts = b.allocWords(2);
        b.initWordF(fp_consts, 0.999755859375); // decay multiplier
        b.initWordF(fp_consts + 8, 0.03125);    // additive step
    }

    uint64_t chase_head = 0, chase_sum = 0, chase_count = 0;
    int64_t chase_key = 0;
    if (p.chaseDepth > 0) {
        chase_head = kernels::allocList(
            b, rng, p.chaseDepth,
            /*shuffled=*/p.addrPick != AddressPick::Sequential);
        chase_sum = kernels::allocGlobal(b);
        chase_count = kernels::allocGlobal(b);
        chase_key = (int64_t)rng.below(64);
    }

    // --- Code: main first (PC 0), then the kernels ----------------
    std::vector<std::string> entries = {"core"};
    if (p.chaseDepth > 0)
        entries.push_back("chase");
    kernels::emitMain(b, entries, p.outerIters * (uint64_t)scale);

    if (p.fpData)
        emitCoreFp(b, "core", p, plan_addr, pool, cursor, sum,
                   fp_consts);
    else
        emitCoreInt(b, "core", p, plan_addr, pool, cursor, sum);

    if (p.chaseDepth > 0)
        kernels::emitListWalk(b, "chase",
                              {chase_head, chase_sum, chase_count,
                               chase_key,
                               /*twoSiteFoo=*/p.rarSharing >= 0.5});

    return b.build();
}

Result<Workload>
makeFactoryWorkload(const std::string &abbrev, uint64_t seed,
                    const FactoryParams &params)
{
    const Status valid = params.validate();
    if (!valid.ok())
        return valid;
    Workload w;
    w.abbrev = abbrev;
    w.fullName = "factory(" + abbrev + ")";
    w.isFp = params.fpData;
    w.build = [abbrev, seed, params](uint32_t scale) {
        return buildFactoryProgram(abbrev, seed, params, scale);
    };
    return w;
}

const std::vector<FactoryPreset> &
factoryPresets()
{
    static const std::vector<FactoryPreset> presets = [] {
        std::vector<FactoryPreset> out;

        FactoryPreset rar_heavy{
            "factory.rar_heavy",
            "dense read sharing, almost no interventions", 101, {}};
        rar_heavy.params.rarSharing = 0.9;
        rar_heavy.params.storeIntervention = 0.02;
        rar_heavy.params.workingSetWords = 128;
        rar_heavy.params.branchEntropy = 0.2;
        rar_heavy.params.addrPick = AddressPick::Pooled;
        out.push_back(rar_heavy);

        FactoryPreset raw_heavy{
            "factory.raw_heavy",
            "store-dominated short-distance RAW communication", 102,
            {}};
        raw_heavy.params.rarSharing = 0.1;
        raw_heavy.params.storeIntervention = 0.6;
        raw_heavy.params.workingSetWords = 64;
        raw_heavy.params.branchEntropy = 0.3;
        raw_heavy.params.depChainLength = 3;
        raw_heavy.params.addrPick = AddressPick::Sequential;
        out.push_back(raw_heavy);

        FactoryPreset chase_deep{
            "factory.chase_deep",
            "deep shuffled pointer chase beside the core", 103, {}};
        chase_deep.params.chaseDepth = 512;
        chase_deep.params.rarSharing = 0.4;
        chase_deep.params.storeIntervention = 0.05;
        chase_deep.params.workingSetWords = 1024;
        chase_deep.params.addrPick = AddressPick::Shuffled;
        out.push_back(chase_deep);

        FactoryPreset stream_cold{
            "factory.stream_cold",
            "streaming working set far beyond the DDT", 104, {}};
        stream_cold.params.rarSharing = 0.05;
        stream_cold.params.storeIntervention = 0.05;
        stream_cold.params.workingSetWords = 65536;
        stream_cold.params.branchEntropy = 0.1;
        stream_cold.params.planEntries = 4096;
        stream_cold.params.addrPick = AddressPick::Sequential;
        out.push_back(stream_cold);

        FactoryPreset branchy{
            "factory.branchy",
            "maximum-entropy data-dependent branching", 105, {}};
        branchy.params.rarSharing = 0.5;
        branchy.params.storeIntervention = 0.2;
        branchy.params.branchEntropy = 1.0;
        branchy.params.addrPick = AddressPick::Pooled;
        out.push_back(branchy);

        FactoryPreset fp_shared{
            "factory.fp_shared",
            "fp globals re-read Fortran-style (RAR-dominated)", 106,
            {}};
        fp_shared.params.fpData = true;
        fp_shared.params.rarSharing = 0.85;
        fp_shared.params.storeIntervention = 0.03;
        fp_shared.params.workingSetWords = 256;
        fp_shared.params.addrPick = AddressPick::Strided;
        out.push_back(fp_shared);

        return out;
    }();
    return presets;
}

const std::vector<Workload> &
factoryPresetWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> out;
        for (const FactoryPreset &preset : factoryPresets()) {
            Result<Workload> w = makeFactoryWorkload(
                preset.name, preset.seed, preset.params);
            if (!w.ok())
                rarpred_fatal("invalid factory preset " +
                              std::string(preset.name) + ": " +
                              w.status().message());
            out.push_back(std::move(*w));
        }
        return out;
    }();
    return workloads;
}

} // namespace rarpred
