/**
 * @file
 * WorkloadFactory: parameterized synthetic-kernel generation.
 *
 * The 18 hand-written programs of spec_int.cc/spec_fp.cc each pin one
 * point in dependence-character space. The factory turns that space
 * into axes: a FactoryParams struct of knobs — RAR-sharing degree,
 * store-intervention rate, pointer-chase depth, working-set size,
 * branch entropy, dependence-chain length, and address-pick strategy —
 * and a builder that emits, for any (seed, params), a deterministic
 * MicroISA program over ProgramBuilder and the kernels.hh library.
 * All randomness is drawn at *generation* time from a seeded Rng and
 * baked into the program's data segment (an access "plan" stream), so
 * the same (seed, params) yields a byte-identical program and trace
 * on every host and run.
 *
 * The generated core kernel walks the plan: per entry it loads a
 * packed plan word, loads the chosen pool word (site A), runs a
 * dependent ALU chain, optionally stores back to the same word
 * (store intervention: converts the later re-read's dependence from
 * RAR to RAW), optionally re-reads the word from a second static PC
 * (site B — the RAR sink), and takes a data-dependent branch. The
 * knobs therefore map directly onto measurable trace properties:
 * detected-RAR fraction rises with rarSharing, store fraction with
 * storeIntervention, conditional-branch taken-entropy with
 * branchEntropy, and dependence visibility falls as workingSetWords
 * outgrows the DDT.
 *
 * Factory presets (factoryPresetWorkloads()) are resolvable through
 * lookupWorkload() by their "factory.*" names, so every sweep bench
 * and the rarpredd service can run them like the 18 paper workloads;
 * the random-program fuzzer built on top lives in workload/fuzz.hh.
 */

#ifndef RARPRED_WORKLOAD_FACTORY_HH_
#define RARPRED_WORKLOAD_FACTORY_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "workload/workload.hh"

namespace rarpred {

/** How the factory picks pool addresses for the access plan. */
enum class AddressPick : uint8_t
{
    Sequential, ///< 0, 1, 2, ... (streaming; reuse distance = set size)
    Strided,    ///< i * stride mod set size (stride coprime to size)
    Shuffled,   ///< a fixed random permutation, repeated
    Pooled,     ///< skewed random: hot subset with 75% probability
};

/** @return lower-case knob-file name of @p pick ("sequential", ...). */
const char *addressPickName(AddressPick pick);

/** @return the AddressPick named by @p name, or InvalidArgument. */
Result<AddressPick> parseAddressPick(const std::string &name);

/**
 * The factory's knob set. Every field participates in fingerprint(),
 * so distinct settings never alias a cached trace.
 */
struct FactoryParams
{
    /** Probability an access is re-read from a second static PC —
     *  the paper's RAR data-sharing degree. [0, 1]. */
    double rarSharing = 0.5;

    /** Probability a store to the accessed word lands between the
     *  first read and the re-read, converting the re-read's
     *  dependence from RAR to RAW. [0, 1]. */
    double storeIntervention = 0.1;

    /** Nodes in an optional linked-list pointer-chase kernel run
     *  alongside the core each outer iteration; 0 disables it. */
    uint32_t chaseDepth = 0;

    /** Shared pool size in 8-byte words. Reuse distance scales with
     *  this; past the DDT size dependences become invisible. */
    uint64_t workingSetWords = 256;

    /** Entropy of the plan's data-dependent branch: taken probability
     *  is branchEntropy / 2, so 0 = perfectly biased and 1 = a fair
     *  coin (maximum-entropy, predictor-hostile). [0, 1]. */
    double branchEntropy = 0.5;

    /** Dependent ALU ops between an access and its use. */
    uint32_t depChainLength = 2;

    /** Address-pick strategy for the access plan. */
    AddressPick addrPick = AddressPick::Pooled;

    /** Length of the baked access plan (entries; the kernel wraps). */
    uint64_t planEntries = 512;

    /** Plan entries consumed per kernel invocation. */
    uint64_t accessesPerCall = 64;

    /** Outer loop iterations at scale 1 (multiplied by scale). */
    uint64_t outerIters = 400;

    /** Generate fp data and fp arithmetic (lf/sf/faddd/fmuld) in the
     *  core kernel instead of integer. Drives Workload::isFp. */
    bool fpData = false;

    /** @return non-OK with the first violated bound, else OK. */
    Status validate() const;

    /** Stable 64-bit content hash over every knob. */
    uint64_t fingerprint() const;
};

/**
 * Emit the program for (seed, params) at @p scale. @p name becomes
 * the Program name. Fails fatally on invalid params — validate()
 * first (or build through makeFactoryWorkload(), which does).
 */
Program buildFactoryProgram(const std::string &name, uint64_t seed,
                            const FactoryParams &params,
                            uint32_t scale = 1);

/**
 * Wrap (seed, params) as a Workload sweepable like the 18 paper
 * programs. @p abbrev must be unique among everything a TraceCache
 * will see — it is the cache key.
 * @return the workload, or InvalidArgument for out-of-range params.
 */
Result<Workload> makeFactoryWorkload(const std::string &abbrev,
                                     uint64_t seed,
                                     const FactoryParams &params);

/** One named factory configuration shipped with the repo. */
struct FactoryPreset
{
    const char *name; ///< "factory.rar_heavy", ...
    const char *what; ///< one-line description
    uint64_t seed;
    FactoryParams params;
};

/** The ~6 shipped presets (golden-baselined in tests/golden/). */
const std::vector<FactoryPreset> &factoryPresets();

/**
 * The presets as ready-made Workloads (same order as
 * factoryPresets()). Static storage: pointers into this vector stay
 * valid for the process lifetime, as lookupWorkload() requires.
 */
const std::vector<Workload> &factoryPresetWorkloads();

} // namespace rarpred

#endif // RARPRED_WORKLOAD_FACTORY_HH_
