/**
 * @file
 * Random-program fuzzer over the WorkloadFactory.
 *
 * A FuzzCase is a seed plus randomly drawn FactoryParams. Checking a
 * case proves, end to end, the properties the rest of the repo
 * assumes about every generated program:
 *
 *  1. determinism — two independent builds of (seed, params) record
 *     byte-identical traces;
 *  2. speculation safety — the safety oracle (faultinject/
 *     safety_oracle.hh) passes fault-free AND with bit flips raining
 *     on the predictor state;
 *  3. driver equivalence — a serial CloakingEngine replay and a
 *     multi-worker runSweep() cell produce byte-identical stats.
 *
 * A failing case is shrunk by minimizeFuzzCase() — halving the
 * working set, plan, chain, chase, iteration count and instruction
 * budget while the failure persists — and the minimized reproducer is
 * written as a key=value .case file. Checked-in reproducers live in
 * tests/corpus/ and are replayed by tier-1 (tests/test_factory.cc);
 * the nightly factory-fuzz CI job draws fresh seeds from the date.
 */

#ifndef RARPRED_WORKLOAD_FUZZ_HH_
#define RARPRED_WORKLOAD_FUZZ_HH_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hh"
#include "workload/factory.hh"

namespace rarpred {

/** One fuzzer input: everything needed to regenerate a program. */
struct FuzzCase
{
    uint64_t seed = 1;         ///< factory generation seed
    uint64_t maxInsts = 60000; ///< trace/oracle instruction budget
    FactoryParams params;
};

/** Draw a random (but always valid) case from @p seed. */
FuzzCase drawFuzzCase(uint64_t seed);

/**
 * Unique workload name for @p c — doubles as the TraceCache key, so
 * it folds in the parameter fingerprint: every minimization step gets
 * its own trace.
 */
std::string fuzzCaseName(const FuzzCase &c);

/** Outcome of checking one case. */
struct FuzzVerdict
{
    bool passed = false;
    std::string failure;       ///< which property broke, and how
    uint64_t instructions = 0; ///< committed instructions checked
};

/** Run the full determinism + oracle + sweep-equivalence battery. */
FuzzVerdict checkFuzzCase(const FuzzCase &c);

/**
 * Greedily shrink @p failing while @p still_fails holds. Production
 * callers pass a checkFuzzCase() wrapper; tests substitute synthetic
 * predicates. @p shrinks (optional) counts accepted reductions.
 * @return the smallest failing case found.
 */
FuzzCase minimizeFuzzCase(
    const FuzzCase &failing,
    const std::function<bool(const FuzzCase &)> &still_fails,
    unsigned *shrinks = nullptr);

/** Serialize @p c as the key=value .case format (round-trips). */
std::string formatFuzzCase(const FuzzCase &c);

/** Parse the .case format; unknown keys and bad values are errors. */
Result<FuzzCase> parseFuzzCase(const std::string &text);

} // namespace rarpred

#endif // RARPRED_WORKLOAD_FUZZ_HH_
