/**
 * @file
 * Kernel library for the synthetic SPEC'95-like workloads.
 *
 * Each kernel emits one callable MicroISA function into a
 * ProgramBuilder, plus helpers that allocate and initialize the data
 * it operates on. The 18 synthetic benchmarks (spec_int.cc,
 * spec_fp.cc) compose these kernels with per-benchmark parameters to
 * reproduce the dependence character the paper reports for the
 * corresponding SPEC'95 program: RAW-communication-heavy integer
 * codes, RAR/data-sharing-heavy Fortran codes, and everything in
 * between.
 *
 * Register convention:
 *  - r1..r7   belong to the main driver (kernels must not touch them)
 *  - r8..r27, r30 and f0..f27 are kernel scratch
 *  - r28 (gp), r29 (sp), r31 (ra) have their usual roles
 *  - kernels that make calls save ra on the stack
 *
 * Every kernel takes a unique @p name used as its entry label and as
 * the prefix for its internal labels, so multiple instances can live
 * in one program.
 */

#ifndef RARPRED_WORKLOAD_KERNELS_HH_
#define RARPRED_WORKLOAD_KERNELS_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "isa/program_builder.hh"

namespace rarpred::kernels {

// ---------------------------------------------------------------------
// Data builders
// ---------------------------------------------------------------------

/**
 * Allocate and link a list of 4-word nodes {data, key, pad, next}.
 * @param shuffled Link nodes in a pseudo-random order (pointer chasing
 *        with poor spatial locality) instead of sequentially.
 * @return byte address of a one-word cell holding the head pointer.
 */
uint64_t allocList(ProgramBuilder &b, Rng &rng, size_t num_nodes,
                   bool shuffled);

/**
 * Allocate a chained hash table: @p num_buckets bucket-head words
 * followed by a pool of 3-word nodes {key, value, next} holding
 * @p num_keys keys 0..num_keys-1.
 * @return byte address of bucket 0.
 */
uint64_t allocHashTable(ProgramBuilder &b, Rng &rng, size_t num_buckets,
                        size_t num_keys);

/**
 * Allocate a stream of words drawn by @p pick.
 * @return byte address of the first word.
 */
uint64_t allocStream(ProgramBuilder &b, size_t length,
                     const std::vector<uint64_t> &values);

/**
 * Allocate a balanced binary search tree over keys 1..num_nodes as
 * 4-word nodes {key, left, right, value} (left/right are byte
 * addresses, 0 = null).
 * @return byte address of the root node.
 */
uint64_t allocTree(ProgramBuilder &b, Rng &rng, size_t num_nodes);

/** Allocate an array of @p words integer words initialized by rng. */
uint64_t allocIntArray(ProgramBuilder &b, Rng &rng, size_t words,
                       uint64_t max_value);

/** Allocate an array of @p words doubles in (0, 1). */
uint64_t allocFpArray(ProgramBuilder &b, Rng &rng, size_t words);

/** Allocate a single zero-initialized global word. */
uint64_t allocGlobal(ProgramBuilder &b, uint64_t initial = 0);

/**
 * Generate a reference stream with a hot set: each element is drawn
 * from @p hot_count "hot" values with probability @p hot_frac, and
 * uniformly from [0, universe) otherwise. Models the skewed reuse
 * (popular symbols, hot records, repeated queries) that gives real
 * programs their dependence locality.
 */
std::vector<uint64_t> mixedStream(Rng &rng, size_t length,
                                  uint64_t universe, uint64_t hot_count,
                                  double hot_frac);

// ---------------------------------------------------------------------
// Integer kernels
// ---------------------------------------------------------------------

/**
 * The paper's Figure 3(c) motivating pattern: walk a linked list and
 * read each node's fields from two distinct code sites ("foo" reads
 * node->data into a memory-resident accumulator, "bar" re-reads
 * node->data and node->key for a comparison). Produces dense RAR
 * dependences between the foo and bar loads and short-distance RAW
 * dependences through the accumulator.
 */
struct ListWalkParams
{
    uint64_t headPtrAddr; ///< from allocList()
    uint64_t sumAddr;     ///< global accumulator cell
    uint64_t countAddr;   ///< global match-count cell
    int64_t matchKey;     ///< key "bar" compares against
    /**
     * Read node->data in "foo" from one of two static sites selected
     * by the node key's parity. The later "bar" re-read then has a
     * per-node-varying RAR source, giving the dependence stream the
     * moderate (rather than perfect) locality real codes show.
     */
    bool twoSiteFoo = false;
};
void emitListWalk(ProgramBuilder &b, const std::string &name,
                  const ListWalkParams &p);

/**
 * Fully-unrolled walk of a small, hot linked structure — the code
 * shape produced by the paper's compiler flags (-O2 -funroll-loops
 * -finline-functions) on hot evaluator/IR loops. Every node position
 * gets its own static load sites for data/key/next, so each site
 * re-reads the same location every call: the dependence working set
 * per PC is 1 and RAR cloaking can collapse the whole pointer chain.
 */
struct ListWalkUnrolledParams
{
    uint64_t headPtrAddr; ///< from allocList(); list length >= depth
    size_t depth;         ///< node positions to unroll (4..24)
    uint64_t sumAddr;     ///< global accumulator cell
};
void emitListWalkUnrolled(ProgramBuilder &b, const std::string &name,
                          const ListWalkUnrolledParams &p);

/**
 * Hash-table probe loop: reads keys from a stream (cursor kept in
 * memory), hashes, walks the bucket chain comparing keys, and bumps
 * the matched node's value (load+store). Repeated keys revisit nodes,
 * creating RAR dependences across calls; the value update creates
 * store->load RAW pairs on later visits.
 */
struct HashProbeParams
{
    uint64_t tableAddr;    ///< from allocHashTable()
    size_t numBuckets;     ///< power of two
    uint64_t streamAddr;   ///< key stream (allocStream)
    size_t streamLen;
    uint64_t cursorAddr;   ///< global stream cursor cell
    size_t probesPerCall;  ///< keys processed per invocation
    bool updateValues;     ///< store to matched nodes
};
void emitHashProbe(ProgramBuilder &b, const std::string &name,
                   const HashProbeParams &p);

/**
 * Call-heavy computation: an outer function that spills/restores
 * registers and its return address on the stack and calls a leaf
 * helper per element. Exercises the short-distance stack RAW
 * communication that dominates integer codes.
 */
struct CallChainParams
{
    uint64_t arrayAddr; ///< input words
    size_t arrayLen;
    uint64_t accAddr;   ///< global accumulator cell
    size_t elemsPerCall;
    uint64_t cursorAddr;
};
void emitCallChain(ProgramBuilder &b, const std::string &name,
                   const CallChainParams &p);

/**
 * Binary-search-tree lookups from a query stream. Popular repeated
 * queries revisit the same nodes: the key/left/right loads experience
 * RAR dependences with their own previous executions and with each
 * other across the search path.
 */
struct TreeSearchParams
{
    uint64_t rootAddr;
    uint64_t streamAddr; ///< query keys
    size_t streamLen;
    uint64_t cursorAddr;
    uint64_t foundAddr;  ///< global hit-count cell
    size_t queriesPerCall;
};
void emitTreeSearch(ProgramBuilder &b, const std::string &name,
                    const TreeSearchParams &p);

/**
 * Data-dependent-branchy integer array sweep with memory-resident
 * accumulators. extraAlu inserts a dependent ALU chain per element to
 * thin out the memory-instruction fraction (ijpeg-like codes).
 */
struct IntSweepParams
{
    uint64_t arrayAddr;
    size_t arrayLen;
    uint64_t sumAddr;
    uint64_t cntAddr;
    unsigned extraAlu;   ///< dependent ALU ops per element
    uint64_t threshold;  ///< branch-biasing compare value
    /** Store the transformed element back (in-place transform). */
    bool writeBack = false;
};
void emitIntSweep(ProgramBuilder &b, const std::string &name,
                  const IntSweepParams &p);

/**
 * m88ksim-like interpreter dispatch: fetch an opcode from a stream,
 * index a small handler-latency table (heavily re-read -> RAR), then
 * read-modify-write a simulated register file entry (RAW).
 */
struct DispatchParams
{
    uint64_t opStreamAddr;
    size_t opStreamLen;
    uint64_t opTableAddr;  ///< numOps words, re-read constantly
    size_t numOps;         ///< power of two
    uint64_t simRegsAddr;  ///< 32 words
    uint64_t cursorAddr;
    uint64_t cycleAddr;    ///< global cycle counter cell
    size_t opsPerCall;
};
void emitDispatch(ProgramBuilder &b, const std::string &name,
                  const DispatchParams &p);

/**
 * Record read-modify-write over an index stream (vortex-like): loads
 * two fields of a record, combines, stores both back. Store-heavy;
 * revisits create RAW pairs on record fields.
 */
struct RecordUpdateParams
{
    uint64_t recordsAddr; ///< records of 4 words each
    size_t numRecords;
    uint64_t streamAddr;  ///< record index stream
    size_t streamLen;
    uint64_t cursorAddr;
    size_t updatesPerCall;
};
void emitRecordUpdate(ProgramBuilder &b, const std::string &name,
                      const RecordUpdateParams &p);

/**
 * Read-only sweep over a block of integer globals from unrolled
 * static sites (option flags, read-only tables such as ijpeg's
 * quantization matrices). The values never change, so every load is
 * a perfectly predictable RAR consumer — the integer-side data
 * sharing that RAR cloaking covers.
 */
struct GlobalsReadParams
{
    uint64_t globalsAddr; ///< numGlobals consecutive words
    size_t numGlobals;    ///< >= 4
    size_t repeatsPerCall;
    uint64_t sinkAddr;    ///< global RMW'd once per call with the sum
};
void emitGlobalsRead(ProgramBuilder &b, const std::string &name,
                     const GlobalsReadParams &p);

/**
 * Dense read-modify-write of a handful of global counters (the
 * in_count/out_count/checkpoint globals of compress, go's position
 * statistics): per round each listed global is loaded, bumped and
 * stored — the shortest-distance RAW communication in the suite.
 */
struct GlobalsRmwParams
{
    uint64_t globalsAddr; ///< numGlobals consecutive words
    size_t numGlobals;    ///< 2..8
    size_t roundsPerCall;
    /** Dependent ALU ops between the load and the store of each
     *  global (compiler-generated update expressions). Deepens the
     *  serial memory-carried chain cloaking can attack. */
    unsigned chainAlu = 0;
};
void emitGlobalsRmw(ProgramBuilder &b, const std::string &name,
                    const GlobalsRmwParams &p);

/**
 * Store-only initialization sweep (vortex-like object creation /
 * buffer zeroing): writes a data-derived value to consecutive words.
 * The densest source of stores in the suite (~1 store per 4 insts).
 */
struct FillParams
{
    uint64_t dstAddr;
    size_t words;
    uint64_t seedAddr; ///< global word loaded once per call
};
void emitFill(ProgramBuilder &b, const std::string &name,
              const FillParams &p);

/**
 * Word-wise copy with a transform (compress/perl string motion):
 * load src[i], shift/mask, store dst[i].
 */
struct CopyTransformParams
{
    uint64_t srcAddr;
    uint64_t dstAddr;
    size_t words;
};
void emitCopyTransform(ProgramBuilder &b, const std::string &name,
                       const CopyTransformParams &p);

// ---------------------------------------------------------------------
// Floating-point kernels
// ---------------------------------------------------------------------

/**
 * 1D three-point stencil over rows of a 2D grid:
 *   out[i] = w1*in[i-1] + w2*in[i] + w3*in[i+1]
 * The three in[] loads read each element from three distinct PCs in
 * consecutive iterations (dense short-distance RAR), and the three
 * weights are re-loaded from memory every iteration (the
 * long-lifetime, non-register-allocated Fortran globals the paper
 * calls out).
 */
struct StencilParams
{
    uint64_t inAddr;
    uint64_t outAddr;
    size_t words;        ///< grid length; sweeps the interior
    uint64_t weightAddr; ///< taps consecutive double words
    bool reloadWeights;  ///< reload weights inside the loop
    /** Optional second output array (0 = none): doubles the stores. */
    uint64_t out2Addr = 0;
    /**
     * Stencil width (odd, >= 3). Wide stencils (mgrid's 27-point
     * kernels) make the suite's most load-dominated programs: taps
     * in-loads (+ taps weight loads when reloading) per single store.
     * reloadWeights=false requires taps == 3 (weights held in
     * registers).
     */
    unsigned taps = 3;
};
void emitStencil(ProgramBuilder &b, const std::string &name,
                 const StencilParams &p);

/**
 * fpppp-like straight-line block: load a pile of distinct fp globals
 * (several of them twice from different PCs), combine with fp
 * arithmetic, store a few results back. RAR-dominated.
 */
struct FpGlobalsParams
{
    uint64_t globalsAddr; ///< numGlobals consecutive doubles
    size_t numGlobals;    ///< >= 8
    uint64_t outAddr;     ///< storesPerRepeat doubles written per repeat
    size_t repeatsPerCall;
    size_t storesPerRepeat = 3; ///< result stores per repeat (>= 1)
    /**
     * Overwrite one rotating global per repeat (cursor kept at
     * mutateCursorAddr, which must be allocated when non-zero). The
     * store lands between the block's first reads and its re-reads,
     * so a mutated global's re-read sees a value the synonym file
     * does not — the occasional misspeculation real fpppp exhibits.
     */
    uint64_t mutateCursorAddr = 0;
};
void emitFpGlobals(ProgramBuilder &b, const std::string &name,
                   const FpGlobalsParams &p);

/**
 * Streaming dot product of two fp arrays with a register accumulator;
 * mostly dependence-free loads (prefetch-friendly, cloaking-hostile).
 */
struct FpReduceParams
{
    uint64_t aAddr;
    uint64_t bAddr;
    size_t words;
    uint64_t resultAddr;
};
void emitFpReduce(ProgramBuilder &b, const std::string &name,
                  const FpReduceParams &p);

/**
 * Small dense matmul C += A*B (n x n doubles, row-major): B's column
 * is re-read for every row of A, giving long-distance RAR reuse whose
 * visibility depends on DDT capacity.
 */
struct MatMulParams
{
    uint64_t aAddr;
    uint64_t bAddr;
    uint64_t cAddr;
    size_t n;
};
void emitMatMul(ProgramBuilder &b, const std::string &name,
                const MatMulParams &p);

/**
 * Particle update (wave5-like): per particle load position/velocity
 * (fp), advance, store back; field value gathered from a small grid
 * re-read by many particles (RAR).
 */
struct ParticleParams
{
    uint64_t particlesAddr; ///< 4 doubles per particle: x, v, pad, pad
    size_t numParticles;
    uint64_t gridAddr;      ///< gridWords doubles
    size_t gridWords;       ///< power of two
    uint64_t dtAddr;        ///< global timestep double, reloaded
    size_t particlesPerCall;
    uint64_t cursorAddr;
};
void emitParticle(ProgramBuilder &b, const std::string &name,
                  const ParticleParams &p);

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/**
 * Emit the program entry: an outer loop that calls each listed kernel
 * entry once per iteration, then halts. Must be called before any
 * kernel is emitted so that the program starts at PC 0.
 */
void emitMain(ProgramBuilder &b, const std::vector<std::string> &entries,
              uint64_t outer_iters);

/**
 * Like emitMain, but each kernel runs only every `period`-th outer
 * iteration. Irregular interleaving makes loads that share data with
 * another kernel alternate their RAR source over time — the
 * control-path-dependent dependence sets of Section 5.1.
 */
struct PeriodicEntry
{
    std::string entry;
    unsigned period = 1; ///< call when iteration % period == 0
};
void emitMainPeriodic(ProgramBuilder &b,
                      const std::vector<PeriodicEntry> &entries,
                      uint64_t outer_iters);

} // namespace rarpred::kernels

#endif // RARPRED_WORKLOAD_KERNELS_HH_
