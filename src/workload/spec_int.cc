/**
 * @file
 * The eight SPECint'95-like synthetic benchmarks.
 *
 * Each builder composes kernels to mimic the documented character of
 * the original program: what its hot loops do, how much of its
 * instruction mix is loads/stores (paper Table 5.1), and where its
 * memory dependences come from (integer codes are dominated by
 * short-distance RAW communication through stack slots and globals,
 * with RAR arising from revisited heap structures).
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include "workload/kernels.hh"

namespace rarpred {

using namespace kernels;

namespace {

/** Shared assembly of the per-benchmark driver + kernels. */
struct Bench
{
    ProgramBuilder b;
    Rng rng;

    Bench(const std::string &name, uint64_t seed)
        : b(name), rng(seed)
    {}
};

} // namespace

// 099.go: game-tree search over a board. Dominated by repeated
// position lookups (tree search with a skewed query stream), branchy
// evaluation sweeps over board arrays, and moderate call overhead.
// Paper: 20.9% loads, 7.3% stores.
Program
buildGo(uint32_t scale)
{
    Bench w("099.go", 0x6001);
    auto &b = w.b;

    const uint64_t root = allocTree(b, w.rng, 2047);
    auto queries = mixedStream(w.rng, 4096, 2047, 8, 0.9);
    for (auto &q : queries)
        ++q; // tree keys are 1..2047
    const uint64_t qstream = allocStream(b, queries.size(), queries);
    const uint64_t board = allocIntArray(b, w.rng, 512, 256);
    const uint64_t eval_acc = allocGlobal(b);
    const uint64_t eval_cnt = allocGlobal(b);
    const uint64_t found = allocGlobal(b);
    const uint64_t qcursor = allocGlobal(b);
    const uint64_t ccursor = allocGlobal(b);
    const uint64_t cacc = allocGlobal(b);

    const uint64_t stats = allocIntArray(b, w.rng, 4, 100);
    const uint64_t rules = allocIntArray(b, w.rng, 16, 1 << 8);
    const uint64_t racc = allocGlobal(b);
    const uint64_t pattern = allocList(b, w.rng, 10, true);
    const uint64_t pacc = allocGlobal(b);
    const uint64_t pacc2 = allocGlobal(b);

    emitMainPeriodic(b,
                     {{"search", 1},
                      {"patterns", 1},
                      {"pattern2", 1},
                      {"evalboard", 2},
                      {"genmoves", 1},
                      {"stats", 1},
                      {"rules", 1}},
                     260 * scale);
    emitGlobalsRmw(b, "stats", {stats, 4, 40, 2});
    emitListWalkUnrolled(b, "patterns", {pattern, 10, pacc});
    emitListWalkUnrolled(b, "pattern2", {pattern, 10, pacc2});
    emitGlobalsRead(b, "rules", {rules, 16, 10, racc});

    emitTreeSearch(b, "search",
                   {root, qstream, queries.size(), qcursor, found, 75});
    emitIntSweep(b, "evalboard",
                 {board, 400, eval_acc, eval_cnt, 4, 128, true});
    emitCallChain(b, "genmoves", {board, 512, cacc, 40, ccursor});
    return b.build();
}

// 124.m88ksim: a CPU simulator. The hot loop is instruction dispatch:
// fetch opcode, consult small hot tables, update simulated machine
// state. Paper: 18.8% loads, 9.6% stores.
Program
buildM88ksim(uint32_t scale)
{
    Bench w("124.m88ksim", 0x8801);
    auto &b = w.b;

    auto ops = mixedStream(w.rng, 4096, 64, 12, 0.85);
    const uint64_t opstream = allocStream(b, ops.size(), ops);
    const uint64_t optable = allocIntArray(b, w.rng, 64, 8);
    const uint64_t simregs = allocIntArray(b, w.rng, 32, 1 << 20);
    const uint64_t dcursor = allocGlobal(b);
    const uint64_t cycles = allocGlobal(b);
    const uint64_t mem = allocIntArray(b, w.rng, 1024, 1 << 16);
    const uint64_t macc = allocGlobal(b);
    const uint64_t mcnt = allocGlobal(b);
    const uint64_t ccursor = allocGlobal(b);
    const uint64_t cacc = allocGlobal(b);

    const uint64_t cfg = allocIntArray(b, w.rng, 12, 1 << 8);
    const uint64_t cfgacc = allocGlobal(b);
    const uint64_t opdesc = allocList(b, w.rng, 10, true);
    const uint64_t odsum = allocGlobal(b);
    const uint64_t odsum2 = allocGlobal(b);

    emitMain(b, {"dispatch", "decode", "decode2", "config", "checkmem",
                 "trap"},
             260 * scale);
    emitGlobalsRead(b, "config", {cfg, 12, 6, cfgacc});
    emitListWalkUnrolled(b, "decode", {opdesc, 10, odsum});
    emitListWalkUnrolled(b, "decode2", {opdesc, 10, odsum2});

    emitDispatch(b, "dispatch",
                 {opstream, ops.size(), optable, 64, simregs, dcursor,
                  cycles, 240});
    emitIntSweep(b, "checkmem", {mem, 96, macc, mcnt, 5, 1 << 15});
    emitCallChain(b, "trap", {mem, 1024, cacc, 16, ccursor});
    return b.build();
}

// 126.gcc: pointer-chasing over IR lists, heavy function-call
// traffic with register spills, and store-rich structure updates.
// Paper: 24.3% loads, 17.5% stores.
Program
buildGcc(uint32_t scale)
{
    Bench w("126.gcc", 0xFCC1);
    auto &b = w.b;

    const uint64_t insns = allocList(b, w.rng, 64, true);
    const uint64_t hotbb = allocList(b, w.rng, 12, true);
    const uint64_t bbsum = allocGlobal(b);
    const uint64_t bbsum2 = allocGlobal(b);
    const uint64_t rtl = allocIntArray(b, w.rng, 4, 100);
    const uint64_t sum = allocGlobal(b);
    const uint64_t count = allocGlobal(b);
    const uint64_t pool = allocIntArray(b, w.rng, 768, 1 << 12);
    const uint64_t cacc1 = allocGlobal(b);
    const uint64_t ccur1 = allocGlobal(b);
    const uint64_t cacc2 = allocGlobal(b);
    const uint64_t ccur2 = allocGlobal(b);
    const uint64_t records = allocIntArray(b, w.rng, 256 * 4, 1 << 10);
    auto ridx = mixedStream(w.rng, 2048, 256, 24, 0.7);
    const uint64_t rstream = allocStream(b, ridx.size(), ridx);
    const uint64_t rcursor = allocGlobal(b);

    emitMain(b, {"walkir", "match", "match2", "rtlstat", "fold",
                 "regalloc", "emit"},
             210 * scale);

    emitListWalk(b, "walkir", {insns, sum, count, 17, true});
    emitListWalkUnrolled(b, "match", {hotbb, 12, bbsum});
    emitListWalkUnrolled(b, "match2", {hotbb, 12, bbsum2});
    emitGlobalsRmw(b, "rtlstat", {rtl, 4, 36, 2});
    emitCallChain(b, "fold", {pool, 768, cacc1, 30, ccur1});
    emitCallChain(b, "regalloc", {pool, 768, cacc2, 30, ccur2});
    emitRecordUpdate(b, "emit",
                     {records, 256, rstream, ridx.size(), rcursor, 130});
    return b.build();
}

// 129.compress: dictionary (hash) lookups over a byte stream plus
// buffer motion. Paper: 21.7% loads, 13.5% stores.
Program
buildCompress(uint32_t scale)
{
    Bench w("129.compress", 0xC0B1);
    auto &b = w.b;

    const uint64_t htab = allocHashTable(b, w.rng, 2048, 1024);
    auto keys = mixedStream(w.rng, 4096, 1024, 12, 0.9);
    const uint64_t kstream = allocStream(b, keys.size(), keys);
    const uint64_t kcursor = allocGlobal(b);
    const uint64_t inbuf = allocIntArray(b, w.rng, 512, 255);
    const uint64_t outbuf = allocIntArray(b, w.rng, 512, 255);
    const uint64_t sacc = allocGlobal(b);
    const uint64_t scnt = allocGlobal(b);

    const uint64_t counts = allocIntArray(b, w.rng, 4, 10);
    const uint64_t magic = allocIntArray(b, w.rng, 12, 1 << 8);
    const uint64_t magacc = allocGlobal(b);
    const uint64_t dict = allocList(b, w.rng, 10, true);
    const uint64_t dsum = allocGlobal(b);
    const uint64_t dsum2 = allocGlobal(b);

    emitMain(b, {"lookup", "header", "header2", "putbytes", "scan",
                 "counts", "magic"},
             240 * scale);
    emitGlobalsRmw(b, "counts", {counts, 4, 50, 2});
    emitGlobalsRead(b, "magic", {magic, 12, 10, magacc});
    emitListWalkUnrolled(b, "header", {dict, 10, dsum});
    emitListWalkUnrolled(b, "header2", {dict, 10, dsum2});

    emitHashProbe(b, "lookup",
                  {htab, 2048, kstream, keys.size(), kcursor, 150, true});
    emitCopyTransform(b, "putbytes", {inbuf, outbuf, 420});
    emitIntSweep(b, "scan", {inbuf, 128, sacc, scnt, 2, 128, true});
    return b.build();
}

// 130.li: a lisp interpreter. Cons-cell chasing with repeated reads
// of car/cdr from different evaluator sites, symbol-table lookups,
// and deep recursion (stack RAW). Paper: 29.6% loads, 17.6% stores.
Program
buildLi(uint32_t scale)
{
    Bench w("130.li", 0x1151);
    auto &b = w.b;

    const uint64_t heap1 = allocList(b, w.rng, 48, true);
    const uint64_t heap2 = heap1; // both evaluator paths walk one heap
    const uint64_t expr = allocList(b, w.rng, 14, true);
    const uint64_t esum1 = allocGlobal(b);
    const uint64_t esum2 = allocGlobal(b);
    const uint64_t gcw = allocIntArray(b, w.rng, 4, 100);
    const uint64_t s1 = allocGlobal(b);
    const uint64_t c1 = allocGlobal(b);
    const uint64_t s2 = allocGlobal(b);
    const uint64_t c2 = allocGlobal(b);
    const uint64_t symtab = allocHashTable(b, w.rng, 512, 384);
    auto syms = mixedStream(w.rng, 2048, 384, 32, 0.85);
    const uint64_t sstream = allocStream(b, syms.size(), syms);
    const uint64_t scursor = allocGlobal(b);
    const uint64_t env = allocIntArray(b, w.rng, 256, 1 << 10);
    const uint64_t eacc = allocGlobal(b);
    const uint64_t ecur = allocGlobal(b);

    emitMainPeriodic(b,
                     {{"evalexpr", 1},
                      {"evalbody", 1},
                      {"gcstat", 1},
                      {"evalcar", 1},
                      {"evalcdr", 2},
                      {"intern", 1},
                      {"apply", 1}},
                     340 * scale);

    emitListWalkUnrolled(b, "evalexpr", {expr, 14, esum1});
    emitListWalkUnrolled(b, "evalbody", {expr, 14, esum2});
    emitGlobalsRmw(b, "gcstat", {gcw, 4, 36, 2});
    emitListWalk(b, "evalcar", {heap1, s1, c1, 23, true});
    emitListWalk(b, "evalcdr", {heap2, s2, c2, 41});
    emitHashProbe(b, "intern",
                  {symtab, 512, sstream, syms.size(), scursor, 40, false});
    emitCallChain(b, "apply", {env, 256, eacc, 100, ecur});
    return b.build();
}

// 132.ijpeg: image transforms — compute-dense sweeps over pixel
// buffers with long ALU chains per element (lowest memory fraction in
// the integer suite). Paper: 17.7% loads, 8.7% stores.
Program
buildIjpeg(uint32_t scale)
{
    Bench w("132.ijpeg", 0x1390);
    auto &b = w.b;

    const uint64_t img = allocIntArray(b, w.rng, 192, 255);
    const uint64_t tmp = allocIntArray(b, w.rng, 192, 255);
    const uint64_t sacc = allocGlobal(b);
    const uint64_t scnt = allocGlobal(b);
    const uint64_t qacc = allocGlobal(b);
    const uint64_t qcnt = allocGlobal(b);

    const uint64_t jstate = allocIntArray(b, w.rng, 6, 100);
    const uint64_t qtab = allocIntArray(b, w.rng, 16, 256);
    const uint64_t qtacc = allocGlobal(b);
    const uint64_t comp = allocList(b, w.rng, 8, true);
    const uint64_t csum = allocGlobal(b);
    const uint64_t csum2 = allocGlobal(b);

    emitMain(b, {"dct", "comps", "comps2", "quant", "huffcopy", "state",
                 "qtable"},
             320 * scale);
    emitGlobalsRmw(b, "state", {jstate, 6, 30, 2});
    emitGlobalsRead(b, "qtable", {qtab, 16, 12, qtacc});
    emitListWalkUnrolled(b, "comps", {comp, 8, csum});
    emitListWalkUnrolled(b, "comps2", {comp, 8, csum2});

    emitIntSweep(b, "dct", {img, 192, sacc, scnt, 1, 128, false});
    emitIntSweep(b, "quant", {tmp, 192, qacc, qcnt, 1, 100, true});
    emitCopyTransform(b, "huffcopy", {img, tmp, 192});
    return b.build();
}

// 134.perl: interpreter — hash lookups for variables, string buffer
// motion, opcode dispatch and call-heavy evaluator.
// Paper: 25.6% loads, 16.6% stores.
Program
buildPerl(uint32_t scale)
{
    Bench w("134.perl", 0x9E21);
    auto &b = w.b;

    const uint64_t vars = allocHashTable(b, w.rng, 1024, 512);
    auto names = mixedStream(w.rng, 3072, 512, 24, 0.9);
    const uint64_t nstream = allocStream(b, names.size(), names);
    const uint64_t ncursor = allocGlobal(b);
    auto ops = mixedStream(w.rng, 2048, 32, 8, 0.9);
    const uint64_t opstream = allocStream(b, ops.size(), ops);
    const uint64_t optable = allocIntArray(b, w.rng, 32, 6);
    const uint64_t pregs = allocIntArray(b, w.rng, 32, 1 << 8);
    const uint64_t ocursor = allocGlobal(b);
    const uint64_t steps = allocGlobal(b);
    const uint64_t sbuf = allocIntArray(b, w.rng, 384, 255);
    const uint64_t dbuf = allocIntArray(b, w.rng, 384, 255);
    const uint64_t stk = allocIntArray(b, w.rng, 256, 1 << 8);
    const uint64_t oplist = allocList(b, w.rng, 10, true);
    const uint64_t opsum = allocGlobal(b);
    const uint64_t opsum2 = allocGlobal(b);
    const uint64_t pflags = allocIntArray(b, w.rng, 4, 100);
    const uint64_t kacc = allocGlobal(b);
    const uint64_t kcur = allocGlobal(b);

    const uint64_t special = allocIntArray(b, w.rng, 12, 1 << 8);
    const uint64_t spacc = allocGlobal(b);

    emitMain(b, {"getvar", "interp", "args", "args2", "flags", "strcopy",
                 "evalsub", "special"},
             190 * scale);
    emitGlobalsRead(b, "special", {special, 12, 8, spacc});

    emitListWalkUnrolled(b, "args", {oplist, 10, opsum});
    emitGlobalsRmw(b, "flags", {pflags, 4, 40, 2});
    emitListWalkUnrolled(b, "args2", {oplist, 10, opsum2});
    emitHashProbe(b, "getvar",
                  {vars, 1024, nstream, names.size(), ncursor, 90, true});
    emitDispatch(b, "interp",
                 {opstream, ops.size(), optable, 32, pregs, ocursor,
                  steps, 60});
    emitCopyTransform(b, "strcopy", {sbuf, dbuf, 480});
    emitCallChain(b, "evalsub", {stk, 256, kacc, 48, kcur});
    return b.build();
}

// 147.vortex: an object database — the most store-intensive program
// in the suite (27.3% stores): record updates dominate, plus index
// (hash) lookups and object list traversal.
// Paper: 26.3% loads, 27.3% stores.
Program
buildVortex(uint32_t scale)
{
    Bench w("147.vortex", 0x7031);
    auto &b = w.b;

    const uint64_t objs = allocIntArray(b, w.rng, 512 * 4, 1 << 12);
    auto oidx1 = mixedStream(w.rng, 3072, 512, 40, 0.75);
    const uint64_t ostream1 = allocStream(b, oidx1.size(), oidx1);
    const uint64_t ocursor1 = allocGlobal(b);
    auto oidx2 = mixedStream(w.rng, 3072, 512, 40, 0.75);
    const uint64_t ostream2 = allocStream(b, oidx2.size(), oidx2);
    const uint64_t ocursor2 = allocGlobal(b);
    const uint64_t index = allocHashTable(b, w.rng, 1024, 768);
    auto keys = mixedStream(w.rng, 2048, 768, 48, 0.7);
    const uint64_t kstream = allocStream(b, keys.size(), keys);
    const uint64_t kcursor = allocGlobal(b);
    const uint64_t chain = allocList(b, w.rng, 128, true);
    const uint64_t lsum = allocGlobal(b);
    const uint64_t lcnt = allocGlobal(b);
    const uint64_t newobjs = allocIntArray(b, w.rng, 700, 1);
    const uint64_t seed = allocGlobal(b, 7);

    const uint64_t schema = allocIntArray(b, w.rng, 12, 1 << 8);
    const uint64_t scacc = allocGlobal(b);
    const uint64_t txn = allocIntArray(b, w.rng, 4, 100);

    emitMain(b, {"update1", "update2", "lookup", "create", "validate",
                 "validat2", "txnstat", "schema"},
             170 * scale);
    emitGlobalsRead(b, "schema", {schema, 12, 6, scacc});

    emitRecordUpdate(b, "update1",
                     {objs, 512, ostream1, oidx1.size(), ocursor1, 80});
    emitRecordUpdate(b, "update2",
                     {objs, 512, ostream2, oidx2.size(), ocursor2, 80});
    emitHashProbe(b, "lookup",
                  {index, 1024, kstream, keys.size(), kcursor, 80, true});
    emitFill(b, "create", {newobjs, 350, seed});
    emitListWalkUnrolled(b, "validate", {chain, 12, lsum});
    emitListWalkUnrolled(b, "validat2", {chain, 12, lcnt});
    emitGlobalsRmw(b, "txnstat", {txn, 4, 40, 2});
    return b.build();
}

} // namespace rarpred
