/**
 * @file
 * The synthetic SPEC'95-like benchmark suite.
 *
 * One deterministic MicroISA program per SPEC'95 benchmark the paper
 * evaluates (Table 5.1): 8 integer and 10 floating-point codes. Each
 * program composes the kernels of kernels.hh with parameters chosen
 * to reproduce the corresponding benchmark's dependence character and
 * (approximately) its load/store instruction fractions.
 */

#ifndef RARPRED_WORKLOAD_WORKLOAD_HH_
#define RARPRED_WORKLOAD_WORKLOAD_HH_

#include <functional>
#include <string>
#include <vector>

#include "common/status.hh"
#include "isa/program.hh"

namespace rarpred {

/** Descriptor of one synthetic benchmark. */
struct Workload
{
    std::string abbrev;   ///< paper's abbreviation, e.g. "go"
    std::string fullName; ///< e.g. "099.go"
    bool isFp = false;    ///< SPECfp'95 (vs SPECint'95)

    /**
     * Build the program. @p scale multiplies the outer iteration
     * count; scale 1 yields a run of roughly 1-3M dynamic
     * instructions.
     */
    std::function<Program(uint32_t scale)> build;
};

/** @return all 18 workloads in the paper's Table 5.1 order. */
const std::vector<Workload> &allWorkloads();

/**
 * @return the workload with the given abbreviation, or NotFound. This
 * is the library-level lookup: unknown names are a recoverable error.
 */
Result<const Workload *> lookupWorkload(const std::string &abbrev);

/**
 * @return the workload with the given abbreviation.
 * Fails fatally when the name is unknown — a convenience for CLI
 * drivers, examples and tests only; library code that can propagate
 * errors must use lookupWorkload() instead.
 */
const Workload &findWorkload(const std::string &abbrev);

/** Integer-suite workload builders (defined in spec_int.cc). */
Program buildGo(uint32_t scale);
Program buildM88ksim(uint32_t scale);
Program buildGcc(uint32_t scale);
Program buildCompress(uint32_t scale);
Program buildLi(uint32_t scale);
Program buildIjpeg(uint32_t scale);
Program buildPerl(uint32_t scale);
Program buildVortex(uint32_t scale);

/** Floating-point-suite workload builders (defined in spec_fp.cc). */
Program buildTomcatv(uint32_t scale);
Program buildSwim(uint32_t scale);
Program buildSu2cor(uint32_t scale);
Program buildHydro2d(uint32_t scale);
Program buildMgrid(uint32_t scale);
Program buildApplu(uint32_t scale);
Program buildTurb3d(uint32_t scale);
Program buildApsi(uint32_t scale);
Program buildFpppp(uint32_t scale);
Program buildWave5(uint32_t scale);

} // namespace rarpred

#endif // RARPRED_WORKLOAD_WORKLOAD_HH_
