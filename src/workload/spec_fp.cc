/**
 * @file
 * The ten SPECfp'95-like synthetic benchmarks.
 *
 * The paper observes that the Fortran codes are "dominated by a large
 * number of variables with long lifetimes that are not register
 * allocated", making RAR dependences more frequent than RAW ones —
 * the reverse of the integer suite. These builders reproduce that:
 * stencils whose neighbours are re-read by several static loads,
 * coefficient/global words reloaded every iteration and never stored,
 * and streaming kernels for the dependence-poor fraction.
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include <vector>

#include "workload/kernels.hh"

namespace rarpred {

using namespace kernels;

namespace {

struct Bench
{
    ProgramBuilder b;
    Rng rng;

    Bench(const std::string &name, uint64_t seed)
        : b(name), rng(seed)
    {}
};

/**
 * Allocate a weights vector of @p taps doubles. Normalized weights
 * (sum 0.93) keep in-place Gauss-Seidel sweeps numerically bounded.
 */
uint64_t
allocWeights(Bench &w, unsigned taps, bool normalized = false)
{
    const uint64_t addr = w.b.allocWords(taps);
    std::vector<double> values(taps);
    double sum = 0.0;
    for (auto &v : values) {
        v = 0.1 + 0.8 * w.rng.uniform();
        sum += v;
    }
    for (unsigned i = 0; i < taps; ++i) {
        const double v = normalized ? values[i] * 0.93 / sum : values[i];
        w.b.initWordF(addr + (uint64_t)i * 8, v);
    }
    return addr;
}

} // namespace

// 101.tomcatv: mesh generation — 1D sweeps of coupled stencils with
// memory-resident coefficients. Paper: 31.9% loads, 8.8% stores.
Program
buildTomcatv(uint32_t scale)
{
    Bench w("101.tomcatv", 0x1011);
    auto &b = w.b;

    const uint64_t gx = allocFpArray(b, w.rng, 512);
    const uint64_t gy = allocFpArray(b, w.rng, 512);
    const uint64_t rx = allocFpArray(b, w.rng, 512);
    const uint64_t ry = allocFpArray(b, w.rng, 512);
    const uint64_t wx = allocWeights(w, 3, true);
    const uint64_t wy = allocWeights(w, 3);
    const uint64_t res = allocGlobal(b);

    emitMain(b, {"relaxx", "relaxy", "residual"}, 330 * scale);

    emitStencil(b, "relaxx", {gx, gx, 512, wx, true, rx, 3});
    emitStencil(b, "relaxy", {gy, ry, 512, wy, true, 0, 3});
    emitFpReduce(b, "residual", {rx, ry, 256, res});
    return b.build();
}

// 102.swim: shallow-water equations — three coupled grid stencils;
// the lowest store fraction after mgrid. Paper: 27.0% loads, 6.6%.
Program
buildSwim(uint32_t scale)
{
    Bench w("102.swim", 0x5141);
    auto &b = w.b;

    const uint64_t u = allocFpArray(b, w.rng, 640);
    const uint64_t v = allocFpArray(b, w.rng, 640);
    const uint64_t p = allocFpArray(b, w.rng, 640);
    const uint64_t vn = allocFpArray(b, w.rng, 640);
    const uint64_t pn = allocFpArray(b, w.rng, 640);
    const uint64_t wu = allocWeights(w, 3, true);
    const uint64_t wv = allocWeights(w, 3);
    const uint64_t wp = allocWeights(w, 3);

    emitMain(b, {"calcu", "calcv", "calcp"}, 260 * scale);

    emitStencil(b, "calcu", {u, u, 640, wu, true, 0, 3});
    emitStencil(b, "calcv", {v, vn, 640, wv, true, 0, 3});
    emitStencil(b, "calcp", {p, pn, 640, wp, true, vn, 3});
    return b.build();
}

// 103.su2cor: quantum physics Monte Carlo — small dense matrix
// products (gauge links re-read across rows) plus vector reductions.
// Paper: 33.8% loads, 10.1% stores.
Program
buildSu2cor(uint32_t scale)
{
    Bench w("103.su2cor", 0x5021);
    auto &b = w.b;

    const size_t n = 10;
    const uint64_t ma = allocFpArray(b, w.rng, n * n);
    const uint64_t mb = allocFpArray(b, w.rng, n * n);
    const uint64_t mc = allocFpArray(b, w.rng, n * n);
    const uint64_t va = allocFpArray(b, w.rng, 256);
    const uint64_t vb = allocFpArray(b, w.rng, 256);
    const uint64_t corr = allocGlobal(b);
    const uint64_t gl = allocFpArray(b, w.rng, 21);
    const uint64_t gout = b.allocWords(8);
    const uint64_t wg = allocWeights(w, 7);
    const uint64_t prop = allocFpArray(b, w.rng, 384);
    const uint64_t propn = allocFpArray(b, w.rng, 384);

    emitMain(b, {"gauge", "sweep", "correl", "observ", "refresh"},
             110 * scale);

    emitMatMul(b, "gauge", {ma, mb, mc, n});
    emitStencil(b, "sweep", {prop, propn, 384, wg, true, mc, 7});
    emitFpReduce(b, "correl", {va, vb, 256, corr});
    emitFpGlobals(b, "observ", {gl, 21, gout, 20, 6});
    emitFill(b, "refresh", {propn, 280, corr});
    return b.build();
}

// 104.hydro2d: hydrodynamics — wide stencils over state grids with
// memory-resident coefficients. Paper: 29.7% loads, 8.2% stores.
Program
buildHydro2d(uint32_t scale)
{
    Bench w("104.hydro2d", 0x4D21);
    auto &b = w.b;

    const uint64_t rho = allocFpArray(b, w.rng, 768);
    const uint64_t mom = allocFpArray(b, w.rng, 768);
    const uint64_t rhon = allocFpArray(b, w.rng, 768);
    const uint64_t momn = allocFpArray(b, w.rng, 768);
    const uint64_t w1 = allocWeights(w, 5);
    const uint64_t w2 = allocWeights(w, 3, true);
    const uint64_t gl = allocFpArray(b, w.rng, 16);
    const uint64_t gout = b.allocWords(8);

    emitMain(b, {"advrho", "advmom", "eos"}, 240 * scale);

    emitStencil(b, "advrho", {rho, rhon, 768, w1, true, 0, 5});
    emitStencil(b, "advmom", {mom, mom, 768, w2, true, momn, 3});
    emitFpGlobals(b, "eos", {gl, 16, gout, 12, 5});
    return b.build();
}

// 107.mgrid: multigrid solver — 27-point restriction/prolongation
// stencils make it the most load-dominated program of the suite
// (46.6% loads, only 3.0% stores).
Program
buildMgrid(uint32_t scale)
{
    Bench w("107.mgrid", 0x3D61);
    auto &b = w.b;

    const uint64_t fine = allocFpArray(b, w.rng, 1024);
    const uint64_t coarse = allocFpArray(b, w.rng, 1024);
    const uint64_t resid = allocFpArray(b, w.rng, 1024);
    const uint64_t w27 = allocWeights(w, 13);
    const uint64_t w9 = allocWeights(w, 9);

    emitMain(b, {"resid", "psinv"}, 130 * scale);

    emitStencil(b, "resid", {fine, resid, 1024, w27, true, 0, 13});
    emitStencil(b, "psinv", {coarse, fine, 1024, w9, true, 0, 9});
    return b.build();
}

// 110.applu: LU factorization PDE solver — 5-point stencils plus
// small dense blocks. Paper: 31.4% loads, 7.9% stores.
Program
buildApplu(uint32_t scale)
{
    Bench w("110.applu", 0xAB01);
    auto &b = w.b;

    const size_t n = 8;
    const uint64_t jaca = allocFpArray(b, w.rng, n * n);
    const uint64_t jacb = allocFpArray(b, w.rng, n * n);
    const uint64_t jacc = allocFpArray(b, w.rng, n * n);
    const uint64_t rsd = allocFpArray(b, w.rng, 640);
    const uint64_t rsdn = allocFpArray(b, w.rng, 640);
    const uint64_t ws = allocWeights(w, 3, true);

    emitMain(b, {"jacld", "buts"}, 220 * scale);

    emitMatMul(b, "jacld", {jaca, jacb, jacc, n});
    emitStencil(b, "buts", {rsd, rsd, 640, ws, true, rsdn, 3});
    return b.build();
}

// 125.turb3d: turbulence FFT code — butterfly-like block products and
// lots of buffer motion (store rich for an fp code).
// Paper: 21.3% loads, 14.6% stores.
Program
buildTurb3d(uint32_t scale)
{
    Bench w("125.turb3d", 0x7B31);
    auto &b = w.b;

    const size_t n = 8;
    const uint64_t ta = allocFpArray(b, w.rng, n * n);
    const uint64_t tb = allocFpArray(b, w.rng, n * n);
    const uint64_t tc = allocFpArray(b, w.rng, n * n);
    const uint64_t buf1 = allocFpArray(b, w.rng, 112);
    const uint64_t buf2 = allocFpArray(b, w.rng, 112);
    const uint64_t work = allocFpArray(b, w.rng, 512);
    const uint64_t seed = allocGlobal(b, 3);
    const uint64_t energy = allocGlobal(b);
    const uint64_t twiddle = allocFpArray(b, w.rng, 18);
    const uint64_t tout = b.allocWords(4);

    emitMain(b, {"fftblk", "twiddles", "transpose", "transpose2", "zero",
                 "spectra"},
             300 * scale);

    emitMatMul(b, "fftblk", {ta, tb, tc, n});
    emitCopyTransform(b, "transpose", {buf1, buf2, 112});
    emitCopyTransform(b, "transpose2", {buf2, buf1, 112});
    emitFill(b, "zero", {work, 300, seed});
    // Read-only twiddle-factor table: re-read every butterfly pass.
    emitFpGlobals(b, "twiddles", {twiddle, 18, tout, 10, 1});
    emitFpReduce(b, "spectra", {buf1, buf2, 112, energy});
    return b.build();
}

// 141.apsi: mesoscale weather — stencils plus pointwise physics with
// many reloaded physical-constant globals.
// Paper: 31.4% loads, 13.4% stores.
Program
buildApsi(uint32_t scale)
{
    Bench w("141.apsi", 0xA951);
    auto &b = w.b;

    const uint64_t temp = allocFpArray(b, w.rng, 512);
    const uint64_t tempn = allocFpArray(b, w.rng, 512);
    const uint64_t wt = allocWeights(w, 3, true);
    const uint64_t consts = allocFpArray(b, w.rng, 24);
    const uint64_t cout = b.allocWords(12);
    const uint64_t parts = allocFpArray(b, w.rng, 256 * 4);
    const uint64_t grid = allocFpArray(b, w.rng, 64);
    const uint64_t dt = b.allocWords(1);
    b.initWordF(dt, 0.01);
    const uint64_t pcur = allocGlobal(b);

    emitMain(b, {"advect", "physics", "trajec"}, 210 * scale);

    emitStencil(b, "advect", {temp, temp, 512, wt, true, tempn, 3});
    emitFpGlobals(b, "physics", {consts, 24, cout, 14, 11});
    emitParticle(b, "trajec", {parts, 256, grid, 64, dt, 120, pcur});
    return b.build();
}

// 145.fpppp: quantum chemistry — enormous straight-line basic blocks
// reading hundreds of long-lived globals; the highest load fraction
// in SPEC'95 (48.8% loads, 17.5% stores).
Program
buildFpppp(uint32_t scale)
{
    Bench w("145.fpppp", 0xF991);
    auto &b = w.b;

    const uint64_t gl1 = allocFpArray(b, w.rng, 40);
    const uint64_t gl2 = allocFpArray(b, w.rng, 32);
    const uint64_t out1 = b.allocWords(16);
    const uint64_t out2 = b.allocWords(16);
    const uint64_t mcur1 = allocGlobal(b);
    const uint64_t mcur2 = allocGlobal(b);
    const uint64_t basis1 = allocFpArray(b, w.rng, 384);
    const uint64_t basis2 = allocFpArray(b, w.rng, 384);
    const uint64_t norm = allocGlobal(b);

    emitMain(b, {"twoel", "basis", "shell"}, 170 * scale);

    emitFpGlobals(b, "twoel", {gl1, 40, out1, 40, 15, mcur1});
    emitFpGlobals(b, "shell", {gl2, 32, out2, 30, 13, mcur2});
    // Streaming basis-function sweep: churns the DDT so stale store
    // records from the mutation do not pin hot globals to RAW.
    emitFpReduce(b, "basis", {basis1, basis2, 384, norm});
    return b.build();
}

// 146.wave5: plasma particle-in-cell — particle pushes gathering from
// a hot field grid, plus moment reductions.
// Paper: 30.2% loads, 13.0% stores.
Program
buildWave5(uint32_t scale)
{
    Bench w("146.wave5", 0x3A51);
    auto &b = w.b;

    const uint64_t parts = allocFpArray(b, w.rng, 512 * 4);
    const uint64_t grid = allocFpArray(b, w.rng, 128);
    const uint64_t dt = b.allocWords(1);
    b.initWordF(dt, 0.005);
    const uint64_t pcur = allocGlobal(b);
    const uint64_t va = allocFpArray(b, w.rng, 256);
    const uint64_t vb = allocFpArray(b, w.rng, 256);
    const uint64_t mom = allocGlobal(b);

    emitMain(b, {"push", "moments"}, 280 * scale);

    emitParticle(b, "push", {parts, 512, grid, 128, dt, 260, pcur});
    emitFpReduce(b, "moments", {va, vb, 32, mom});
    return b.build();
}

} // namespace rarpred
