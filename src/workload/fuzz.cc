#include "workload/fuzz.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/rng.hh"
#include "core/cloaking.hh"
#include "driver/sim_snapshot.hh"
#include "driver/sweep.hh"
#include "faultinject/safety_oracle.hh"
#include "vm/recorded_trace.hh"

namespace rarpred {

namespace {

// The check budget has to stay bounded even for maximal knob draws.
constexpr uint64_t kMinMaxInsts = 2000;
constexpr uint64_t kMaxMaxInsts = 5'000'000;

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** The paper's default mechanism — the config every check runs. */
CloakingConfig
fuzzCloakingConfig()
{
    CloakingConfig config;
    config.mode = CloakingMode::RawPlusRar;
    config.ddt.entries = 128;
    config.dpnt.geometry = {8192, 2};
    config.dpnt.confidence = ConfidenceKind::TwoBitAdaptive;
    config.sf = {1024, 2};
    return config;
}

bool
sameInst(const DynInst &a, const DynInst &b)
{
    return a.seq == b.seq && a.pc == b.pc && a.nextPc == b.nextPc &&
           a.op == b.op && a.dst == b.dst && a.src1 == b.src1 &&
           a.src2 == b.src2 && a.eaddr == b.eaddr &&
           a.value == b.value && a.taken == b.taken;
}

std::string
statsDump(const CloakingStats &s)
{
    std::ostringstream os;
    s.dump(os);
    return os.str();
}

uint64_t
caseIdentity(const FuzzCase &c)
{
    return mix64(c.seed ^ mix64(c.maxInsts) ^ c.params.fingerprint());
}

} // namespace

FuzzCase
drawFuzzCase(uint64_t seed)
{
    Rng rng(mix64(seed ^ 0xf022caf3ull));
    FuzzCase c;
    c.seed = seed;
    c.maxInsts = 40000 + rng.below(40000);
    FactoryParams &p = c.params;
    p.rarSharing = rng.uniform();
    p.storeIntervention = rng.uniform() * 0.8;
    p.chaseDepth = rng.chance(0.5) ? (uint32_t)rng.range(1, 64) : 0;
    p.workingSetWords = 8ull << rng.below(10);
    p.branchEntropy = rng.uniform();
    p.depChainLength = (uint32_t)rng.below(9);
    p.addrPick = (AddressPick)rng.below(4);
    p.planEntries = 64ull << rng.below(5);
    p.accessesPerCall = 16ull << rng.below(4);
    p.outerIters = rng.range(50, 400);
    p.fpData = rng.chance(0.3);
    return c;
}

std::string
fuzzCaseName(const FuzzCase &c)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "factory.fuzz.%016" PRIx64 ".%08" PRIx64, c.seed,
                  (uint64_t)(caseIdentity(c) & 0xFFFFFFFFull));
    return buf;
}

FuzzVerdict
checkFuzzCase(const FuzzCase &c)
{
    FuzzVerdict v;
    const Status valid = c.params.validate();
    if (!valid.ok()) {
        v.failure = "invalid params: " + valid.message();
        return v;
    }
    if (c.maxInsts < kMinMaxInsts || c.maxInsts > kMaxMaxInsts) {
        v.failure = "maxInsts out of the fuzzable range";
        return v;
    }
    const std::string name = fuzzCaseName(c);

    // 1. Determinism: two independent builds, byte-identical listing
    // and trace.
    const Program p1 = buildFactoryProgram(name, c.seed, c.params);
    const Program p2 = buildFactoryProgram(name, c.seed, c.params);
    if (p1.listing() != p2.listing()) {
        v.failure = "nondeterministic program: listings differ";
        return v;
    }
    const RecordedTrace tr1 = RecordedTrace::record(p1, c.maxInsts);
    const RecordedTrace tr2 = RecordedTrace::record(p2, c.maxInsts);
    if (tr1.size() != tr2.size()) {
        v.failure = "nondeterministic trace: lengths differ";
        return v;
    }
    for (size_t i = 0; i < tr1.size(); ++i) {
        if (!sameInst(tr1.decode(i), tr2.decode(i))) {
            v.failure = "nondeterministic trace: record " +
                        std::to_string(i) + " differs";
            return v;
        }
    }
    v.instructions = tr1.size();

    // 2. Speculation safety: fault-free, then with bit flips landing
    // in the predictor state.
    OracleConfig oc;
    oc.cloaking = fuzzCloakingConfig();
    oc.maxInsts = c.maxInsts;
    Result<OracleReport> clean = runSafetyOracle(p1, oc);
    if (!clean.ok()) {
        v.failure = "oracle (fault-free) error: " +
                    clean.status().message();
        return v;
    }
    if (!clean->passed) {
        v.failure = "oracle (fault-free) divergence: " +
                    clean->firstDivergence;
        return v;
    }
    oc.faults.seed = mix64(c.seed ^ 0xfa017edull);
    oc.faults.ratePerStep = 1e-3;
    Result<OracleReport> faulted = runSafetyOracle(p1, oc);
    if (!faulted.ok()) {
        v.failure =
            "oracle (faulted) error: " + faulted.status().message();
        return v;
    }
    if (!faulted->passed) {
        v.failure = "oracle (faulted) divergence: " +
                    faulted->firstDivergence;
        return v;
    }

    // 3. Serial-vs-runSweep equivalence: a plain replay and a
    // 2-worker sweep cell must dump byte-identical cloaking stats.
    CloakingEngine serial(fuzzCloakingConfig());
    tr1.replayInto(serial);
    const std::string serial_dump = statsDump(serial.stats());

    Result<Workload> w = makeFactoryWorkload(name, c.seed, c.params);
    if (!w.ok()) {
        v.failure = "makeFactoryWorkload: " + w.status().message();
        return v;
    }
    driver::RunnerConfig rc;
    rc.workers = 2;
    rc.maxInsts = c.maxInsts;
    driver::SimJobRunner runner(rc);
    const std::vector<const Workload *> workloads = {&*w};
    auto cells = driver::runSweep(
        runner, workloads, 1,
        [](const Workload &, size_t, TraceSource &trace, Rng &) {
            CloakingEngine engine(fuzzCloakingConfig());
            driver::pumpSimulation(trace, engine);
            return engine.stats();
        });
    if (!cells.status.ok()) {
        v.failure = "runSweep failed: " + cells.status.message();
        return v;
    }
    const std::string sweep_dump = statsDump(cells[0]);
    if (serial_dump != sweep_dump) {
        v.failure = "serial vs runSweep stats diverged:\n--- serial\n" +
                    serial_dump + "--- sweep\n" + sweep_dump;
        return v;
    }

    v.passed = true;
    return v;
}

FuzzCase
minimizeFuzzCase(const FuzzCase &failing,
                 const std::function<bool(const FuzzCase &)> &still_fails,
                 unsigned *shrinks)
{
    using Op = std::function<void(FuzzCase &)>;
    const std::vector<Op> ops = {
        [](FuzzCase &c) {
            c.params.outerIters = std::max<uint64_t>(
                1, c.params.outerIters / 2);
        },
        [](FuzzCase &c) {
            c.maxInsts = std::max<uint64_t>(kMinMaxInsts,
                                            c.maxInsts / 2);
        },
        [](FuzzCase &c) {
            c.params.workingSetWords = std::max<uint64_t>(
                8, c.params.workingSetWords / 2);
        },
        [](FuzzCase &c) {
            c.params.planEntries = std::max<uint64_t>(
                16, c.params.planEntries / 2);
        },
        [](FuzzCase &c) {
            c.params.accessesPerCall = std::max<uint64_t>(
                1, c.params.accessesPerCall / 2);
        },
        [](FuzzCase &c) { c.params.chaseDepth /= 2; },
        [](FuzzCase &c) { c.params.depChainLength /= 2; },
    };

    FuzzCase current = failing;
    unsigned accepted = 0;
    unsigned evals = 0;
    constexpr unsigned kMaxEvals = 64;
    bool changed = true;
    while (changed && evals < kMaxEvals) {
        changed = false;
        for (const Op &op : ops) {
            if (evals >= kMaxEvals)
                break;
            FuzzCase candidate = current;
            op(candidate);
            if (caseIdentity(candidate) == caseIdentity(current))
                continue; // already at this op's floor
            ++evals;
            if (still_fails(candidate)) {
                current = candidate;
                ++accepted;
                changed = true;
            }
        }
    }
    if (shrinks != nullptr)
        *shrinks = accepted;
    return current;
}

std::string
formatFuzzCase(const FuzzCase &c)
{
    char buf[128];
    std::ostringstream os;
    os << "# rarpred factory fuzz case (workload/fuzz.hh)\n";
    os << "seed=" << c.seed << "\n";
    os << "maxInsts=" << c.maxInsts << "\n";
    auto put_f = [&](const char *key, double v) {
        std::snprintf(buf, sizeof(buf), "%s=%.17g\n", key, v);
        os << buf;
    };
    put_f("rarSharing", c.params.rarSharing);
    put_f("storeIntervention", c.params.storeIntervention);
    os << "chaseDepth=" << c.params.chaseDepth << "\n";
    os << "workingSetWords=" << c.params.workingSetWords << "\n";
    put_f("branchEntropy", c.params.branchEntropy);
    os << "depChainLength=" << c.params.depChainLength << "\n";
    os << "addrPick=" << addressPickName(c.params.addrPick) << "\n";
    os << "planEntries=" << c.params.planEntries << "\n";
    os << "accessesPerCall=" << c.params.accessesPerCall << "\n";
    os << "outerIters=" << c.params.outerIters << "\n";
    os << "fpData=" << (c.params.fpData ? 1 : 0) << "\n";
    return os.str();
}

Result<FuzzCase>
parseFuzzCase(const std::string &text)
{
    FuzzCase c;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    bool saw_seed = false;

    auto parse_u64 = [](const std::string &s,
                        uint64_t &out) -> bool {
        if (s.empty())
            return false;
        char *end = nullptr;
        out = std::strtoull(s.c_str(), &end, 10);
        return end != nullptr && *end == '\0';
    };
    auto parse_f = [](const std::string &s, double &out) -> bool {
        if (s.empty())
            return false;
        char *end = nullptr;
        out = std::strtod(s.c_str(), &end);
        return end != nullptr && *end == '\0';
    };

    while (std::getline(is, line)) {
        ++lineno;
        const size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        const size_t last = line.find_last_not_of(" \t\r");
        const std::string body = line.substr(first, last - first + 1);
        const size_t eq = body.find('=');
        if (eq == std::string::npos)
            return Status::invalidArgument(
                "fuzz case line " + std::to_string(lineno) +
                ": expected key=value");
        const std::string key = body.substr(0, eq);
        const std::string val = body.substr(eq + 1);

        bool ok = true;
        uint64_t u = 0;
        if (key == "seed") {
            ok = parse_u64(val, c.seed);
            saw_seed = ok;
        } else if (key == "maxInsts") {
            ok = parse_u64(val, c.maxInsts);
        } else if (key == "rarSharing") {
            ok = parse_f(val, c.params.rarSharing);
        } else if (key == "storeIntervention") {
            ok = parse_f(val, c.params.storeIntervention);
        } else if (key == "chaseDepth") {
            ok = parse_u64(val, u);
            c.params.chaseDepth = (uint32_t)u;
        } else if (key == "workingSetWords") {
            ok = parse_u64(val, c.params.workingSetWords);
        } else if (key == "branchEntropy") {
            ok = parse_f(val, c.params.branchEntropy);
        } else if (key == "depChainLength") {
            ok = parse_u64(val, u);
            c.params.depChainLength = (uint32_t)u;
        } else if (key == "addrPick") {
            Result<AddressPick> pick = parseAddressPick(val);
            if (!pick.ok())
                return pick.status();
            c.params.addrPick = *pick;
        } else if (key == "planEntries") {
            ok = parse_u64(val, c.params.planEntries);
        } else if (key == "accessesPerCall") {
            ok = parse_u64(val, c.params.accessesPerCall);
        } else if (key == "outerIters") {
            ok = parse_u64(val, c.params.outerIters);
        } else if (key == "fpData") {
            ok = parse_u64(val, u) && u <= 1;
            c.params.fpData = u == 1;
        } else {
            return Status::invalidArgument(
                "fuzz case line " + std::to_string(lineno) +
                ": unknown key '" + key + "'");
        }
        if (!ok)
            return Status::invalidArgument(
                "fuzz case line " + std::to_string(lineno) +
                ": bad value for '" + key + "'");
    }

    if (!saw_seed)
        return Status::invalidArgument("fuzz case is missing 'seed'");
    if (c.maxInsts < kMinMaxInsts || c.maxInsts > kMaxMaxInsts)
        return Status::invalidArgument(
            "maxInsts out of the fuzzable range");
    const Status valid = c.params.validate();
    if (!valid.ok())
        return valid;
    return c;
}

} // namespace rarpred
