/**
 * @file
 * Dependence-stream and value/address locality analyses.
 *
 * Implements the measurements of the paper's Section 2 (RAR memory
 * dependence locality, Figure 2) and Sections 5.4/5.5 (address and
 * value locality breakdowns, Figure 7).
 */

#ifndef RARPRED_ANALYSIS_LOCALITY_HH_
#define RARPRED_ANALYSIS_LOCALITY_HH_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/ddt.hh"
#include "vm/trace.hh"

namespace rarpred {

/**
 * Measures memory-dependence-locality(n) of the RAR dependence stream
 * (Section 2).
 *
 * RAR dependences are tracked with the paper's source-only definition:
 * for each address, the *earliest* load since the last store to that
 * address is the source; every subsequent load is a sink of that
 * source. A store to the address ends the chain.
 *
 * memory-dependence-locality(n) is the probability, over all dynamic
 * sink loads, that the (source PC, sink PC) dependence experienced was
 * among the last n *unique* RAR dependences experienced by previous
 * executions of the same static (sink) load.
 *
 * The *address window* bounds how many unique load addresses the
 * detection mechanism can remember (Figure 2(b) uses 4K); 0 models the
 * infinite window of Figure 2(a).
 */
class RarLocalityAnalyzer : public TraceSink
{
  public:
    /**
     * @param window_entries Address window size (0 = infinite).
     * @param max_n Largest locality depth measured (Figure 2 uses 4).
     */
    explicit RarLocalityAnalyzer(size_t window_entries = 0,
                                 unsigned max_n = 4);

    void onInst(const DynInst &di) override;

    /**
     * @return locality(n) for n in 1..maxN as fractions over all
     *         dynamic sink-load executions.
     */
    std::vector<double> locality() const;

    /** @return number of dynamic loads that experienced a RAR dep. */
    uint64_t sinkExecutions() const { return sinkExecs_; }

    /** @return total dynamic loads observed. */
    uint64_t totalLoads() const { return loads_; }

  private:
    DependenceDetector detector_;
    unsigned maxN_;
    /** Per static sink PC: source PCs, most recent first, unique. */
    std::unordered_map<uint64_t, std::vector<uint64_t>> history_;
    std::vector<uint64_t> hitsAtDepth_; ///< hitsAtDepth_[i] = hits at pos i
    uint64_t sinkExecs_ = 0;
    uint64_t loads_ = 0;
};

/**
 * Measures the working set of RAR dependences per static load — the
 * second half of Section 2's argument: locality is high *and* each
 * load has few distinct dependences, so small PC-indexed tables
 * suffice.
 */
class DependenceWorkingSetAnalyzer : public TraceSink
{
  public:
    /** @param window_entries Address window (0 = infinite). */
    explicit DependenceWorkingSetAnalyzer(size_t window_entries = 0);

    void onInst(const DynInst &di) override;

    /**
     * @return fraction of static sink loads whose lifetime-unique
     *         source count is <= @p n.
     */
    double fractionWithWorkingSetAtMost(unsigned n) const;

    /** @return mean unique sources per static sink load. */
    double meanWorkingSet() const;

    /** @return number of static loads that were RAR sinks. */
    size_t staticSinks() const { return sources_.size(); }

  private:
    DependenceDetector detector_;
    /** Per static sink PC: set of distinct source PCs seen. */
    std::unordered_map<uint64_t, std::set<uint64_t>> sources_;
};

/** Dependence status categories used by the Figure 7 breakdowns. */
enum class DepCategory : uint8_t
{
    Raw = 0,
    Rar = 1,
    None = 2,
};

/** Locality fractions by dependence category (Figure 7 bars). */
struct LocalityBreakdown
{
    uint64_t loads = 0;
    /** Dynamic loads per category. */
    uint64_t byCategory[3] = {0, 0, 0};
    /** Dynamic loads per category that also exhibited locality. */
    uint64_t localByCategory[3] = {0, 0, 0};

    /** Overall locality as a fraction of all loads. */
    double
    localityFraction() const
    {
        uint64_t local =
            localByCategory[0] + localByCategory[1] + localByCategory[2];
        return loads == 0 ? 0.0 : (double)local / (double)loads;
    }

    /** Locality fraction of @p cat over all loads. */
    double
    fractionOf(DepCategory cat) const
    {
        return loads == 0 ? 0.0
                          : (double)localByCategory[(int)cat] /
                                (double)loads;
    }
};

/**
 * Measures address locality (Section 5.4) and value locality
 * (Section 5.5) per load, broken down by the dependence status a
 * reference DDT detects for that load (RAW, RAR, or none).
 *
 * Address locality: the load accesses the same address in two
 * consecutive executions. Value locality: it reads the same value.
 */
class AddressValueLocalityAnalyzer : public TraceSink
{
  public:
    /** @param ddt Reference DDT configuration (paper: 128 entries). */
    explicit AddressValueLocalityAnalyzer(const DdtConfig &ddt = {});

    void onInst(const DynInst &di) override;

    const LocalityBreakdown &address() const { return addr_; }
    const LocalityBreakdown &value() const { return value_; }

  private:
    struct LastSeen
    {
        bool valid = false;
        uint64_t addr = 0;
        uint64_t value = 0;
    };

    DependenceDetector detector_;
    std::unordered_map<uint64_t, LastSeen> last_;
    LocalityBreakdown addr_;
    LocalityBreakdown value_;
};

} // namespace rarpred

#endif // RARPRED_ANALYSIS_LOCALITY_HH_
