/**
 * @file
 * Instruction-mix counter (Table 5.1 columns).
 */

#ifndef RARPRED_ANALYSIS_INST_MIX_HH_
#define RARPRED_ANALYSIS_INST_MIX_HH_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "vm/trace.hh"

namespace rarpred {

/** Counts the dynamic instruction mix of a trace. */
class InstMixCounter : public TraceSink
{
  public:
    void
    onInst(const DynInst &di) override
    {
        ++total_;
        if (di.isLoad())
            ++loads_;
        else if (di.isStore())
            ++stores_;
        else if (di.isControl())
            ++control_;
        switch (di.instClass()) {
          case InstClass::FpAdd:
          case InstClass::FpMulS:
          case InstClass::FpMulD:
          case InstClass::FpDivS:
          case InstClass::FpDivD:
            ++fpOps_;
            break;
          default:
            break;
        }
    }

    uint64_t total() const { return total_; }
    uint64_t loads() const { return loads_; }
    uint64_t stores() const { return stores_; }
    uint64_t control() const { return control_; }
    uint64_t fpOps() const { return fpOps_; }

    double
    loadFraction() const
    {
        return total_ == 0 ? 0.0 : (double)loads_ / (double)total_;
    }

    double
    storeFraction() const
    {
        return total_ == 0 ? 0.0 : (double)stores_ / (double)total_;
    }

  private:
    uint64_t total_ = 0;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t control_ = 0;
    uint64_t fpOps_ = 0;
};

/** Fans one trace out to several sinks. */
class TeeSink : public TraceSink
{
  public:
    /** @param sinks Sinks to forward to; must outlive the tee. */
    explicit TeeSink(std::initializer_list<TraceSink *> sinks)
        : sinks_(sinks)
    {}

    void
    onInst(const DynInst &di) override
    {
        for (auto *s : sinks_)
            s->onInst(di);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace rarpred

#endif // RARPRED_ANALYSIS_INST_MIX_HH_
