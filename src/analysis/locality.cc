#include "analysis/locality.hh"

#include <algorithm>

namespace rarpred {

namespace {

/** RAR-only detection: stores end chains, loads are tracked. */
DdtConfig
rarWindowConfig(size_t window_entries)
{
    DdtConfig config;
    config.entries = window_entries;
    config.trackLoads = true;
    config.trackStores = false; // stores erase, do not occupy
    return config;
}

} // namespace

RarLocalityAnalyzer::RarLocalityAnalyzer(size_t window_entries,
                                         unsigned max_n)
    : detector_(rarWindowConfig(window_entries)), maxN_(max_n),
      hitsAtDepth_(max_n, 0)
{
}

void
RarLocalityAnalyzer::onInst(const DynInst &di)
{
    if (di.isStore()) {
        detector_.onStore(di.pc, di.eaddr);
        return;
    }
    if (!di.isLoad())
        return;
    ++loads_;
    auto dep = detector_.onLoad(di.pc, di.eaddr);
    if (!dep || dep->type != DepType::Rar)
        return;

    ++sinkExecs_;
    auto &hist = history_[dep->sinkPc];
    auto it = std::find(hist.begin(), hist.end(), dep->sourcePc);
    if (it != hist.end()) {
        size_t depth = (size_t)(it - hist.begin());
        if (depth < maxN_)
            ++hitsAtDepth_[depth];
        hist.erase(it);
    }
    hist.insert(hist.begin(), dep->sourcePc);
    // Keep a little more history than we report, so the MRU order
    // among the top maxN_ entries stays exact.
    if (hist.size() > maxN_ * 4)
        hist.pop_back();
}

std::vector<double>
RarLocalityAnalyzer::locality() const
{
    std::vector<double> result(maxN_, 0.0);
    uint64_t cumulative = 0;
    for (unsigned n = 0; n < maxN_; ++n) {
        cumulative += hitsAtDepth_[n];
        result[n] = sinkExecs_ == 0
                        ? 0.0
                        : (double)cumulative / (double)sinkExecs_;
    }
    return result;
}

DependenceWorkingSetAnalyzer::DependenceWorkingSetAnalyzer(
    size_t window_entries)
    : detector_(rarWindowConfig(window_entries))
{
}

void
DependenceWorkingSetAnalyzer::onInst(const DynInst &di)
{
    if (di.isStore()) {
        detector_.onStore(di.pc, di.eaddr);
        return;
    }
    if (!di.isLoad())
        return;
    auto dep = detector_.onLoad(di.pc, di.eaddr);
    if (dep && dep->type == DepType::Rar)
        sources_[dep->sinkPc].insert(dep->sourcePc);
}

double
DependenceWorkingSetAnalyzer::fractionWithWorkingSetAtMost(
    unsigned n) const
{
    if (sources_.empty())
        return 0.0;
    size_t within = 0;
    for (const auto &[pc, srcs] : sources_) {
        (void)pc;
        within += srcs.size() <= n;
    }
    return (double)within / (double)sources_.size();
}

double
DependenceWorkingSetAnalyzer::meanWorkingSet() const
{
    if (sources_.empty())
        return 0.0;
    size_t total = 0;
    for (const auto &[pc, srcs] : sources_) {
        (void)pc;
        total += srcs.size();
    }
    return (double)total / (double)sources_.size();
}

AddressValueLocalityAnalyzer::AddressValueLocalityAnalyzer(
    const DdtConfig &ddt)
    : detector_(ddt)
{
}

void
AddressValueLocalityAnalyzer::onInst(const DynInst &di)
{
    if (di.isStore()) {
        detector_.onStore(di.pc, di.eaddr);
        return;
    }
    if (!di.isLoad())
        return;

    auto dep = detector_.onLoad(di.pc, di.eaddr);
    DepCategory cat = DepCategory::None;
    if (dep)
        cat = dep->type == DepType::Raw ? DepCategory::Raw
                                        : DepCategory::Rar;

    auto &seen = last_[di.pc];

    ++addr_.loads;
    ++value_.loads;
    ++addr_.byCategory[(int)cat];
    ++value_.byCategory[(int)cat];
    if (seen.valid) {
        if (seen.addr == di.eaddr)
            ++addr_.localByCategory[(int)cat];
        if (seen.value == di.value)
            ++value_.localByCategory[(int)cat];
    }
    seen.valid = true;
    seen.addr = di.eaddr;
    seen.value = di.value;
}

} // namespace rarpred
