#include "service/daemon.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <limits>

#include "common/io_util.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/fleet_dispatcher.hh"
#include "driver/sim_job_runner.hh"
#include "driver/sim_snapshot.hh"
#include "driver/stats_merger.hh"
#include "driver/worker_pool.hh"
#include "faultinject/driver_faults.hh"

namespace rarpred::service {

namespace {

Status
sendFrame(int fd, FrameType type, const std::vector<uint8_t> &payload)
{
    // Refuse gracefully instead of tripping encodeFrame's bound
    // assert: an oversized reply must cost one connection, never the
    // daemon. Message-level field bounds (proto.cc writeString) make
    // this unreachable today; it is the backstop.
    if (payload.size() > kMaxFramePayload)
        return Status::internal(
            "reply payload of " + std::to_string(payload.size()) +
            " bytes exceeds the frame bound");
    const std::vector<uint8_t> bytes = encodeFrame(type, payload);
    // sendFull is MSG_NOSIGNAL + EINTR-safe (common/io_util.hh); with
    // the process-wide SIGPIPE ignore in serve() a disconnected peer
    // is a recoverable error, never a process kill.
    return sendFull(fd, bytes.data(), bytes.size());
}

void
sendErrorReply(int fd, const Status &error)
{
    ErrorReplyMsg msg;
    msg.code = (uint8_t)error.code();
    msg.message = error.message();
    // Best effort: the client may already be gone.
    (void)sendFrame(fd, FrameType::ErrorReply, msg.encode());
}

uint64_t
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return (uint64_t)std::chrono::duration_cast<
               std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

ServiceCounterSnapshot
ServiceCounters::snapshot() const
{
    ServiceCounterSnapshot s;
    s.requests = requests.load();
    s.admitted = admitted.load();
    s.shed = shed.load();
    s.deadlineExceeded = deadlineExceeded.load();
    s.breakerOpen = breakerOpen.load();
    s.storeHit = storeHit.load();
    s.storeMiss = storeMiss.load();
    s.storeCorrupt = storeCorrupt.load();
    s.storeWrites = storeWrites.load();
    s.cellsSimulated = cellsSimulated.load();
    s.cellsFailed = cellsFailed.load();
    s.rowsStreamed = rowsStreamed.load();
    s.connDropped = connDropped.load();
    s.protoErrors = protoErrors.load();
    return s;
}

SweepDaemon::SweepDaemon(const DaemonConfig &config)
    : config_(config), store_(config.storeDir),
      breaker_(config.breaker)
{
    driver::TraceCacheConfig cache;
    cache.maxResidentBytes = config.traceBudgetBytes;
    cache.maxResidentTraces = config.traceBudgetTraces;
    traceCache_ = std::make_unique<driver::TraceCache>(cache);
}

SweepDaemon::~SweepDaemon()
{
    stop();
}

Status
SweepDaemon::serve()
{
    if (config_.socketPath.empty() || config_.storeDir.empty())
        return Status::invalidArgument(
            "the daemon needs a socket path and a store directory");
    if (config_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        return Status::invalidArgument("socket path too long");

    // A client that disconnects mid-stream must surface as a write
    // error, not kill the daemon.
    ::signal(SIGPIPE, SIG_IGN);

    RARPRED_RETURN_IF_ERROR(store_.init());

    // --isolate-jobs: bring the worker-process pool up before any
    // request can arrive. start() never fails hard — an unresolvable
    // worker binary or flapping spawns degrade the pool and cells run
    // in-process (byte-identical), so the daemon always comes up.
    if (config_.isolateJobs) {
        driver::WorkerPoolConfig wp;
        wp.workers = config_.workers != 0
                         ? config_.workers
                         : std::max(
                               1u, std::thread::hardware_concurrency());
        wp.heartbeatTimeoutMs = config_.workerHeartbeatTimeoutMs;
        wp.traceBudgetBytes = config_.traceBudgetBytes;
        wp.traceBudgetTraces = config_.traceBudgetTraces;
        workerPool_ = std::make_unique<driver::WorkerPool>(wp);
        RARPRED_RETURN_IF_ERROR(workerPool_->start());
    }

    // --fleet: bring the lease dispatcher up before any request can
    // arrive. start() only fails on a malformed agent list (a CLI
    // error worth surfacing); an unreachable fleet degrades lazily
    // and cells fall back to --isolate-jobs workers or in-process.
    if (!config_.fleet.empty()) {
        driver::FleetConfig fc;
        fc.agents = config_.fleet;
        fc.heartbeatTimeoutMs = config_.workerHeartbeatTimeoutMs;
        fleet_ = std::make_unique<driver::FleetDispatcher>(fc);
        RARPRED_RETURN_IF_ERROR(fleet_->start());
    }

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A stale socket from a killed daemon would make bind fail; the
    // path is ours by contract, so reclaim it.
    ::unlink(config_.socketPath.c_str());
    if (::bind(listenFd_, (const sockaddr *)&addr, sizeof(addr)) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::ioError("bind '" + config_.socketPath +
                               "': " + std::strerror(errno));
    }
    if (::listen(listenFd_, 64) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::ioError(std::string("listen: ") +
                               std::strerror(errno));
    }
    if (::pipe(wakePipe_) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::ioError(std::string("pipe: ") +
                               std::strerror(errno));
    }

    acceptThread_ = std::thread([this] { acceptLoop(); });
    executorThread_ = std::thread([this] { executorLoop(); });
    return Status{};
}

void
SweepDaemon::requestDrain()
{
    if (draining_.exchange(true))
        return;
    // Wake the accept poll and the executor wait; both observe
    // draining_ and wind down.
    if (wakePipe_[1] >= 0) {
        const char byte = 1;
        (void)!::write(wakePipe_[1], &byte, 1);
    }
    queueCv_.notify_all();
}

void
SweepDaemon::awaitShutdown()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (executorThread_.joinable())
        executorThread_.join();
    std::map<uint64_t, std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(handlersMu_);
        handlers.swap(handlers_);
        finishedHandlers_.clear();
    }
    for (auto &[index, thread] : handlers)
        thread.join();
    // No sweep can be running now (executor and handlers joined):
    // stop the pool last so in-flight jobs finished first. stop()
    // reaps every worker pid — a drained daemon leaves no zombies.
    if (fleet_)
        fleet_->stop();
    if (workerPool_)
        workerPool_->stop();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(config_.socketPath.c_str());
    }
    for (int &fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

void
SweepDaemon::stop()
{
    requestDrain();
    awaitShutdown();
}

// ------------------------------------------------------- admission

void
SweepDaemon::acceptLoop()
{
    while (!draining_.load()) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (draining_.load())
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        const uint64_t index = connIndex_.fetch_add(1);
        std::lock_guard<std::mutex> lock(handlersMu_);
        reapFinishedHandlersLocked();
        if (handlers_.size() >= config_.maxConnections) {
            // Connection cap: a flood must not grow one thread per
            // socket. Refuse up front; the client can retry.
            counters_.shed.fetch_add(1);
            sendErrorReply(fd, Status::resourceExhausted(
                                   "too many concurrent "
                                   "connections; retry later"));
            ::close(fd);
            continue;
        }
        handlers_.emplace(index, std::thread([this, fd, index] {
                              handleConnection(fd, index);
                              std::lock_guard<std::mutex> guard(
                                  handlersMu_);
                              finishedHandlers_.push_back(index);
                          }));
    }
}

void
SweepDaemon::reapFinishedHandlersLocked()
{
    for (const uint64_t index : finishedHandlers_) {
        auto it = handlers_.find(index);
        if (it == handlers_.end())
            continue;
        // The handler pushed its index as its last act before
        // returning, so this join completes promptly.
        it->second.join();
        handlers_.erase(it);
    }
    finishedHandlers_.clear();
}

void
SweepDaemon::handleConnection(int fd, uint64_t conn_index)
{
    counters_.requests.fetch_add(1);

    // Read until one complete request frame arrives (or the stream
    // proves torn/corrupt). The decoder never trusts a length it has
    // not CRC-verified the frame for, so a malicious client can cost
    // us at most kMaxFramePayload bytes of buffering.
    FrameDecoder decoder;
    Frame frame;
    bool have = false;
    bool torn = false;
    // The timeout is an *absolute* deadline from accept: a client
    // trickling one byte per poll interval (slowloris) cannot hold
    // this handler open past requestTimeoutMs.
    const auto read_start = std::chrono::steady_clock::now();
    while (!have && !torn) {
        const uint64_t waited = elapsedMs(read_start);
        if (waited >= config_.requestTimeoutMs) {
            torn = true;
            break;
        }
        const uint64_t remaining = config_.requestTimeoutMs - waited;
        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(
            &pfd, 1,
            remaining > (uint64_t)std::numeric_limits<int>::max()
                ? std::numeric_limits<int>::max()
                : (int)remaining);
        if (rc < 0) {
            // A signal — e.g. SIGCHLD from the worker pool reaping a
            // crashed simulation process — interrupts poll without
            // SA_RESTART protection. That is not a torn request;
            // re-poll against the same absolute deadline.
            if (errno == EINTR)
                continue;
            torn = true; // poll failure: give up
            break;
        }
        if (rc == 0) {
            torn = true; // timeout: give up
            break;
        }
        uint8_t buf[4096];
        auto n = recvChunk(fd, buf, sizeof(buf));
        if (!n.ok() || *n == 0) {
            torn = true; // client died mid-send
            break;
        }
        size_t got = *n;
        if (driverFaultFires(DriverFaultPoint::RequestTorn,
                             conn_index)) {
            // Crash drill: behave as if the client died after this
            // (shortened) chunk — the decoder must hold a partial
            // frame and the daemon must answer with a recoverable
            // error, not hang or crash.
            if (got > 1)
                --got;
            (void)decoder.feed(buf, got);
            torn = true;
            break;
        }
        (void)decoder.feed(buf, got);
        const Status s = decoder.next(&frame, &have);
        if (!s.ok()) {
            counters_.protoErrors.fetch_add(1);
            sendErrorReply(fd, s);
            ::close(fd);
            return;
        }
    }
    if (!have) {
        counters_.protoErrors.fetch_add(1);
        sendErrorReply(fd, Status::corruption(
                               "torn request: connection ended "
                               "before a complete frame"));
        ::close(fd);
        return;
    }

    if (frame.type == FrameType::StatusRequest) {
        StatusReplyMsg reply;
        reply.ready = !draining_.load();
        reply.draining = draining_.load();
        {
            std::lock_guard<std::mutex> lock(queueMu_);
            reply.queueDepth = queuedTotal_;
            reply.activeSweeps = activeSweeps_;
        }
        reply.counters = counters_.snapshot();
        (void)sendFrame(fd, FrameType::StatusReply, reply.encode());
        ::close(fd);
        return;
    }
    if (frame.type != FrameType::SweepRequest) {
        counters_.protoErrors.fetch_add(1);
        sendErrorReply(fd, Status::invalidArgument(
                               std::string("unexpected frame '") +
                               frameTypeName(frame.type) + "'"));
        ::close(fd);
        return;
    }

    auto decoded = SweepRequestMsg::decode(frame.payload);
    if (!decoded.ok()) {
        counters_.protoErrors.fetch_add(1);
        sendErrorReply(fd, decoded.status());
        ::close(fd);
        return;
    }

    // Admission control: bounded queues, explicit shedding.
    {
        std::lock_guard<std::mutex> lock(queueMu_);
        if (draining_.load()) {
            counters_.shed.fetch_add(1);
            sendErrorReply(fd, Status::unavailable(
                                   "daemon is draining"));
            ::close(fd);
            return;
        }
        // Tenant names are client-controlled: look up without
        // inserting, so a shed request cannot grow the map.
        const auto qit = queues_.find(decoded->tenant);
        const size_t tenant_depth =
            qit == queues_.end() ? 0 : qit->second.size();
        if (queuedTotal_ >= config_.maxQueue ||
            tenant_depth >= config_.maxQueuePerTenant) {
            counters_.shed.fetch_add(1);
            sendErrorReply(
                fd, Status::resourceExhausted(
                        "sweep queue full (" +
                        std::to_string(queuedTotal_) + " queued, " +
                        std::to_string(tenant_depth) +
                        " for tenant '" + decoded->tenant +
                        "'); retry later"));
            ::close(fd);
            return;
        }
        queues_[decoded->tenant].push_back(
            Pending{std::move(*decoded), fd,
                    std::chrono::steady_clock::now()});
        ++queuedTotal_;
        counters_.admitted.fetch_add(1);
    }
    queueCv_.notify_one();
    // fd ownership moved into the queue; the executor replies.
}

// ------------------------------------------------------ scheduling

bool
SweepDaemon::dequeue(Pending *out)
{
    std::unique_lock<std::mutex> lock(queueMu_);
    queueCv_.wait(lock, [this] {
        return queuedTotal_ > 0 || draining_.load();
    });
    if (queuedTotal_ == 0)
        return false; // draining and empty: executor exits

    // Fair round-robin: resume from the tenant after the last one
    // served, so a tenant with a deep queue cannot starve the rest.
    auto it = queues_.upper_bound(rrNext_);
    for (size_t scanned = 0; scanned <= queues_.size(); ++scanned) {
        if (it == queues_.end())
            it = queues_.begin();
        if (!it->second.empty())
            break;
        ++it;
    }
    rarpred_assert(!it->second.empty());
    rrNext_ = it->first;
    *out = std::move(it->second.front());
    it->second.pop_front();
    // Tenant names are client-controlled; dropping a drained queue
    // keeps the map bounded by the admission cap, not by how many
    // distinct names the daemon ever saw. upper_bound(rrNext_) is
    // happy with an absent key, so round-robin order survives.
    if (it->second.empty())
        queues_.erase(it);
    --queuedTotal_;
    ++activeSweeps_;
    return true;
}

void
SweepDaemon::executorLoop()
{
    Pending p;
    while (dequeue(&p)) {
        runSweepRequest(std::move(p));
        std::lock_guard<std::mutex> lock(queueMu_);
        --activeSweeps_;
    }
}

// ------------------------------------------------------------- run

void
SweepDaemon::runSweepRequest(Pending &&p)
{
    const SweepRequestMsg &req = p.request;
    const size_t num_configs = req.configs.size();
    const size_t n = req.numCells();

    // Resolve every workload up front: an unknown name fails the
    // whole request (there is no partial grid).
    std::vector<const Workload *> workloads;
    for (const std::string &abbrev : req.workloads) {
        auto w = lookupWorkload(abbrev);
        if (!w.ok()) {
            sendErrorReply(p.fd, w.status());
            ::close(p.fd);
            return;
        }
        workloads.push_back(*w);
    }

    // Deadline, measured from admission. Queue time counts: a
    // request that waited its whole budget out is refused before any
    // simulation work is sunk into it.
    const uint64_t deadline_ms = req.deadlineMs != 0
                                     ? req.deadlineMs
                                     : config_.defaultDeadlineMs;
    uint64_t remaining_ms = 0;
    if (deadline_ms != 0) {
        const uint64_t waited = elapsedMs(p.admitted);
        if (waited >= deadline_ms) {
            counters_.deadlineExceeded.fetch_add(1);
            sendErrorReply(p.fd,
                           Status::deadlineExceeded(
                               "deadline of " +
                               std::to_string(deadline_ms) +
                               "ms elapsed while queued"));
            ::close(p.fd);
            return;
        }
        remaining_ms = deadline_ms - waited;
    }

    // Cell plan: store hit, breaker refusal, or simulate.
    std::vector<uint64_t> fingerprints(n);
    std::vector<RowMsg> rows(n);
    std::vector<size_t> to_run; // cell indices needing simulation
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        for (size_t ci = 0; ci < num_configs; ++ci) {
            const size_t cell = wi * num_configs + ci;
            const uint64_t fp = cellFingerprint(
                req.workloads[wi], req.configs[ci], req.scale,
                req.maxInsts);
            fingerprints[cell] = fp;
            rows[cell].cell = cell;

            auto stored = store_.get(fp);
            if (stored.ok()) {
                counters_.storeHit.fetch_add(1);
                rows[cell].fromStore = 1;
                rows[cell].stats = *stored;
                continue;
            }
            if (stored.status().code() == StatusCode::Corruption) {
                // The entry was quarantined; re-simulate and
                // overwrite. Corruption costs work, never answers.
                counters_.storeCorrupt.fetch_add(1);
            } else {
                counters_.storeMiss.fetch_add(1);
            }
            const Status gate = breaker_.allow(fp);
            if (!gate.ok()) {
                counters_.breakerOpen.fetch_add(1);
                rows[cell].errorCode = (uint8_t)gate.code();
                rows[cell].errorMsg = gate.message();
                continue;
            }
            to_run.push_back(cell);
        }
    }

    // Simulate the missing cells on a per-request runner over the
    // shared warm trace cache. Per-request knobs: the remaining
    // deadline becomes the per-job cooperative watchdog.
    if (!to_run.empty()) {
        driver::RunnerConfig rc;
        rc.workers = config_.workers;
        rc.scale = req.scale;
        rc.maxInsts = req.maxInsts;
        rc.maxAttempts = config_.maxAttempts;
        rc.retryBackoffMs = config_.retryBackoffMs;
        rc.jobDeadlineMs = remaining_ms;
        // The shared worker pool (--isolate-jobs; may be null) keeps
        // a crashing cell from taking the daemon — and every queued
        // tenant — down with it; the shared fleet (--fleet; may be
        // null) spreads cells across agent hosts above it.
        driver::SimJobRunner runner(rc, traceCache_.get(),
                                    workerPool_.get(), fleet_.get());

        std::vector<driver::JobSpec> jobs;
        jobs.reserve(to_run.size());
        for (const size_t cell : to_run) {
            const Workload *w = workloads[cell / num_configs];
            const CellConfigMsg &cfg =
                req.configs[cell % num_configs];
            const uint64_t fp = fingerprints[cell];
            RowMsg *row = &rows[cell];
            // One commit path for both execution routes, so a cell
            // computed in a worker process lands byte-identically to
            // one computed in-process. Persist *inside* the job: a
            // kill -9 between cells loses only work in flight, and
            // the write is atomic (temp+fsync+rename).
            auto commit = [this, fp,
                           row](const CpuStats &stats) -> Status {
                row->stats = stats;
                Status put;
                {
                    std::lock_guard<std::mutex> lock(storeMu_);
                    put = store_.put(fp, row->stats);
                }
                if (put.ok()) {
                    counters_.storeWrites.fetch_add(1);
                } else if (put.code() != StatusCode::Unavailable) {
                    return put;
                }
                // Unavailable = disk exhaustion (ENOSPC/quota/fsync):
                // caching is an optimization, not a prerequisite. The
                // computed row is still correct and still served —
                // the cell just is not persisted, so a restart will
                // re-simulate it.
                counters_.cellsSimulated.fetch_add(1);
                breaker_.onSuccess(fp);
                return Status{};
            };
            driver::JobSpec job;
            job.workload = w;
            job.configHash = fp;
            job.run = [&cfg, commit](TraceSource &trace,
                                     Rng &) -> Status {
                CpuConfig core;
                core.memDep = cfg.memDepPolicy();
                OooCpu cpu(core, cfg.toTimingConfig());
                driver::pumpSimulation(trace, cpu);
                return commit(cpu.stats());
            };
            job.procConfig = &cfg;
            job.acceptProc = commit;
            jobs.push_back(std::move(job));
        }
        (void)runner.run(jobs);
        for (const driver::JobFailure &f : runner.quarantined()) {
            const size_t cell = to_run[f.job];
            counters_.cellsFailed.fetch_add(1);
            if (f.error.code() == StatusCode::DeadlineExceeded)
                counters_.deadlineExceeded.fetch_add(1);
            breaker_.onFailure(fingerprints[cell], f.error);
            rows[cell].errorCode = (uint8_t)f.error.code();
            rows[cell].errorMsg = f.error.message();
        }
    }

    // Reply: rows in cell order, then the SweepDone summary. The
    // errors JSON is the same shape finishSweep() emits, built by
    // the same StatsMerger code.
    driver::StatsMerger merger(n);
    SweepDoneMsg done;
    done.cells = n;
    for (size_t cell = 0; cell < n; ++cell) {
        merger.setRowKey(cell,
                         req.workloads[cell / num_configs] + "/cfg" +
                             std::to_string(cell % num_configs));
        if (rows[cell].errorCode != 0) {
            ++done.errors;
            merger.setError(cell, rows[cell].error());
        }
        if (rows[cell].fromStore)
            ++done.storeHits;
    }
    // Bounded at the source so the SweepDone frame always fits the
    // payload bound, even for a max grid where every cell failed.
    done.errorsJson = merger.errorsJson(kMaxErrorsJson);

    bool alive = true;
    for (size_t cell = 0; cell < n && alive; ++cell) {
        if (driverFaultFires(DriverFaultPoint::ConnDrop, cell)) {
            // Crash drill: the client vanishes mid-stream. Abandon
            // this reply; the daemon must keep serving others.
            counters_.connDropped.fetch_add(1);
            alive = false;
            break;
        }
        const Status s = sendFrame(p.fd, FrameType::Row,
                                   rows[cell].encode());
        if (!s.ok()) {
            counters_.connDropped.fetch_add(1);
            alive = false;
            break;
        }
        counters_.rowsStreamed.fetch_add(1);
    }
    if (alive) {
        const Status s =
            sendFrame(p.fd, FrameType::SweepDone, done.encode());
        if (!s.ok())
            counters_.connDropped.fetch_add(1);
    }
    ::close(p.fd);
}

} // namespace rarpred::service
