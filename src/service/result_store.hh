/**
 * @file
 * Persistent content-addressed result store of the sweep service.
 *
 * Each completed (workload, config, scale, maxInsts) cell is one file
 * named by its 64-bit fingerprint (proto.hh cellFingerprint) in the
 * store directory: "<16 hex digits>.rarc". The format follows the
 * repo's binary-file conventions:
 *
 *   u32 magic "RARC"
 *   u32 version (1)
 *   u64 fingerprint        (must match the file name's)
 *   u32 payloadLen
 *   payload: CpuStats as 11 little-endian u64 fields
 *   u32 crc32 over everything before the crc field
 *
 * Writes go through durableWriteFile (temp + fsync + rename + dir
 * fsync), so a SIGKILL between cells leaves every previously written
 * entry intact and never leaves a half-written file under the final
 * name — that is the property the zero-loss restart test leans on.
 *
 * Reads verify magic, version, fingerprint and CRC before returning
 * anything. A corrupt entry is quarantined (renamed to "<name>.corrupt"
 * so it cannot be re-read) and reported as Corruption; the daemon then
 * re-simulates the cell and overwrites the entry — corruption costs
 * work, never wrong answers.
 *
 * The StoreCorrupt fault point (faultinject/driver_faults.hh) flips
 * one payload byte on the Nth put() so tests can drive that path
 * deterministically.
 */

#ifndef RARPRED_SERVICE_RESULT_STORE_HH_
#define RARPRED_SERVICE_RESULT_STORE_HH_

#include <cstdint>
#include <string>

#include "common/status.hh"
#include "cpu/cpu_config.hh"

namespace rarpred::service {

class ResultStore
{
  public:
    /** @param dir store directory; created by init(). */
    explicit ResultStore(std::string dir);

    /** Create the store directory if missing. */
    Status init();

    /**
     * Look up the cell @p fingerprint.
     * @return the stored stats; NotFound when no entry exists;
     * Corruption when the entry failed verification (the file has
     * been quarantined to "<name>.corrupt" and will read as NotFound
     * from now on).
     */
    Result<CpuStats> get(uint64_t fingerprint) const;

    /**
     * Durably persist @p stats under @p fingerprint, overwriting any
     * existing entry (including a quarantined one's live name).
     */
    Status put(uint64_t fingerprint, const CpuStats &stats);

    /** The entry's on-disk path (whether or not it exists). */
    std::string pathFor(uint64_t fingerprint) const;

    const std::string &dir() const { return dir_; }

    /** put() calls that completed durably (DaemonKill fault index). */
    uint64_t writes() const { return writes_; }

  private:
    std::string dir_;
    uint64_t writes_ = 0;
};

} // namespace rarpred::service

#endif // RARPRED_SERVICE_RESULT_STORE_HH_
