/**
 * @file
 * Thin client of the resident sweep service (rarpredd).
 *
 * One method call is one connection: connect, send one request frame,
 * read the reply stream, close. The client validates every reply
 * frame (the daemon's stream is CRC-framed exactly like the request
 * direction) and maps an ErrorReply onto its carried Status — a shed
 * request surfaces to the caller as ResourceExhausted, a drained
 * daemon as Unavailable, exactly as the daemon classified it.
 *
 * replyTable() renders a completed sweep as the canonical
 * StatsMerger table ("<workload>/cfg<i>.<stat> <value>" rows plus
 * totals). The rendering deliberately excludes reply provenance
 * (fromStore, storeHits): a warm-store reply and a cold one must
 * print byte-identical tables — that is the restart test's oracle.
 */

#ifndef RARPRED_SERVICE_CLIENT_HH_
#define RARPRED_SERVICE_CLIENT_HH_

#include <string>

#include "service/proto.hh"

namespace rarpred::service {

/** A complete sweep reply: one row per cell plus the summary. */
struct SweepReply
{
    std::vector<RowMsg> rows;
    SweepDoneMsg done;
};

class ServiceClient
{
  public:
    /**
     * @p timeout_ms bounds each call end to end — connect, request
     * send, and the complete reply stream share one absolute
     * deadline, so a daemon that accepts the connection but never
     * answers (or stalls mid-stream) surfaces as DeadlineExceeded
     * instead of hanging the client forever. 0 = no deadline.
     */
    explicit ServiceClient(std::string socket_path,
                           uint64_t timeout_ms = 0)
        : socketPath_(std::move(socket_path)), timeoutMs_(timeout_ms)
    {
    }

    /** Health probe: one StatusRequest, one StatusReply. */
    Result<StatusReplyMsg> status() const;

    /**
     * Run @p request and collect the whole reply stream. Non-OK when
     * the daemon rejected the request (the ErrorReply's status), the
     * connection died mid-stream, or a reply frame failed
     * verification. Per-cell failures are *not* an error here: they
     * arrive as rows with a non-zero errorCode.
     */
    Result<SweepReply> sweep(const SweepRequestMsg &request) const;

    /**
     * Render @p reply as the canonical merged stats table (the same
     * bytes whether rows came from simulation or the store).
     */
    static std::string replyTable(const SweepRequestMsg &request,
                                  const SweepReply &reply);

    const std::string &socketPath() const { return socketPath_; }
    uint64_t timeoutMs() const { return timeoutMs_; }

  private:
    std::string socketPath_;
    uint64_t timeoutMs_ = 0;
};

} // namespace rarpred::service

#endif // RARPRED_SERVICE_CLIENT_HH_
