/**
 * @file
 * Per-cell circuit breaker of the sweep service.
 *
 * A cell (keyed by its content fingerprint, proto.hh cellFingerprint)
 * that keeps failing — crashing job body, blown watchdog deadline —
 * would otherwise burn its full retry/quarantine budget on *every*
 * request that names it, letting one poisoned configuration starve
 * well-behaved tenants. The breaker sits in front of the runner:
 *
 *  - closed: attempts pass through; consecutive failures are counted.
 *  - open:   after Config::openAfter consecutive failures, attempts
 *            are refused immediately (the request's row carries the
 *            last observed error, counter service.breaker_open++).
 *  - half-open: every Config::probeEvery-th refused attempt is let
 *            through as a probe; one success closes the breaker and
 *            clears the count, a failure re-opens it.
 *
 * This is the same philosophy as the runner's quarantine (PR 3), one
 * level up: quarantine bounds the damage of a bad cell *within* one
 * sweep, the breaker bounds it *across* requests of a long-lived
 * daemon. All methods are thread-safe.
 */

#ifndef RARPRED_SERVICE_CIRCUIT_BREAKER_HH_
#define RARPRED_SERVICE_CIRCUIT_BREAKER_HH_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/status.hh"

namespace rarpred::service {

class CircuitBreaker
{
  public:
    struct Config
    {
        /** Consecutive failures that open a cell's breaker. */
        unsigned openAfter = 3;
        /** Let every Nth blocked attempt through as a probe. */
        unsigned probeEvery = 4;
    };

    CircuitBreaker() = default;

    explicit CircuitBreaker(const Config &config) : config_(config) {}

    /**
     * May an attempt at @p fingerprint proceed?
     * @return OK (closed, or a half-open probe), or FailedPrecondition
     * carrying the cell's last error when the breaker holds it open.
     */
    Status allow(uint64_t fingerprint);

    /** Report an attempt outcome for @p fingerprint. */
    void onSuccess(uint64_t fingerprint);
    void onFailure(uint64_t fingerprint, const Status &error);

    /** Attempts refused so far (== service.breaker_open). */
    uint64_t refusals() const;

  private:
    struct Cell
    {
        unsigned consecutiveFailures = 0;
        uint64_t blockedSinceOpen = 0;
        Status lastError;
    };

    Config config_{};
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, Cell> cells_;
    uint64_t refusals_ = 0;
};

} // namespace rarpred::service

#endif // RARPRED_SERVICE_CIRCUIT_BREAKER_HH_
