#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/io_util.hh"
#include "driver/stats_merger.hh"

namespace rarpred::service {

namespace {

using Clock = std::chrono::steady_clock;

/** RAII connection to the daemon's socket. */
class Connection
{
  public:
    /**
     * Connect within @p timeout_ms and remember the absolute
     * deadline: every subsequent recvFrame() draws from the same
     * budget, so connect + request + reply together observe one
     * end-to-end timeout. 0 = no deadline.
     */
    static Result<Connection>
    open(const std::string &path, uint64_t timeout_ms)
    {
        if (path.size() >= sizeof(sockaddr_un{}.sun_path))
            return Status::invalidArgument("socket path too long");
        const Clock::time_point deadline =
            timeout_ms == 0
                ? Clock::time_point{}
                : Clock::now() + std::chrono::milliseconds(timeout_ms);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return Status::ioError(std::string("socket: ") +
                                   std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        const Status connected = rarpred::connectDeadline(
            fd, (const sockaddr *)&addr, sizeof(addr), timeout_ms);
        if (!connected.ok()) {
            ::close(fd);
            return Status(connected.code(),
                          "connect '" + path +
                              "': " + connected.message());
        }
        return Connection(fd, deadline);
    }

    Connection(Connection &&other) noexcept
        : fd_(other.fd_), deadline_(other.deadline_)
    {
        other.fd_ = -1;
    }
    Connection &operator=(Connection &&) = delete;
    Connection(const Connection &) = delete;

    ~Connection()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    Status
    sendFrame(FrameType type, const std::vector<uint8_t> &payload)
    {
        // Backstop for encodeFrame's bound: a request too big to
        // frame is the caller's bug, reported as a Status — the
        // client must never abort on it.
        if (payload.size() > kMaxFramePayload)
            return Status::invalidArgument(
                "request payload of " +
                std::to_string(payload.size()) +
                " bytes exceeds the frame bound");
        const std::vector<uint8_t> bytes = encodeFrame(type, payload);
        // sendFull is MSG_NOSIGNAL + EINTR-safe: a daemon that died
        // between accept and read surfaces as a Status, not SIGPIPE.
        return rarpred::sendFull(fd_, bytes.data(), bytes.size());
    }

    /**
     * Block until the next verified frame (or stream end/error),
     * never past the connection's end-to-end deadline.
     */
    Result<Frame>
    recvFrame()
    {
        Frame frame;
        bool have = false;
        for (;;) {
            RARPRED_RETURN_IF_ERROR(decoder_.next(&frame, &have));
            if (have)
                return frame;
            if (deadline_ != Clock::time_point{}) {
                const auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(deadline_ -
                                                   Clock::now())
                        .count();
                if (left <= 0)
                    return Status::deadlineExceeded(
                        "reply deadline expired");
                auto readable =
                    rarpred::pollReadable(fd_, (uint64_t)left);
                RARPRED_RETURN_IF_ERROR(readable.status());
                if (!*readable)
                    return Status::deadlineExceeded(
                        "reply deadline expired");
            }
            uint8_t buf[4096];
            auto n = rarpred::recvChunk(fd_, buf, sizeof(buf));
            RARPRED_RETURN_IF_ERROR(n.status());
            if (*n == 0)
                return Status::unavailable(
                    "connection closed mid-reply");
            RARPRED_RETURN_IF_ERROR(decoder_.feed(buf, *n));
        }
    }

  private:
    Connection(int fd, Clock::time_point deadline)
        : fd_(fd), deadline_(deadline)
    {
    }

    int fd_;
    Clock::time_point deadline_; ///< epoch value = no deadline
    FrameDecoder decoder_;
};

/** Map a reply frame that should not terminate the stream. */
Status
unexpectedFrame(const Frame &frame)
{
    if (frame.type == FrameType::ErrorReply) {
        auto err = ErrorReplyMsg::decode(frame.payload);
        if (!err.ok())
            return err.status();
        return err->error();
    }
    return Status::corruption(std::string("unexpected reply frame '") +
                              frameTypeName(frame.type) + "'");
}

} // namespace

Result<StatusReplyMsg>
ServiceClient::status() const
{
    auto conn = Connection::open(socketPath_, timeoutMs_);
    RARPRED_RETURN_IF_ERROR(conn.status());
    RARPRED_RETURN_IF_ERROR(
        conn->sendFrame(FrameType::StatusRequest, {}));
    auto frame = conn->recvFrame();
    RARPRED_RETURN_IF_ERROR(frame.status());
    if (frame->type != FrameType::StatusReply)
        return unexpectedFrame(*frame);
    return StatusReplyMsg::decode(frame->payload);
}

Result<SweepReply>
ServiceClient::sweep(const SweepRequestMsg &request) const
{
    RARPRED_RETURN_IF_ERROR(request.validate());
    auto conn = Connection::open(socketPath_, timeoutMs_);
    RARPRED_RETURN_IF_ERROR(conn.status());
    RARPRED_RETURN_IF_ERROR(
        conn->sendFrame(FrameType::SweepRequest, request.encode()));

    SweepReply reply;
    const size_t n = request.numCells();
    for (;;) {
        auto frame = conn->recvFrame();
        RARPRED_RETURN_IF_ERROR(frame.status());
        if (frame->type == FrameType::Row) {
            auto row = RowMsg::decode(frame->payload);
            RARPRED_RETURN_IF_ERROR(row.status());
            if (row->cell != reply.rows.size() || row->cell >= n)
                return Status::corruption(
                    "reply rows out of order");
            reply.rows.push_back(std::move(*row));
            continue;
        }
        if (frame->type == FrameType::SweepDone) {
            auto done = SweepDoneMsg::decode(frame->payload);
            RARPRED_RETURN_IF_ERROR(done.status());
            reply.done = std::move(*done);
            if (reply.rows.size() != n ||
                reply.done.cells != n)
                return Status::corruption(
                    "reply ended with " +
                    std::to_string(reply.rows.size()) + " of " +
                    std::to_string(n) + " rows");
            return reply;
        }
        return unexpectedFrame(*frame);
    }
}

std::string
ServiceClient::replyTable(const SweepRequestMsg &request,
                          const SweepReply &reply)
{
    const size_t num_configs = request.configs.size();
    driver::StatsMerger merger(reply.rows.size());
    for (const RowMsg &row : reply.rows) {
        const size_t cell = row.cell;
        merger.setRowKey(cell,
                         request.workloads[cell / num_configs] +
                             "/cfg" +
                             std::to_string(cell % num_configs));
        if (row.errorCode != 0) {
            merger.setError(cell, row.error());
            continue;
        }
        const CpuStats &s = row.stats;
        merger.recordCount(cell, "instructions", s.instructions);
        merger.recordCount(cell, "cycles", s.cycles);
        merger.recordCount(cell, "loads", s.loads);
        merger.recordCount(cell, "stores", s.stores);
        merger.recordCount(cell, "branchMispredicts",
                           s.branchMispredicts);
        merger.recordCount(cell, "memOrderViolations",
                           s.memOrderViolations);
        merger.recordCount(cell, "valueSpecUsed", s.valueSpecUsed);
        merger.recordCount(cell, "valueSpecCorrect",
                           s.valueSpecCorrect);
        merger.recordCount(cell, "valueSpecWrong", s.valueSpecWrong);
        merger.recordCount(cell, "squashes", s.squashes);
        merger.recordCount(cell, "specCyclesSaved",
                           s.specCyclesSaved);
    }
    return merger.serialize();
}

} // namespace rarpred::service
