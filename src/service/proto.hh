/**
 * @file
 * Wire protocol of the resident sweep service (rarpredd).
 *
 * Transport is a local Unix-domain stream socket; on top of it runs a
 * length-prefixed, CRC-32-framed message protocol following the
 * repo's binary-format conventions (trace v2, RARJ journal, RARS
 * snapshots): little-endian scalars, explicit lengths, CRC-guarded
 * frames.
 *
 * Frame layout:
 *   u32 magic "RARF"
 *   u8  type           (FrameType)
 *   u32 payloadLen     (<= kMaxFramePayload)
 *   payloadLen bytes of payload
 *   u32 crc32 over {type, payloadLen, payload}
 *
 * A connection carries exactly one request and its reply stream: a
 * SweepRequest is answered by one Row frame per (workload, config)
 * cell in cell order, terminated by a SweepDone frame; a
 * StatusRequest by a single StatusReply. Any server-side rejection
 * (shed load, deadline, malformed request) is a single ErrorReply.
 *
 * The decoder is deliberately paranoid: wrong magic, oversized
 * length, unknown type, or a CRC mismatch are *recoverable* protocol
 * errors (Status, never a crash or unbounded allocation) that latch —
 * a corrupted stream cannot resynchronize, the connection must be
 * dropped. Truncated frames simply wait for more bytes, so a
 * slow-trickling sender is indistinguishable from a fast one.
 * tests/test_service_proto.cc feeds this layer truncated, corrupted,
 * oversized and interleaved frames.
 */

#ifndef RARPRED_SERVICE_PROTO_HH_
#define RARPRED_SERVICE_PROTO_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "cpu/cpu_config.hh"

namespace rarpred::service {

/** Frame magic "RARF", little-endian. */
constexpr uint32_t kFrameMagic = 0x46524152;

/** Hard bound on a frame payload; larger lengths are Corruption. */
constexpr uint32_t kMaxFramePayload = 1u << 20;

/**
 * Bound on every short string field (tenant, workload abbreviation,
 * error message). Encode and decode enforce the *same* bound: the
 * encoder truncates an oversized field (appending kTruncationMarker)
 * so that everything a conforming peer emits decodes; the decoder
 * rejects anything longer as Corruption.
 */
constexpr uint32_t kMaxString = 4096;

/** Suffix the encoder leaves on a string it had to truncate. */
constexpr char kTruncationMarker[] = "...[truncated]";

/**
 * Bound on the SweepDone errorsJson field — wider than kMaxString
 * because a worst-case grid (256x256 cells, all failed) legitimately
 * produces a long report, but still well under kMaxFramePayload.
 * The daemon bounds the field at the source with
 * StatsMerger::errorsJson(kMaxErrorsJson), which drops whole entries
 * (appending {"omitted":N}) so the bounded report stays valid JSON.
 */
constexpr uint32_t kMaxErrorsJson = 1u << 19;

/** Message kinds. Requests are < 16, replies >= 16. */
enum class FrameType : uint8_t
{
    SweepRequest = 1,  ///< a grid of (workload, config) cells
    StatusRequest = 2, ///< health/readiness probe
    JobRequest = 3,    ///< one cell dispatched to a worker process
    LeaseRequest = 4,  ///< one cell leased to a fleet agent
    Row = 16,          ///< one cell's CpuStats (or its error)
    SweepDone = 17,    ///< terminates a row stream; summary counts
    ErrorReply = 18,   ///< whole-request failure (shed, deadline, ...)
    StatusReply = 19,  ///< counters + readiness
    JobResult = 20,    ///< a worker's answer to one JobRequest
    WorkerHello = 21,  ///< worker liveness announcement after exec
    WorkerHeartbeat = 22, ///< mid-job forward-progress beacon
    AgentHello = 23,   ///< fleet agent handshake after accept
    AgentHeartbeat = 24, ///< agent-level mid-lease liveness beacon
    LeaseResult = 25,  ///< the agent's answer to one LeaseRequest
};

/** @return true iff @p type is one of the FrameType values. */
bool isKnownFrameType(uint8_t type);

/** @return stable name for @p type ("sweep-request", ...). */
const char *frameTypeName(FrameType type);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::ErrorReply;
    std::vector<uint8_t> payload;
};

/** Encode one frame ready for the wire. */
std::vector<uint8_t> encodeFrame(FrameType type, const void *payload,
                                 size_t len);

inline std::vector<uint8_t>
encodeFrame(FrameType type, const std::vector<uint8_t> &payload)
{
    return encodeFrame(type, payload.data(), payload.size());
}

/**
 * Incremental frame decoder over an untrusted byte stream.
 *
 * feed() bytes as they arrive, then poll next() until it reports no
 * complete frame. Every defect is a latched non-OK Status: once the
 * stream is bad, every further call returns the same error and no
 * frame is ever produced again (a length-prefixed stream cannot be
 * trusted past its first lie).
 */
class FrameDecoder
{
  public:
    /** Append @p len raw bytes. @return the latched stream status. */
    Status feed(const void *data, size_t len);

    /**
     * Try to extract the next complete frame into @p out.
     * @param have set true iff a frame was produced.
     * @return OK (possibly with *have == false: need more bytes), or
     * the latched corruption/overflow error.
     */
    Status next(Frame *out, bool *have);

    /** Bytes buffered but not yet consumed by a complete frame. */
    size_t buffered() const { return buf_.size() - pos_; }

    /** The latched stream status (OK while healthy). */
    const Status &status() const { return latched_; }

  private:
    Status fail(Status s);

    std::vector<uint8_t> buf_;
    size_t pos_ = 0; ///< start of the first unconsumed byte
    Status latched_;
};

// --------------------------------------------------------- messages

/**
 * One configuration point of a sweep grid: everything needed to
 * build the timing core and its cloaking attachment. Kept as raw
 * scalars (not the in-memory config structs) so the wire format is
 * explicit and every enum is range-checked on decode — a fuzzed
 * request must never reach a table constructor that panics.
 */
struct CellConfigMsg
{
    uint8_t cloakEnabled = 0; ///< 0: bare base core
    uint8_t mode = 2;         ///< CloakingMode (RawPlusRar)
    uint8_t recovery = 0;     ///< RecoveryModel (Selective)
    uint8_t confidence = 1;   ///< ConfidenceKind (TwoBitAdaptive)
    uint8_t bypassing = 1;
    uint8_t memDep = 0;       ///< MemDepPolicy (Naive)
    uint32_t ddtEntries = 128;
    uint32_t dpntEntries = 8192;
    uint32_t dpntAssoc = 2;
    uint32_t sfEntries = 1024;
    uint32_t sfAssoc = 2;

    /**
     * Range-check every enum and geometry (via
     * CloakingConfig::validate) so toTimingConfig() cannot panic.
     */
    Status validate() const;

    /** Build the validated timing configuration. */
    CloakTimingConfig toTimingConfig() const;

    MemDepPolicy memDepPolicy() const
    {
        return (MemDepPolicy)memDep;
    }
};

/** A sweep request: the grid plus per-request execution knobs. */
struct SweepRequestMsg
{
    std::string tenant = "default"; ///< fair-scheduling identity
    uint32_t scale = 1;
    uint64_t maxInsts = ~0ull;
    /** Whole-request deadline in ms from admission; 0 = none. */
    uint64_t deadlineMs = 0;
    std::vector<std::string> workloads; ///< abbrevs ("li", ...)
    std::vector<CellConfigMsg> configs;

    /** Bounds, non-empty grid, per-cell validate(). Workload name
     *  existence is the daemon's to check (it owns the registry). */
    Status validate() const;

    std::vector<uint8_t> encode() const;
    static Result<SweepRequestMsg> decode(const std::vector<uint8_t> &b);

    size_t numCells() const
    {
        return workloads.size() * configs.size();
    }
};

/** One reply row: cell index + stats, or the cell's error. */
struct RowMsg
{
    uint64_t cell = 0;     ///< wi * configs.size() + ci
    uint8_t fromStore = 0; ///< served from the persistent store
    uint8_t errorCode = 0; ///< StatusCode; != 0 means stats invalid
    std::string errorMsg;
    CpuStats stats{};

    Status error() const
    {
        return Status{(StatusCode)errorCode, errorMsg};
    }

    std::vector<uint8_t> encode() const;
    static Result<RowMsg> decode(const std::vector<uint8_t> &b);
};

/** Row-stream terminator: summary of the request just served. */
struct SweepDoneMsg
{
    uint64_t cells = 0;
    uint64_t errors = 0;
    uint64_t storeHits = 0;
    /** StatsMerger::errorsJson() of the failed rows ("[]" if none) —
     *  the same machine-readable error format finishSweep() emits. */
    std::string errorsJson = "[]";

    std::vector<uint8_t> encode() const;
    static Result<SweepDoneMsg> decode(const std::vector<uint8_t> &b);
};

/** Whole-request rejection (shed, deadline, malformed, draining). */
struct ErrorReplyMsg
{
    uint8_t code = 0; ///< StatusCode
    std::string message;

    Status error() const
    {
        return Status{(StatusCode)code, message};
    }

    std::vector<uint8_t> encode() const;
    static Result<ErrorReplyMsg> decode(const std::vector<uint8_t> &b);
};

/** Everything the service counts, as one snapshot (see STATUS). */
struct ServiceCounterSnapshot
{
    uint64_t requests = 0;         ///< requests read off connections
    uint64_t admitted = 0;         ///< sweeps accepted into the queue
    uint64_t shed = 0;             ///< rejected: queue full or draining
    uint64_t deadlineExceeded = 0; ///< requests/cells past deadline
    uint64_t breakerOpen = 0;      ///< cells refused by the breaker
    uint64_t storeHit = 0;         ///< cells served from the store
    uint64_t storeMiss = 0;        ///< cells simulated (store cold)
    uint64_t storeCorrupt = 0;     ///< store entries rejected by CRC
    uint64_t storeWrites = 0;      ///< cells persisted durably
    uint64_t cellsSimulated = 0;   ///< jobs actually run
    uint64_t cellsFailed = 0;      ///< jobs quarantined by the runner
    uint64_t rowsStreamed = 0;     ///< Row frames written
    uint64_t connDropped = 0;      ///< clients lost mid-stream
    uint64_t protoErrors = 0;      ///< bad frames / torn requests

    /** Write "service.stat value" lines (the repo's stat format). */
    void dump(std::ostream &os) const;
};

/** Health/readiness reply for probes. */
struct StatusReplyMsg
{
    uint8_t ready = 0;    ///< accepting new sweeps
    uint8_t draining = 0; ///< finishing queued work, not admitting
    uint64_t queueDepth = 0;
    uint64_t activeSweeps = 0;
    ServiceCounterSnapshot counters{};

    std::vector<uint8_t> encode() const;
    static Result<StatusReplyMsg> decode(const std::vector<uint8_t> &b);
};

// ------------------------------------------- worker-pool messages
//
// The process-isolated worker pool (driver/worker_pool.hh) reuses
// this CRC-framed envelope over a supervisor<->worker socketpair.
// One JobRequest is answered by exactly one JobResult; while a job
// runs, the worker interleaves WorkerHeartbeat frames so a wedged
// (livelocked, swapped-out) worker is distinguishable from a slow
// one. A worker announces itself with one WorkerHello after exec.

/** Version of the supervisor<->worker job protocol. */
constexpr uint32_t kWorkerProtoVersion = 1;

/**
 * Fault the supervisor asks the worker to self-inject (chaos drills;
 * see faultinject/driver_faults.hh WorkerCrash/WorkerHang/
 * WorkerResultTorn). The *parent* consumes the fault-point firing
 * and forwards the order in the JobRequest, so the injection is
 * exactly-once across retries even though each worker process has
 * its own (unarmed) fault-point table.
 */
enum class WorkerFault : uint8_t
{
    None = 0,
    Crash = 1,      ///< raise(SIGKILL) mid-job
    Hang = 2,       ///< wedge without heartbeats until killed
    TornResult = 3, ///< corrupt one byte of the encoded JobResult
    DupResult = 4,  ///< send the JobResult frame twice (stale-frame
                    ///< drill: the dup arrives before the next job's
                    ///< result and must be dropped, not matched)
};

/** One cell dispatched to a worker process. */
struct JobRequestMsg
{
    uint64_t token = 0; ///< echoed by JobResult/WorkerHeartbeat
    std::string workload; ///< abbrev, resolved via lookupWorkload()
    uint32_t scale = 1;
    uint64_t maxInsts = ~0ull;
    /** Per-attempt deadline the worker enforces itself; 0 = none. */
    uint64_t deadlineMs = 0;
    uint8_t fault = 0; ///< WorkerFault
    CellConfigMsg config;

    Status validate() const;
    std::vector<uint8_t> encode() const;
    static Result<JobRequestMsg> decode(const std::vector<uint8_t> &b);
};

/** The worker's answer to one JobRequest. */
struct JobResultMsg
{
    uint64_t token = 0;
    uint8_t errorCode = 0; ///< StatusCode; != 0 means stats invalid
    std::string errorMsg;
    CpuStats stats{};

    Status error() const
    {
        return Status{(StatusCode)errorCode, errorMsg};
    }

    std::vector<uint8_t> encode() const;
    static Result<JobResultMsg> decode(const std::vector<uint8_t> &b);
};

/** Worker liveness announcement, sent once right after exec. */
struct WorkerHelloMsg
{
    uint64_t pid = 0;
    uint32_t protoVersion = kWorkerProtoVersion;

    std::vector<uint8_t> encode() const;
    static Result<WorkerHelloMsg> decode(const std::vector<uint8_t> &b);
};

/** Mid-job forward-progress beacon. */
struct WorkerHeartbeatMsg
{
    uint64_t token = 0; ///< the job being pumped
    uint64_t seq = 0;   ///< monotone per job

    std::vector<uint8_t> encode() const;
    static Result<WorkerHeartbeatMsg>
    decode(const std::vector<uint8_t> &b);
};

// ------------------------------------------------ fleet messages
//
// The multi-host worker fleet (driver/fleet_dispatcher.hh) speaks
// the same CRC-framed envelope over TCP. An agent (rarpred-agent)
// announces itself with one AgentHello immediately after accepting a
// dispatcher connection; the dispatcher then leases cells to it one
// at a time per connection: one LeaseRequest is answered by exactly
// one LeaseResult, with AgentHeartbeat frames interleaved while the
// lease is in flight so a partitioned or wedged agent is
// distinguishable from a slow one. Dispatch is at-least-once: a
// lease that times out is reassigned, and a late or duplicated
// LeaseResult is deduplicated by cell fingerprint on the dispatcher
// side (the determinism contract makes any second completion
// byte-identical, which the dispatcher asserts).

/** Version of the dispatcher<->agent lease protocol. */
constexpr uint32_t kAgentProtoVersion = 1;

/** Agent handshake, sent once right after a connection is accepted. */
struct AgentHelloMsg
{
    uint64_t pid = 0; ///< agent process id (changes on restart)
    uint32_t protoVersion = kAgentProtoVersion;
    uint32_t slots = 1; ///< worker processes hosted by the agent

    std::vector<uint8_t> encode() const;
    static Result<AgentHelloMsg> decode(const std::vector<uint8_t> &b);
};

/** One cell leased to an agent: the job plus the lease terms. */
struct LeaseRequestMsg
{
    uint64_t leaseId = 0; ///< echoed by heartbeats and the result
    /** Lease duration in ms the dispatcher will wait before it
     *  reassigns the cell; 0 = bounded by heartbeat silence only. */
    uint64_t leaseMs = 0;
    JobRequestMsg job;

    Status validate() const { return job.validate(); }
    std::vector<uint8_t> encode() const;
    static Result<LeaseRequestMsg>
    decode(const std::vector<uint8_t> &b);
};

/** Agent-level liveness beacon while a lease is in flight. */
struct AgentHeartbeatMsg
{
    uint64_t leaseId = 0;
    uint64_t seq = 0; ///< monotone per lease

    std::vector<uint8_t> encode() const;
    static Result<AgentHeartbeatMsg>
    decode(const std::vector<uint8_t> &b);
};

/** The agent's answer to one LeaseRequest. */
struct LeaseResultMsg
{
    uint64_t leaseId = 0;
    JobResultMsg result;

    std::vector<uint8_t> encode() const;
    static Result<LeaseResultMsg>
    decode(const std::vector<uint8_t> &b);
};

/**
 * Content address of one result cell: a stable 64-bit fingerprint of
 * everything that determines its CpuStats — workload identity, the
 * full cell configuration, trace scale and truncation. Two cells
 * with equal fingerprints are the same simulation; the result store
 * and the circuit breaker key on this.
 */
uint64_t cellFingerprint(const std::string &workload,
                         const CellConfigMsg &config, uint32_t scale,
                         uint64_t max_insts);

} // namespace rarpred::service

#endif // RARPRED_SERVICE_PROTO_HH_
