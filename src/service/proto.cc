#include "service/proto.hh"

#include <cstring>
#include <ostream>

#include "common/crc32.hh"
#include "common/statesave.hh"

namespace rarpred::service {

bool
isKnownFrameType(uint8_t type)
{
    switch ((FrameType)type) {
      case FrameType::SweepRequest:
      case FrameType::StatusRequest:
      case FrameType::JobRequest:
      case FrameType::Row:
      case FrameType::SweepDone:
      case FrameType::ErrorReply:
      case FrameType::StatusReply:
      case FrameType::JobResult:
      case FrameType::WorkerHello:
      case FrameType::WorkerHeartbeat:
      case FrameType::LeaseRequest:
      case FrameType::AgentHello:
      case FrameType::AgentHeartbeat:
      case FrameType::LeaseResult:
        return true;
    }
    return false;
}

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::SweepRequest:
        return "sweep-request";
      case FrameType::StatusRequest:
        return "status-request";
      case FrameType::Row:
        return "row";
      case FrameType::SweepDone:
        return "sweep-done";
      case FrameType::ErrorReply:
        return "error-reply";
      case FrameType::StatusReply:
        return "status-reply";
      case FrameType::JobRequest:
        return "job-request";
      case FrameType::JobResult:
        return "job-result";
      case FrameType::WorkerHello:
        return "worker-hello";
      case FrameType::WorkerHeartbeat:
        return "worker-heartbeat";
      case FrameType::LeaseRequest:
        return "lease-request";
      case FrameType::AgentHello:
        return "agent-hello";
      case FrameType::AgentHeartbeat:
        return "agent-heartbeat";
      case FrameType::LeaseResult:
        return "lease-result";
    }
    return "unknown";
}

// ---------------------------------------------------------- framing

std::vector<uint8_t>
encodeFrame(FrameType type, const void *payload, size_t len)
{
    rarpred_assert(len <= kMaxFramePayload);
    std::vector<uint8_t> out;
    out.reserve(4 + 1 + 4 + len + 4);
    const uint32_t magic = kFrameMagic;
    const uint32_t len32 = (uint32_t)len;
    for (int i = 0; i < 4; ++i)
        out.push_back((uint8_t)(magic >> (8 * i)));
    out.push_back((uint8_t)type);
    for (int i = 0; i < 4; ++i)
        out.push_back((uint8_t)(len32 >> (8 * i)));
    const auto *p = static_cast<const uint8_t *>(payload);
    out.insert(out.end(), p, p + len);
    // CRC over {type, payloadLen, payload}: byte 4 onwards.
    const uint32_t crc = crc32(out.data() + 4, out.size() - 4);
    for (int i = 0; i < 4; ++i)
        out.push_back((uint8_t)(crc >> (8 * i)));
    return out;
}

namespace {

uint32_t
readU32(const uint8_t *p)
{
    return (uint32_t)p[0] | ((uint32_t)p[1] << 8) |
           ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
}

} // namespace

Status
FrameDecoder::fail(Status s)
{
    if (latched_.ok())
        latched_ = std::move(s);
    return latched_;
}

Status
FrameDecoder::feed(const void *data, size_t len)
{
    if (!latched_.ok())
        return latched_;
    // Compact the consumed prefix before growing, so a long-lived
    // connection does not accumulate every frame it ever parsed.
    if (pos_ > 0 && pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    } else if (pos_ > 4096) {
        buf_.erase(buf_.begin(), buf_.begin() + (ptrdiff_t)pos_);
        pos_ = 0;
    }
    const auto *p = static_cast<const uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
    return Status{};
}

Status
FrameDecoder::next(Frame *out, bool *have)
{
    *have = false;
    if (!latched_.ok())
        return latched_;
    constexpr size_t kHeader = 4 + 1 + 4; // magic + type + len
    const size_t avail = buf_.size() - pos_;
    if (avail < kHeader)
        return Status{};
    const uint8_t *p = buf_.data() + pos_;
    if (readU32(p) != kFrameMagic)
        return fail(Status::corruption("frame magic mismatch"));
    const uint8_t type = p[4];
    const uint32_t len = readU32(p + 5);
    if (len > kMaxFramePayload)
        return fail(Status::corruption(
            "frame payload length " + std::to_string(len) +
            " exceeds the " + std::to_string(kMaxFramePayload) +
            "-byte bound"));
    if (!isKnownFrameType(type))
        return fail(Status::corruption(
            "unknown frame type " + std::to_string(type)));
    if (avail < kHeader + (size_t)len + 4)
        return Status{}; // truncated so far: wait for more bytes
    const uint32_t want = readU32(p + kHeader + len);
    const uint32_t got = crc32(p + 4, 1 + 4 + len);
    if (want != got)
        return fail(Status::corruption("frame CRC mismatch"));
    out->type = (FrameType)type;
    out->payload.assign(p + kHeader, p + kHeader + len);
    pos_ += kHeader + (size_t)len + 4;
    *have = true;
    return Status{};
}

// --------------------------------------------------- field helpers

namespace {

/**
 * Write a length-prefixed string, truncated to @p bound bytes (with
 * kTruncationMarker) if oversized. Truncating instead of emitting
 * the full field keeps the encode and decode bounds in agreement: a
 * huge error message must degrade to a shorter message, never turn a
 * fully-served reply into a decode-side Corruption.
 */
void
writeString(StateWriter &w, const std::string &s,
            uint32_t bound = kMaxString)
{
    constexpr size_t marker_len = sizeof(kTruncationMarker) - 1;
    static_assert(marker_len < kMaxString);
    if (s.size() <= bound) {
        w.u32((uint32_t)s.size());
        w.bytes(s.data(), s.size());
        return;
    }
    w.u32(bound);
    w.bytes(s.data(), bound - marker_len);
    w.bytes(kTruncationMarker, marker_len);
}

Status
readString(StateReader &r, std::string *out,
           uint32_t bound = kMaxString)
{
    uint32_t len = 0;
    RARPRED_RETURN_IF_ERROR(r.u32(&len));
    if (len > bound)
        return Status::corruption("string field of " +
                                  std::to_string(len) +
                                  " bytes exceeds the bound");
    out->resize(len);
    return r.bytes(out->data(), len);
}

void
writeCpuStats(StateWriter &w, const CpuStats &s)
{
    w.u64(s.instructions);
    w.u64(s.cycles);
    w.u64(s.loads);
    w.u64(s.stores);
    w.u64(s.branchMispredicts);
    w.u64(s.memOrderViolations);
    w.u64(s.valueSpecUsed);
    w.u64(s.valueSpecCorrect);
    w.u64(s.valueSpecWrong);
    w.u64(s.squashes);
    w.u64(s.specCyclesSaved);
}

Status
readCpuStats(StateReader &r, CpuStats *s)
{
    RARPRED_RETURN_IF_ERROR(r.u64(&s->instructions));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->cycles));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->loads));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->stores));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->branchMispredicts));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->memOrderViolations));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->valueSpecUsed));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->valueSpecCorrect));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->valueSpecWrong));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->squashes));
    return r.u64(&s->specCyclesSaved);
}

void
writeCellConfig(StateWriter &w, const CellConfigMsg &c)
{
    w.u8(c.cloakEnabled);
    w.u8(c.mode);
    w.u8(c.recovery);
    w.u8(c.confidence);
    w.u8(c.bypassing);
    w.u8(c.memDep);
    w.u32(c.ddtEntries);
    w.u32(c.dpntEntries);
    w.u32(c.dpntAssoc);
    w.u32(c.sfEntries);
    w.u32(c.sfAssoc);
}

Status
readCellConfig(StateReader &r, CellConfigMsg *c)
{
    RARPRED_RETURN_IF_ERROR(r.u8(&c->cloakEnabled));
    RARPRED_RETURN_IF_ERROR(r.u8(&c->mode));
    RARPRED_RETURN_IF_ERROR(r.u8(&c->recovery));
    RARPRED_RETURN_IF_ERROR(r.u8(&c->confidence));
    RARPRED_RETURN_IF_ERROR(r.u8(&c->bypassing));
    RARPRED_RETURN_IF_ERROR(r.u8(&c->memDep));
    RARPRED_RETURN_IF_ERROR(r.u32(&c->ddtEntries));
    RARPRED_RETURN_IF_ERROR(r.u32(&c->dpntEntries));
    RARPRED_RETURN_IF_ERROR(r.u32(&c->dpntAssoc));
    RARPRED_RETURN_IF_ERROR(r.u32(&c->sfEntries));
    RARPRED_RETURN_IF_ERROR(r.u32(&c->sfAssoc));
    return c->validate();
}

} // namespace

// ------------------------------------------------------ CellConfig

Status
CellConfigMsg::validate() const
{
    if (cloakEnabled > 1 || bypassing > 1)
        return Status::invalidArgument("boolean config field not 0/1");
    if (mode > (uint8_t)CloakingMode::RawPlusRar)
        return Status::invalidArgument("cloaking mode out of range");
    if (recovery > (uint8_t)RecoveryModel::Oracle)
        return Status::invalidArgument("recovery model out of range");
    if (confidence > (uint8_t)ConfidenceKind::TwoBitAdaptive)
        return Status::invalidArgument("confidence kind out of range");
    if (memDep > (uint8_t)MemDepPolicy::Conservative)
        return Status::invalidArgument("memdep policy out of range");
    if (cloakEnabled) {
        CloakingConfig engine;
        engine.mode = (CloakingMode)mode;
        engine.ddt.entries = ddtEntries;
        engine.dpnt.geometry = {dpntEntries, dpntAssoc};
        engine.dpnt.confidence = (ConfidenceKind)confidence;
        engine.sf = {sfEntries, sfAssoc};
        RARPRED_RETURN_IF_ERROR(engine.validate());
    }
    return Status{};
}

CloakTimingConfig
CellConfigMsg::toTimingConfig() const
{
    CloakTimingConfig cloak;
    if (!cloakEnabled)
        return cloak;
    cloak.enabled = true;
    cloak.engine.mode = (CloakingMode)mode;
    cloak.engine.ddt.entries = ddtEntries;
    cloak.engine.dpnt.geometry = {dpntEntries, dpntAssoc};
    cloak.engine.dpnt.confidence = (ConfidenceKind)confidence;
    cloak.engine.sf = {sfEntries, sfAssoc};
    cloak.recovery = (RecoveryModel)recovery;
    cloak.bypassing = bypassing != 0;
    return cloak;
}

// ---------------------------------------------------- SweepRequest

Status
SweepRequestMsg::validate() const
{
    if (tenant.empty() || tenant.size() > 256)
        return Status::invalidArgument(
            "tenant name must be 1..256 bytes");
    if (scale == 0)
        return Status::invalidArgument("scale must be >= 1");
    if (workloads.empty() || configs.empty())
        return Status::invalidArgument(
            "a sweep needs at least one workload and one config");
    if (workloads.size() > 256 || configs.size() > 256)
        return Status::invalidArgument(
            "grid axis exceeds the 256-entry bound");
    for (const std::string &w : workloads)
        if (w.empty() || w.size() > 64)
            return Status::invalidArgument(
                "workload abbreviation must be 1..64 bytes");
    for (const CellConfigMsg &c : configs)
        RARPRED_RETURN_IF_ERROR(c.validate());
    return Status{};
}

std::vector<uint8_t>
SweepRequestMsg::encode() const
{
    StateWriter w;
    writeString(w, tenant);
    w.u32(scale);
    w.u64(maxInsts);
    w.u64(deadlineMs);
    w.u32((uint32_t)workloads.size());
    for (const std::string &wl : workloads)
        writeString(w, wl);
    w.u32((uint32_t)configs.size());
    for (const CellConfigMsg &c : configs)
        writeCellConfig(w, c);
    return w.buffer();
}

Result<SweepRequestMsg>
SweepRequestMsg::decode(const std::vector<uint8_t> &b)
{
    SweepRequestMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(readString(r, &m.tenant));
    RARPRED_RETURN_IF_ERROR(r.u32(&m.scale));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.maxInsts));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.deadlineMs));
    uint32_t n = 0;
    RARPRED_RETURN_IF_ERROR(r.u32(&n));
    if (n > 256)
        return Status::corruption("workload list exceeds the bound");
    m.workloads.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        RARPRED_RETURN_IF_ERROR(readString(r, &m.workloads[i]));
    RARPRED_RETURN_IF_ERROR(r.u32(&n));
    if (n > 256)
        return Status::corruption("config list exceeds the bound");
    m.configs.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        RARPRED_RETURN_IF_ERROR(readCellConfig(r, &m.configs[i]));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after sweep request");
    RARPRED_RETURN_IF_ERROR(m.validate());
    return m;
}

// ------------------------------------------------------------- Row

std::vector<uint8_t>
RowMsg::encode() const
{
    StateWriter w;
    w.u64(cell);
    w.u8(fromStore);
    w.u8(errorCode);
    writeString(w, errorMsg);
    writeCpuStats(w, stats);
    return w.buffer();
}

Result<RowMsg>
RowMsg::decode(const std::vector<uint8_t> &b)
{
    RowMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.cell));
    RARPRED_RETURN_IF_ERROR(r.u8(&m.fromStore));
    RARPRED_RETURN_IF_ERROR(r.u8(&m.errorCode));
    RARPRED_RETURN_IF_ERROR(readString(r, &m.errorMsg));
    RARPRED_RETURN_IF_ERROR(readCpuStats(r, &m.stats));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after row");
    if (m.errorCode > (uint8_t)StatusCode::Unavailable)
        return Status::corruption("row error code out of range");
    return m;
}

// ------------------------------------------------------- SweepDone

std::vector<uint8_t>
SweepDoneMsg::encode() const
{
    StateWriter w;
    w.u64(cells);
    w.u64(errors);
    w.u64(storeHits);
    writeString(w, errorsJson, kMaxErrorsJson);
    return w.buffer();
}

Result<SweepDoneMsg>
SweepDoneMsg::decode(const std::vector<uint8_t> &b)
{
    SweepDoneMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.cells));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.errors));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.storeHits));
    RARPRED_RETURN_IF_ERROR(readString(r, &m.errorsJson,
                                       kMaxErrorsJson));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after sweep-done");
    return m;
}

// ------------------------------------------------------ ErrorReply

std::vector<uint8_t>
ErrorReplyMsg::encode() const
{
    StateWriter w;
    w.u8(code);
    writeString(w, message);
    return w.buffer();
}

Result<ErrorReplyMsg>
ErrorReplyMsg::decode(const std::vector<uint8_t> &b)
{
    ErrorReplyMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u8(&m.code));
    RARPRED_RETURN_IF_ERROR(readString(r, &m.message));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after error reply");
    if (m.code > (uint8_t)StatusCode::Unavailable)
        return Status::corruption("error code out of range");
    return m;
}

// ---------------------------------------------------- StatusReply

void
ServiceCounterSnapshot::dump(std::ostream &os) const
{
    os << "service.requests " << requests << "\n";
    os << "service.admitted " << admitted << "\n";
    os << "service.shed " << shed << "\n";
    os << "service.deadline_exceeded " << deadlineExceeded << "\n";
    os << "service.breaker_open " << breakerOpen << "\n";
    os << "service.store_hit " << storeHit << "\n";
    os << "service.store_miss " << storeMiss << "\n";
    os << "service.store_corrupt " << storeCorrupt << "\n";
    os << "service.store_writes " << storeWrites << "\n";
    os << "service.cells_simulated " << cellsSimulated << "\n";
    os << "service.cells_failed " << cellsFailed << "\n";
    os << "service.rows_streamed " << rowsStreamed << "\n";
    os << "service.conn_dropped " << connDropped << "\n";
    os << "service.proto_errors " << protoErrors << "\n";
}

namespace {

void
writeCounters(StateWriter &w, const ServiceCounterSnapshot &c)
{
    w.u64(c.requests);
    w.u64(c.admitted);
    w.u64(c.shed);
    w.u64(c.deadlineExceeded);
    w.u64(c.breakerOpen);
    w.u64(c.storeHit);
    w.u64(c.storeMiss);
    w.u64(c.storeCorrupt);
    w.u64(c.storeWrites);
    w.u64(c.cellsSimulated);
    w.u64(c.cellsFailed);
    w.u64(c.rowsStreamed);
    w.u64(c.connDropped);
    w.u64(c.protoErrors);
}

Status
readCounters(StateReader &r, ServiceCounterSnapshot *c)
{
    RARPRED_RETURN_IF_ERROR(r.u64(&c->requests));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->admitted));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->shed));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->deadlineExceeded));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->breakerOpen));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->storeHit));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->storeMiss));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->storeCorrupt));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->storeWrites));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->cellsSimulated));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->cellsFailed));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->rowsStreamed));
    RARPRED_RETURN_IF_ERROR(r.u64(&c->connDropped));
    return r.u64(&c->protoErrors);
}

} // namespace

std::vector<uint8_t>
StatusReplyMsg::encode() const
{
    StateWriter w;
    w.u8(ready);
    w.u8(draining);
    w.u64(queueDepth);
    w.u64(activeSweeps);
    writeCounters(w, counters);
    return w.buffer();
}

Result<StatusReplyMsg>
StatusReplyMsg::decode(const std::vector<uint8_t> &b)
{
    StatusReplyMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u8(&m.ready));
    RARPRED_RETURN_IF_ERROR(r.u8(&m.draining));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.queueDepth));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.activeSweeps));
    RARPRED_RETURN_IF_ERROR(readCounters(r, &m.counters));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after status reply");
    return m;
}

// --------------------------------------------------- worker frames

Status
JobRequestMsg::validate() const
{
    if (workload.empty() || workload.size() > 64)
        return Status::invalidArgument(
            "workload abbreviation must be 1..64 bytes");
    if (scale == 0)
        return Status::invalidArgument("scale must be >= 1");
    if (fault > (uint8_t)WorkerFault::DupResult)
        return Status::invalidArgument("worker fault out of range");
    return config.validate();
}

std::vector<uint8_t>
JobRequestMsg::encode() const
{
    StateWriter w;
    w.u64(token);
    writeString(w, workload);
    w.u32(scale);
    w.u64(maxInsts);
    w.u64(deadlineMs);
    w.u8(fault);
    writeCellConfig(w, config);
    return w.buffer();
}

Result<JobRequestMsg>
JobRequestMsg::decode(const std::vector<uint8_t> &b)
{
    JobRequestMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.token));
    RARPRED_RETURN_IF_ERROR(readString(r, &m.workload));
    RARPRED_RETURN_IF_ERROR(r.u32(&m.scale));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.maxInsts));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.deadlineMs));
    RARPRED_RETURN_IF_ERROR(r.u8(&m.fault));
    RARPRED_RETURN_IF_ERROR(readCellConfig(r, &m.config));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after job request");
    RARPRED_RETURN_IF_ERROR(m.validate());
    return m;
}

std::vector<uint8_t>
JobResultMsg::encode() const
{
    StateWriter w;
    w.u64(token);
    w.u8(errorCode);
    writeString(w, errorMsg);
    writeCpuStats(w, stats);
    return w.buffer();
}

Result<JobResultMsg>
JobResultMsg::decode(const std::vector<uint8_t> &b)
{
    JobResultMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.token));
    RARPRED_RETURN_IF_ERROR(r.u8(&m.errorCode));
    RARPRED_RETURN_IF_ERROR(readString(r, &m.errorMsg));
    RARPRED_RETURN_IF_ERROR(readCpuStats(r, &m.stats));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after job result");
    if (m.errorCode > (uint8_t)StatusCode::Unavailable)
        return Status::corruption("job error code out of range");
    return m;
}

std::vector<uint8_t>
WorkerHelloMsg::encode() const
{
    StateWriter w;
    w.u64(pid);
    w.u32(protoVersion);
    return w.buffer();
}

Result<WorkerHelloMsg>
WorkerHelloMsg::decode(const std::vector<uint8_t> &b)
{
    WorkerHelloMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.pid));
    RARPRED_RETURN_IF_ERROR(r.u32(&m.protoVersion));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after worker hello");
    return m;
}

std::vector<uint8_t>
WorkerHeartbeatMsg::encode() const
{
    StateWriter w;
    w.u64(token);
    w.u64(seq);
    return w.buffer();
}

Result<WorkerHeartbeatMsg>
WorkerHeartbeatMsg::decode(const std::vector<uint8_t> &b)
{
    WorkerHeartbeatMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.token));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.seq));
    if (!r.atEnd())
        return Status::corruption(
            "trailing bytes after worker heartbeat");
    return m;
}

// ---------------------------------------------------- fleet frames

std::vector<uint8_t>
AgentHelloMsg::encode() const
{
    StateWriter w;
    w.u64(pid);
    w.u32(protoVersion);
    w.u32(slots);
    return w.buffer();
}

Result<AgentHelloMsg>
AgentHelloMsg::decode(const std::vector<uint8_t> &b)
{
    AgentHelloMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.pid));
    RARPRED_RETURN_IF_ERROR(r.u32(&m.protoVersion));
    RARPRED_RETURN_IF_ERROR(r.u32(&m.slots));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after agent hello");
    if (m.slots == 0 || m.slots > 4096)
        return Status::corruption("agent slot count out of range");
    return m;
}

namespace {

/**
 * Embed an already-encoded sub-message as a length-prefixed blob.
 * The sub-decoder's own trailing-bytes check then applies to exactly
 * the embedded region, so a lease codec cannot mask a torn job.
 */
void
writeEmbedded(StateWriter &w, const std::vector<uint8_t> &bytes)
{
    w.u32((uint32_t)bytes.size());
    w.bytes(bytes.data(), bytes.size());
}

Status
readEmbedded(StateReader &r, std::vector<uint8_t> *out)
{
    uint32_t len = 0;
    RARPRED_RETURN_IF_ERROR(r.u32(&len));
    // A job message is a handful of scalars plus string fields that
    // are themselves kMaxString-bounded; twice that is generous.
    if (len > 2 * kMaxString)
        return Status::corruption(
            "embedded message exceeds the bound");
    out->resize(len);
    return r.bytes(out->data(), len);
}

} // namespace

std::vector<uint8_t>
LeaseRequestMsg::encode() const
{
    StateWriter w;
    w.u64(leaseId);
    w.u64(leaseMs);
    writeEmbedded(w, job.encode());
    return w.buffer();
}

Result<LeaseRequestMsg>
LeaseRequestMsg::decode(const std::vector<uint8_t> &b)
{
    LeaseRequestMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.leaseId));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.leaseMs));
    std::vector<uint8_t> inner;
    RARPRED_RETURN_IF_ERROR(readEmbedded(r, &inner));
    if (!r.atEnd())
        return Status::corruption(
            "trailing bytes after lease request");
    auto job = JobRequestMsg::decode(inner);
    RARPRED_RETURN_IF_ERROR(job.status());
    m.job = std::move(*job);
    return m;
}

std::vector<uint8_t>
AgentHeartbeatMsg::encode() const
{
    StateWriter w;
    w.u64(leaseId);
    w.u64(seq);
    return w.buffer();
}

Result<AgentHeartbeatMsg>
AgentHeartbeatMsg::decode(const std::vector<uint8_t> &b)
{
    AgentHeartbeatMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.leaseId));
    RARPRED_RETURN_IF_ERROR(r.u64(&m.seq));
    if (!r.atEnd())
        return Status::corruption(
            "trailing bytes after agent heartbeat");
    return m;
}

std::vector<uint8_t>
LeaseResultMsg::encode() const
{
    StateWriter w;
    w.u64(leaseId);
    writeEmbedded(w, result.encode());
    return w.buffer();
}

Result<LeaseResultMsg>
LeaseResultMsg::decode(const std::vector<uint8_t> &b)
{
    LeaseResultMsg m;
    StateReader r(b);
    RARPRED_RETURN_IF_ERROR(r.u64(&m.leaseId));
    std::vector<uint8_t> inner;
    RARPRED_RETURN_IF_ERROR(readEmbedded(r, &inner));
    if (!r.atEnd())
        return Status::corruption("trailing bytes after lease result");
    auto result = JobResultMsg::decode(inner);
    RARPRED_RETURN_IF_ERROR(result.status());
    m.result = std::move(*result);
    return m;
}

// ----------------------------------------------------- fingerprint

uint64_t
cellFingerprint(const std::string &workload, const CellConfigMsg &config,
                uint32_t scale, uint64_t max_insts)
{
    // Hash the *canonical wire encoding* of the cell: any field that
    // changes the simulation changes the bytes, so two equal
    // fingerprints name the same deterministic result.
    StateWriter w;
    writeString(w, workload);
    writeCellConfig(w, config);
    w.u32(scale);
    w.u64(max_insts);
    const std::vector<uint8_t> &b = w.buffer();
    uint64_t h = 0xcbf29ce484222325ull; // FNV-1a 64
    for (uint8_t byte : b) {
        h ^= byte;
        h *= 0x100000001b3ull;
    }
    // splitmix64 finalizer: avalanche the low bytes.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

} // namespace rarpred::service
