#include "service/result_store.hh"

#include <sys/stat.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/crc32.hh"
#include "common/statesave.hh"
#include "faultinject/driver_faults.hh"

namespace rarpred::service {

namespace {

constexpr uint32_t kStoreMagic = 0x43524152; // "RARC" little-endian
constexpr uint32_t kStoreVersion = 1;
constexpr uint32_t kPayloadLen = 11 * 8; // CpuStats: 11 u64 fields

void
putStats(StateWriter &w, const CpuStats &s)
{
    w.u64(s.instructions);
    w.u64(s.cycles);
    w.u64(s.loads);
    w.u64(s.stores);
    w.u64(s.branchMispredicts);
    w.u64(s.memOrderViolations);
    w.u64(s.valueSpecUsed);
    w.u64(s.valueSpecCorrect);
    w.u64(s.valueSpecWrong);
    w.u64(s.squashes);
    w.u64(s.specCyclesSaved);
}

Status
getStats(StateReader &r, CpuStats *s)
{
    RARPRED_RETURN_IF_ERROR(r.u64(&s->instructions));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->cycles));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->loads));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->stores));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->branchMispredicts));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->memOrderViolations));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->valueSpecUsed));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->valueSpecCorrect));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->valueSpecWrong));
    RARPRED_RETURN_IF_ERROR(r.u64(&s->squashes));
    return r.u64(&s->specCyclesSaved);
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
    return buf;
}

} // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {}

Status
ResultStore::init()
{
    if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST)
        return Status::ioError("cannot create result store '" + dir_ +
                               "': " + std::strerror(errno));
    return Status{};
}

std::string
ResultStore::pathFor(uint64_t fingerprint) const
{
    return dir_ + "/" + hex16(fingerprint) + ".rarc";
}

Result<CpuStats>
ResultStore::get(uint64_t fingerprint) const
{
    const std::string path = pathFor(fingerprint);
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return Status::notFound("no store entry " + path);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    in.close();

    // Verify everything *before* returning any field; a corrupt
    // entry is quarantined so the next lookup re-simulates instead
    // of tripping over it again.
    const auto corrupt = [&](const std::string &why) -> Status {
        (void)std::rename(path.c_str(), (path + ".corrupt").c_str());
        return Status::corruption("store entry " + path + ": " + why);
    };

    constexpr size_t kFixed = 4 + 4 + 8 + 4 + 4; // sans payload
    if (bytes.size() < kFixed)
        return corrupt("truncated");
    const uint32_t got_crc = crc32(bytes.data(), bytes.size() - 4);
    StateReader r(bytes);
    uint32_t magic = 0, version = 0, payload_len = 0, want_crc = 0;
    uint64_t fp = 0;
    Status s = r.u32(&magic);
    if (s.ok())
        s = r.u32(&version);
    if (s.ok())
        s = r.u64(&fp);
    if (s.ok())
        s = r.u32(&payload_len);
    if (!s.ok())
        return corrupt("truncated header");
    if (magic != kStoreMagic)
        return corrupt("bad magic");
    if (version != kStoreVersion)
        return corrupt("unsupported version");
    if (fp != fingerprint)
        return corrupt("fingerprint mismatch (misfiled entry)");
    if (payload_len != kPayloadLen ||
        bytes.size() != kFixed + payload_len)
        return corrupt("bad payload length");
    CpuStats stats;
    if (!getStats(r, &stats).ok())
        return corrupt("truncated payload");
    if (!r.u32(&want_crc).ok() || want_crc != got_crc)
        return corrupt("CRC mismatch");
    return stats;
}

Status
ResultStore::put(uint64_t fingerprint, const CpuStats &stats)
{
    StateWriter w;
    w.u32(kStoreMagic);
    w.u32(kStoreVersion);
    w.u64(fingerprint);
    w.u32(kPayloadLen);
    putStats(w, stats);
    std::vector<uint8_t> bytes = w.buffer();
    const uint32_t crc = crc32(bytes.data(), bytes.size());
    for (int i = 0; i < 4; ++i)
        bytes.push_back((uint8_t)(crc >> (8 * i)));
    if (driverFaultFires(DriverFaultPoint::StoreCorrupt, writes_)) {
        // Flip one payload bit after sealing the CRC: the entry lands
        // durably but must be rejected on the next read.
        bytes[4 + 4 + 8 + 4] ^= 0x01;
    }

    const std::string path = pathFor(fingerprint);
    if (driverFaultFires(DriverFaultPoint::StoreEnospc, writes_)) {
        // Simulated full disk: the entry is not persisted, but the
        // computed result is still good — callers must treat
        // Unavailable as "skip caching", never as a failed cell.
        ++writes_;
        return Status::unavailable("store write " + path +
                                   ": injected ENOSPC");
    }
    int write_errno = 0;
    const Status wrote =
        durableWriteFile(path, bytes.data(), bytes.size(), &write_errno);
    if (!wrote.ok()) {
        // A full (or quota-exhausted, or failing) disk must not fail
        // the sweep: the store is a cache, and the caller still holds
        // the computed stats. Surface resource exhaustion as
        // Unavailable so callers skip caching and serve the result.
        if (write_errno == ENOSPC || write_errno == EDQUOT ||
            write_errno == EIO) {
            return Status::unavailable("store write " + path + ": " +
                                       wrote.message());
        }
        return wrote;
    }
    ++writes_;
    if (driverFaultFires(DriverFaultPoint::DaemonKill, writes_ - 1)) {
        // Crash drill: die with the entry just written durable. The
        // restart/replay test requires byte-identical results partly
        // served from the store this kill preserved.
        ::raise(SIGKILL);
    }
    return Status{};
}

} // namespace rarpred::service
