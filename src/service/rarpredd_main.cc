/**
 * @file
 * rarpredd — the resident sweep service daemon.
 *
 * Serves sweep requests over a local Unix-domain socket until
 * SIGTERM/SIGINT, then drains gracefully: queued and running sweeps
 * finish and their replies complete, new work is shed with
 * Unavailable. Completed cells persist in a content-addressed result
 * store, so a restarted daemon answers replayed requests
 * byte-identically, largely from disk. See service/daemon.hh and
 * DESIGN.md §6d.
 */

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>

#include "driver/fleet_dispatcher.hh"
#include "driver/worker_pool.hh"
#include "faultinject/driver_faults.hh"
#include "service/daemon.hh"

namespace {

int g_signal_pipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    (void)!::write(g_signal_pipe[1], &byte, 1);
}

const char *
usage()
{
    return
        "usage: rarpredd --socket=PATH --store=DIR [options]\n"
        "  --socket=PATH             Unix-domain socket to listen on\n"
        "  --store=DIR               persistent result store directory\n"
        "  --workers=N               worker threads per sweep\n"
        "  --max-queue=N             queued sweeps, all tenants (16)\n"
        "  --max-queue-per-tenant=N  queued sweeps per tenant (8)\n"
        "  --max-connections=N       concurrent client conns (64)\n"
        "  --retries=N               retry failed cells N times (2)\n"
        "  --retry-backoff-ms=N      base backoff before retries\n"
        "  --default-deadline-ms=N   deadline for requests without one\n"
        "  --breaker-open-after=N    failures that open a breaker (3)\n"
        "  --breaker-probe-every=N   half-open probe cadence (4)\n"
        "  --trace-budget=N          max resident traces in the cache\n"
        "  --trace-budget-bytes=N    max resident trace bytes (full\n"
        "                            footprint incl. trace headers)\n"
        "  --request-timeout-ms=N    torn-request read timeout (5000)\n"
        "  --isolate-jobs            simulate cells in sandboxed\n"
        "                            worker processes (crash "
        "containment)\n"
        "  --worker-heartbeat-ms=N   kill a silent worker process\n"
        "                            after N ms (10000); also the\n"
        "                            fleet lease heartbeat budget\n"
        "  --fleet=H:P[,H:P...]      lease cells to rarpred-agent\n"
        "                            hosts; falls back to local\n"
        "                            execution when unreachable\n"
        "env RARPRED_FAULT arms driver fault points (conn_drop,\n"
        "request_torn, store_corrupt, store_enospc, daemon_kill,\n"
        "worker_crash, worker_hang, worker_flap, net_drop,\n"
        "net_partition, ...).\n";
}

bool
parseU64(const char *s, uint64_t *out)
{
    if (*s == '\0')
        return false;
    uint64_t v = 0;
    for (; *s != '\0'; ++s) {
        if (*s < '0' || *s > '9')
            return false;
        v = v * 10 + (uint64_t)(*s - '0');
    }
    *out = v;
    return true;
}

const char *
flagValue(const char *arg, const char *name)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    rarpred::service::DaemonConfig config;
    uint64_t retries = 2;

    struct
    {
        const char *name;
        uint64_t *slot;
    } numeric[] = {
        {"--retries", &retries},
        {"--retry-backoff-ms", &config.retryBackoffMs},
        {"--default-deadline-ms", &config.defaultDeadlineMs},
        {"--trace-budget-bytes", &config.traceBudgetBytes},
        {"--request-timeout-ms", &config.requestTimeoutMs},
        {"--worker-heartbeat-ms", &config.workerHeartbeatTimeoutMs},
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            std::fputs(usage(), stdout);
            return 0;
        }
        if (const char *v = flagValue(arg, "--socket")) {
            config.socketPath = v;
            continue;
        }
        if (const char *v = flagValue(arg, "--store")) {
            config.storeDir = v;
            continue;
        }
        if (std::strcmp(arg, "--isolate-jobs") == 0) {
            config.isolateJobs = true;
            continue;
        }
        if (const char *v = flagValue(arg, "--fleet")) {
            config.fleet = v;
            continue;
        }
        uint64_t u = 0;
        const char *v;
        if ((v = flagValue(arg, "--workers")) && parseU64(v, &u)) {
            config.workers = (unsigned)u;
            continue;
        }
        if ((v = flagValue(arg, "--max-queue")) && parseU64(v, &u)) {
            config.maxQueue = (size_t)u;
            continue;
        }
        if ((v = flagValue(arg, "--max-queue-per-tenant")) &&
            parseU64(v, &u)) {
            config.maxQueuePerTenant = (size_t)u;
            continue;
        }
        if ((v = flagValue(arg, "--max-connections")) &&
            parseU64(v, &u)) {
            config.maxConnections = (size_t)u;
            continue;
        }
        if ((v = flagValue(arg, "--breaker-open-after")) &&
            parseU64(v, &u)) {
            config.breaker.openAfter = (unsigned)u;
            continue;
        }
        if ((v = flagValue(arg, "--breaker-probe-every")) &&
            parseU64(v, &u)) {
            config.breaker.probeEvery = (unsigned)u;
            continue;
        }
        if ((v = flagValue(arg, "--trace-budget")) &&
            parseU64(v, &u)) {
            config.traceBudgetTraces = (uint32_t)u;
            continue;
        }
        bool matched = false;
        for (auto &f : numeric) {
            if ((v = flagValue(arg, f.name)) && parseU64(v, f.slot)) {
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        std::cerr << "rarpredd: bad argument '" << arg << "'\n"
                  << usage();
        return 2;
    }
    if (config.socketPath.empty() || config.storeDir.empty()) {
        std::cerr << "rarpredd: --socket and --store are required\n"
                  << usage();
        return 2;
    }
    config.maxAttempts = (unsigned)retries + 1;

    const rarpred::Status armed = rarpred::armDriverFaultsFromEnv();
    if (!armed.ok()) {
        std::cerr << "rarpredd: " << armed.toString() << "\n";
        return 2;
    }

    if (::pipe(g_signal_pipe) != 0) {
        std::cerr << "rarpredd: pipe: " << std::strerror(errno)
                  << "\n";
        return 1;
    }
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    rarpred::service::SweepDaemon daemon(config);
    const rarpred::Status status = daemon.serve();
    if (!status.ok()) {
        std::cerr << "rarpredd: " << status.toString() << "\n";
        return 1;
    }
    std::cerr << "rarpredd: serving on " << config.socketPath
              << " (store " << config.storeDir << ")\n";

    // Park until a signal asks for the drain.
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::cerr << "rarpredd: draining\n";
    daemon.stop();

    std::ostringstream stats;
    daemon.counters().dump(stats);
    if (rarpred::driver::WorkerPool *pool = daemon.workerPool())
        pool->dumpStats(stats);
    if (rarpred::driver::FleetDispatcher *fleet = daemon.fleet())
        fleet->dumpStats(stats);
    std::cerr << stats.str() << "rarpredd: bye\n";
    return 0;
}
