/**
 * @file
 * The resident sweep service (rarpredd): a long-running daemon that
 * serves sweep requests over a local Unix-domain socket.
 *
 * Request lifecycle (DESIGN.md §6d):
 *
 *   admit -> schedule -> run -> store -> reply
 *
 *  - admit:    a per-connection handler thread reads and validates
 *              one request (proto.hh). Bounded queues — global and
 *              per-tenant — shed excess load with an explicit
 *              ResourceExhausted ErrorReply instead of letting the
 *              backlog grow without bound; a draining daemon sheds
 *              with Unavailable.
 *  - schedule: a single executor thread picks the next request fair
 *              round-robin *across tenants*, so one tenant queueing
 *              fifty sweeps cannot starve another's first.
 *  - run:      each request gets its own SimJobRunner (its deadline
 *              and retry knobs are per-request) over one shared warm
 *              TraceCache (the memoized workload traces are
 *              request-independent). The request deadline, measured
 *              from admission, is propagated into the runner's
 *              per-job cooperative watchdog; cells whose fingerprint
 *              keeps failing are refused by a circuit breaker before
 *              they can burn another retry budget.
 *  - store:    every simulated cell is durably persisted in the
 *              content-addressed ResultStore *as it completes*, so a
 *              kill -9 loses at most in-flight cells; reads verify
 *              CRC and re-simulate transparently on corruption.
 *  - reply:    rows stream back in cell order, terminated by a
 *              SweepDone frame; rejections are a single ErrorReply.
 *
 * Restart contract: kill -9 mid-sweep, restart, replay the request —
 * the merged stats are byte-identical to an uninterrupted run, with
 * previously completed cells served from the store (store_hit > 0).
 *
 * SIGPIPE is ignored process-wide by serve(); a write to a
 * disconnected client surfaces as a recoverable error (the reply
 * stream is abandoned, service.conn_dropped++, the daemon lives on).
 */

#ifndef RARPRED_SERVICE_DAEMON_HH_
#define RARPRED_SERVICE_DAEMON_HH_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/trace_cache.hh"
#include "service/circuit_breaker.hh"
#include "service/proto.hh"
#include "service/result_store.hh"

namespace rarpred::driver {
class FleetDispatcher;
class WorkerPool;
} // namespace rarpred::driver

namespace rarpred::service {

/** Daemon knobs (rarpredd flags map onto these 1:1). */
struct DaemonConfig
{
    std::string socketPath; ///< Unix-domain socket to listen on
    std::string storeDir;   ///< persistent result store directory

    /** Worker threads per sweep; 0 = hardware concurrency. */
    unsigned workers = 0;
    /** Admission bounds: queued (not yet running) sweeps. */
    size_t maxQueue = 16;
    size_t maxQueuePerTenant = 8;
    /** Concurrent client connections (one handler thread each);
     *  excess connections are shed with ResourceExhausted. */
    size_t maxConnections = 64;

    /** Per-job retry budget forwarded to each request's runner. */
    unsigned maxAttempts = 3;
    uint64_t retryBackoffMs = 0;
    /** Request deadline when the request carries none; 0 = none. */
    uint64_t defaultDeadlineMs = 0;

    CircuitBreaker::Config breaker{};

    /** Shared trace-cache residency budgets (0 = unlimited). */
    uint64_t traceBudgetBytes = 0;
    uint32_t traceBudgetTraces = 0;

    /** ms a handler waits for a complete request before calling the
     *  connection torn. Keep short in tests. */
    uint64_t requestTimeoutMs = 5000;

    /**
     * --isolate-jobs: simulate each cell in a sandboxed worker
     * process from a supervised pool (driver/worker_pool.hh) so a
     * crash or wedge in one cell cannot take the daemon — and every
     * queued tenant — down with it. The pool is shared across
     * requests; when it degrades (flapping workers, missing binary)
     * cells transparently run in-process with identical results.
     */
    bool isolateJobs = false;
    /** Kill a silent worker process after this long (isolateJobs).
     *  Also the fleet dispatcher's lease heartbeat budget. */
    uint64_t workerHeartbeatTimeoutMs = 10000;

    /**
     * --fleet=host:port[,host:port...]: lease each cell to a fleet of
     * rarpred-agent hosts (driver/fleet_dispatcher.hh). The
     * dispatcher is shared across requests, keeping connections and
     * the at-least-once dedupe state warm; when it degrades (every
     * agent demoted) cells transparently fall back to --isolate-jobs
     * workers or in-process execution with identical results. Empty
     * disables the fleet.
     */
    std::string fleet;
};

/** Thread-safe counters behind the service.* stats (proto.hh). */
struct ServiceCounters
{
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> deadlineExceeded{0};
    std::atomic<uint64_t> breakerOpen{0};
    std::atomic<uint64_t> storeHit{0};
    std::atomic<uint64_t> storeMiss{0};
    std::atomic<uint64_t> storeCorrupt{0};
    std::atomic<uint64_t> storeWrites{0};
    std::atomic<uint64_t> cellsSimulated{0};
    std::atomic<uint64_t> cellsFailed{0};
    std::atomic<uint64_t> rowsStreamed{0};
    std::atomic<uint64_t> connDropped{0};
    std::atomic<uint64_t> protoErrors{0};

    ServiceCounterSnapshot snapshot() const;
};

/** The daemon. One instance per process (it owns the socket path). */
class SweepDaemon
{
  public:
    explicit SweepDaemon(const DaemonConfig &config);
    ~SweepDaemon();

    SweepDaemon(const SweepDaemon &) = delete;
    SweepDaemon &operator=(const SweepDaemon &) = delete;

    /**
     * Ignore SIGPIPE, create the store directory, bind + listen on
     * the socket, and start the accept and executor threads. Returns
     * once the daemon is serving (ready for a STATUS probe).
     */
    Status serve();

    /**
     * Graceful drain (SIGTERM): stop accepting connections and
     * admitting sweeps; queued and running sweeps finish and their
     * replies complete. Safe to call from a signal-triggered thread.
     */
    void requestDrain();

    /** Block until the drain completed and every thread joined. */
    void awaitShutdown();

    /** requestDrain() + awaitShutdown(). */
    void stop();

    const DaemonConfig &config() const { return config_; }
    ServiceCounterSnapshot counters() const
    {
        return counters_.snapshot();
    }

    /** Worker-process pool (null without --isolate-jobs); the CLI
     *  dumps its driver.worker.* counters at exit. */
    driver::WorkerPool *workerPool() { return workerPool_.get(); }

    /** Fleet dispatcher (null without --fleet); the CLI dumps its
     *  driver.fleet.* counters at exit. */
    driver::FleetDispatcher *fleet() { return fleet_.get(); }

  private:
    /** One admitted sweep, owning its client connection. */
    struct Pending
    {
        SweepRequestMsg request;
        int fd = -1;
        std::chrono::steady_clock::time_point admitted;
    };

    void acceptLoop();
    void executorLoop();
    void handleConnection(int fd, uint64_t conn_index);

    /** Join and erase handler threads that finished. Called with
     *  handlersMu_ held. */
    void reapFinishedHandlersLocked();

    /** Serve one admitted sweep and close its connection. */
    void runSweepRequest(Pending &&p);

    /** Pop the next request, fair round-robin across tenants. */
    bool dequeue(Pending *out);

    DaemonConfig config_;
    ServiceCounters counters_;
    ResultStore store_;
    std::mutex storeMu_; ///< serializes put() (get() is read-only)
    CircuitBreaker breaker_;
    std::unique_ptr<driver::TraceCache> traceCache_;
    std::unique_ptr<driver::WorkerPool> workerPool_;
    std::unique_ptr<driver::FleetDispatcher> fleet_;

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1}; ///< drain wakeup for the accept poll
    std::atomic<bool> draining_{false};
    std::atomic<uint64_t> connIndex_{0};

    std::mutex queueMu_;
    std::condition_variable queueCv_;
    /** Per-tenant FIFO queues, iterated round-robin from rrNext_. */
    std::map<std::string, std::deque<Pending>> queues_;
    std::string rrNext_; ///< tenant after the last one served
    size_t queuedTotal_ = 0;
    size_t activeSweeps_ = 0;

    std::thread acceptThread_;
    std::thread executorThread_;
    std::mutex handlersMu_;
    /** Live per-connection handler threads by connection index,
     *  capped at maxConnections. A handler pushes its index to
     *  finishedHandlers_ as its last act; the accept loop joins and
     *  erases those before admitting the next connection, so a
     *  long-lived daemon never accumulates joinable zombies. */
    std::map<uint64_t, std::thread> handlers_;
    std::vector<uint64_t> finishedHandlers_;
};

} // namespace rarpred::service

#endif // RARPRED_SERVICE_DAEMON_HH_
