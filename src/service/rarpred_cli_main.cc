/**
 * @file
 * rarpred-cli — thin command-line client of rarpredd.
 *
 * Sweep mode sends one request and prints the merged stats table to
 * stdout (byte-identical whether the daemon simulated the cells or
 * served them from its store); provenance and summary counts go to
 * stderr. Status mode prints the daemon's service.* counters.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>

#include "service/client.hh"

namespace {

const char *
usage()
{
    return
        "usage: rarpred-cli --socket=PATH [options] workload...\n"
        "       rarpred-cli --socket=PATH --status\n"
        "  --status            print daemon health and counters\n"
        "  --tenant=NAME       fair-scheduling identity (default)\n"
        "  --scale=N           workload scale (1)\n"
        "  --max-insts=N       truncate traces to N instructions\n"
        "  --deadline-ms=N     whole-request deadline from admission\n"
        "  --timeout-ms=N      client-side end-to-end deadline over\n"
        "                      connect + request + reply (0 = none)\n"
        "  --configs=LIST      comma list of base|raw|rar (base,rar)\n"
        "exit: 0 all cells ok, 1 cells failed, 2 bad usage,\n"
        "      3 request rejected (shed/deadline/draining)\n";
}

bool
parseU64(const char *s, uint64_t *out)
{
    if (*s == '\0')
        return false;
    uint64_t v = 0;
    for (; *s != '\0'; ++s) {
        if (*s < '0' || *s > '9')
            return false;
        v = v * 10 + (uint64_t)(*s - '0');
    }
    *out = v;
    return true;
}

const char *
flagValue(const char *arg, const char *name)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

/** Map a preset name onto a cell configuration. */
bool
presetConfig(const std::string &name,
             rarpred::service::CellConfigMsg *out)
{
    rarpred::service::CellConfigMsg cfg;
    if (name == "base") {
        cfg.cloakEnabled = 0;
    } else if (name == "raw") {
        cfg.cloakEnabled = 1;
        cfg.mode = (uint8_t)rarpred::CloakingMode::RawOnly;
    } else if (name == "rar") {
        cfg.cloakEnabled = 1;
        cfg.mode = (uint8_t)rarpred::CloakingMode::RawPlusRar;
    } else {
        return false;
    }
    *out = cfg;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    bool status_mode = false;
    uint64_t timeout_ms = 0;
    std::string configs_arg = "base,rar";
    rarpred::service::SweepRequestMsg request;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            std::fputs(usage(), stdout);
            return 0;
        }
        if (std::strcmp(arg, "--status") == 0) {
            status_mode = true;
            continue;
        }
        if (const char *v = flagValue(arg, "--socket")) {
            socket_path = v;
            continue;
        }
        if (const char *v = flagValue(arg, "--tenant")) {
            request.tenant = v;
            continue;
        }
        if (const char *v = flagValue(arg, "--configs")) {
            configs_arg = v;
            continue;
        }
        uint64_t u = 0;
        const char *v;
        if ((v = flagValue(arg, "--scale")) && parseU64(v, &u)) {
            request.scale = (uint32_t)u;
            continue;
        }
        if ((v = flagValue(arg, "--max-insts")) && parseU64(v, &u)) {
            request.maxInsts = u == 0 ? ~0ull : u;
            continue;
        }
        if ((v = flagValue(arg, "--deadline-ms")) &&
            parseU64(v, &u)) {
            request.deadlineMs = u;
            continue;
        }
        if ((v = flagValue(arg, "--timeout-ms")) &&
            parseU64(v, &u)) {
            timeout_ms = u;
            continue;
        }
        if (std::strncmp(arg, "--", 2) == 0) {
            std::cerr << "rarpred-cli: bad argument '" << arg
                      << "'\n"
                      << usage();
            return 2;
        }
        request.workloads.push_back(arg);
    }
    if (socket_path.empty()) {
        std::cerr << "rarpred-cli: --socket is required\n" << usage();
        return 2;
    }

    const rarpred::service::ServiceClient client(socket_path,
                                                 timeout_ms);

    if (status_mode) {
        auto reply = client.status();
        if (!reply.ok()) {
            std::cerr << "rarpred-cli: "
                      << reply.status().toString() << "\n";
            return 3;
        }
        std::ostringstream out;
        out << "service.ready " << (unsigned)reply->ready << "\n"
            << "service.draining " << (unsigned)reply->draining
            << "\n"
            << "service.queue_depth " << reply->queueDepth << "\n"
            << "service.active_sweeps " << reply->activeSweeps
            << "\n";
        reply->counters.dump(out);
        std::fputs(out.str().c_str(), stdout);
        return 0;
    }

    if (request.workloads.empty()) {
        std::cerr << "rarpred-cli: name at least one workload\n"
                  << usage();
        return 2;
    }
    std::stringstream presets(configs_arg);
    std::string name;
    while (std::getline(presets, name, ',')) {
        rarpred::service::CellConfigMsg cfg;
        if (!presetConfig(name, &cfg)) {
            std::cerr << "rarpred-cli: unknown config preset '"
                      << name << "'\n"
                      << usage();
            return 2;
        }
        request.configs.push_back(cfg);
    }

    auto reply = client.sweep(request);
    if (!reply.ok()) {
        std::cerr << "rarpred-cli: " << reply.status().toString()
                  << "\n";
        return 3;
    }

    // The table is the deterministic artifact; provenance goes to
    // stderr so cold and warm replies print identical stdout.
    std::fputs(
        rarpred::service::ServiceClient::replyTable(request, *reply)
            .c_str(),
        stdout);
    std::cerr << "reply.cells " << reply->done.cells << "\n"
              << "reply.errors " << reply->done.errors << "\n"
              << "reply.storeHits " << reply->done.storeHits << "\n";
    if (reply->done.errors != 0)
        std::cerr << "sweep.errorsJson " << reply->done.errorsJson
                  << "\n";
    return reply->done.errors == 0 ? 0 : 1;
}
