#include "service/circuit_breaker.hh"

namespace rarpred::service {

Status
CircuitBreaker::allow(uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cells_.find(fingerprint);
    if (it == cells_.end())
        return Status{};
    Cell &cell = it->second;
    if (cell.consecutiveFailures < config_.openAfter)
        return Status{};
    ++cell.blockedSinceOpen;
    if (config_.probeEvery != 0 &&
        cell.blockedSinceOpen % config_.probeEvery == 0)
        return Status{}; // half-open probe
    ++refusals_;
    return Status::failedPrecondition(
        "circuit breaker open after " +
        std::to_string(cell.consecutiveFailures) +
        " consecutive failures; last: " + cell.lastError.toString());
}

void
CircuitBreaker::onSuccess(uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(mu_);
    cells_.erase(fingerprint);
}

void
CircuitBreaker::onFailure(uint64_t fingerprint, const Status &error)
{
    std::lock_guard<std::mutex> lock(mu_);
    Cell &cell = cells_[fingerprint];
    ++cell.consecutiveFailures;
    cell.blockedSinceOpen = 0;
    cell.lastError = error;
}

uint64_t
CircuitBreaker::refusals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return refusals_;
}

} // namespace rarpred::service
