#include "cpu/ooo_cpu.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rarpred {

OooCpu::OooCpu(const CpuConfig &config, const CloakTimingConfig &cloak)
    : config_(config), cloakConfig_(cloak),
      engine_(cloak.enabled
                  ? std::make_unique<CloakingEngine>(cloak.engine)
                  : nullptr),
      memory_(config.memory),
      branchPredictor_(config.branchPredictorEntries,
                       config.branchHistoryBits),
      ras_(config.rasDepth), fetchBw_(config.fetchWidth),
      issueBw_(config.issueWidth), lsqBw_(config.lsqPorts),
      commitBw_(config.commitWidth), srt_({0, 0})
{
    // All per-instruction dynamic state comes out of the arena, once.
    // The rings hold one element beyond their logical bound because
    // each push happens before the corresponding pop. The store-queue
    // ring is sized for the restoreState guard (windowSize) as well
    // as the steady-state bound (lsqSize).
    commitRing_.init(arena_, (size_t)config.windowSize + 1);
    storeQueue_.init(
        arena_,
        (size_t)std::max(config.windowSize, config.lsqSize) + 1);
    valueTime_ = arena_.allocateArray<uint64_t>(kValueRing);
    valueSeq_ = arena_.allocateArray<uint64_t>(kValueRing);
    commitTime_ = arena_.allocateArray<uint64_t>(kValueRing);
    commitSeq_ = arena_.allocateArray<uint64_t>(kValueRing);
    std::fill_n(valueSeq_, kValueRing, ~0ull);
    std::fill_n(commitSeq_, kValueRing, ~0ull);
}

OooCpu::~OooCpu() = default;

uint64_t
OooCpu::valueTimeOf(uint64_t seq) const
{
    const size_t slot = seq & (kValueRing - 1);
    return valueSeq_[slot] == seq ? valueTime_[slot] : 0;
}

void
OooCpu::recordValueTime(uint64_t seq, uint64_t cycle)
{
    const size_t slot = seq & (kValueRing - 1);
    valueSeq_[slot] = seq;
    valueTime_[slot] = cycle;
}

uint64_t
OooCpu::commitTimeOf(uint64_t seq) const
{
    const size_t slot = seq & (kValueRing - 1);
    return commitSeq_[slot] == seq ? commitTime_[slot] : 0;
}

void
OooCpu::recordCommitTime(uint64_t seq, uint64_t cycle)
{
    const size_t slot = seq & (kValueRing - 1);
    commitSeq_[slot] = seq;
    commitTime_[slot] = cycle;
}

uint64_t
OooCpu::speculativeValueTime(const LoadOutcome &outcome,
                             uint64_t dispatch)
{
    const uint64_t earliest =
        dispatch + cloakConfig_.predictionLatency;
    // Inspect the SRT and the SF in parallel (Section 5.6.1). An SRT
    // entry whose producer has not committed by this consumer's
    // decode means the value flows directly from the producer
    // (bypassing); otherwise it sits, already produced, in the SF.
    uint64_t value_at = earliest;
    if (auto seq = srt_.lookup(outcome.synonym)) {
        if (commitTimeOf(*seq) > dispatch)
            value_at = std::max(earliest, valueTimeOf(*seq));
    }
    // Without bypassing, the cloaked load still gets the value at
    // value_at but needs a cycle to propagate it to its consumers
    // (the LOAD RY -> USE RZ hop of Figure 1(b)).
    if (!cloakConfig_.bypassing)
        value_at += 1;
    return value_at;
}

uint64_t
OooCpu::handleFetch(const DynInst &di)
{
    uint64_t request = std::max(lastFetch_, fetchRedirect_);
    uint64_t fetch = fetchBw_.allocate(request);
    const uint64_t block =
        di.pc >> floorLog2(config_.memory.l1i.blockBytes);
    if (block != lastFetchBlock_) {
        // The L1I hit latency is part of the pipelined front end;
        // only the extra miss latency stalls fetch.
        const unsigned lat = memory_.ifetch(di.pc, fetch);
        if (lat > memory_.l1i().hitLatency())
            fetch += lat - memory_.l1i().hitLatency();
        lastFetchBlock_ = block;
    }
    lastFetch_ = fetch;
    return fetch;
}

void
OooCpu::handleControl(const DynInst &di, uint64_t resolve_cycle)
{
    bool mispredicted = false;
    switch (di.op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        mispredicted = !branchPredictor_.predictAndUpdate(di.pc, di.taken);
        break;
      case Opcode::Call:
        ras_.push(di.pc + kInstBytes);
        break;
      case Opcode::Ret:
        mispredicted = ras_.pop() != di.nextPc;
        break;
      case Opcode::Jump:
        break; // direct target, predicted perfectly
      default:
        break;
    }
    if (mispredicted) {
        ++stats_.branchMispredicts;
        fetchRedirect_ = std::max(
            fetchRedirect_, resolve_cycle + config_.mispredictRedirect);
    }
    if (di.taken) {
        if (config_.fetchBreakOnTaken)
            ++lastFetch_; // the taken transfer ends the fetch group
        lastFetchBlock_ = ~0ull; // next fetch re-reads the I-cache
    }
}

void
OooCpu::pruneBandwidth()
{
    if (++pruneCounter_ % 65536 != 0)
        return;
    const uint64_t floor =
        commitRing_.empty() ? 0
                            : (commitRing_.front() > 4096
                                   ? commitRing_.front() - 4096
                                   : 0);
    fetchBw_.prune(floor);
    issueBw_.prune(floor);
    lsqBw_.prune(floor);
    commitBw_.prune(floor);
}

void
OooCpu::onBatch(const DynInst *batch, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        onInst(batch[i]);
}

void
OooCpu::onInst(const DynInst &di)
{
    ++stats_.instructions;
    pruneBandwidth();

    auto spec_of = [&](RegId r) -> uint64_t {
        return (r == reg::kNone || r == reg::kZero) ? 0 : specReady_[r];
    };
    auto arch_of = [&](RegId r) -> uint64_t {
        return (r == reg::kNone || r == reg::kZero) ? 0 : archReady_[r];
    };
    auto write_reg = [&](RegId r, uint64_t spec, uint64_t arch) {
        if (r == reg::kNone || r == reg::kZero)
            return;
        specReady_[r] = spec;
        archReady_[r] = arch;
    };

    // ---- Fetch and dispatch ----
    const uint64_t fetch = handleFetch(di);
    uint64_t dispatch = fetch + config_.frontEndDepth;
    if (commitRing_.size() >= config_.windowSize)
        dispatch = std::max(dispatch,
                            commitRing_[commitRing_.size() -
                                        config_.windowSize] + 1);

    // ---- Cloaking/bypassing prediction (functional + outcome) ----
    LoadOutcome outcome;
    if (engine_)
        outcome = engine_->processInst(di);

    const unsigned rd = config_.regReadLatency;
    uint64_t arch_complete = dispatch; // default for no-result insts

    if (di.isLoad()) {
        ++stats_.loads;
        const uint64_t addr_ready =
            std::max(dispatch, spec_of(di.src1)) + rd;
        uint64_t earliest = addr_ready + config_.lsqMinDelay;
        switch (config_.memDep) {
          case MemDepPolicy::Naive:
            break;
          case MemDepPolicy::Conservative:
            // Wait for every preceding store address.
            earliest = std::max(earliest, storeAddrReadyMax_ + 1);
            break;
          case MemDepPolicy::StoreSets:
            // Wait only for the last fetched store of this load's
            // store set, if it is still in flight.
            if (auto wait_seq = storeSets_.onLoadDispatch(di.pc)) {
                if (const StoreRecord *s = findStoreBySeq(*wait_seq))
                    earliest = std::max(earliest, s->addrReady + 1);
            }
            break;
        }
        const uint64_t sched = lsqBw_.allocate(earliest);
        const LoadTiming complete = loadCompleteCycle(di, sched);
        // The load's value is architecturally verified when its own
        // access completes (with verified forwarded data) and its
        // (possibly speculative) address operand is verified.
        arch_complete = std::max(complete.arch, arch_of(di.src1));

        uint64_t spec_ready = complete.spec;
        uint64_t arch_ready = arch_complete;
        if (outcome.used) {
            ++stats_.valueSpecUsed;
            const uint64_t value_at =
                speculativeValueTime(outcome, dispatch);
            const uint64_t verify = arch_complete;
            if (outcome.correct) {
                ++stats_.valueSpecCorrect;
                // Correct speculation: dependents may use the
                // bypassed value as soon as it exists.
                if (value_at < spec_ready) {
                    stats_.specCyclesSaved += spec_ready - value_at;
                    spec_ready = value_at;
                }
                arch_ready = verify;
            } else {
                ++stats_.valueSpecWrong;
                switch (cloakConfig_.recovery) {
                  case RecoveryModel::Selective:
                    // Dependents that read the wrong value re-execute
                    // once the verified value arrives.
                    spec_ready = verify + 1;
                    arch_ready = verify + 1;
                    break;
                  case RecoveryModel::Squash:
                    // Everything younger than the misspeculation is
                    // re-fetched from scratch.
                    ++stats_.squashes;
                    fetchRedirect_ = std::max(
                        fetchRedirect_,
                        verify + config_.mispredictRedirect);
                    spec_ready = verify;
                    arch_ready = verify;
                    break;
                  case RecoveryModel::Oracle:
                    // The oracle never used the wrong value.
                    --stats_.valueSpecUsed;
                    ++stats_.valueSpecCorrect;
                    --stats_.valueSpecWrong;
                    spec_ready = verify;
                    arch_ready = verify;
                    break;
                }
            }
        }
        write_reg(di.dst, spec_ready, arch_ready);
        // The value a RAR consumer bypasses from exists once the
        // producer load's own access has returned it.
        recordValueTime(di.seq, complete.spec);
    } else if (di.isStore()) {
        ++stats_.stores;
        const uint64_t addr_ready =
            std::max(dispatch, spec_of(di.src1)) + rd;
        uint64_t earliest = addr_ready + config_.lsqMinDelay;
        if (config_.memDep == MemDepPolicy::StoreSets) {
            // Stores of one set issue in order.
            if (auto prev_seq = storeSets_.onStoreDispatch(di.pc,
                                                           di.seq)) {
                if (const StoreRecord *s = findStoreBySeq(*prev_seq))
                    earliest = std::max(earliest, s->addrReady + 1);
            }
        }
        const uint64_t sched = lsqBw_.allocate(earliest);
        // Speculative data propagates through the store queue and the
        // synonym file as soon as the producing instruction computes
        // it; verification follows the register chain.
        const uint64_t data_spec =
            std::max(dispatch, spec_of(di.src2)) + rd;
        const uint64_t data_arch =
            std::max(dispatch, arch_of(di.src2)) + rd;
        storeByAddr_.findOrInsert(di.eaddr, 0) =
            storesPopped_ + storeQueue_.size();
        storeQueue_.push_back(
            {di.seq, di.pc, di.eaddr, sched, data_spec, data_arch});
        if (storeQueue_.size() > config_.lsqSize) {
            const StoreRecord &old = storeQueue_.front();
            if (config_.memDep == MemDepPolicy::StoreSets)
                storeSets_.onStoreRetire(old.pc, old.seq);
            if (const uint64_t *ord = storeByAddr_.find(old.addr);
                ord && *ord == storesPopped_)
                storeByAddr_.erase(old.addr);
            ++storesPopped_;
            storeQueue_.pop_front();
        }
        storeAddrReadyMax_ = std::max(storeAddrReadyMax_, sched);
        arch_complete = std::max(sched, data_arch);
        // The store's value is what bypassing links consumers to.
        recordValueTime(di.seq, data_spec);
    } else if (di.isControl()) {
        // Branches execute as soon as (possibly speculative) operands
        // allow, but resolution — and hence misprediction repair — is
        // deferred until the inputs are verified (Section 5.6.1).
        const uint64_t spec_src =
            std::max(spec_of(di.src1), spec_of(di.src2));
        const uint64_t arch_src =
            std::max(arch_of(di.src1), arch_of(di.src2));
        const uint64_t start =
            issueBw_.allocate(std::max(dispatch, spec_src) + rd);
        const uint64_t resolve = std::max(start + 1, arch_src);
        arch_complete = resolve;
        handleControl(di, resolve);
        if (di.op == Opcode::Call)
            write_reg(di.dst, resolve, resolve);
        recordValueTime(di.seq, resolve);
    } else {
        // ALU / FP / moves.
        const uint64_t spec_src =
            std::max(spec_of(di.src1), spec_of(di.src2));
        const uint64_t arch_src =
            std::max(arch_of(di.src1), arch_of(di.src2));
        const unsigned lat = di.latency();
        const uint64_t start =
            issueBw_.allocate(std::max(dispatch, spec_src) + rd);
        const uint64_t spec_complete = start + lat;
        // Speculation in a register chain resolves as soon as its
        // inputs resolve (Section 5.6.1): no re-execution on correct
        // speculation.
        arch_complete = std::max(spec_complete, arch_src);
        write_reg(di.dst, spec_complete, arch_complete);
        recordValueTime(di.seq, spec_complete);
    }

    // A predicted producer renames its synonym in the SRT at decode,
    // after any consumer role of the same instruction resolved above
    // (a RAR source must not link to itself).
    if (outcome.predictedProducer)
        srt_.rename(outcome.synonym, di.seq);

    // ---- In-order commit ----
    const uint64_t commit =
        commitBw_.allocate(std::max(arch_complete + 1, lastCommit_));
    lastCommit_ = commit;
    commitRing_.push_back(commit);
    if (commitRing_.size() > config_.windowSize)
        commitRing_.pop_front();
    if (di.isStore())
        (void)memory_.store(di.eaddr, commit);
    recordCommitTime(di.seq, commit);
    stats_.cycles = std::max(stats_.cycles, commit);
}

OooCpu::LoadTiming
OooCpu::loadCompleteCycle(const DynInst &di, uint64_t sched)
{
    // Find the youngest prior store to the same word via the addr
    // index; its ordinal locates the record without scanning.
    const StoreRecord *conflict = nullptr;
    if (const uint64_t *ord = storeByAddr_.find(di.eaddr))
        conflict = &storeQueue_[*ord - storesPopped_];

    if (conflict) {
        if (conflict->addrReady <= sched) {
            // Known conflict: wait and forward from the store queue.
            // Speculatively-computed store data forwards immediately;
            // the load verifies once the data does.
            return {std::max(sched, conflict->dataReadySpec) + 1,
                    std::max(sched, conflict->dataReadyArch) + 1};
        }
        // Speculation read memory under an unknown store address: a
        // memory-order violation, repaired by re-executing the load
        // once the store's address and data are known. Store sets
        // learn the (store, load) pair so the next encounter waits.
        ++stats_.memOrderViolations;
        if (config_.memDep == MemDepPolicy::StoreSets)
            storeSets_.onViolation(di.pc, conflict->pc);
        const unsigned mem_lat = memory_.load(di.eaddr, sched);
        const uint64_t wrong = sched + mem_lat;
        const uint64_t repair_spec =
            std::max(conflict->addrReady, conflict->dataReadySpec) +
            config_.memOrderRedoPenalty;
        const uint64_t repair_arch =
            std::max(conflict->addrReady, conflict->dataReadyArch) +
            config_.memOrderRedoPenalty;
        return {std::max(wrong, repair_spec),
                std::max(wrong, repair_arch)};
    }

    const unsigned mem_lat = memory_.load(di.eaddr, sched);
    return {sched + mem_lat, sched + mem_lat};
}

const OooCpu::StoreRecord *
OooCpu::findStoreBySeq(uint64_t seq) const
{
    for (size_t i = storeQueue_.size(); i-- > 0;)
        if (storeQueue_[i].seq == seq)
            return &storeQueue_[i];
    return nullptr;
}

OooCpu::HotPathLoads
OooCpu::hotPathLoads() const
{
    return {srt_.probeStats(),    fetchBw_.probeStats(),
            issueBw_.probeStats(), lsqBw_.probeStats(),
            commitBw_.probeStats(), arena_.bytesReserved()};
}

CpuStats
OooCpu::stats() const
{
    return stats_;
}

void
OooCpu::saveState(StateWriter &w) const
{
    w.boolean(engine_ != nullptr);
    if (engine_)
        engine_->saveState(w);
    memory_.saveState(w);
    branchPredictor_.saveState(w);
    ras_.saveState(w);
    for (uint64_t reg = 0; reg < reg::kNumRegs; ++reg) {
        w.u64(specReady_[reg]);
        w.u64(archReady_[reg]);
    }
    w.u64(fetchRedirect_);
    fetchBw_.saveState(w);
    issueBw_.saveState(w);
    lsqBw_.saveState(w);
    commitBw_.saveState(w);
    w.u64(commitRing_.size());
    for (size_t i = 0; i < commitRing_.size(); ++i)
        w.u64(commitRing_[i]);
    w.u64(lastCommit_);
    w.u64(storeQueue_.size());
    for (size_t i = 0; i < storeQueue_.size(); ++i) {
        const StoreRecord &s = storeQueue_[i];
        w.u64(s.seq);
        w.u64(s.pc);
        w.u64(s.addr);
        w.u64(s.addrReady);
        w.u64(s.dataReadySpec);
        w.u64(s.dataReadyArch);
    }
    w.u64(storeAddrReadyMax_);
    for (size_t i = 0; i < kValueRing; ++i) {
        w.u64(valueTime_[i]);
        w.u64(valueSeq_[i]);
        w.u64(commitTime_[i]);
        w.u64(commitSeq_[i]);
    }
    srt_.saveState(w);
    storeSets_.saveState(w);
    w.u64(stats_.instructions);
    w.u64(stats_.cycles);
    w.u64(stats_.loads);
    w.u64(stats_.stores);
    w.u64(stats_.branchMispredicts);
    w.u64(stats_.memOrderViolations);
    w.u64(stats_.valueSpecUsed);
    w.u64(stats_.valueSpecCorrect);
    w.u64(stats_.valueSpecWrong);
    w.u64(stats_.squashes);
    w.u64(stats_.specCyclesSaved);
    w.u64(lastFetch_);
    w.u64(lastFetchBlock_);
    w.u64(pruneCounter_);
}

Status
OooCpu::restoreState(StateReader &r)
{
    bool hasEngine = false;
    RARPRED_RETURN_IF_ERROR(r.boolean(&hasEngine));
    if (hasEngine != (engine_ != nullptr)) {
        return Status::failedPrecondition(
            "snapshot cloaking configuration does not match the CPU");
    }
    if (engine_)
        RARPRED_RETURN_IF_ERROR(engine_->restoreState(r));
    RARPRED_RETURN_IF_ERROR(memory_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(branchPredictor_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(ras_.restoreState(r));
    for (uint64_t reg = 0; reg < reg::kNumRegs; ++reg) {
        RARPRED_RETURN_IF_ERROR(r.u64(&specReady_[reg]));
        RARPRED_RETURN_IF_ERROR(r.u64(&archReady_[reg]));
    }
    RARPRED_RETURN_IF_ERROR(r.u64(&fetchRedirect_));
    RARPRED_RETURN_IF_ERROR(fetchBw_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(issueBw_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(lsqBw_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(commitBw_.restoreState(r));
    uint64_t size = 0;
    RARPRED_RETURN_IF_ERROR(r.u64(&size));
    if (size > config_.windowSize)
        return Status::corruption("commit ring image over window size");
    commitRing_.clear();
    for (uint64_t i = 0; i < size; ++i) {
        uint64_t cycle = 0;
        RARPRED_RETURN_IF_ERROR(r.u64(&cycle));
        commitRing_.push_back(cycle);
    }
    RARPRED_RETURN_IF_ERROR(r.u64(&lastCommit_));
    RARPRED_RETURN_IF_ERROR(r.u64(&size));
    if (size > config_.windowSize)
        return Status::corruption("store queue image over window size");
    storeQueue_.clear();
    for (uint64_t i = 0; i < size; ++i) {
        StoreRecord s{};
        RARPRED_RETURN_IF_ERROR(r.u64(&s.seq));
        RARPRED_RETURN_IF_ERROR(r.u64(&s.pc));
        RARPRED_RETURN_IF_ERROR(r.u64(&s.addr));
        RARPRED_RETURN_IF_ERROR(r.u64(&s.addrReady));
        RARPRED_RETURN_IF_ERROR(r.u64(&s.dataReadySpec));
        RARPRED_RETURN_IF_ERROR(r.u64(&s.dataReadyArch));
        storeQueue_.push_back(s);
    }
    storeByAddr_.clear();
    storesPopped_ = 0;
    for (size_t i = 0; i < storeQueue_.size(); ++i)
        storeByAddr_.findOrInsert(storeQueue_[i].addr, 0) = i;
    RARPRED_RETURN_IF_ERROR(r.u64(&storeAddrReadyMax_));
    for (size_t i = 0; i < kValueRing; ++i) {
        RARPRED_RETURN_IF_ERROR(r.u64(&valueTime_[i]));
        RARPRED_RETURN_IF_ERROR(r.u64(&valueSeq_[i]));
        RARPRED_RETURN_IF_ERROR(r.u64(&commitTime_[i]));
        RARPRED_RETURN_IF_ERROR(r.u64(&commitSeq_[i]));
    }
    RARPRED_RETURN_IF_ERROR(srt_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(storeSets_.restoreState(r));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.instructions));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.cycles));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.loads));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.stores));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.branchMispredicts));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.memOrderViolations));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.valueSpecUsed));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.valueSpecCorrect));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.valueSpecWrong));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.squashes));
    RARPRED_RETURN_IF_ERROR(r.u64(&stats_.specCyclesSaved));
    RARPRED_RETURN_IF_ERROR(r.u64(&lastFetch_));
    RARPRED_RETURN_IF_ERROR(r.u64(&lastFetchBlock_));
    return r.u64(&pruneCounter_);
}

} // namespace rarpred
