/**
 * @file
 * Configuration of the trace-driven out-of-order core (Section 5.1
 * base processor, Section 5.6.1 cloaking/bypassing integration).
 */

#ifndef RARPRED_CPU_CPU_CONFIG_HH_
#define RARPRED_CPU_CPU_CONFIG_HH_

#include <cstdint>
#include <ostream>
#include <string>

#include "core/cloaking.hh"
#include "memory/memory_system.hh"

namespace rarpred {

/** Load/store scheduling policy of the memory scheduler. */
enum class MemDepPolicy : uint8_t
{
    /**
     * Naive speculation per [14] (the paper's base, Section 5.1):
     * loads may access memory before preceding store addresses are
     * known; violations are repaired by re-execution.
     */
    Naive,
    /**
     * Store-set prediction (Chrysos & Emer [5]): loads that have
     * violated wait for the last fetched store of their store set.
     */
    StoreSets,
    /**
     * No speculation (the Figure 10 base): every load waits until all
     * preceding store addresses are known.
     */
    Conservative,
};

/** Value-misspeculation recovery mechanism (Section 5.6.1). */
enum class RecoveryModel : uint8_t
{
    /** Re-execute only instructions that used incorrect data. */
    Selective,
    /** Invalidate and re-fetch everything from the misspeculation. */
    Squash,
    /** Never speculate when it would misspeculate (reference bound). */
    Oracle,
};

/** Core parameters (defaults are the paper's). */
struct CpuConfig
{
    unsigned fetchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned windowSize = 128;  ///< instruction window / ROB entries
    unsigned frontEndDepth = 5; ///< fetch..rename cycles
    unsigned regReadLatency = 1;

    unsigned lsqSize = 128;
    unsigned lsqPorts = 4;    ///< loads+stores scheduled per cycle
    unsigned lsqMinDelay = 1; ///< cycles from address to scheduler exit
    /** Memory dependence scheduling policy (default: the paper's). */
    MemDepPolicy memDep = MemDepPolicy::Naive;
    /** Cycles to redo a load that read a stale value (order violation). */
    unsigned memOrderRedoPenalty = 3;

    MemorySystemConfig memory{};
    size_t branchPredictorEntries = 16384; ///< x4 tables = 64K total
    unsigned branchHistoryBits = 12;
    unsigned rasDepth = 64;
    unsigned mispredictRedirect = 1; ///< cycles after branch resolution
    /**
     * End the fetch group at a taken branch. The paper's 8-wide
     * front end behaves close to an ideal fetcher; leaving this off
     * matches its reported base IPCs better, at the cost of slightly
     * optimistic fetch on very branchy code.
     */
    bool fetchBreakOnTaken = false;
};

/** Cloaking/bypassing attachment to the core. */
struct CloakTimingConfig
{
    bool enabled = false;
    /** Functional mechanism (DDT/DPNT/SF geometry per Section 5.6.1). */
    CloakingConfig engine{};
    RecoveryModel recovery = RecoveryModel::Selective;
    /** Cycles after dispatch for DPNT+SF/SRT access. */
    unsigned predictionLatency = 1;
    /**
     * Speculative memory bypassing (Section 3.2): link the cloaked
     * load's consumers directly to the producer's value. When
     * disabled, only cloaking operates — the load itself receives the
     * speculative value and must propagate it to its consumers, one
     * extra cycle later.
     */
    bool bypassing = true;
};

/** End-of-run timing statistics. */
struct CpuStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branchMispredicts = 0;
    uint64_t memOrderViolations = 0;
    uint64_t valueSpecUsed = 0;
    uint64_t valueSpecCorrect = 0;
    uint64_t valueSpecWrong = 0;
    uint64_t squashes = 0;
    /** Sum over covered loads of cycles the bypassed value arrived
     *  before the load's own result would have. */
    uint64_t specCyclesSaved = 0;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : (double)instructions / (double)cycles;
    }

    /** Write gem5-style "prefix.stat value" lines. */
    void
    dump(std::ostream &os, const std::string &prefix = "cpu") const
    {
        os << prefix << ".instructions " << instructions << "\n";
        os << prefix << ".cycles " << cycles << "\n";
        os << prefix << ".ipc " << ipc() << "\n";
        os << prefix << ".loads " << loads << "\n";
        os << prefix << ".stores " << stores << "\n";
        os << prefix << ".branchMispredicts " << branchMispredicts
           << "\n";
        os << prefix << ".memOrderViolations " << memOrderViolations
           << "\n";
        os << prefix << ".valueSpecUsed " << valueSpecUsed << "\n";
        os << prefix << ".valueSpecCorrect " << valueSpecCorrect << "\n";
        os << prefix << ".valueSpecWrong " << valueSpecWrong << "\n";
        os << prefix << ".squashes " << squashes << "\n";
        os << prefix << ".specCyclesSaved " << specCyclesSaved << "\n";
    }
};

} // namespace rarpred

#endif // RARPRED_CPU_CPU_CONFIG_HH_
