/**
 * @file
 * Trace-driven out-of-order superscalar timing model.
 *
 * Consumes the committed instruction stream (the correct path) and
 * computes per-instruction fetch/dispatch/execute/commit cycles under
 * the Section 5.1 machine: 8-wide, 128-entry window, 5-cycle front
 * end, the paper's functional-unit latencies, a 128-entry load/store
 * scheduler with naive memory dependence speculation, the paper's
 * cache hierarchy, and the 64K-entry combined branch predictor.
 *
 * Cloaking/bypassing attaches per Section 5.6.1: predictions are made
 * at decode; a predicted consumer load's dependents are linked to the
 * producer's value (bypassing), so they may issue as soon as that
 * value exists; verification happens when the load's own memory
 * access completes. Misspeculation recovery is selective re-execution
 * or squash re-fetch. Branches never resolve on speculative inputs.
 *
 * Modelling simplifications (documented in DESIGN.md): no wrong-path
 * fetch effects beyond the redirect bubble, universal function units,
 * and DPNT training applied in trace order rather than at commit.
 */

#ifndef RARPRED_CPU_OOO_CPU_HH_
#define RARPRED_CPU_OOO_CPU_HH_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hh"
#include "common/flat_table.hh"
#include "core/srt.hh"
#include "cpu/cpu_config.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/store_sets.hh"
#include "vm/trace.hh"

namespace rarpred {

/** The timing model. */
class OooCpu final : public TraceSink
{
  public:
    OooCpu(const CpuConfig &config, const CloakTimingConfig &cloak);
    ~OooCpu() override;

    /** Feed the next committed instruction. */
    void onInst(const DynInst &di) override;

    /**
     * Batched feed: identical per-record semantics to onInst(), but
     * the virtual dispatch happens once per block instead of once per
     * record (the class is final, so the inner calls devirtualize).
     */
    void onBatch(const DynInst *batch, size_t n) override;

    /** @return statistics; cycles is the commit time of the last inst. */
    CpuStats stats() const;

    /** Underlying cloaking engine (null when cloaking is disabled). */
    CloakingEngine *cloakingEngine() { return engine_.get(); }

    /** Bypassing structure, exposed for the online invariant auditor. */
    SynonymRenameTable &srt() { return srt_; }

    /** Measured load/probe stats of the hot-path tables. */
    struct HotPathLoads
    {
        ProbeStats srt;
        ProbeStats fetchBw;
        ProbeStats issueBw;
        ProbeStats lsqBw;
        ProbeStats commitBw;
        size_t arenaReservedBytes = 0;
    };
    HotPathLoads hotPathLoads() const;

    /**
     * Serialize the complete timing state: the cloaking engine, the
     * memory hierarchy, branch predictors, scoreboards, bandwidth
     * limiters, window/store-queue state, completion rings, SRT,
     * store sets, and statistics. Configuration is not serialized —
     * the restore target must be constructed with the same config,
     * which the snapshot fingerprint guarantees.
     */
    void saveState(StateWriter &w) const;
    Status restoreState(StateReader &r);

  private:
    /**
     * A width-limited resource: at most `width` events per cycle.
     * Accounting lives in a FlatMap: allocate() is a short linear
     * probe instead of an unordered_map node allocation, and prune()
     * leaves tombstones that the map purges in place (same prune
     * cadence and floor as ever — allocation results are identical).
     */
    /**
     * Per-resource width accounting over cycles.
     *
     * Cycle keys are dense and near-monotone and prune() discards
     * everything below a trailing floor, so the counts live in a
     * power-of-two ring of per-cycle counters indexed by
     * `cycle & mask` over [base_, base_ + capacity): allocate() is a
     * bounds check plus one counter increment, with no hashing,
     * probing or tombstones, and prune() is a sequential zeroing of
     * the vacated range. The rare request below base_ (possible only
     * right after a prune or a restore) falls through to an exact
     * FlatMap so allocate() results, size() and the sorted
     * saveState() image stay bit-identical to a plain map.
     */
    class BandwidthLimiter
    {
      public:
        explicit BandwidthLimiter(unsigned width) : width_(width) {}

        /** @return the first cycle >= request with a free slot. */
        uint64_t
        allocate(uint64_t request)
        {
            ++lookups_;
            if (request < base_) [[unlikely]] {
                for (uint64_t cycle = request; cycle < base_; ++cycle) {
                    unsigned &count = low_.findOrInsert(cycle, 0);
                    if (count < width_) {
                        ++count;
                        return noteProbe(request, cycle);
                    }
                }
                return ringAllocate(request, base_);
            }
            return ringAllocate(request, request);
        }

        /** Forget accounting for cycles below @p floor. */
        void
        prune(uint64_t floor)
        {
            low_.eraseIf(
                [floor](uint64_t cycle, unsigned) { return cycle < floor; });
            if (floor <= base_ || counts_.empty()) {
                base_ = std::max(base_, floor);
                return;
            }
            const uint64_t end = top_ < floor ? top_ + 1 : floor;
            for (uint64_t cycle = base_; cycle < end; ++cycle) {
                uint32_t &count = counts_[cycle & mask_];
                live_ -= (count != 0);
                count = 0;
            }
            base_ = floor;
        }

        size_t size() const { return low_.size() + live_; }

        /** Probe-path counters / fill of the accounting window. */
        ProbeStats
        probeStats() const
        {
            return {lookups_, probes_,           maxProbe_,
                    resizes_, low_.size() + live_, counts_.size()};
        }

        /** Serialize sorted by cycle: the image must be byte-stable. */
        void
        saveState(StateWriter &w) const
        {
            std::vector<uint64_t> cycles;
            cycles.reserve(low_.size() + live_);
            low_.forEach([&](uint64_t cycle, const unsigned &) {
                cycles.push_back(cycle);
            });
            if (!counts_.empty())
                for (uint64_t cycle = base_; cycle <= top_; ++cycle)
                    if (counts_[cycle & mask_] != 0)
                        cycles.push_back(cycle);
            std::sort(cycles.begin(), cycles.end());
            w.u64(cycles.size());
            for (uint64_t cycle : cycles) {
                w.u64(cycle);
                w.u32(cycle < base_ ? *low_.find(cycle)
                                    : counts_[cycle & mask_]);
            }
        }

        Status
        restoreState(StateReader &r)
        {
            uint64_t size = 0;
            RARPRED_RETURN_IF_ERROR(r.u64(&size));
            low_.clear();
            std::fill(counts_.begin(), counts_.end(), 0);
            live_ = 0;
            base_ = 0;
            top_ = 0;
            bool first = true;
            for (uint64_t i = 0; i < size; ++i) {
                uint64_t cycle = 0;
                uint32_t count = 0;
                RARPRED_RETURN_IF_ERROR(r.u64(&cycle));
                RARPRED_RETURN_IF_ERROR(r.u32(&count));
                if (first) {
                    base_ = cycle;
                    top_ = cycle;
                    first = false;
                }
                if (cycle < base_) { // unsorted image: exact fallback
                    low_.insert(cycle, count);
                    continue;
                }
                if (cycle - base_ >= counts_.size())
                    growTo(cycle);
                uint32_t &slot = counts_[cycle & mask_];
                live_ += (slot == 0 && count != 0);
                slot = count;
                if (cycle > top_)
                    top_ = cycle;
            }
            return Status{};
        }

      private:
        uint64_t
        ringAllocate(uint64_t request, uint64_t cycle)
        {
            while (true) {
                if (cycle - base_ >= counts_.size()) [[unlikely]]
                    growTo(cycle);
                uint32_t &count = counts_[cycle & mask_];
                if (count < width_) {
                    live_ += (count == 0);
                    ++count;
                    if (cycle > top_)
                        top_ = cycle;
                    return noteProbe(request, cycle);
                }
                ++cycle;
            }
        }

        uint64_t
        noteProbe(uint64_t request, uint64_t cycle)
        {
            const uint64_t len = cycle - request + 1;
            probes_ += len;
            if (len > maxProbe_)
                maxProbe_ = len;
            return cycle;
        }

        /** Widen the window so @p cycle is representable. */
        void
        growTo(uint64_t cycle)
        {
            const uint64_t span = cycle - base_ + 1;
            size_t cap = counts_.empty() ? size_t{1} << 13 : counts_.size();
            while (cap < span * 2)
                cap <<= 1;
            std::vector<uint32_t> next(cap, 0);
            const uint64_t nmask = cap - 1;
            if (!counts_.empty())
                for (uint64_t c = base_; c <= top_; ++c)
                    next[c & nmask] = counts_[c & mask_];
            counts_ = std::move(next);
            mask_ = nmask;
            ++resizes_;
        }

        unsigned width_;
        std::vector<uint32_t> counts_; ///< pow-2 ring of per-cycle counts
        uint64_t mask_ = 0;
        uint64_t base_ = 0; ///< lowest cycle the ring represents
        uint64_t top_ = 0;  ///< highest cycle ever counted
        size_t live_ = 0;   ///< nonzero ring slots
        FlatMap<unsigned> low_; ///< exact counts below base_ (rare)
        uint64_t lookups_ = 0;
        uint64_t probes_ = 0;
        uint64_t maxProbe_ = 0;
        uint64_t resizes_ = 0;
    };

    /**
     * Width accounting for a strictly front-running request stream.
     *
     * Fetch and commit feed each allocation back into the next
     * request (request >= the previous result), so counts below the
     * newest allocated cycle can never be consulted again and the
     * whole map collapses to (cycle, count-at-cycle) — two words, no
     * ring, nothing to prune. The monotonicity contract is asserted
     * on every call: a violating caller panics instead of silently
     * diverging from the map semantics.
     */
    class MonotoneBandwidthLimiter
    {
      public:
        explicit MonotoneBandwidthLimiter(unsigned width)
            : width_(width)
        {
        }

        /** @return the first cycle >= request with a free slot. */
        uint64_t
        allocate(uint64_t request)
        {
            ++lookups_;
            rarpred_assert(request >= cycle_);
            if (request > cycle_) {
                cycle_ = request;
                count_ = 1;
                probes_ += 1;
                return request;
            }
            uint64_t len = 1;
            if (count_ < width_) {
                ++count_;
            } else { // cycle saturated: step to the next one
                ++cycle_;
                count_ = 1;
                len = 2;
            }
            probes_ += len;
            if (len > maxProbe_)
                maxProbe_ = len;
            return cycle_;
        }

        /** Nothing below cycle_ is reachable; nothing to forget. */
        void prune(uint64_t) {}

        size_t size() const { return count_ != 0 ? 1 : 0; }

        ProbeStats
        probeStats() const
        {
            return {lookups_, probes_, maxProbe_, 0, size(), size_t{1}};
        }

        /** Same self-describing (cycle, count) list as the map form. */
        void
        saveState(StateWriter &w) const
        {
            w.u64(count_ != 0 ? 1 : 0);
            if (count_ != 0) {
                w.u64(cycle_);
                w.u32(count_);
            }
        }

        Status
        restoreState(StateReader &r)
        {
            uint64_t size = 0;
            RARPRED_RETURN_IF_ERROR(r.u64(&size));
            cycle_ = 0;
            count_ = 0;
            // A legacy multi-entry image may carry counts below its
            // newest cycle; those are unreachable under the monotone
            // contract, so only the newest entry survives.
            for (uint64_t i = 0; i < size; ++i) {
                uint64_t cycle = 0;
                uint32_t count = 0;
                RARPRED_RETURN_IF_ERROR(r.u64(&cycle));
                RARPRED_RETURN_IF_ERROR(r.u32(&count));
                if (cycle >= cycle_) {
                    cycle_ = cycle;
                    count_ = count;
                }
            }
            return Status{};
        }

      private:
        unsigned width_;
        uint64_t cycle_ = 0; ///< newest allocated cycle
        uint32_t count_ = 0; ///< allocations at cycle_
        uint64_t lookups_ = 0;
        uint64_t probes_ = 0;
        uint64_t maxProbe_ = 0;
    };

    /** An in-flight store tracked by the load/store scheduler. */
    struct StoreRecord
    {
        uint64_t seq;
        uint64_t pc;
        uint64_t addr;
        uint64_t addrReady;     ///< cycle its address is known
        uint64_t dataReadySpec; ///< data available (speculative chain)
        uint64_t dataReadyArch; ///< data verified
    };

    /** @return the in-flight store with @p seq, or nullptr. */
    const StoreRecord *findStoreBySeq(uint64_t seq) const;

    /** Speculative/verified completion pair for a load. */
    struct LoadTiming
    {
        uint64_t spec;
        uint64_t arch;
    };

    uint64_t handleFetch(const DynInst &di);
    void handleControl(const DynInst &di, uint64_t resolve_cycle);
    LoadTiming loadCompleteCycle(const DynInst &di, uint64_t sched);
    /** @return cycle a past instruction's value exists (0 if ancient). */
    uint64_t valueTimeOf(uint64_t seq) const;
    /** @return commit cycle of a past instruction (0 if ancient). */
    uint64_t commitTimeOf(uint64_t seq) const;
    void recordValueTime(uint64_t seq, uint64_t cycle);
    void recordCommitTime(uint64_t seq, uint64_t cycle);
    /**
     * When a predicted consumer uses a cloaked value, compute the
     * cycle the value exists: through the SRT if the producer is
     * still in flight at @p dispatch (bypassing, Figure 1(b)), or
     * from the Synonym File if it has committed.
     */
    uint64_t speculativeValueTime(const LoadOutcome &outcome,
                                  uint64_t dispatch);
    void pruneBandwidth();

    CpuConfig config_;
    CloakTimingConfig cloakConfig_;
    /**
     * Arena backing all per-instruction dynamic state: the commit
     * ring, the in-flight store queue, and the value/commit
     * completion rings. Carved once at construction; the steady-state
     * simulate loop never allocates.
     */
    Arena arena_;
    std::unique_ptr<CloakingEngine> engine_;
    MemorySystem memory_;
    CombinedPredictor branchPredictor_;
    ReturnAddressStack ras_;

    // Register scoreboard: value availability for consumers (spec may
    // be earlier than arch when a cloaked value was used).
    uint64_t specReady_[reg::kNumRegs] = {};
    uint64_t archReady_[reg::kNumRegs] = {};

    // Front end state.
    uint64_t fetchRedirect_ = 0; ///< earliest fetch cycle (mispredicts)
    MonotoneBandwidthLimiter fetchBw_;
    BandwidthLimiter issueBw_;
    BandwidthLimiter lsqBw_;
    MonotoneBandwidthLimiter commitBw_;

    // Window occupancy: commit cycles of the last windowSize insts.
    ArenaRing<uint64_t> commitRing_;
    uint64_t lastCommit_ = 0;

    // In-flight stores (bounded by window size).
    ArenaRing<StoreRecord> storeQueue_;
    /** Prefix-max of store address-ready times (conservative mode). */
    uint64_t storeAddrReadyMax_ = 0;
    /**
     * addr -> ordinal of the youngest in-queue store to that word
     * (ordinal - storesPopped_ = position in storeQueue_), so the
     * per-load conflict probe is one map lookup instead of a reverse
     * scan of the queue. Derived state: rebuilt on restore, never
     * serialized. When the mapped store leaves the queue every older
     * same-address store is already gone (the queue is FIFO), so a
     * missing key exactly means "no prior store to this word".
     */
    FlatMap<uint64_t> storeByAddr_;
    uint64_t storesPopped_ = 0; ///< ordinal of storeQueue_'s front

    // Completion and commit times of recent instructions, by seq;
    // arena-backed arrays of kValueRing entries each.
    static constexpr size_t kValueRing = 1 << 15;
    uint64_t *valueTime_ = nullptr;
    uint64_t *valueSeq_ = nullptr;
    uint64_t *commitTime_ = nullptr;
    uint64_t *commitSeq_ = nullptr;

    /** The bypassing structure: synonym -> in-flight producer. */
    SynonymRenameTable srt_;

    /** Memory dependence predictor (MemDepPolicy::StoreSets). */
    StoreSetPredictor storeSets_;

    CpuStats stats_;
    uint64_t lastFetch_ = 0;
    uint64_t lastFetchBlock_ = ~0ull;
    uint64_t pruneCounter_ = 0;
};

} // namespace rarpred

#endif // RARPRED_CPU_OOO_CPU_HH_
