/**
 * @file
 * Trace-driven out-of-order superscalar timing model.
 *
 * Consumes the committed instruction stream (the correct path) and
 * computes per-instruction fetch/dispatch/execute/commit cycles under
 * the Section 5.1 machine: 8-wide, 128-entry window, 5-cycle front
 * end, the paper's functional-unit latencies, a 128-entry load/store
 * scheduler with naive memory dependence speculation, the paper's
 * cache hierarchy, and the 64K-entry combined branch predictor.
 *
 * Cloaking/bypassing attaches per Section 5.6.1: predictions are made
 * at decode; a predicted consumer load's dependents are linked to the
 * producer's value (bypassing), so they may issue as soon as that
 * value exists; verification happens when the load's own memory
 * access completes. Misspeculation recovery is selective re-execution
 * or squash re-fetch. Branches never resolve on speculative inputs.
 *
 * Modelling simplifications (documented in DESIGN.md): no wrong-path
 * fetch effects beyond the redirect bubble, universal function units,
 * and DPNT training applied in trace order rather than at commit.
 */

#ifndef RARPRED_CPU_OOO_CPU_HH_
#define RARPRED_CPU_OOO_CPU_HH_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/srt.hh"
#include "cpu/cpu_config.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/store_sets.hh"
#include "vm/trace.hh"

namespace rarpred {

/** The timing model. */
class OooCpu : public TraceSink
{
  public:
    OooCpu(const CpuConfig &config, const CloakTimingConfig &cloak);
    ~OooCpu() override;

    /** Feed the next committed instruction. */
    void onInst(const DynInst &di) override;

    /** @return statistics; cycles is the commit time of the last inst. */
    CpuStats stats() const;

    /** Underlying cloaking engine (null when cloaking is disabled). */
    CloakingEngine *cloakingEngine() { return engine_.get(); }

    /** Bypassing structure, exposed for the online invariant auditor. */
    SynonymRenameTable &srt() { return srt_; }

    /**
     * Serialize the complete timing state: the cloaking engine, the
     * memory hierarchy, branch predictors, scoreboards, bandwidth
     * limiters, window/store-queue state, completion rings, SRT,
     * store sets, and statistics. Configuration is not serialized —
     * the restore target must be constructed with the same config,
     * which the snapshot fingerprint guarantees.
     */
    void saveState(StateWriter &w) const;
    Status restoreState(StateReader &r);

  private:
    /** A width-limited resource: at most `width` events per cycle. */
    class BandwidthLimiter
    {
      public:
        explicit BandwidthLimiter(unsigned width) : width_(width) {}

        /** @return the first cycle >= request with a free slot. */
        uint64_t
        allocate(uint64_t request)
        {
            uint64_t cycle = request;
            while (true) {
                auto [it, inserted] = used_.try_emplace(cycle, 0);
                if (it->second < width_) {
                    ++it->second;
                    return cycle;
                }
                ++cycle;
            }
        }

        /** Forget accounting for cycles below @p floor. */
        void
        prune(uint64_t floor)
        {
            for (auto it = used_.begin(); it != used_.end();) {
                if (it->first < floor)
                    it = used_.erase(it);
                else
                    ++it;
            }
        }

        size_t size() const { return used_.size(); }

        /** Serialize sorted by cycle: the image must be byte-stable. */
        void
        saveState(StateWriter &w) const
        {
            std::vector<uint64_t> cycles;
            cycles.reserve(used_.size());
            for (const auto &[cycle, count] : used_)
                cycles.push_back(cycle);
            std::sort(cycles.begin(), cycles.end());
            w.u64(cycles.size());
            for (uint64_t cycle : cycles) {
                w.u64(cycle);
                w.u32(used_.find(cycle)->second);
            }
        }

        Status
        restoreState(StateReader &r)
        {
            uint64_t size = 0;
            RARPRED_RETURN_IF_ERROR(r.u64(&size));
            used_.clear();
            for (uint64_t i = 0; i < size; ++i) {
                uint64_t cycle = 0;
                uint32_t count = 0;
                RARPRED_RETURN_IF_ERROR(r.u64(&cycle));
                RARPRED_RETURN_IF_ERROR(r.u32(&count));
                used_[cycle] = count;
            }
            return Status{};
        }

      private:
        unsigned width_;
        std::unordered_map<uint64_t, unsigned> used_;
    };

    /** An in-flight store tracked by the load/store scheduler. */
    struct StoreRecord
    {
        uint64_t seq;
        uint64_t pc;
        uint64_t addr;
        uint64_t addrReady;     ///< cycle its address is known
        uint64_t dataReadySpec; ///< data available (speculative chain)
        uint64_t dataReadyArch; ///< data verified
    };

    /** @return the in-flight store with @p seq, or nullptr. */
    const StoreRecord *findStoreBySeq(uint64_t seq) const;

    /** Speculative/verified completion pair for a load. */
    struct LoadTiming
    {
        uint64_t spec;
        uint64_t arch;
    };

    uint64_t handleFetch(const DynInst &di);
    void handleControl(const DynInst &di, uint64_t resolve_cycle);
    LoadTiming loadCompleteCycle(const DynInst &di, uint64_t sched);
    /** @return cycle a past instruction's value exists (0 if ancient). */
    uint64_t valueTimeOf(uint64_t seq) const;
    /** @return commit cycle of a past instruction (0 if ancient). */
    uint64_t commitTimeOf(uint64_t seq) const;
    void recordValueTime(uint64_t seq, uint64_t cycle);
    void recordCommitTime(uint64_t seq, uint64_t cycle);
    /**
     * When a predicted consumer uses a cloaked value, compute the
     * cycle the value exists: through the SRT if the producer is
     * still in flight at @p dispatch (bypassing, Figure 1(b)), or
     * from the Synonym File if it has committed.
     */
    uint64_t speculativeValueTime(const LoadOutcome &outcome,
                                  uint64_t dispatch);
    void pruneBandwidth();

    CpuConfig config_;
    CloakTimingConfig cloakConfig_;
    std::unique_ptr<CloakingEngine> engine_;
    MemorySystem memory_;
    CombinedPredictor branchPredictor_;
    ReturnAddressStack ras_;

    // Register scoreboard: value availability for consumers (spec may
    // be earlier than arch when a cloaked value was used).
    uint64_t specReady_[reg::kNumRegs] = {};
    uint64_t archReady_[reg::kNumRegs] = {};

    // Front end state.
    uint64_t fetchRedirect_ = 0; ///< earliest fetch cycle (mispredicts)
    BandwidthLimiter fetchBw_;
    BandwidthLimiter issueBw_;
    BandwidthLimiter lsqBw_;
    BandwidthLimiter commitBw_;

    // Window occupancy: commit cycles of the last windowSize insts.
    std::deque<uint64_t> commitRing_;
    uint64_t lastCommit_ = 0;

    // In-flight stores (bounded by window size).
    std::deque<StoreRecord> storeQueue_;
    /** Prefix-max of store address-ready times (conservative mode). */
    uint64_t storeAddrReadyMax_ = 0;

    // Completion and commit times of recent instructions, by seq.
    static constexpr size_t kValueRing = 1 << 15;
    std::vector<uint64_t> valueTime_;
    std::vector<uint64_t> valueSeq_;
    std::vector<uint64_t> commitTime_;
    std::vector<uint64_t> commitSeq_;

    /** The bypassing structure: synonym -> in-flight producer. */
    SynonymRenameTable srt_;

    /** Memory dependence predictor (MemDepPolicy::StoreSets). */
    StoreSetPredictor storeSets_;

    CpuStats stats_;
    uint64_t lastFetch_ = 0;
    uint64_t lastFetchBlock_ = ~0ull;
    uint64_t pruneCounter_ = 0;
};

} // namespace rarpred

#endif // RARPRED_CPU_OOO_CPU_HH_
