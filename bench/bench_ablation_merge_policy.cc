/**
 * @file
 * Ablation (Section 5.1): synonym merge policy. The paper replaced
 * the original full-merge algorithm (associative DPNT scan) with
 * Chrysos & Emer's incremental merge and reports "no noticeable
 * difference in accuracy". This bench verifies that on our suite, and
 * also reports the never-merge strawman the paper argues against.
 *
 * Runs as an 18 × 2 grid on the parallel sweep driver (--workers=N /
 * --serial).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/cloaking.hh"
#include "driver/sweep.hh"

int
main(int argc, char **argv)
{
    using rarpred::MergePolicy;

    const std::vector<MergePolicy> merges = {
        MergePolicy::FullMerge,
        MergePolicy::Incremental,
    };

    rarpred::driver::installStopHandlers();
    const auto parsed = rarpred::driver::parseSweepArgs(argc, argv);
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        return 0;
    }

    rarpred::driver::SimJobRunner runner(parsed->runner);
    const auto workloads = rarpred::driver::allWorkloadPtrs();

    const auto stats = rarpred::driver::runSweep(
        runner, workloads, merges.size(),
        [&merges](const rarpred::Workload &, size_t ci,
                  rarpred::TraceSource &trace, rarpred::Rng &) {
            rarpred::CloakingConfig config;
            config.ddt.entries = 128;
            config.dpnt.merge = merges[ci];
            rarpred::CloakingEngine engine(config);
            rarpred::driver::pumpSimulation(trace, engine);
            return engine.stats();
        },
        parsed->io);
    if (!stats.status.ok())
        return rarpred::driver::finishSweep(runner, stats.status,
                                            std::cerr);

    std::printf("Ablation: synonym merge policy (coverage%% / misp%%)\n");
    std::printf("(128-entry DDT, infinite DPNT/SF, adaptive "
                "confidence)\n\n");
    std::printf("%-6s | %16s | %16s\n", "prog", "full merge",
                "incremental");

    double cov[2] = {0, 0};
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const auto &full = stats[wi * merges.size() + 0];
        const auto &inc = stats[wi * merges.size() + 1];
        std::printf("%-6s | %6.2f%% / %5.3f%% | %6.2f%% / %5.3f%%\n",
                    workloads[wi]->abbrev.c_str(), 100 * full.coverage(),
                    100 * full.mispredictionRate(),
                    100 * inc.coverage(),
                    100 * inc.mispredictionRate());
        cov[0] += full.coverage();
        cov[1] += inc.coverage();
    }
    std::printf("\nmean coverage: full %.2f%%, incremental %.2f%% "
                "(paper: no noticeable difference)\n",
                100 * cov[0] / 18, 100 * cov[1] / 18);

    return rarpred::driver::finishSweep(runner, stats.status, std::cerr);
}
