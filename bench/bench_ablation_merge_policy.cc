/**
 * @file
 * Ablation (Section 5.1): synonym merge policy. The paper replaced
 * the original full-merge algorithm (associative DPNT scan) with
 * Chrysos & Emer's incremental merge and reports "no noticeable
 * difference in accuracy". This bench verifies that on our suite, and
 * also reports the never-merge strawman the paper argues against.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/cloaking.hh"

namespace {

rarpred::CloakingStats
runWith(const rarpred::Workload &w, rarpred::MergePolicy merge)
{
    rarpred::CloakingConfig config;
    config.ddt.entries = 128;
    config.dpnt.merge = merge;
    rarpred::CloakingEngine engine(config);
    rarpred::benchutil::runWorkload(w, engine);
    return engine.stats();
}

} // namespace

int
main()
{
    std::printf("Ablation: synonym merge policy (coverage%% / misp%%)\n");
    std::printf("(128-entry DDT, infinite DPNT/SF, adaptive "
                "confidence)\n\n");
    std::printf("%-6s | %16s | %16s\n", "prog", "full merge",
                "incremental");

    double cov[2] = {0, 0};
    for (const auto &w : rarpred::allWorkloads()) {
        auto full = runWith(w, rarpred::MergePolicy::FullMerge);
        auto inc = runWith(w, rarpred::MergePolicy::Incremental);
        std::printf("%-6s | %6.2f%% / %5.3f%% | %6.2f%% / %5.3f%%\n",
                    w.abbrev.c_str(), 100 * full.coverage(),
                    100 * full.mispredictionRate(),
                    100 * inc.coverage(),
                    100 * inc.mispredictionRate());
        cov[0] += full.coverage();
        cov[1] += inc.coverage();
    }
    std::printf("\nmean coverage: full %.2f%%, incremental %.2f%% "
                "(paper: no noticeable difference)\n",
                100 * cov[0] / 18, 100 * cov[1] / 18);
    return 0;
}
