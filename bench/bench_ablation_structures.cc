/**
 * @file
 * Ablations over the mechanism's structures:
 *  1. separate load/store DDTs (Section 5.6.2's fix for the common-
 *     DDT eviction anomaly) vs the shared table;
 *  2. DPNT geometry (finite vs infinite);
 *  3. synonym file size;
 *  4. DDT detection granularity.
 *
 * Reported as mean coverage / misspeculation over the whole suite.
 *
 * Runs as an 18 × 9 grid on the parallel sweep driver (--workers=N /
 * --serial); every variant replays the same recorded traces.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/cloaking.hh"
#include "driver/sweep.hh"

namespace {

struct Variant
{
    std::string name;
    std::function<void(rarpred::CloakingConfig &)> apply;
};

} // namespace

int
main(int argc, char **argv)
{
    using rarpred::CloakingConfig;

    const std::vector<Variant> variants = {
        {"baseline (128 DDT, 8K/2 DPNT, 1K/2 SF)", [](CloakingConfig &) {}},
        {"separate load/store DDTs",
         [](CloakingConfig &c) { c.ddt.separateTables = true; }},
        {"DDT 512 entries",
         [](CloakingConfig &c) { c.ddt.entries = 512; }},
        {"DDT 32 entries",
         [](CloakingConfig &c) { c.ddt.entries = 32; }},
        {"infinite DPNT",
         [](CloakingConfig &c) { c.dpnt.geometry = {0, 0}; }},
        {"DPNT 1K 2-way",
         [](CloakingConfig &c) { c.dpnt.geometry = {1024, 2}; }},
        {"infinite SF", [](CloakingConfig &c) { c.sf = {0, 0}; }},
        {"SF 128 2-way", [](CloakingConfig &c) { c.sf = {128, 2}; }},
        {"DDT granularity 32B",
         [](CloakingConfig &c) { c.ddt.granularityLog2 = 5; }},
    };

    rarpred::driver::installStopHandlers();
    const auto parsed = rarpred::driver::parseSweepArgs(argc, argv);
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        return 0;
    }

    rarpred::driver::SimJobRunner runner(parsed->runner);
    const auto workloads = rarpred::driver::allWorkloadPtrs();

    const auto stats = rarpred::driver::runSweep(
        runner, workloads, variants.size(),
        [&variants](const rarpred::Workload &, size_t ci,
                    rarpred::TraceSource &trace, rarpred::Rng &) {
            CloakingConfig config;
            config.ddt.entries = 128;
            config.dpnt.geometry = {8192, 2};
            config.sf = {1024, 2};
            variants[ci].apply(config);
            rarpred::CloakingEngine engine(config);
            rarpred::driver::pumpSimulation(trace, engine);
            return engine.stats();
        },
        parsed->io);
    if (!stats.status.ok())
        return rarpred::driver::finishSweep(runner, stats.status,
                                            std::cerr);

    std::printf("Ablation: structure geometry "
                "(suite mean coverage / misspeculation)\n\n");
    for (size_t ci = 0; ci < variants.size(); ++ci) {
        double cov = 0, misp = 0, raw = 0, rar = 0;
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            const auto &s = stats[wi * variants.size() + ci];
            cov += s.coverage();
            misp += s.mispredictionRate();
            raw += s.detectedRaw / (double)s.loads;
            rar += s.detectedRar / (double)s.loads;
        }
        std::printf("%-40s cov %6.2f%%  misp %6.3f%%  "
                    "(det RAW %5.1f%% RAR %5.1f%%)\n",
                    variants[ci].name.c_str(), 100 * cov / 18,
                    100 * misp / 18, 100 * raw / 18, 100 * rar / 18);
    }
    std::printf("\nExpected: separate DDTs recover RAW detections the "
                "shared table loses to load\nevictions; accuracy "
                "degrades gracefully with smaller DPNT/SF.\n");

    return rarpred::driver::finishSweep(runner, stats.status, std::cerr);
}
