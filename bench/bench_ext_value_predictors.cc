/**
 * @file
 * Extension experiment: how richer value predictors (stride, finite
 * context method) compare with cloaking — the "context-based value
 * predictors could be used to increase load value prediction
 * coverage" direction of Section 5.5.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/cloaking.hh"
#include "core/value_predictor.hh"

int
main()
{
    using namespace rarpred;

    std::printf("Extensions: value predictor family vs cloaking\n");
    std::printf("(correct speculative values as %% of all loads)\n\n");
    std::printf("%-6s | %8s %8s %8s | %8s\n", "prog", "last", "stride",
                "context", "cloak");

    double sums[4] = {};
    for (const auto &w : allWorkloads()) {
        LastValuePredictor last({16384, 0});
        StrideValuePredictor stride({16384, 0});
        ContextValuePredictor context({16384, 0}, 65536, 4);
        CloakingConfig config;
        config.ddt.entries = 128;
        CloakingEngine cloak(config);

        uint64_t loads = 0;
        uint64_t ok[4] = {};
        Program p = w.build(1);
        MicroVM vm(p);
        DynInst di;
        while (vm.next(di)) {
            bool l = last.processInst(di);
            bool s = stride.processInst(di);
            bool c = context.processInst(di);
            auto o = cloak.processInst(di);
            if (o.wasLoad) {
                ++loads;
                ok[0] += l;
                ok[1] += s;
                ok[2] += c;
                ok[3] += o.used && o.correct;
            }
        }
        std::printf("%-6s | %7.1f%% %7.1f%% %7.1f%% | %7.1f%%\n",
                    w.abbrev.c_str(), 100.0 * ok[0] / loads,
                    100.0 * ok[1] / loads, 100.0 * ok[2] / loads,
                    100.0 * ok[3] / loads);
        for (int i = 0; i < 4; ++i)
            sums[i] += (double)ok[i] / loads;
    }
    std::printf("%-6s | %7.1f%% %7.1f%% %7.1f%% | %7.1f%%\n", "MEAN",
                100 * sums[0] / 18, 100 * sums[1] / 18,
                100 * sums[2] / 18, 100 * sums[3] / 18);
    std::printf("\nExpected: stride > last-value on induction-heavy "
                "codes; context captures\nrepeating sequences; cloaking "
                "remains ahead on dependence-rich codes because\nit "
                "does not require a predictable value sequence.\n");
    return 0;
}
