/**
 * @file
 * Ablation of the base machine's memory dependence policy: naive
 * speculation (the paper's base, [14]), store-set prediction
 * (Chrysos & Emer [5]), and no speculation (the Figure 10 base).
 *
 * The paper reports that for its centralized-window processor naive
 * speculation performs "very close to ideal"; store sets should
 * therefore match naive closely while eliminating the order
 * violations, and the conservative machine should trail.
 */

#include <cstdio>

#include "bench_util.hh"
#include "cpu/ooo_cpu.hh"

namespace {

rarpred::CpuStats
run(const rarpred::Workload &w, rarpred::MemDepPolicy policy)
{
    rarpred::CpuConfig config;
    config.memDep = policy;
    rarpred::OooCpu cpu(config, {});
    rarpred::benchutil::runWorkload(w, cpu);
    return cpu.stats();
}

} // namespace

int
main()
{
    using rarpred::MemDepPolicy;

    std::printf("Ablation: base-machine memory dependence policy\n");
    std::printf("(speedup over the conservative machine; order "
                "violations in parens)\n\n");
    std::printf("%-6s | %18s | %18s\n", "prog", "naive [14]",
                "store sets [5]");

    double sums[2] = {0, 0};
    for (const auto &w : rarpred::allWorkloads()) {
        auto cons = run(w, MemDepPolicy::Conservative);
        auto naive = run(w, MemDepPolicy::Naive);
        auto ss = run(w, MemDepPolicy::StoreSets);
        const double s_naive =
            100.0 * ((double)cons.cycles / naive.cycles - 1.0);
        const double s_ss =
            100.0 * ((double)cons.cycles / ss.cycles - 1.0);
        std::printf("%-6s | %8.2f%% (%6llu) | %8.2f%% (%6llu)\n",
                    w.abbrev.c_str(), s_naive,
                    (unsigned long long)naive.memOrderViolations, s_ss,
                    (unsigned long long)ss.memOrderViolations);
        sums[0] += s_naive;
        sums[1] += s_ss;
    }
    std::printf("%-6s | %8.2f%%          | %8.2f%%\n", "MEAN",
                sums[0] / 18, sums[1] / 18);
    std::printf("\nExpected: store sets keep naive's performance while "
                "eliminating most\nviolations; both beat the "
                "conservative machine where store addresses resolve\n"
                "late.\n");
    return 0;
}
