/**
 * @file
 * Ablation of the base machine's memory dependence policy: naive
 * speculation (the paper's base, [14]), store-set prediction
 * (Chrysos & Emer [5]), and no speculation (the Figure 10 base).
 *
 * The paper reports that for its centralized-window processor naive
 * speculation performs "very close to ideal"; store sets should
 * therefore match naive closely while eliminating the order
 * violations, and the conservative machine should trail.
 *
 * Runs as an 18 × 3 grid on the parallel sweep driver (--workers=N /
 * --serial).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sweep.hh"

int
main(int argc, char **argv)
{
    using rarpred::MemDepPolicy;

    const std::vector<MemDepPolicy> policies = {
        MemDepPolicy::Conservative,
        MemDepPolicy::Naive,
        MemDepPolicy::StoreSets,
    };

    rarpred::driver::installStopHandlers();
    const auto parsed = rarpred::driver::parseSweepArgs(argc, argv);
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        return 0;
    }

    rarpred::driver::SimJobRunner runner(parsed->runner);
    const auto workloads = rarpred::driver::allWorkloadPtrs();

    const auto stats = rarpred::driver::runSweep(
        runner, workloads, policies.size(),
        [&policies](const rarpred::Workload &, size_t ci,
                    rarpred::TraceSource &trace, rarpred::Rng &) {
            rarpred::CpuConfig config;
            config.memDep = policies[ci];
            rarpred::OooCpu cpu(config, {});
            rarpred::driver::pumpSimulation(trace, cpu);
            return cpu.stats();
        },
        parsed->io);
    if (!stats.status.ok())
        return rarpred::driver::finishSweep(runner, stats.status,
                                            std::cerr);

    std::printf("Ablation: base-machine memory dependence policy\n");
    std::printf("(speedup over the conservative machine; order "
                "violations in parens)\n\n");
    std::printf("%-6s | %18s | %18s\n", "prog", "naive [14]",
                "store sets [5]");

    double sums[2] = {0, 0};
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const size_t row = wi * policies.size();
        const auto &cons = stats[row];
        const auto &naive = stats[row + 1];
        const auto &ss = stats[row + 2];
        const double s_naive =
            100.0 * ((double)cons.cycles / naive.cycles - 1.0);
        const double s_ss =
            100.0 * ((double)cons.cycles / ss.cycles - 1.0);
        std::printf("%-6s | %8.2f%% (%6llu) | %8.2f%% (%6llu)\n",
                    workloads[wi]->abbrev.c_str(), s_naive,
                    (unsigned long long)naive.memOrderViolations, s_ss,
                    (unsigned long long)ss.memOrderViolations);
        sums[0] += s_naive;
        sums[1] += s_ss;
    }
    std::printf("%-6s | %8.2f%%          | %8.2f%%\n", "MEAN",
                sums[0] / 18, sums[1] / 18);
    std::printf("\nExpected: store sets keep naive's performance while "
                "eliminating most\nviolations; both beat the "
                "conservative machine where store addresses resolve\n"
                "late.\n");

    return rarpred::driver::finishSweep(runner, stats.status, std::cerr);
}
