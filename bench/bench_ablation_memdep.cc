/**
 * @file
 * Ablation of the base machine's memory dependence policy: naive
 * speculation (the paper's base, [14]), store-set prediction
 * (Chrysos & Emer [5]), and no speculation (the Figure 10 base).
 *
 * The paper reports that for its centralized-window processor naive
 * speculation performs "very close to ideal"; store sets should
 * therefore match naive closely while eliminating the order
 * violations, and the conservative machine should trail.
 *
 * Runs as an 18 × 3 grid on the parallel sweep driver (--workers=N /
 * --serial).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sweep.hh"

int
main(int argc, char **argv)
{
    using rarpred::MemDepPolicy;

    const std::vector<MemDepPolicy> policies = {
        MemDepPolicy::Conservative,
        MemDepPolicy::Naive,
        MemDepPolicy::StoreSets,
    };

    rarpred::driver::SimJobRunner runner(
        rarpred::driver::runnerConfigFromArgs(argc, argv));
    const auto workloads = rarpred::driver::allWorkloadPtrs();

    const std::vector<rarpred::CpuStats> stats = rarpred::driver::runSweep(
        runner, workloads, policies.size(),
        [&policies](const rarpred::Workload &, size_t ci,
                    rarpred::TraceSource &trace, rarpred::Rng &) {
            rarpred::CpuConfig config;
            config.memDep = policies[ci];
            rarpred::OooCpu cpu(config, {});
            rarpred::drainTrace(trace, cpu);
            return cpu.stats();
        });

    std::printf("Ablation: base-machine memory dependence policy\n");
    std::printf("(speedup over the conservative machine; order "
                "violations in parens)\n\n");
    std::printf("%-6s | %18s | %18s\n", "prog", "naive [14]",
                "store sets [5]");

    double sums[2] = {0, 0};
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const rarpred::CpuStats *row = &stats[wi * policies.size()];
        const auto &cons = row[0];
        const auto &naive = row[1];
        const auto &ss = row[2];
        const double s_naive =
            100.0 * ((double)cons.cycles / naive.cycles - 1.0);
        const double s_ss =
            100.0 * ((double)cons.cycles / ss.cycles - 1.0);
        std::printf("%-6s | %8.2f%% (%6llu) | %8.2f%% (%6llu)\n",
                    workloads[wi]->abbrev.c_str(), s_naive,
                    (unsigned long long)naive.memOrderViolations, s_ss,
                    (unsigned long long)ss.memOrderViolations);
        sums[0] += s_naive;
        sums[1] += s_ss;
    }
    std::printf("%-6s | %8.2f%%          | %8.2f%%\n", "MEAN",
                sums[0] / 18, sums[1] / 18);
    std::printf("\nExpected: store sets keep naive's performance while "
                "eliminating most\nviolations; both beat the "
                "conservative machine where store addresses resolve\n"
                "late.\n");

    runner.dumpStats(std::cerr);
    return 0;
}
