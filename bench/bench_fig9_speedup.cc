/**
 * @file
 * Reproduces Figure 9: speedup of cloaking/bypassing over the base
 * out-of-order processor (which uses naive memory dependence
 * speculation), for RAW-only vs combined RAW+RAR mechanisms and for
 * selective vs squash misspeculation invalidation.
 *
 * Mechanism per Section 5.6.1: 128-entry fully-associative DDT, 8K
 * 2-way DPNT, 1K 2-way synonym file, predictions at decode.
 *
 * Paper expectations: squash invalidation rarely wins; selective
 * invalidation gives speedups on all programs; RAW+RAR beats RAW
 * (averages 6.44% vs 4.28% int, 4.66% vs 3.20% fp).
 *
 * Execution: 18 workloads × 5 machine configurations on the parallel
 * sweep driver (--workers=N / --serial); each workload executes
 * functionally once and the recorded trace feeds all five cores.
 * With --workers-proc=N each cell is computed in a sandboxed worker
 * process (crash containment) with byte-identical results — the grid
 * is expressed as serializable CellConfigMsg rows for exactly that.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sweep.hh"
#include "service/proto.hh"

namespace {

rarpred::service::CellConfigMsg
mechanism(rarpred::CloakingMode mode, rarpred::RecoveryModel recovery)
{
    // Section 5.6.1 geometry is CellConfigMsg's default (128-entry
    // DDT, 8K 2-way DPNT, 1K 2-way SF, two-bit adaptive confidence);
    // only the mechanism axes vary.
    rarpred::service::CellConfigMsg cfg;
    cfg.cloakEnabled = 1;
    cfg.mode = (uint8_t)mode;
    cfg.recovery = (uint8_t)recovery;
    return cfg;
}

rarpred::service::CellConfigMsg
baseCore()
{
    rarpred::service::CellConfigMsg cfg;
    cfg.cloakEnabled = 0; // bare base core, naive memdep speculation
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    using rarpred::CloakingMode;
    using rarpred::RecoveryModel;

    rarpred::driver::installStopHandlers();
    const auto parsed = rarpred::driver::parseSweepArgs(argc, argv);
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        return 0;
    }

    // Config grid: base core plus the four mechanism variants.
    const std::vector<rarpred::service::CellConfigMsg> configs = {
        baseCore(),
        mechanism(CloakingMode::RawOnly, RecoveryModel::Selective),
        mechanism(CloakingMode::RawPlusRar, RecoveryModel::Selective),
        mechanism(CloakingMode::RawOnly, RecoveryModel::Squash),
        mechanism(CloakingMode::RawPlusRar, RecoveryModel::Squash),
    };

    rarpred::driver::SimJobRunner runner(parsed->runner);
    const auto workloads = rarpred::driver::allWorkloadPtrs();

    const auto cells = rarpred::driver::runCellSweep(
        runner, workloads, configs, parsed->io);
    if (!cells.status.ok())
        return rarpred::driver::finishSweep(runner, cells.status,
                                            std::cerr);

    std::printf("Figure 9: speedup of cloaking/bypassing over the base "
                "processor\n(base uses naive memory dependence "
                "speculation)\n\n");
    std::printf("%-6s | %10s %10s | %10s %10s\n", "prog", "sel RAW",
                "sel R+R", "sq RAW", "sq R+R");

    double sums[4][2] = {};
    int counts[2] = {0, 0};

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const rarpred::Workload &w = *workloads[wi];
        const size_t row = wi * configs.size();
        const uint64_t base = cells[row].cycles;
        const double s[4] = {
            100.0 * ((double)base / cells[row + 1].cycles - 1.0),
            100.0 * ((double)base / cells[row + 2].cycles - 1.0),
            100.0 * ((double)base / cells[row + 3].cycles - 1.0),
            100.0 * ((double)base / cells[row + 4].cycles - 1.0),
        };
        std::printf("%-6s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n",
                    w.abbrev.c_str(), s[0], s[1], s[2], s[3]);
        const int fp = w.isFp ? 1 : 0;
        ++counts[fp];
        for (int i = 0; i < 4; ++i)
            sums[i][fp] += s[i];
    }

    for (int fp = 0; fp < 2; ++fp)
        std::printf("%-6s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n",
                    fp ? "FP" : "INT", sums[0][fp] / counts[fp],
                    sums[1][fp] / counts[fp], sums[2][fp] / counts[fp],
                    sums[3][fp] / counts[fp]);
    std::printf("%-6s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n", "ALL",
                (sums[0][0] + sums[0][1]) / 18.0,
                (sums[1][0] + sums[1][1]) / 18.0,
                (sums[2][0] + sums[2][1]) / 18.0,
                (sums[3][0] + sums[3][1]) / 18.0);
    std::printf("\nPaper: selective RAW 4.28%% int / 3.20%% fp; "
                "selective RAW+RAR 6.44%% int / 4.66%% fp;\n"
                "squash rarely improves performance.\n");

    return rarpred::driver::finishSweep(runner, cells.status, std::cerr);
}
