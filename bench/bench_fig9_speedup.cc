/**
 * @file
 * Reproduces Figure 9: speedup of cloaking/bypassing over the base
 * out-of-order processor (which uses naive memory dependence
 * speculation), for RAW-only vs combined RAW+RAR mechanisms and for
 * selective vs squash misspeculation invalidation.
 *
 * Mechanism per Section 5.6.1: 128-entry fully-associative DDT, 8K
 * 2-way DPNT, 1K 2-way synonym file, predictions at decode.
 *
 * Paper expectations: squash invalidation rarely wins; selective
 * invalidation gives speedups on all programs; RAW+RAR beats RAW
 * (averages 6.44% vs 4.28% int, 4.66% vs 3.20% fp).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "cpu/ooo_cpu.hh"

namespace {

rarpred::CloakTimingConfig
mechanism(rarpred::CloakingMode mode, rarpred::RecoveryModel recovery)
{
    rarpred::CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.mode = mode;
    cloak.engine.ddt.entries = 128;
    cloak.engine.dpnt.geometry = {8192, 2};
    cloak.engine.dpnt.confidence =
        rarpred::ConfidenceKind::TwoBitAdaptive;
    cloak.engine.sf = {1024, 2};
    cloak.recovery = recovery;
    return cloak;
}

uint64_t
runCycles(const rarpred::Workload &w,
          const rarpred::CloakTimingConfig &cloak,
          bool mem_dep_speculation)
{
    rarpred::CpuConfig config;
    config.memDep = mem_dep_speculation ? rarpred::MemDepPolicy::Naive
                                    : rarpred::MemDepPolicy::Conservative;
    rarpred::OooCpu cpu(config, cloak);
    rarpred::benchutil::runWorkload(w, cpu);
    return cpu.stats().cycles;
}

} // namespace

int
main()
{
    using rarpred::CloakingMode;
    using rarpred::RecoveryModel;

    std::printf("Figure 9: speedup of cloaking/bypassing over the base "
                "processor\n(base uses naive memory dependence "
                "speculation)\n\n");
    std::printf("%-6s | %10s %10s | %10s %10s\n", "prog", "sel RAW",
                "sel R+R", "sq RAW", "sq R+R");

    double sums[4][2] = {};
    int counts[2] = {0, 0};

    for (const auto &w : rarpred::allWorkloads()) {
        const uint64_t base = runCycles(w, {}, true);
        const uint64_t sel_raw = runCycles(
            w, mechanism(CloakingMode::RawOnly, RecoveryModel::Selective),
            true);
        const uint64_t sel_rr = runCycles(
            w,
            mechanism(CloakingMode::RawPlusRar, RecoveryModel::Selective),
            true);
        const uint64_t sq_raw = runCycles(
            w, mechanism(CloakingMode::RawOnly, RecoveryModel::Squash),
            true);
        const uint64_t sq_rr = runCycles(
            w,
            mechanism(CloakingMode::RawPlusRar, RecoveryModel::Squash),
            true);

        const double s[4] = {
            100.0 * ((double)base / sel_raw - 1.0),
            100.0 * ((double)base / sel_rr - 1.0),
            100.0 * ((double)base / sq_raw - 1.0),
            100.0 * ((double)base / sq_rr - 1.0),
        };
        std::printf("%-6s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n",
                    w.abbrev.c_str(), s[0], s[1], s[2], s[3]);
        const int fp = w.isFp ? 1 : 0;
        ++counts[fp];
        for (int i = 0; i < 4; ++i)
            sums[i][fp] += s[i];
    }

    for (int fp = 0; fp < 2; ++fp)
        std::printf("%-6s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n",
                    fp ? "FP" : "INT", sums[0][fp] / counts[fp],
                    sums[1][fp] / counts[fp], sums[2][fp] / counts[fp],
                    sums[3][fp] / counts[fp]);
    std::printf("%-6s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n", "ALL",
                (sums[0][0] + sums[0][1]) / 18.0,
                (sums[1][0] + sums[1][1]) / 18.0,
                (sums[2][0] + sums[2][1]) / 18.0,
                (sums[3][0] + sums[3][1]) / 18.0);
    std::printf("\nPaper: selective RAW 4.28%% int / 3.20%% fp; "
                "selective RAW+RAR 6.44%% int / 4.66%% fp;\n"
                "squash rarely improves performance.\n");
    return 0;
}
