/**
 * @file
 * Ablation: cloaking alone vs cloaking + bypassing (Section 3.2).
 * Bypassing links the consumers of a cloaked load directly to the
 * producer; without it, every covered load costs one extra propagation
 * cycle on the speculative path.
 */

#include <cstdio>

#include "bench_util.hh"
#include "cpu/ooo_cpu.hh"

namespace {

uint64_t
run(const rarpred::Workload &w, bool enabled, bool bypassing)
{
    rarpred::CpuConfig config;
    rarpred::CloakTimingConfig cloak;
    if (enabled) {
        cloak.enabled = true;
        cloak.engine.ddt.entries = 128;
        cloak.engine.dpnt.geometry = {8192, 2};
        cloak.engine.sf = {1024, 2};
        cloak.bypassing = bypassing;
    }
    rarpred::OooCpu cpu(config, cloak);
    rarpred::benchutil::runWorkload(w, cpu);
    return cpu.stats().cycles;
}

} // namespace

int
main()
{
    std::printf("Ablation: cloaking alone vs cloaking + bypassing\n");
    std::printf("(speedup over the uncloaked base)\n\n");
    std::printf("%-6s | %12s %12s\n", "prog", "cloak only",
                "cloak+bypass");

    double sums[2] = {};
    for (const auto &w : rarpred::allWorkloads()) {
        const uint64_t base = run(w, false, false);
        const uint64_t cloak_only = run(w, true, false);
        const uint64_t with_bypass = run(w, true, true);
        const double s0 = 100.0 * ((double)base / cloak_only - 1.0);
        const double s1 = 100.0 * ((double)base / with_bypass - 1.0);
        std::printf("%-6s | %11.2f%% %11.2f%%\n", w.abbrev.c_str(), s0,
                    s1);
        sums[0] += s0;
        sums[1] += s1;
    }
    std::printf("%-6s | %11.2f%% %11.2f%%\n", "MEAN", sums[0] / 18,
                sums[1] / 18);
    std::printf("\nExpected: bypassing adds on top of cloaking by "
                "removing the value-propagation\nhop from every covered "
                "load's consumers.\n");
    return 0;
}
