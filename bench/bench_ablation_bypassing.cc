/**
 * @file
 * Ablation: cloaking alone vs cloaking + bypassing (Section 3.2).
 * Bypassing links the consumers of a cloaked load directly to the
 * producer; without it, every covered load costs one extra propagation
 * cycle on the speculative path.
 *
 * Runs as an 18 × 3 grid on the parallel sweep driver (--workers=N /
 * --serial).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sweep.hh"

namespace {

/** Config points: base, cloaking only, cloaking + bypassing. */
rarpred::CloakTimingConfig
variant(size_t ci)
{
    rarpred::CloakTimingConfig cloak;
    if (ci > 0) {
        cloak.enabled = true;
        cloak.engine.ddt.entries = 128;
        cloak.engine.dpnt.geometry = {8192, 2};
        cloak.engine.sf = {1024, 2};
        cloak.bypassing = ci == 2;
    }
    return cloak;
}

} // namespace

int
main(int argc, char **argv)
{
    rarpred::driver::installStopHandlers();
    const auto parsed = rarpred::driver::parseSweepArgs(argc, argv);
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        return 0;
    }

    rarpred::driver::SimJobRunner runner(parsed->runner);
    const auto workloads = rarpred::driver::allWorkloadPtrs();

    const auto cycles = rarpred::driver::runSweep(
        runner, workloads, 3,
        [](const rarpred::Workload &, size_t ci,
           rarpred::TraceSource &trace, rarpred::Rng &) {
            rarpred::CpuConfig config;
            rarpred::OooCpu cpu(config, variant(ci));
            rarpred::driver::pumpSimulation(trace, cpu);
            return cpu.stats().cycles;
        },
        parsed->io);
    if (!cycles.status.ok())
        return rarpred::driver::finishSweep(runner, cycles.status,
                                            std::cerr);

    std::printf("Ablation: cloaking alone vs cloaking + bypassing\n");
    std::printf("(speedup over the uncloaked base)\n\n");
    std::printf("%-6s | %12s %12s\n", "prog", "cloak only",
                "cloak+bypass");

    double sums[2] = {};
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const size_t row = wi * 3;
        const double s0 =
            100.0 * ((double)cycles[row] / cycles[row + 1] - 1.0);
        const double s1 =
            100.0 * ((double)cycles[row] / cycles[row + 2] - 1.0);
        std::printf("%-6s | %11.2f%% %11.2f%%\n",
                    workloads[wi]->abbrev.c_str(), s0, s1);
        sums[0] += s0;
        sums[1] += s1;
    }
    std::printf("%-6s | %11.2f%% %11.2f%%\n", "MEAN", sums[0] / 18,
                sums[1] / 18);
    std::printf("\nExpected: bypassing adds on top of cloaking by "
                "removing the value-propagation\nhop from every covered "
                "load's consumers.\n");

    return rarpred::driver::finishSweep(runner, cycles.status, std::cerr);
}
