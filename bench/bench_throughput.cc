/**
 * @file
 * Hot-path throughput harness (ROADMAP item 1, DESIGN.md §7): how
 * many trace records per second each stage of the simulate loop
 * sustains, measured component by component:
 *
 *   decode    RecordedTraceSource::nextBlock into a stack block
 *   cloaking  the functional accuracy pipeline (CloakingEngine)
 *   cpu       the full timing model (OooCpu with cloaking attached)
 *   stats     CpuStats/CloakingStats dump formatting, amortized
 *
 * Each component reports records/sec and ns/record, plus the measured
 * load factors and probe lengths of the open-addressing tables under
 * the loop, so a perf regression can be localized without a profiler.
 * Emits BENCH_throughput.json (--out=FILE to redirect); the nightly
 * CI perf guard compares it against bench/baselines/ within a ±15%
 * band (bench/compare_throughput.py).
 *
 * Not a paper figure: this is the repo's own perf trajectory.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/cloaking.hh"
#include "cpu/cpu_config.hh"
#include "cpu/ooo_cpu.hh"
#include "vm/recorded_trace.hh"
#include "vm/trace.hh"
#include "workload/workload.hh"

namespace {

using rarpred::CloakingConfig;
using rarpred::CloakingEngine;
using rarpred::CloakingMode;
using rarpred::CloakTimingConfig;
using rarpred::CpuConfig;
using rarpred::DynInst;
using rarpred::kTraceBatch;
using rarpred::OooCpu;
using rarpred::ProbeStats;
using rarpred::RecordedTrace;
using rarpred::RecordedTraceSource;
using rarpred::TraceSink;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Section 5.6.1 default mechanism, the golden-stats configuration. */
CloakTimingConfig
defaultCloakTiming()
{
    CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.mode = CloakingMode::RawPlusRar;
    cloak.engine.ddt.entries = 128;
    cloak.engine.dpnt.geometry = {8192, 2};
    cloak.engine.sf = {1024, 2};
    cloak.bypassing = true;
    return cloak;
}

struct ComponentResult
{
    double seconds = 0;
    uint64_t records = 0;

    double nsPerRecord() const
    {
        return records == 0 ? 0.0 : seconds * 1e9 / (double)records;
    }
    double recordsPerSec() const
    {
        return seconds <= 0 ? 0.0 : (double)records / seconds;
    }
};

/** Feed @p records records (looping the trace) into @p sink. */
ComponentResult
pumpRecords(const RecordedTrace &trace, TraceSink &sink,
            uint64_t records)
{
    RecordedTraceSource source(trace);
    DynInst block[kTraceBatch];
    ComponentResult r;
    const auto start = std::chrono::steady_clock::now();
    while (r.records < records) {
        size_t n = source.nextBlock(block, kTraceBatch);
        if (n == 0) {
            source.rewind();
            continue;
        }
        if (r.records + n > records)
            n = (size_t)(records - r.records);
        sink.onBatch(block, n);
        r.records += n;
    }
    r.seconds = secondsSince(start);
    return r;
}

/** Pure block decode: no consumer, records just stream through L1. */
ComponentResult
pumpDecodeOnly(const RecordedTrace &trace, uint64_t records)
{
    RecordedTraceSource source(trace);
    DynInst block[kTraceBatch];
    ComponentResult r;
    uint64_t checksum = 0;
    const auto start = std::chrono::steady_clock::now();
    while (r.records < records) {
        const size_t n = source.nextBlock(block, kTraceBatch);
        if (n == 0) {
            source.rewind();
            continue;
        }
        checksum += block[n - 1].pc; // keep the decode observable
        r.records += n;
    }
    r.seconds = secondsSince(start);
    if (checksum == 0xdeadbeef)
        std::cerr << "";
    return r;
}

void
emitComponent(std::ostringstream &os, const char *name,
              const ComponentResult &r, bool last = false)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  \"%s\": {\"records\": %llu, "
                  "\"records_per_sec\": %.0f, "
                  "\"ns_per_record\": %.2f}%s\n",
                  name, (unsigned long long)r.records,
                  r.recordsPerSec(), r.nsPerRecord(), last ? "" : ",");
    os << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_throughput.json";
    std::string workload = "li";
    uint64_t records = 1'000'000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--records=", 0) == 0) {
            records = std::stoull(arg.substr(10));
        } else if (arg == "--records" && i + 1 < argc) {
            records = std::stoull(argv[++i]);
        } else if (arg.rfind("--workload=", 0) == 0) {
            workload = arg.substr(11);
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--records=N] [--workload=NAME]"
                         " [--out=FILE]\n";
            return 2;
        }
    }
    if (records == 0) {
        std::cerr << "--records must be positive\n";
        return 2;
    }

    const rarpred::Workload &w = rarpred::findWorkload(workload);
    const RecordedTrace trace = RecordedTrace::record(w.build(1),
                                                      records);

    // ---- decode -------------------------------------------------
    const ComponentResult decode = pumpDecodeOnly(trace, records);

    // ---- cloaking (functional pipeline) -------------------------
    CloakingConfig cconfig;
    cconfig.mode = CloakingMode::RawPlusRar;
    cconfig.ddt.entries = 128;
    cconfig.dpnt.geometry = {8192, 2};
    cconfig.sf = {1024, 2};
    CloakingEngine engine(cconfig);
    const ComponentResult cloaking = pumpRecords(trace, engine,
                                                 records);

    // ---- cpu (timing model) -------------------------------------
    OooCpu cpu(CpuConfig{}, defaultCloakTiming());
    const ComponentResult cpu_pump = pumpRecords(trace, cpu, records);

    // ---- stats formatting; one "record" = one full dump ---------
    ComponentResult stats_fmt;
    stats_fmt.records = 1000;
    {
        const auto start = std::chrono::steady_clock::now();
        size_t sunk = 0;
        for (int i = 0; i < 1000; ++i) {
            std::ostringstream os;
            cpu.stats().dump(os);
            engine.stats().dump(os);
            sunk += os.str().size();
        }
        stats_fmt.seconds = secondsSince(start);
        if (sunk == 0)
            return 1;
    }

    // ---- probe-path health --------------------------------------
    const OooCpu::HotPathLoads loads = cpu.hotPathLoads();
    const ProbeStats ddt = engine.detector().probeStats();

    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"throughput\",\n";
    os << "  \"workload\": \"" << workload << "\",\n";
    os << "  \"records\": " << records << ",\n";
    emitComponent(os, "decode", decode);
    emitComponent(os, "cloaking", cloaking);
    emitComponent(os, "cpu", cpu_pump);
    emitComponent(os, "stats", stats_fmt);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  \"tables\": {\"ddt_load_factor\": %.4f, "
        "\"ddt_avg_probe\": %.3f, \"srt_avg_probe\": %.3f, "
        "\"issue_bw_load_factor\": %.4f, "
        "\"issue_bw_avg_probe\": %.3f, "
        "\"arena_reserved_bytes\": %zu}\n",
        ddt.loadFactor(), ddt.avgProbe(), loads.srt.avgProbe(),
        loads.issueBw.loadFactor(), loads.issueBw.avgProbe(),
        loads.arenaReservedBytes);
    os << buf;
    os << "}\n";

    std::ofstream out(out_path);
    out << os.str();
    if (!out.good()) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
