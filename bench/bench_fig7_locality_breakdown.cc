/**
 * @file
 * Reproduces Figure 7: (a) address locality and (b) value locality of
 * loads, broken down by the dependence status a 128-entry DDT detects
 * (RAW / RAR / no dependence), next to the cloaking coverage achieved
 * by the adaptive RAW+RAR mechanism.
 *
 * Paper expectations: many loads covered by cloaking do NOT exhibit
 * address locality (cloaking does not require predictable addresses);
 * cloaking coverage usually exceeds value locality; very few loads
 * exhibit address locality yet have no detectable dependence.
 */

#include <cstdio>

#include "analysis/inst_mix.hh"
#include "analysis/locality.hh"
#include "bench_util.hh"
#include "core/cloaking.hh"

int
main()
{
    std::printf("Figure 7: address/value locality vs cloaking coverage\n");
    std::printf("(128-entry DDT; percentages over all loads)\n\n");
    std::printf("%-6s | %28s | %28s | %15s\n", "",
                "(a) address locality", "(b) value locality",
                "cloaking cov");
    std::printf("%-6s | %8s %8s %8s | %8s %8s %8s | %7s %7s\n", "prog",
                "RAW", "RAR", "none", "RAW", "RAR", "none", "RAW",
                "RAR");

    for (const auto &w : rarpred::allWorkloads()) {
        rarpred::AddressValueLocalityAnalyzer locality(
            rarpred::DdtConfig{});
        rarpred::CloakingConfig config;
        config.ddt.entries = 128;
        rarpred::CloakingEngine cloaking(config);
        rarpred::TeeSink tee{&locality, &cloaking};
        rarpred::benchutil::runWorkload(w, tee);

        const auto &addr = locality.address();
        const auto &value = locality.value();
        const auto &cs = cloaking.stats();
        const double loads = (double)cs.loads;
        using rarpred::DepCategory;
        std::printf("%-6s | %7.1f%% %7.1f%% %7.1f%% | "
                    "%7.1f%% %7.1f%% %7.1f%% | %6.1f%% %6.1f%%\n",
                    w.abbrev.c_str(),
                    100 * addr.fractionOf(DepCategory::Raw),
                    100 * addr.fractionOf(DepCategory::Rar),
                    100 * addr.fractionOf(DepCategory::None),
                    100 * value.fractionOf(DepCategory::Raw),
                    100 * value.fractionOf(DepCategory::Rar),
                    100 * value.fractionOf(DepCategory::None),
                    100 * cs.coveredRaw / loads,
                    100 * cs.coveredRar / loads);
    }
    return 0;
}
