/**
 * @file
 * Reproduces Figure 5: fraction of loads with a detectable RAW or RAR
 * dependence as a function of DDT size (32..2K entries, LRU).
 *
 * Paper expectations: a large fraction of loads have a visible
 * dependence even with small DDTs; integer codes see roughly twice as
 * many RAW as RAR dependences at small sizes while floating-point
 * codes are reversed; RAW detection keeps growing with DDT size and
 * converts some RAR dependences into RAW ones (loads whose store
 * producer is distant).
 *
 * Execution: the 18 × 7 grid runs on the parallel sweep driver
 * (--workers=N / --serial); each workload's trace is generated once
 * and replayed into every DDT size. Runner timing counters go to
 * stderr; the table below is bit-identical for any worker count.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/ddt.hh"
#include "driver/sweep.hh"
#include "vm/trace.hh"

namespace {

/** Counts loads by the dependence type a DDT of given size detects. */
class DdtSweepSink : public rarpred::TraceSink
{
  public:
    explicit DdtSweepSink(size_t entries)
        : detector_({entries, true, true, false, 3})
    {}

    void
    onInst(const rarpred::DynInst &di) override
    {
        if (di.isStore()) {
            detector_.onStore(di.pc, di.eaddr);
            return;
        }
        if (!di.isLoad())
            return;
        ++loads_;
        if (auto dep = detector_.onLoad(di.pc, di.eaddr)) {
            if (dep->type == rarpred::DepType::Raw)
                ++raw_;
            else
                ++rar_;
        }
    }

    double rawFrac() const { return loads_ ? (double)raw_ / loads_ : 0; }
    double rarFrac() const { return loads_ ? (double)rar_ / loads_ : 0; }

  private:
    rarpred::DependenceDetector detector_;
    uint64_t loads_ = 0;
    uint64_t raw_ = 0;
    uint64_t rar_ = 0;
};

struct Cell
{
    double rawFrac = 0;
    double rarFrac = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<size_t> sizes = {32, 64, 128, 256, 512, 1024, 2048};

    rarpred::driver::installStopHandlers();
    const auto parsed = rarpred::driver::parseSweepArgs(argc, argv);
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        return 0;
    }

    rarpred::driver::SimJobRunner runner(parsed->runner);
    const auto workloads = rarpred::driver::allWorkloadPtrs();

    const auto cells = rarpred::driver::runSweep(
        runner, workloads, sizes.size(),
        [&sizes](const rarpred::Workload &, size_t ci,
                 rarpred::TraceSource &trace, rarpred::Rng &) {
            DdtSweepSink sink(sizes[ci]);
            rarpred::driver::pumpSimulation(trace, sink);
            return Cell{sink.rawFrac(), sink.rarFrac()};
        },
        parsed->io);
    if (!cells.status.ok())
        return rarpred::driver::finishSweep(runner, cells.status,
                                            std::cerr);

    std::printf("Figure 5: loads with RAW/RAR dependences vs DDT size\n");
    std::printf("(each cell: RAW%% / RAR%% of all loads)\n\n");
    std::printf("%-6s", "prog");
    for (size_t s : sizes)
        std::printf(" %13zu", s);
    std::printf("\n");

    double int_raw[8] = {}, int_rar[8] = {};
    double fp_raw[8] = {}, fp_rar[8] = {};
    int n_int = 0, n_fp = 0;

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const rarpred::Workload &w = *workloads[wi];
        std::printf("%-6s", w.abbrev.c_str());
        for (size_t i = 0; i < sizes.size(); ++i) {
            const Cell &cell = cells[wi * sizes.size() + i];
            std::printf("  %5.1f /%5.1f", 100 * cell.rawFrac,
                        100 * cell.rarFrac);
            if (w.isFp) {
                fp_raw[i] += cell.rawFrac;
                fp_rar[i] += cell.rarFrac;
            } else {
                int_raw[i] += cell.rawFrac;
                int_rar[i] += cell.rarFrac;
            }
        }
        std::printf("\n");
        if (w.isFp)
            ++n_fp;
        else
            ++n_int;
    }

    std::printf("\n%-6s", "INT");
    for (size_t i = 0; i < sizes.size(); ++i)
        std::printf("  %5.1f /%5.1f", 100 * int_raw[i] / n_int,
                    100 * int_rar[i] / n_int);
    std::printf("\n%-6s", "FP");
    for (size_t i = 0; i < sizes.size(); ++i)
        std::printf("  %5.1f /%5.1f", 100 * fp_raw[i] / n_fp,
                    100 * fp_rar[i] / n_fp);
    std::printf("\n");

    return rarpred::driver::finishSweep(runner, cells.status, std::cerr);
}
