/**
 * @file
 * google-benchmark microbenchmarks of the predictor structures
 * themselves: DDT detection, DPNT lookup/train, synonym file traffic
 * and the end-to-end engine. Useful when modifying the hot paths —
 * the experiment drivers push hundreds of millions of events through
 * these tables.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/cloaking.hh"
#include "core/ddt.hh"
#include "core/dpnt.hh"
#include "core/synonym_file.hh"

namespace {

using namespace rarpred;

void
BM_DdtDetection(benchmark::State &state)
{
    DdtConfig config;
    config.entries = (size_t)state.range(0);
    DependenceDetector ddt(config);
    Rng rng(1);
    uint64_t pc = 0;
    for (auto _ : state) {
        uint64_t addr = (rng.next() & 0x3ff) << 3;
        if ((pc & 7) == 0)
            ddt.onStore(pc << 2, addr);
        else
            benchmark::DoNotOptimize(ddt.onLoad(pc << 2, addr));
        ++pc;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DdtDetection)->Arg(128)->Arg(2048);

void
BM_DpntTrainLookup(benchmark::State &state)
{
    DpntConfig config;
    config.geometry = {(size_t)state.range(0), 2};
    Dpnt dpnt(config);
    Rng rng(2);
    for (auto _ : state) {
        uint64_t src = (rng.next() & 0xff) << 2;
        uint64_t sink = 0x1000 + ((rng.next() & 0xff) << 2);
        dpnt.train({DepType::Rar, src, sink});
        benchmark::DoNotOptimize(dpnt.lookup(sink));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpntTrainLookup)->Arg(8192);

void
BM_SynonymFileTraffic(benchmark::State &state)
{
    SynonymFile sf({(size_t)state.range(0), 2});
    Rng rng(3);
    for (auto _ : state) {
        Synonym s = 1 + (rng.next() & 0x1ff);
        sf.produce(s, rng.next(), false, 0, 0);
        benchmark::DoNotOptimize(sf.consume(s));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SynonymFileTraffic)->Arg(1024);

void
BM_CloakingEngineEndToEnd(benchmark::State &state)
{
    CloakingConfig config;
    config.ddt.entries = 128;
    config.dpnt.geometry = {8192, 2};
    config.sf = {1024, 2};
    CloakingEngine engine(config);
    Rng rng(4);
    uint64_t seq = 0;
    for (auto _ : state) {
        DynInst di;
        di.seq = seq++;
        di.pc = (rng.next() & 0x3f) << 2;
        const bool is_store = (rng.next() & 7) == 0;
        di.op = is_store ? Opcode::Sw : Opcode::Lw;
        di.eaddr = (rng.next() & 0xff) << 3;
        di.value = di.eaddr * 3;
        benchmark::DoNotOptimize(engine.processInst(di));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CloakingEngineEndToEnd);

} // namespace

BENCHMARK_MAIN();
