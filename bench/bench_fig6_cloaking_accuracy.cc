/**
 * @file
 * Reproduces Figure 6: cloaking coverage and misspeculation rates for
 * the two confidence mechanisms (1-bit non-adaptive vs 2-bit adaptive
 * automaton), with a RAW/RAR breakdown. Configuration per Section
 * 5.3: 128-entry DDT, infinite DPNT/SF.
 *
 * Paper expectations: RAR adds roughly +20% (int) / +30% (fp) of all
 * loads to coverage; the adaptive predictor loses only a little
 * coverage but cuts misspeculation by about an order of magnitude
 * (to ~2% int / ~0.35% fp).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/cloaking.hh"

namespace {

rarpred::CloakingConfig
makeConfig(rarpred::ConfidenceKind conf)
{
    rarpred::CloakingConfig config;
    config.mode = rarpred::CloakingMode::RawPlusRar;
    config.ddt.entries = 128;
    config.dpnt.geometry = {0, 0}; // infinite
    config.dpnt.confidence = conf;
    config.sf = {0, 0}; // infinite
    return config;
}

} // namespace

int
main()
{
    using rarpred::ConfidenceKind;

    std::printf("Figure 6: cloaking accuracy per dependence type\n");
    std::printf("(128-entry DDT, infinite DPNT/SF; percentages over all "
                "loads)\n\n");
    std::printf("%-6s | %28s | %28s\n", "",
                "1-bit non-adaptive", "2-bit adaptive");
    std::printf("%-6s | %9s %9s %8s | %9s %9s %8s\n", "prog", "cov RAW",
                "cov RAR", "misp", "cov RAW", "cov RAR", "misp");

    double sum_cov[2][2][2] = {}; // [conf][isFp][type]
    double sum_misp[2][2] = {};   // [conf][isFp]
    int counts[2] = {0, 0};

    for (const auto &w : rarpred::allWorkloads()) {
        rarpred::CloakingEngine naive(
            makeConfig(ConfidenceKind::OneBitNonAdaptive));
        rarpred::CloakingEngine adaptive(
            makeConfig(ConfidenceKind::TwoBitAdaptive));
        rarpred::Program prog = w.build(1);
        rarpred::MicroVM vm(prog);
        rarpred::DynInst di;
        while (vm.next(di)) {
            naive.onInst(di);
            adaptive.onInst(di);
        }

        const auto &sn = naive.stats();
        const auto &sa = adaptive.stats();
        const double loads = (double)sn.loads;
        std::printf("%-6s | %8.2f%% %8.2f%% %7.3f%% | "
                    "%8.2f%% %8.2f%% %7.3f%%\n",
                    w.abbrev.c_str(), 100 * sn.coveredRaw / loads,
                    100 * sn.coveredRar / loads,
                    100 * sn.mispredicted() / loads,
                    100 * sa.coveredRaw / loads,
                    100 * sa.coveredRar / loads,
                    100 * sa.mispredicted() / loads);

        const int fp = w.isFp ? 1 : 0;
        ++counts[fp];
        sum_cov[0][fp][0] += sn.coveredRaw / loads;
        sum_cov[0][fp][1] += sn.coveredRar / loads;
        sum_misp[0][fp] += (double)sn.mispredicted() / loads;
        sum_cov[1][fp][0] += sa.coveredRaw / loads;
        sum_cov[1][fp][1] += sa.coveredRar / loads;
        sum_misp[1][fp] += (double)sa.mispredicted() / loads;
    }

    for (int fp = 0; fp < 2; ++fp) {
        std::printf("%-6s | %8.2f%% %8.2f%% %7.3f%% | "
                    "%8.2f%% %8.2f%% %7.3f%%\n",
                    fp ? "FP" : "INT",
                    100 * sum_cov[0][fp][0] / counts[fp],
                    100 * sum_cov[0][fp][1] / counts[fp],
                    100 * sum_misp[0][fp] / counts[fp],
                    100 * sum_cov[1][fp][0] / counts[fp],
                    100 * sum_cov[1][fp][1] / counts[fp],
                    100 * sum_misp[1][fp] / counts[fp]);
    }
    std::printf("\nPaper (adaptive): RAR adds ~20%% (int) / ~30%% (fp) "
                "coverage;\nmisspeculation ~2%% (int), ~0.35%% (fp), "
                "~1.01%% overall.\n");
    return 0;
}
