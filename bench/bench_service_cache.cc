/**
 * @file
 * Micro-benchmark of the resident sweep service's result store
 * (DESIGN.md §6d): cold vs warm request latency and warm-path
 * throughput against an in-process daemon over a Unix socket.
 *
 * Cold requests pay a full simulation per cell; warm requests are
 * answered from the content-addressed CRC-guarded store, so the gap
 * between the two is the latency the store saves every time a sweep
 * grid overlaps a previous one. Emits BENCH_service_cache.json
 * (--out=FILE to redirect) — the first perf-trajectory data point
 * ROADMAP item 1 asks for:
 *
 *   {"bench":"service_cache","cells":2,
 *    "cold_ms":..., "warm_ms_p50":..., "warm_ms_max":...,
 *    "warm_requests_per_sec":..., "speedup":...}
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "service/client.hh"
#include "service/daemon.hh"

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rarpred::service;

    std::string out_path = "BENCH_service_cache.json";
    uint64_t max_insts = 200000;
    int warm_iters = 50;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--max-insts=", 0) == 0) {
            max_insts = std::stoull(arg.substr(12));
        } else if (arg.rfind("--iters=", 0) == 0) {
            warm_iters = std::stoi(arg.substr(8));
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--out=FILE] [--max-insts=N] [--iters=N]\n";
            return 2;
        }
    }

    const std::string tmp = "/tmp/rarpred_bench_service_cache";
    DaemonConfig config;
    config.socketPath = tmp + ".sock";
    config.storeDir = tmp + ".store";
    config.workers = 2;
    std::remove(config.socketPath.c_str());
    // A fresh store per run: the cold number must really be cold.
    (void)std::system(("rm -rf " + config.storeDir).c_str());

    SweepDaemon daemon(config);
    if (const auto s = daemon.serve(); !s.ok()) {
        std::cerr << "serve: " << s.toString() << "\n";
        return 1;
    }

    SweepRequestMsg req;
    req.maxInsts = max_insts;
    req.workloads = {"li"};
    CellConfigMsg base;
    base.cloakEnabled = 0;
    CellConfigMsg rar;
    rar.cloakEnabled = 1;
    req.configs = {base, rar};

    const ServiceClient client(config.socketPath);

    const auto cold_start = std::chrono::steady_clock::now();
    auto cold = client.sweep(req);
    const double cold_ms = millisSince(cold_start);
    if (!cold.ok() || cold->done.errors != 0) {
        std::cerr << "cold sweep failed: "
                  << cold.status().toString() << "\n";
        return 1;
    }

    std::vector<double> warm_ms;
    warm_ms.reserve((size_t)warm_iters);
    const auto warm_start = std::chrono::steady_clock::now();
    for (int i = 0; i < warm_iters; ++i) {
        const auto t = std::chrono::steady_clock::now();
        auto warm = client.sweep(req);
        warm_ms.push_back(millisSince(t));
        if (!warm.ok() ||
            warm->done.storeHits != req.numCells()) {
            std::cerr << "warm sweep " << i
                      << " missed the store\n";
            return 1;
        }
    }
    const double warm_total_ms = millisSince(warm_start);
    std::sort(warm_ms.begin(), warm_ms.end());
    const double p50 = warm_ms[warm_ms.size() / 2];
    const double worst = warm_ms.back();
    const double rps = 1000.0 * warm_iters / warm_total_ms;

    daemon.stop();

    char json[512];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\":\"service_cache\",\"cells\":%zu,"
        "\"max_insts\":%llu,\"warm_iters\":%d,"
        "\"cold_ms\":%.3f,\"warm_ms_p50\":%.3f,"
        "\"warm_ms_max\":%.3f,\"warm_requests_per_sec\":%.1f,"
        "\"speedup\":%.1f}\n",
        req.numCells(), (unsigned long long)max_insts, warm_iters,
        cold_ms, p50, worst, rps, cold_ms / (p50 > 0 ? p50 : 1e-9));

    std::ofstream out(out_path);
    out << json;
    if (!out.good()) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    std::fputs(json, stdout);
    return 0;
}
