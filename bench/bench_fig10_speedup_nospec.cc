/**
 * @file
 * Reproduces Figure 10: speedup of cloaking/bypassing when the base
 * processor does NOT speculate on memory dependences (loads wait for
 * the addresses of all preceding stores). Left bar RAW-based, right
 * bar RAW+RAR-based, both with selective invalidation.
 *
 * Paper expectations: speedups significantly higher (often double)
 * than over the speculating base of Figure 9 — paper averages 9.8%
 * (int) and 6.1% (fp) for RAW+RAR — though a few programs gain less
 * because the critical path becomes loads cloaking cannot attack.
 *
 * Execution: 18 × 3 grid on the parallel sweep driver (--workers=N /
 * --serial), one recorded trace per workload shared by all cores.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "cpu/ooo_cpu.hh"
#include "driver/sweep.hh"

namespace {

rarpred::CloakTimingConfig
mechanism(rarpred::CloakingMode mode)
{
    rarpred::CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.mode = mode;
    cloak.engine.ddt.entries = 128;
    cloak.engine.dpnt.geometry = {8192, 2};
    cloak.engine.dpnt.confidence =
        rarpred::ConfidenceKind::TwoBitAdaptive;
    cloak.engine.sf = {1024, 2};
    cloak.recovery = rarpred::RecoveryModel::Selective;
    return cloak;
}

} // namespace

int
main(int argc, char **argv)
{
    using rarpred::CloakingMode;

    rarpred::driver::installStopHandlers();
    const auto parsed = rarpred::driver::parseSweepArgs(argc, argv);
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        return 0;
    }

    const std::vector<rarpred::CloakTimingConfig> configs = {
        {},
        mechanism(CloakingMode::RawOnly),
        mechanism(CloakingMode::RawPlusRar),
    };

    rarpred::driver::SimJobRunner runner(parsed->runner);
    const auto workloads = rarpred::driver::allWorkloadPtrs();

    const auto cycles = rarpred::driver::runSweep(
        runner, workloads, configs.size(),
        [&configs](const rarpred::Workload &, size_t ci,
                   rarpred::TraceSource &trace, rarpred::Rng &) {
            rarpred::CpuConfig config;
            config.memDep = rarpred::MemDepPolicy::Conservative;
            rarpred::OooCpu cpu(config, configs[ci]);
            rarpred::driver::pumpSimulation(trace, cpu);
            return cpu.stats().cycles;
        },
        parsed->io);
    if (!cycles.status.ok())
        return rarpred::driver::finishSweep(runner, cycles.status,
                                            std::cerr);

    std::printf("Figure 10: speedup when the base does not speculate on "
                "memory dependences\n\n");
    std::printf("%-6s | %10s %10s\n", "prog", "RAW", "RAW+RAR");

    double sums[2][2] = {};
    int counts[2] = {0, 0};

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const rarpred::Workload &w = *workloads[wi];
        const size_t row = wi * configs.size();
        const double s0 =
            100.0 * ((double)cycles[row] / cycles[row + 1] - 1.0);
        const double s1 =
            100.0 * ((double)cycles[row] / cycles[row + 2] - 1.0);
        std::printf("%-6s | %9.2f%% %9.2f%%\n", w.abbrev.c_str(), s0,
                    s1);
        const int fp = w.isFp ? 1 : 0;
        ++counts[fp];
        sums[0][fp] += s0;
        sums[1][fp] += s1;
    }
    for (int fp = 0; fp < 2; ++fp)
        std::printf("%-6s | %9.2f%% %9.2f%%\n", fp ? "FP" : "INT",
                    sums[0][fp] / counts[fp], sums[1][fp] / counts[fp]);
    std::printf("\nPaper: RAW+RAR 9.8%% (int), 6.1%% (fp); speedups "
                "often double those of Figure 9.\n");

    return rarpred::driver::finishSweep(runner, cycles.status, std::cerr);
}
