/**
 * @file
 * Reproduces Table 5.1: benchmark execution characteristics.
 *
 * Prints, for every synthetic workload, the dynamic instruction count
 * and the load/store instruction fractions, next to the values the
 * paper reports for the corresponding SPEC'95 program. The paper's
 * sampling-ratio column does not apply: every synthetic program is
 * simulated in full.
 */

#include <cstdio>

#include "analysis/inst_mix.hh"
#include "vm/micro_vm.hh"
#include "workload/workload.hh"

namespace {

struct PaperRow
{
    const char *abbrev;
    double loads;
    double stores;
};

// Table 5.1 of the paper (fractions in percent).
constexpr PaperRow kPaper[] = {
    {"go", 20.9, 7.3},   {"m88", 18.8, 9.6},  {"gcc", 24.3, 17.5},
    {"com", 21.7, 13.5}, {"li", 29.6, 17.6},  {"ijp", 17.7, 8.7},
    {"per", 25.6, 16.6}, {"vor", 26.3, 27.3}, {"tom", 31.9, 8.8},
    {"swm", 27.0, 6.6},  {"su2", 33.8, 10.1}, {"hyd", 29.7, 8.2},
    {"mgd", 46.6, 3.0},  {"apl", 31.4, 7.9},  {"trb", 21.3, 14.6},
    {"aps", 31.4, 13.4}, {"fp*", 48.8, 17.5}, {"wav", 30.2, 13.0},
};

const PaperRow *
paperRowFor(const std::string &abbrev)
{
    for (const auto &row : kPaper)
        if (abbrev == row.abbrev)
            return &row;
    return nullptr;
}

} // namespace

int
main()
{
    std::printf("Table 5.1: Benchmark Execution Characteristics\n");
    std::printf("(synthetic reproductions; paper values in parens)\n\n");
    std::printf("%-14s %-5s %12s %18s %18s\n", "Program", "Ab.",
                "IC", "Loads", "Stores");

    bool printed_fp_header = false;
    std::printf("--- SPECint'95 %s\n", std::string(55, '-').c_str());
    for (const auto &w : rarpred::allWorkloads()) {
        if (w.isFp && !printed_fp_header) {
            std::printf("--- SPECfp'95 %s\n",
                        std::string(56, '-').c_str());
            printed_fp_header = true;
        }
        rarpred::Program prog = w.build(1);
        rarpred::MicroVM vm(prog);
        rarpred::InstMixCounter mix;
        vm.run(mix, 100'000'000ull);

        const PaperRow *paper = paperRowFor(w.abbrev);
        std::printf("%-14s %-5s %12llu %7.1f%% (%4.1f%%) %7.1f%% (%4.1f%%)\n",
                    w.fullName.c_str(), w.abbrev.c_str(),
                    (unsigned long long)mix.total(),
                    100.0 * mix.loadFraction(),
                    paper ? paper->loads : 0.0,
                    100.0 * mix.storeFraction(),
                    paper ? paper->stores : 0.0);
    }
    return 0;
}
