/**
 * @file
 * Extension experiment: the Section 5.5 synergy made concrete. For
 * every workload, compares the loads correctly covered by cloaking
 * alone, last-value prediction alone, and the combined
 * chooser-arbitrated mechanism (memory renaming after Tyson & Austin
 * [20]), plus profile-guided (software) cloaking after Reinman et
 * al. [17].
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/memory_renaming.hh"
#include "core/profile_cloaking.hh"

int
main()
{
    using namespace rarpred;

    std::printf("Extensions: combined cloaking+VP and profile-guided "
                "cloaking\n(correct speculative values as %% of all "
                "loads)\n\n");
    std::printf("%-6s | %8s %8s %9s | %9s (misp)\n", "prog", "cloak",
                "VP", "combined", "profile");

    double sums[4] = {};
    for (const auto &w : allWorkloads()) {
        CloakingConfig config;
        config.ddt.entries = 128;

        // Hardware cloaking alone + VP alone + combined, in one pass.
        CloakingEngine cloak(config);
        LastValuePredictor vp({16384, 0});
        MemoryRenaming combined(config);
        uint64_t loads = 0, cloak_ok = 0, vp_ok = 0;
        {
            Program p = w.build(1);
            MicroVM vm(p);
            DynInst di;
            while (vm.next(di)) {
                auto oc = cloak.processInst(di);
                bool vc = vp.processInst(di);
                combined.processInst(di);
                if (oc.wasLoad) {
                    ++loads;
                    cloak_ok += oc.used && oc.correct;
                    vp_ok += vc;
                }
            }
        }

        // Profile-guided: train on one run, deploy on a fresh run.
        DependenceProfiler profiler(DdtConfig{});
        {
            Program p = w.build(1);
            MicroVM vm(p);
            vm.run(profiler, 100'000'000ull);
        }
        CloakingEngine static_engine =
            makeProfileGuidedEngine(profiler.profile(8, 0.85));
        {
            Program p = w.build(1);
            MicroVM vm(p);
            vm.run(static_engine, 100'000'000ull);
        }

        const double c = (double)cloak_ok / loads;
        const double v = (double)vp_ok / loads;
        const double m = combined.stats().coverage();
        const double pg = static_engine.stats().coverage();
        std::printf("%-6s | %7.1f%% %7.1f%% %8.1f%% | %8.1f%% "
                    "(%.3f%%)\n",
                    w.abbrev.c_str(), 100 * c, 100 * v, 100 * m,
                    100 * pg,
                    100 * static_engine.stats().mispredictionRate());
        sums[0] += c;
        sums[1] += v;
        sums[2] += m;
        sums[3] += pg;
    }
    std::printf("%-6s | %7.1f%% %7.1f%% %8.1f%% | %8.1f%%\n", "MEAN",
                100 * sums[0] / 18, 100 * sums[1] / 18,
                100 * sums[2] / 18, 100 * sums[3] / 18);
    std::printf("\nExpected: combined >= max(cloak, VP) per program "
                "(the Section 5.5 synergy);\nprofile-guided reaches a "
                "large share of hardware cloaking's coverage with\n"
                "near-zero misspeculation.\n");
    return 0;
}
