/**
 * @file
 * Factory knob-sensitivity sweep (DESIGN.md §8; not a paper figure).
 *
 * For each factory knob axis, holds every other parameter at the base
 * point and sweeps the axis through five values, measuring the default
 * cloaking mechanism (Section 5.6.1 configuration) on the generated
 * program: coverage, misprediction rate, and the detected-RAR share
 * of all detected dependences.
 *
 * The headline property — the reason this bench exists — is printed
 * last: coverage must rise monotonically with the RAR-sharing knob.
 * tests/test_factory.cc asserts the same property in tier-1; this
 * bench plots the full surface and emits it as
 * BENCH_factory_sensitivity.json (--out=FILE to redirect) so knob
 * drift shows up in nightly artifacts.
 *
 * Runs on the parallel sweep driver: all 25 axis points are
 * independent jobs, bit-identical for any --workers=N.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/cloaking.hh"
#include "driver/sim_snapshot.hh"
#include "driver/sweep.hh"
#include "workload/factory.hh"

namespace {

using rarpred::AddressPick;
using rarpred::CloakingConfig;
using rarpred::CloakingEngine;
using rarpred::CloakingMode;
using rarpred::ConfidenceKind;
using rarpred::FactoryParams;
using rarpred::Workload;

/** Section 5.6.1 default mechanism, the golden-stats configuration. */
CloakingConfig
defaultCloakingConfig()
{
    CloakingConfig config;
    config.mode = CloakingMode::RawPlusRar;
    config.ddt.entries = 128;
    config.dpnt.geometry = {8192, 2};
    config.dpnt.confidence = ConfidenceKind::TwoBitAdaptive;
    config.sf = {1024, 2};
    return config;
}

/** One knob axis: five parameter points around the shared base. */
struct Axis
{
    const char *name;
    double points[5]; ///< knob values (counts stored as doubles)
    void (*apply)(FactoryParams &, double);
};

constexpr uint64_t kSeed = 2024;
constexpr size_t kPoints = 5;

FactoryParams
basePoint()
{
    FactoryParams p;
    p.rarSharing = 0.5;
    p.storeIntervention = 0.1;
    p.branchEntropy = 0.5;
    p.workingSetWords = 256;
    p.planEntries = 1024;
    p.addrPick = AddressPick::Pooled;
    p.outerIters = 800;
    return p;
}

const std::vector<Axis> &
axes()
{
    static const std::vector<Axis> kAxes = {
        {"rarSharing",
         {0.0, 0.25, 0.5, 0.75, 1.0},
         [](FactoryParams &p, double v) { p.rarSharing = v; }},
        {"storeIntervention",
         {0.0, 0.2, 0.4, 0.6, 0.8},
         [](FactoryParams &p, double v) { p.storeIntervention = v; }},
        {"branchEntropy",
         {0.0, 0.25, 0.5, 0.75, 1.0},
         [](FactoryParams &p, double v) { p.branchEntropy = v; }},
        {"workingSetWords",
         {64, 256, 1024, 4096, 16384},
         [](FactoryParams &p, double v) {
             p.workingSetWords = (uint64_t)v;
         }},
        {"chaseDepth",
         {0, 16, 64, 256, 1024},
         [](FactoryParams &p, double v) {
             p.chaseDepth = (uint32_t)v;
         }},
    };
    return kAxes;
}

struct Cell
{
    double coverage = 0;
    double mispredictionRate = 0;
    double rarShare = 0; ///< detectedRar / (detectedRaw + detectedRar)
};

} // namespace

int
main(int argc, char **argv)
{
    // Peel --out= off before the shared sweep parser (which rejects
    // flags it does not know).
    std::string out_path = "BENCH_factory_sensitivity.json";
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else
            args.push_back(argv[i]);
    }

    rarpred::driver::installStopHandlers();
    const auto parsed =
        rarpred::driver::parseSweepArgs((int)args.size(), args.data());
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        std::fputs("  --out=FILE                 JSON output path\n",
                   stdout);
        return 0;
    }

    auto runner_config = parsed->runner;
    if (runner_config.maxInsts == ~0ull)
        runner_config.maxInsts = 200'000;

    // Materialize one workload per (axis, point); distinct abbrevs
    // keep the driver's trace cache from conflating the knob points.
    std::vector<Workload> storage;
    storage.reserve(axes().size() * kPoints);
    for (const Axis &axis : axes()) {
        for (size_t i = 0; i < kPoints; ++i) {
            FactoryParams p = basePoint();
            axis.apply(p, axis.points[i]);
            const std::string abbrev = std::string("factory.sens.") +
                                       axis.name + "." +
                                       std::to_string(i);
            auto w = rarpred::makeFactoryWorkload(abbrev, kSeed, p);
            if (!w.ok()) {
                std::cerr << abbrev << ": " << w.status().toString()
                          << "\n";
                return 2;
            }
            storage.push_back(std::move(*w));
        }
    }
    std::vector<const Workload *> workloads;
    for (const Workload &w : storage)
        workloads.push_back(&w);

    rarpred::driver::SimJobRunner runner(runner_config);
    const auto cells = rarpred::driver::runSweep(
        runner, workloads, 1,
        [](const Workload &, size_t, rarpred::TraceSource &trace,
           rarpred::Rng &) {
            CloakingEngine engine(defaultCloakingConfig());
            rarpred::driver::pumpSimulation(trace, engine);
            const auto &s = engine.stats();
            const uint64_t detected = s.detectedRaw + s.detectedRar;
            return Cell{s.coverage(), s.mispredictionRate(),
                        detected ? (double)s.detectedRar / detected
                                 : 0.0};
        },
        parsed->io);
    if (!cells.status.ok())
        return rarpred::driver::finishSweep(runner, cells.status,
                                            std::cerr);

    std::printf("Factory knob sensitivity (default cloaking mechanism)\n");
    std::printf("(each cell: coverage%% / mispredict%% / RAR share%%)\n\n");

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"factory_sensitivity\",\n"
         << "  \"seed\": " << kSeed << ",\n  \"axes\": {\n";

    bool rar_monotone = true;
    for (size_t ai = 0; ai < axes().size(); ++ai) {
        const Axis &axis = axes()[ai];
        std::printf("%-18s", axis.name);
        json << "    \"" << axis.name << "\": [\n";
        double prev_cov = -1.0;
        for (size_t i = 0; i < kPoints; ++i) {
            const Cell &cell = cells[ai * kPoints + i];
            std::printf("  %5.1f /%5.1f /%5.1f",
                        100 * cell.coverage,
                        100 * cell.mispredictionRate,
                        100 * cell.rarShare);
            json << "      {\"knob\": " << axis.points[i]
                 << ", \"coverage\": " << cell.coverage
                 << ", \"mispredictionRate\": "
                 << cell.mispredictionRate
                 << ", \"rarShare\": " << cell.rarShare << "}"
                 << (i + 1 < kPoints ? "," : "") << "\n";
            if (std::string(axis.name) == "rarSharing") {
                if (cell.coverage < prev_cov)
                    rar_monotone = false;
                prev_cov = cell.coverage;
            }
        }
        std::printf("\n");
        json << "    ]" << (ai + 1 < axes().size() ? "," : "") << "\n";
    }
    json << "  },\n  \"rarSharingCoverageMonotone\": "
         << (rar_monotone ? "true" : "false") << "\n}\n";

    std::printf("\ncoverage monotone in rarSharing: %s\n",
                rar_monotone ? "yes" : "NO (knob regression!)");
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());

    const auto status =
        rar_monotone ? cells.status
                     : rarpred::Status::internal(
                           "coverage not monotone in rarSharing");
    return rarpred::driver::finishSweep(runner, status, std::cerr);
}
