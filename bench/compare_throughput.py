#!/usr/bin/env python3
"""Perf-regression guard for BENCH_throughput.json.

Compares the ns_per_record of every component in a fresh
BENCH_throughput.json against the checked-in baseline and fails
(exit 1) when any component regressed beyond the tolerance band.
Improvements never fail — they are a prompt to refresh the baseline
(run bench_throughput and copy the JSON into bench/baselines/).

Usage: compare_throughput.py BASELINE CURRENT [--tolerance=0.15]
"""

import json
import sys

COMPONENTS = ("decode", "cloaking", "cpu", "stats")


def main(argv):
    tolerance = 0.15
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    with open(paths[0]) as f:
        baseline = json.load(f)
    with open(paths[1]) as f:
        current = json.load(f)

    failed = False
    for name in COMPONENTS:
        base = baseline[name]["ns_per_record"]
        cur = current[name]["ns_per_record"]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failed = True
        elif ratio < 1.0 - tolerance:
            verdict = "improved (consider refreshing the baseline)"
        print(
            f"{name:10s} baseline {base:10.2f} ns/rec   "
            f"current {cur:10.2f} ns/rec   "
            f"ratio {ratio:5.2f}   {verdict}"
        )

    if failed:
        print(
            f"\nFAIL: at least one component regressed beyond "
            f"+{tolerance:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: all components within +{tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
