/**
 * @file
 * Reproduces the second table of Section 5.5 (printed as "Table 5.1"
 * in the paper): the fraction of loads that get a correct value from
 * cloaking/bypassing but NOT from a last-value predictor (broken down
 * by dependence type), and vice versa ("VP" column).
 *
 * Configuration per the paper: 16K-entry DPNT, 128-entry DDT, 2K
 * synonym file; 16K-entry fully-associative last-value predictor.
 *
 * Paper expectation: for most programs the cloaking-only fraction
 * exceeds the VP-only fraction — the two mechanisms are
 * complementary.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/cloaking.hh"
#include "core/value_predictor.hh"

int
main()
{
    std::printf("Table 5.2: loads correct via cloaking/bypassing but not "
                "value prediction, and vice versa\n");
    std::printf("(16K DPNT, 128 DDT, 2K SF; 16K fully-assoc last-value "
                "predictor)\n\n");
    std::printf("%-6s | %9s %9s %9s | %9s\n", "prog", "RAW only",
                "RAR only", "Total", "VP only");

    for (const auto &w : rarpred::allWorkloads()) {
        rarpred::CloakingConfig config;
        config.ddt.entries = 128;
        config.dpnt.geometry = {16384, 0}; // fully associative
        config.sf = {2048, 0};             // fully associative
        rarpred::CloakingEngine cloaking(config);
        rarpred::LastValuePredictor vp({16384, 0});

        uint64_t loads = 0;
        uint64_t cloak_only[2] = {0, 0}; // [RAW, RAR]
        uint64_t vp_only = 0;

        rarpred::Program prog = w.build(1);
        rarpred::MicroVM vm(prog);
        rarpred::DynInst di;
        while (vm.next(di)) {
            auto outcome = cloaking.processInst(di);
            bool vp_correct = vp.processInst(di);
            if (!outcome.wasLoad)
                continue;
            ++loads;
            const bool cloak_correct = outcome.used && outcome.correct;
            if (cloak_correct && !vp_correct)
                ++cloak_only[outcome.type == rarpred::DepType::Raw ? 0
                                                                   : 1];
            else if (vp_correct && !cloak_correct)
                ++vp_only;
        }

        std::printf("%-6s | %8.2f%% %8.2f%% %8.2f%% | %8.2f%%\n",
                    w.abbrev.c_str(),
                    100.0 * cloak_only[0] / (double)loads,
                    100.0 * cloak_only[1] / (double)loads,
                    100.0 * (cloak_only[0] + cloak_only[1]) /
                        (double)loads,
                    100.0 * vp_only / (double)loads);
    }
    return 0;
}
