/**
 * @file
 * Reproduces Figure 2: memory dependence locality of RAR dependences.
 *
 * For every workload, prints memory-dependence-locality(n) for
 * n = 1..4 — the probability that a dynamic sink load experiences a
 * RAR dependence it has seen among its last n unique RAR dependences —
 * under (a) an infinite address window and (b) a 4K-entry window.
 *
 * Paper expectation: locality is high everywhere (more than 70% of
 * sink loads hit within the last four unique dependences), and the
 * bounded window is sometimes *higher* than infinite because short
 * dependences are more regular than distant ones.
 */

#include <cstdio>

#include "analysis/inst_mix.hh"
#include "analysis/locality.hh"
#include "bench_util.hh"

int
main()
{
    std::printf("Figure 2: RAR memory dependence locality (n = 1..4)\n\n");
    std::printf("%-6s | %6s %6s %6s %6s | %6s %6s %6s %6s | %s | %s\n",
                "prog", "inf:1", "2", "3", "4", "4K:1", "2", "3", "4",
                "sinks", "working set");

    for (const auto &w : rarpred::allWorkloads()) {
        rarpred::RarLocalityAnalyzer infinite(0, 4);
        rarpred::RarLocalityAnalyzer bounded(4096, 4);
        rarpred::DependenceWorkingSetAnalyzer ws(0);
        rarpred::TeeSink tee{&infinite, &bounded, &ws};
        rarpred::benchutil::runWorkload(w, tee);

        auto li = infinite.locality();
        auto lb = bounded.locality();
        std::printf("%-6s | %5.1f%% %5.1f%% %5.1f%% %5.1f%% | "
                    "%5.1f%% %5.1f%% %5.1f%% %5.1f%% | %.2f | "
                    "%4.1f (%4.0f%% <=4)\n",
                    w.abbrev.c_str(), 100 * li[0], 100 * li[1],
                    100 * li[2], 100 * li[3], 100 * lb[0], 100 * lb[1],
                    100 * lb[2], 100 * lb[3],
                    infinite.totalLoads() == 0
                        ? 0.0
                        : (double)infinite.sinkExecutions() /
                              (double)infinite.totalLoads(),
                    ws.meanWorkingSet(),
                    100 * ws.fractionWithWorkingSetAtMost(4));
    }
    std::printf("\n(RAR sinks/loads: fraction of dynamic loads that "
                "experienced a RAR dependence,\n infinite window; last "
                "column: mean unique RAR sources per static sink load\n"
                " and the fraction of sinks with a working set of at "
                "most 4 — Section 2's\n \"working set is relatively "
                "small\")\n");
    return 0;
}
