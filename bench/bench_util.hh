/**
 * @file
 * Shared helpers for the experiment drivers in bench/.
 */

#ifndef RARPRED_BENCH_BENCH_UTIL_HH_
#define RARPRED_BENCH_BENCH_UTIL_HH_

#include <cstdint>

#include "vm/micro_vm.hh"
#include "workload/workload.hh"

namespace rarpred::benchutil {

/** Execute @p w's program, feeding the trace to @p sink. */
inline uint64_t
runWorkload(const Workload &w, TraceSink &sink, uint32_t scale = 1,
            uint64_t max_insts = 100'000'000ull)
{
    Program prog = w.build(scale);
    MicroVM vm(prog);
    return vm.run(sink, max_insts);
}

} // namespace rarpred::benchutil

#endif // RARPRED_BENCH_BENCH_UTIL_HH_
