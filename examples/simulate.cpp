/**
 * @file
 * Command-line simulator driver: the library as a tool.
 *
 *   simulate --workload li                 functional accuracy report
 *   simulate --workload tom --timing       timing run, base vs cloak
 *   simulate --workload gcc --mode raw     RAW-only mechanism
 *   simulate --workload li --record t.rar  record the trace to a file
 *   simulate --trace t.rar                 replay a recorded trace
 *   simulate --workload li --stats         gem5-style stat dump
 *
 * Options:
 *   --workload NAME     synthetic benchmark (see --list)
 *   --trace FILE        replay a recorded trace instead
 *   --record FILE       write the trace while simulating
 *   --scale N           workload scale factor (default 1)
 *   --mode raw|rar|both cloaking mode (default both)
 *   --ddt N             DDT entries (default 128)
 *   --dpnt N            DPNT entries, 2-way (default 8192; 0=infinite)
 *   --sf N              synonym file entries, 2-way (default 1024)
 *   --confidence 1bit|2bit
 *   --timing            run the out-of-order timing model too
 *   --recovery selective|squash|oracle
 *   --memdep naive|storesets|conservative
 *   --stats             dump raw statistics
 *   --list              list available workloads
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "cpu/ooo_cpu.hh"
#include "vm/micro_vm.hh"
#include "vm/trace_file.hh"
#include "workload/workload.hh"

namespace {

using namespace rarpred;

struct Options
{
    std::string workload;
    std::string trace;
    std::string record;
    uint32_t scale = 1;
    CloakingMode mode = CloakingMode::RawPlusRar;
    size_t ddt = 128;
    size_t dpnt = 8192;
    size_t sf = 1024;
    ConfidenceKind confidence = ConfidenceKind::TwoBitAdaptive;
    bool timing = false;
    RecoveryModel recovery = RecoveryModel::Selective;
    MemDepPolicy memdep = MemDepPolicy::Naive;
    bool stats = false;
};

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "error: %s\n", msg);
    std::fprintf(stderr,
                 "usage: simulate --workload NAME [options]\n"
                 "       simulate --trace FILE [options]\n"
                 "       simulate --list\n"
                 "see the header of examples/simulate.cpp for "
                 "options\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage("missing argument value");
        return argv[++i];
    };
    auto need_uint = [&](int &i) -> uint64_t {
        const char *text = need(i);
        try {
            size_t used = 0;
            const uint64_t v = std::stoul(text, &used);
            if (used != std::string(text).size())
                throw std::invalid_argument(text);
            return v;
        } catch (const std::exception &) {
            usage(("not a number: " + std::string(text)).c_str());
        }
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto &w : allWorkloads())
                std::printf("%-5s %s\n", w.abbrev.c_str(),
                            w.fullName.c_str());
            std::exit(0);
        } else if (arg == "--workload") {
            opt.workload = need(i);
        } else if (arg == "--trace") {
            opt.trace = need(i);
        } else if (arg == "--record") {
            opt.record = need(i);
        } else if (arg == "--scale") {
            opt.scale = (uint32_t)need_uint(i);
            if (opt.scale == 0)
                usage("--scale must be >= 1");
        } else if (arg == "--mode") {
            const std::string v = need(i);
            if (v == "raw")
                opt.mode = CloakingMode::RawOnly;
            else if (v == "rar")
                opt.mode = CloakingMode::RarOnly;
            else if (v == "both")
                opt.mode = CloakingMode::RawPlusRar;
            else
                usage("bad --mode");
        } else if (arg == "--ddt") {
            opt.ddt = need_uint(i);
        } else if (arg == "--dpnt") {
            opt.dpnt = need_uint(i);
        } else if (arg == "--sf") {
            opt.sf = need_uint(i);
        } else if (arg == "--confidence") {
            const std::string v = need(i);
            if (v == "1bit")
                opt.confidence = ConfidenceKind::OneBitNonAdaptive;
            else if (v == "2bit")
                opt.confidence = ConfidenceKind::TwoBitAdaptive;
            else
                usage("bad --confidence");
        } else if (arg == "--timing") {
            opt.timing = true;
        } else if (arg == "--recovery") {
            const std::string v = need(i);
            if (v == "selective")
                opt.recovery = RecoveryModel::Selective;
            else if (v == "squash")
                opt.recovery = RecoveryModel::Squash;
            else if (v == "oracle")
                opt.recovery = RecoveryModel::Oracle;
            else
                usage("bad --recovery");
        } else if (arg == "--memdep") {
            const std::string v = need(i);
            if (v == "naive")
                opt.memdep = MemDepPolicy::Naive;
            else if (v == "storesets")
                opt.memdep = MemDepPolicy::StoreSets;
            else if (v == "conservative")
                opt.memdep = MemDepPolicy::Conservative;
            else
                usage("bad --memdep");
        } else if (arg == "--stats") {
            opt.stats = true;
        } else {
            usage(("unknown option: " + arg).c_str());
        }
    }
    if (opt.workload.empty() == opt.trace.empty())
        usage("exactly one of --workload / --trace is required");
    return opt;
}

// The library reports problems as Status values; this driver is the
// process entry point, so here — and only here — they become fatal.
std::unique_ptr<TraceSource>
makeSource(const Options &opt, std::unique_ptr<Program> &program)
{
    if (!opt.trace.empty()) {
        auto reader = TraceFileReader::open(opt.trace);
        if (!reader.ok())
            rarpred_fatal(reader.status().toString());
        return std::move(*reader);
    }
    auto workload = lookupWorkload(opt.workload);
    if (!workload.ok())
        rarpred_fatal(workload.status().toString());
    program = std::make_unique<Program>((*workload)->build(opt.scale));
    return std::make_unique<MicroVM>(*program);
}

// next() returns false both at end of stream and on error; a trace
// replay that stopped on a damaged record must not be reported as a
// (shorter) successful run.
void
checkSourceDrained(const TraceSource &source)
{
    if (auto *reader = dynamic_cast<const TraceFileReader *>(&source);
        reader && !reader->status().ok()) {
        rarpred_fatal(reader->status().toString());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    CloakingConfig cloaking;
    cloaking.mode = opt.mode;
    cloaking.ddt.entries = opt.ddt;
    cloaking.dpnt.geometry = {opt.dpnt, opt.dpnt ? 2u : 0u};
    cloaking.dpnt.confidence = opt.confidence;
    cloaking.sf = {opt.sf, opt.sf ? 2u : 0u};
    if (Status s = cloaking.validate(); !s.ok())
        usage(s.toString().c_str());

    // --- functional accuracy pass (and optional recording) ---
    CloakingEngine engine(cloaking);
    uint64_t executed = 0;
    {
        std::unique_ptr<Program> program;
        auto source = makeSource(opt, program);
        std::unique_ptr<TraceFileWriter> writer;
        if (!opt.record.empty()) {
            auto opened = TraceFileWriter::open(opt.record);
            if (!opened.ok())
                rarpred_fatal(opened.status().toString());
            writer = std::move(*opened);
        }
        DynInst di;
        while (source->next(di)) {
            engine.onInst(di);
            if (writer)
                writer->onInst(di);
            ++executed;
        }
        checkSourceDrained(*source);
        if (writer) {
            if (Status s = writer->finish(); !s.ok())
                rarpred_fatal(s.toString());
        }
    }
    const auto &s = engine.stats();
    std::printf("instructions      %llu\n",
                (unsigned long long)executed);
    std::printf("loads             %llu (%.1f%%)\n",
                (unsigned long long)s.loads,
                100.0 * s.loads / (double)executed);
    std::printf("dep detected      RAW %.1f%%  RAR %.1f%% of loads\n",
                100.0 * s.detectedRaw / (double)s.loads,
                100.0 * s.detectedRar / (double)s.loads);
    std::printf("coverage          %.2f%% (RAW %.2f%% + RAR %.2f%%)\n",
                100 * s.coverage(),
                100.0 * s.coveredRaw / (double)s.loads,
                100.0 * s.coveredRar / (double)s.loads);
    std::printf("misspeculation    %.3f%%\n",
                100 * s.mispredictionRate());
    if (!opt.record.empty())
        std::printf("trace recorded to %s\n", opt.record.c_str());
    if (opt.stats)
        s.dump(std::cout);

    // --- optional timing pass ---
    if (opt.timing) {
        CpuConfig cpu_config;
        cpu_config.memDep = opt.memdep;
        auto run = [&](bool cloak_on) {
            CloakTimingConfig attach;
            if (cloak_on) {
                attach.enabled = true;
                attach.engine = cloaking;
                attach.recovery = opt.recovery;
            }
            OooCpu cpu(cpu_config, attach);
            std::unique_ptr<Program> program;
            auto source = makeSource(opt, program);
            DynInst di;
            while (source->next(di))
                cpu.onInst(di);
            checkSourceDrained(*source);
            return cpu.stats();
        };
        auto base = run(false);
        auto mech = run(true);
        std::printf("\ntiming: base     %llu cycles (IPC %.2f)\n",
                    (unsigned long long)base.cycles, base.ipc());
        std::printf("timing: cloaked  %llu cycles (IPC %.2f)  "
                    "speedup %+.2f%%\n",
                    (unsigned long long)mech.cycles, mech.ipc(),
                    100.0 * ((double)base.cycles / mech.cycles - 1.0));
        if (opt.stats) {
            base.dump(std::cout, "cpu.base");
            mech.dump(std::cout, "cpu.cloaked");
        }
    }
    return 0;
}
