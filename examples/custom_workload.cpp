/**
 * @file
 * Authoring a custom benchmark with the kernel library and profiling
 * its memory dependence character: instruction mix, dependence
 * detection across DDT sizes, and cloaking accuracy.
 *
 *   ./examples/custom_workload
 */

#include <cstdio>

#include "analysis/inst_mix.hh"
#include "common/rng.hh"
#include "core/cloaking.hh"
#include "vm/micro_vm.hh"
#include "workload/kernels.hh"

int
main()
{
    using namespace rarpred;
    using namespace rarpred::kernels;

    // A small database-like workload: an index, hot records, and a
    // pile of read-mostly configuration globals.
    ProgramBuilder b("mydb");
    Rng rng(2026);

    const uint64_t index = allocHashTable(b, rng, 256, 300);
    auto keys = mixedStream(rng, 2048, 300, 16, 0.85);
    const uint64_t kstream = allocStream(b, keys.size(), keys);
    const uint64_t kcursor = allocGlobal(b);
    const uint64_t records = allocIntArray(b, rng, 128 * 4, 1 << 12);
    auto ridx = mixedStream(rng, 2048, 128, 12, 0.8);
    const uint64_t rstream = allocStream(b, ridx.size(), ridx);
    const uint64_t rcursor = allocGlobal(b);
    const uint64_t config_words = allocIntArray(b, rng, 12, 1 << 8);
    const uint64_t cfgacc = allocGlobal(b);

    emitMain(b, {"lookup", "update", "config"}, 300);
    emitHashProbe(b, "lookup",
                  {index, 256, kstream, keys.size(), kcursor, 40, true});
    emitRecordUpdate(b, "update",
                     {records, 128, rstream, ridx.size(), rcursor, 30});
    emitGlobalsRead(b, "config", {config_words, 12, 6, cfgacc});
    Program program = b.build();

    // Profile: instruction mix + dependence visibility vs DDT size.
    std::printf("custom workload 'mydb'\n\n");
    for (size_t ddt : {32u, 128u, 512u}) {
        CloakingConfig config;
        config.ddt.entries = ddt;
        CloakingEngine engine(config);
        InstMixCounter mix;
        MicroVM vm(program);
        DynInst di;
        while (vm.next(di)) {
            mix.onInst(di);
            engine.onInst(di);
        }
        const auto &s = engine.stats();
        std::printf("DDT %4zu: loads %.1f%%, stores %.1f%% | "
                    "dep RAW %.1f%% RAR %.1f%% | cov %.1f%% "
                    "misp %.3f%%\n",
                    ddt, 100 * mix.loadFraction(),
                    100 * mix.storeFraction(),
                    100.0 * s.detectedRaw / s.loads,
                    100.0 * s.detectedRar / s.loads,
                    100 * s.coverage(), 100 * s.mispredictionRate());
    }
    std::printf("\nLarger DDTs see more distant dependences; the "
                "mechanism's accuracy follows\nthe paper's Figure 5/6 "
                "behaviour on custom code too.\n");
    return 0;
}
