/**
 * @file
 * Quickstart: write a tiny MicroISA program, run it on the functional
 * VM, and attach a RAW+RAR cloaking mechanism to its trace.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "core/cloaking.hh"
#include "isa/program_builder.hh"
#include "vm/micro_vm.hh"

int
main()
{
    using namespace rarpred;

    // --- 1. Author a program: sum a small array twice, from two
    //        different code sites (a RAR dependence per element).
    ProgramBuilder b("quickstart");
    const uint64_t array = b.allocWords(16);
    for (int i = 0; i < 16; ++i)
        b.initWord(array + (uint64_t)i * 8, (uint64_t)(i * i));
    const uint64_t total = b.allocWords(1);
    b.initWord(total, 0);

    b.li(1, 200); // outer iterations
    b.label("outer");
    // Each element is read twice per iteration from two distinct
    // static sites, back to back: site B is RAR dependent on site A
    // and can obtain its value by naming it (no address calculation).
    b.li(8, (int64_t)array);
    b.li(9, 16);
    b.li(10, 0);
    b.label("sum");
    b.lw(11, 8, 0); // load site A (RAR source)
    b.add(10, 10, 11);
    b.lw(12, 8, 0); // load site B (RAR sink of A)
    b.add(10, 10, 12);
    b.addi(8, 8, 8);
    b.addi(9, 9, -1);
    b.bne(9, 0, "sum");
    // total += partial (memory-resident accumulator -> RAW pairs).
    b.li(13, (int64_t)total);
    b.lw(14, 13, 0);
    b.add(14, 14, 10);
    b.sw(13, 0, 14);
    b.addi(1, 1, -1);
    b.bne(1, 0, "outer");
    b.halt();

    Program program = b.build();
    std::printf("program: %zu static instructions\n",
                program.numInsts());

    // --- 2. Execute it, feeding the committed trace to a cloaking
    //        mechanism (128-entry DDT, adaptive confidence).
    CloakingConfig config;
    config.ddt.entries = 128;
    CloakingEngine engine(config);

    MicroVM vm(program);
    uint64_t executed = vm.run(engine);

    // --- 3. Inspect what the mechanism did.
    const CloakingStats &s = engine.stats();
    std::printf("executed:        %llu instructions\n",
                (unsigned long long)executed);
    std::printf("loads:           %llu\n", (unsigned long long)s.loads);
    std::printf("RAW detected:    %llu\n",
                (unsigned long long)s.detectedRaw);
    std::printf("RAR detected:    %llu\n",
                (unsigned long long)s.detectedRar);
    std::printf("covered (RAW):   %.1f%% of loads\n",
                100.0 * s.coveredRaw / (double)s.loads);
    std::printf("covered (RAR):   %.1f%% of loads\n",
                100.0 * s.coveredRar / (double)s.loads);
    std::printf("misspeculated:   %.3f%% of loads\n",
                100.0 * s.mispredictionRate());
    return 0;
}
