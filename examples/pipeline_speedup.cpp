/**
 * @file
 * Timing demonstration (Section 5.6): run one synthetic benchmark
 * through the out-of-order core with and without cloaking/bypassing,
 * for both misspeculation recovery mechanisms, and report speedups.
 *
 * The four machine configurations run as one sweep on the parallel
 * driver (src/driver): the workload executes functionally once, and
 * the recorded trace feeds all four cores — on multi-core hosts,
 * concurrently.
 *
 *   ./examples/pipeline_speedup [workload] [--workers=N|--serial]
 *   (default workload: tom)
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cpu/ooo_cpu.hh"
#include "driver/sweep.hh"
#include "workload/workload.hh"

namespace {

rarpred::CloakTimingConfig
mechanism(rarpred::RecoveryModel recovery)
{
    rarpred::CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.mode = rarpred::CloakingMode::RawPlusRar;
    cloak.engine.ddt.entries = 128;
    cloak.engine.dpnt.geometry = {8192, 2};
    cloak.engine.sf = {1024, 2};
    cloak.recovery = recovery;
    return cloak;
}

} // namespace

int
main(int argc, char **argv)
{
    rarpred::driver::installStopHandlers();
    const auto parsed = rarpred::driver::parseSweepArgs(argc, argv);
    if (!parsed.ok()) {
        std::cerr << parsed.status().toString() << "\n"
                  << rarpred::driver::sweepUsage();
        return 2;
    }
    if (parsed->help) {
        std::fputs(rarpred::driver::sweepUsage(), stdout);
        return 0;
    }
    std::string name = "tom";
    if (!parsed->positional.empty())
        name = parsed->positional.back();
    const rarpred::Workload &w = rarpred::findWorkload(name);

    // Config grid: base plus the three recovery mechanisms.
    const std::vector<rarpred::CloakTimingConfig> configs = {
        {},
        mechanism(rarpred::RecoveryModel::Selective),
        mechanism(rarpred::RecoveryModel::Squash),
        mechanism(rarpred::RecoveryModel::Oracle),
    };

    rarpred::driver::SimJobRunner runner(parsed->runner);

    const auto stats = rarpred::driver::runSweep(
        runner, {&w}, configs.size(),
        [&configs](const rarpred::Workload &, size_t ci,
                   rarpred::TraceSource &trace, rarpred::Rng &) {
            rarpred::CpuConfig config;
            rarpred::OooCpu cpu(config, configs[ci]);
            rarpred::driver::pumpSimulation(trace, cpu);
            return cpu.stats();
        },
        parsed->io);
    if (!stats.status.ok())
        return rarpred::driver::finishSweep(runner, stats.status,
                                            std::cerr);

    std::printf("workload %s (%s)\n\n", w.fullName.c_str(),
                w.abbrev.c_str());

    const rarpred::CpuStats &base = stats[0];
    std::printf("base:       %10llu cycles  IPC %.2f  "
                "branch misp %llu\n",
                (unsigned long long)base.cycles, base.ipc(),
                (unsigned long long)base.branchMispredicts);

    const char *labels[3] = {"selective", "squash", "oracle"};
    for (size_t i = 0; i < 3; ++i) {
        const rarpred::CpuStats &s = stats[i + 1];
        std::printf("%-10s  %10llu cycles  IPC %.2f  speedup %+.2f%%  "
                    "(spec used %llu, wrong %llu)\n",
                    labels[i], (unsigned long long)s.cycles, s.ipc(),
                    100.0 * ((double)base.cycles / s.cycles - 1.0),
                    (unsigned long long)s.valueSpecUsed,
                    (unsigned long long)s.valueSpecWrong);
    }
    std::printf("\nSelective invalidation re-executes only the "
                "instructions that read a wrong\nvalue; squash "
                "invalidation re-fetches everything after it "
                "(Section 5.6.1).\n");

    return rarpred::driver::finishSweep(runner, stats.status, std::cerr);
}
