/**
 * @file
 * Timing demonstration (Section 5.6): run one synthetic benchmark
 * through the out-of-order core with and without cloaking/bypassing,
 * for both misspeculation recovery mechanisms, and report speedups.
 *
 *   ./examples/pipeline_speedup [workload]   (default: tom)
 */

#include <cstdio>
#include <string>

#include "cpu/ooo_cpu.hh"
#include "vm/micro_vm.hh"
#include "workload/workload.hh"

namespace {

rarpred::CpuStats
run(const rarpred::Workload &w, const rarpred::CloakTimingConfig &cloak)
{
    rarpred::CpuConfig config;
    rarpred::OooCpu cpu(config, cloak);
    rarpred::Program p = w.build(1);
    rarpred::MicroVM vm(p);
    vm.run(cpu, 100'000'000ull);
    return cpu.stats();
}

rarpred::CloakTimingConfig
mechanism(rarpred::RecoveryModel recovery)
{
    rarpred::CloakTimingConfig cloak;
    cloak.enabled = true;
    cloak.engine.mode = rarpred::CloakingMode::RawPlusRar;
    cloak.engine.ddt.entries = 128;
    cloak.engine.dpnt.geometry = {8192, 2};
    cloak.engine.sf = {1024, 2};
    cloak.recovery = recovery;
    return cloak;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "tom";
    const rarpred::Workload &w = rarpred::findWorkload(name);

    std::printf("workload %s (%s)\n\n", w.fullName.c_str(),
                w.abbrev.c_str());

    auto base = run(w, {});
    std::printf("base:       %10llu cycles  IPC %.2f  "
                "branch misp %llu\n",
                (unsigned long long)base.cycles, base.ipc(),
                (unsigned long long)base.branchMispredicts);

    for (auto recovery : {rarpred::RecoveryModel::Selective,
                          rarpred::RecoveryModel::Squash,
                          rarpred::RecoveryModel::Oracle}) {
        auto s = run(w, mechanism(recovery));
        const char *label =
            recovery == rarpred::RecoveryModel::Selective ? "selective"
            : recovery == rarpred::RecoveryModel::Squash  ? "squash"
                                                          : "oracle";
        std::printf("%-10s  %10llu cycles  IPC %.2f  speedup %+.2f%%  "
                    "(spec used %llu, wrong %llu)\n",
                    label, (unsigned long long)s.cycles, s.ipc(),
                    100.0 * ((double)base.cycles / s.cycles - 1.0),
                    (unsigned long long)s.valueSpecUsed,
                    (unsigned long long)s.valueSpecWrong);
    }
    std::printf("\nSelective invalidation re-executes only the "
                "instructions that read a wrong\nvalue; squash "
                "invalidation re-fetches everything after it "
                "(Section 5.6.1).\n");
    return 0;
}
